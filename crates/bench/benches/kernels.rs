//! Criterion micro-benchmarks of the simulation and framework kernels that
//! dominate experiment run time. These quantify the cost model behind the
//! paper's Fig. 7 efficiency claims (training-time ratios are reported in
//! circuit evaluations; these benches anchor evaluations to wall time).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use calibration::snapshot::CalibrationSnapshot;
use calibration::topology::Topology;
use qnn::data::Dataset;
use qnn::executor::{pure_z_scores, NoiseOptions, NoisyExecutor};
use qnn::model::VqcModel;
use quasim::density::DensityMatrix;
use quasim::gate::{BoundGate, GateKind};
use quasim::noise::KrausChannel;
use quasim::statevector::StateVector;
use qucad::cluster::kmedians_weighted_l1;
use qucad::levels::CompressionTable;
use transpile::circuit::{Circuit, Param};
use transpile::expand::expand;
use transpile::route::route_identity;

fn bench_statevector(c: &mut Criterion) {
    let mut g = c.benchmark_group("statevector");
    g.bench_function("apply_1q_gate_4q", |b| {
        let gate = BoundGate::one(GateKind::Ry, 2, 0.7);
        b.iter_batched(
            || StateVector::zero_state(4),
            |mut sv| {
                sv.apply(black_box(&gate));
                sv
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("pure_eval_mnist_model", |b| {
        let model = VqcModel::paper_model(4, 4, 16, 2);
        let weights = model.init_weights(1);
        let features = vec![0.5; 16];
        b.iter(|| pure_z_scores(black_box(&model), &features, &weights));
    });
    g.finish();
}

fn bench_density(c: &mut Criterion) {
    let mut g = c.benchmark_group("density");
    g.bench_function("apply_2q_gate_5q", |b| {
        let gate = BoundGate::two(GateKind::Cx, 0, 1, 0.0);
        b.iter_batched(
            || DensityMatrix::zero_state(5),
            |mut rho| {
                rho.apply_gate(black_box(&gate));
                rho
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("fast_depolarizing_2q_5q", |b| {
        b.iter_batched(
            || DensityMatrix::zero_state(5),
            |mut rho| {
                rho.apply_depolarizing_2q(black_box(0.01), 0, 1);
                rho
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("kraus_depolarizing_2q_5q", |b| {
        let ch = KrausChannel::depolarizing_2q(0.01);
        b.iter_batched(
            || DensityMatrix::zero_state(5),
            |mut rho| {
                rho.apply_channel(black_box(&ch), &[0, 1]);
                rho
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("noisy_eval_mnist_model_belem", |b| {
        let model = VqcModel::paper_model(4, 4, 16, 2);
        let topo = Topology::ibm_belem();
        let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::default());
        let snap = CalibrationSnapshot::uniform(&topo, 0, 3e-4, 1e-2, 0.02);
        let weights = model.init_weights(1);
        let features = vec![0.5; 16];
        b.iter(|| exec.z_scores(black_box(&features), &weights, &snap));
    });
    g.bench_function("noisy_eval_mnist_model_belem_unfused", |b| {
        // The op-by-op differential-testing reference, for comparison with
        // the fused production path above.
        let model = VqcModel::paper_model(4, 4, 16, 2);
        let topo = Topology::ibm_belem();
        let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::default());
        let snap = CalibrationSnapshot::uniform(&topo, 0, 3e-4, 1e-2, 0.02);
        let weights = model.init_weights(1);
        let features = vec![0.5; 16];
        b.iter(|| exec.z_scores_seeded_unfused(black_box(&features), &weights, &snap, 0));
    });
    g.finish();
}

fn bench_fused(c: &mut Criterion) {
    use quasim::density::SimWorkspace;
    use transpile::fuse::{fuse_native, SimOp};

    let mut g = c.benchmark_group("fused");
    // A noisy CRY-ladder slice: the segment shapes the executor hot path
    // produces (gate + channel pairs, same-wire rotation runs).
    let mut circuit = Circuit::new(4);
    for q in 0..4 {
        circuit.ry(q, Param::Idx(q));
    }
    for q in 0..3 {
        circuit.cry(q, q + 1, Param::Idx(4 + q));
    }
    let theta: Vec<f64> = (0..7).map(|i| 0.4 + 0.3 * i as f64).collect();
    let topo = Topology::ibm_belem();
    let phys = route_identity(&circuit, &topo);
    let native = expand(&phys, &theta);
    let noise = |op: &transpile::expand::NativeOp| -> Option<f64> {
        if op.is_entangler() {
            Some(0.01)
        } else if op.pulses > 0 {
            Some(0.001)
        } else {
            None
        }
    };

    g.bench_function("compile_native_to_program", |b| {
        b.iter(|| fuse_native(black_box(&native), noise));
    });

    let program = fuse_native(&native, noise);
    g.bench_function("run_program_reused_workspace", |b| {
        let mut ws = SimWorkspace::new();
        b.iter(|| {
            ws.reset_zero(program.n_qubits());
            ws.run(black_box(&program));
            ws.prob_one(0)
        });
    });

    // Same ops, one segment per op (no fusion): quantifies the pass win.
    let mut single_ops = Vec::new();
    for op in native.ops() {
        single_ops.push(SimOp::Gate(op.gate.clone()));
        if let Some(l) = noise(op) {
            let q = op.gate.qubits();
            match q.len() {
                1 => single_ops.push(SimOp::Depolarize1 { q: q[0], lambda: l }),
                _ => single_ops.push(SimOp::Depolarize2 {
                    a: q[0],
                    b: q[1],
                    lambda: l,
                }),
            }
        }
    }
    g.bench_function("run_op_by_op_density_matrix", |b| {
        b.iter(|| {
            let mut rho = DensityMatrix::zero_state(topo.n_qubits());
            for op in &single_ops {
                match op {
                    SimOp::Gate(gate) => rho.apply_gate(black_box(gate)),
                    SimOp::Depolarize1 { q, lambda } => rho.apply_depolarizing_1q(*lambda, *q),
                    SimOp::Depolarize2 { a, b, lambda } => {
                        rho.apply_depolarizing_2q(*lambda, *a, *b);
                    }
                }
            }
            rho.prob_one(0)
        });
    });
    g.finish();
}

fn bench_trajectory(c: &mut Criterion) {
    use quasim::fused::ProgramBuilder;
    use quasim::trajectory::{
        estimate_prob_one, estimate_prob_one_panel, TrajectoryPanel, TrajectoryWorkspace,
    };

    // A 10-qubit noisy ring ladder: the program shape the executor hands
    // the trajectory engine (rotation+channel and CX+channel segments).
    let n = 10usize;
    let mut b = ProgramBuilder::new(n);
    for q in 0..n {
        b.unitary_1q(q, GateKind::Ry.entries_1q(0.3 + 0.1 * q as f64).unwrap());
        b.depolarize_1q(q, 0.002);
    }
    for q in 0..n {
        b.cx(q, (q + 1) % n);
        b.depolarize_2q(0.01, q, (q + 1) % n);
    }
    for q in 0..n {
        b.unitary_1q(q, GateKind::Rz.entries_1q(-0.2 * q as f64).unwrap());
        b.depolarize_1q(q, 0.002);
    }
    let program = b.finish();
    let qubits: Vec<usize> = (0..n).collect();
    let n_traj = 64u32;

    let mut g = c.benchmark_group("trajectory");
    g.sample_size(20);
    g.bench_function("per_trajectory_10q_64t", |bch| {
        let mut ws = TrajectoryWorkspace::new();
        bch.iter(|| estimate_prob_one(&mut ws, black_box(&program), &qubits, n_traj, 7));
    });
    // Panel sweeps at B ∈ {1, 8, 64}: same bits, amortised dispatch.
    for width in [1usize, 8, 64] {
        g.bench_function(&format!("panel_b{width}_10q_64t"), |bch| {
            let mut panel = TrajectoryPanel::new();
            bch.iter(|| {
                estimate_prob_one_panel(&mut panel, black_box(&program), &qubits, n_traj, 7, width)
            });
        });
    }
    g.finish();
}

fn bench_rebind(c: &mut Criterion) {
    use transpile::expand::ANGLE_TOL;
    use transpile::route::route;
    use transpile::template::CircuitTemplate;

    let model = VqcModel::paper_model(4, 4, 16, 2);
    let topo = Topology::ibm_belem();
    let full: Vec<f64> = (0..model.circuit().n_params())
        .map(|i| 0.2 + i as f64 * 0.07)
        .collect();

    let mut g = c.benchmark_group("rebind");
    // The per-evaluation transpile cost the program cache eliminates …
    g.bench_function("full_retranspile_mnist", |b| {
        b.iter(|| {
            let simplified = model.circuit().simplified(black_box(&full), ANGLE_TOL);
            let phys = route(&simplified, &topo, None);
            expand(&phys, &full)
        });
    });
    // … versus the residual rebind cost (expansion only).
    let template = CircuitTemplate::compile(model.circuit(), &topo, &full, ANGLE_TOL);
    g.bench_function("template_bind_mnist", |b| {
        b.iter(|| template.bind(black_box(&full)));
    });
    // End-to-end: warm-cache noisy evaluation (every call a cache hit).
    let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::default());
    let snap = CalibrationSnapshot::uniform(&topo, 0, 3e-4, 1e-2, 0.02);
    let weights = model.init_weights(1);
    let features = vec![0.5; 16];
    let _ = exec.z_scores_seeded(&features, &weights, &snap, 0); // warm
    g.bench_function("warm_cache_noisy_eval_mnist", |b| {
        b.iter(|| exec.z_scores_seeded(black_box(&features), &weights, &snap, 0));
    });
    g.finish();
}

fn bench_transpile(c: &mut Criterion) {
    let mut g = c.benchmark_group("transpile");
    let model = VqcModel::paper_model(4, 4, 16, 2);
    let topo = Topology::ibm_belem();
    g.bench_function("route_mnist_model_belem", |b| {
        b.iter(|| route_identity(black_box(model.circuit()), &topo));
    });
    let phys = route_identity(model.circuit(), &topo);
    let full: Vec<f64> = (0..model.circuit().n_params())
        .map(|i| i as f64 * 0.1)
        .collect();
    g.bench_function("expand_mnist_model", |b| {
        b.iter(|| expand(black_box(&phys), &full));
    });
    let mut small = Circuit::new(4);
    for q in 0..4 {
        small.cry(q, (q + 1) % 4, Param::Idx(q));
    }
    g.bench_function("route_ring_4cry", |b| {
        b.iter(|| route_identity(black_box(&small), &topo));
    });
    g.finish();
}

fn bench_framework(c: &mut Criterion) {
    let mut g = c.benchmark_group("framework");
    g.sample_size(20);
    g.bench_function("levels_snap_80_params", |b| {
        let table = CompressionTable::standard();
        let theta: Vec<f64> = (0..80).map(|i| i as f64 * 0.173).collect();
        b.iter(|| table.snap_all(black_box(&theta)));
    });
    g.bench_function("kmedians_48x14_k6", |b| {
        let topo = Topology::ibm_belem();
        let hist = calibration::history::HistoryConfig::belem_like(48, 3).generate(&topo);
        let samples: Vec<Vec<f64>> = hist
            .iter()
            .map(calibration::CalibrationSnapshot::feature_vector)
            .collect();
        let w = vec![1.0; samples[0].len()];
        b.iter(|| kmedians_weighted_l1(black_box(&samples), &w, 6, 1, 40));
    });
    g.bench_function("batch_loss_iris_pure_b8", |b| {
        let model = VqcModel::paper_model(4, 3, 4, 3);
        let data = Dataset::iris(1);
        let weights = model.init_weights(2);
        let batch: Vec<&qnn::data::Sample> = data.train.iter().take(8).collect();
        b.iter(|| {
            qnn::train::batch_loss(black_box(&model), qnn::train::Env::Pure, &batch, &weights)
        });
    });
    g.finish();
}

fn bench_parallel_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_eval");
    g.sample_size(10);
    let model = VqcModel::paper_model(4, 2, 4, 2);
    let topo = Topology::ibm_belem();
    let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::with_shots(1024, 1));
    let snap = CalibrationSnapshot::uniform(&topo, 0, 1e-3, 2e-2, 0.02);
    let data = Dataset::seismic(8, 24, 3);
    let weights = model.init_weights(2);
    let threads = qnn::executor::parallel::worker_threads();
    g.bench_function("batch_accuracy_24_samples_seq", |b| {
        b.iter(|| {
            qnn::executor::parallel::batch_accuracy(
                black_box(&exec),
                &data.test,
                &weights,
                &snap,
                0,
                1,
            )
        });
    });
    g.bench_function(&format!("batch_accuracy_24_samples_{threads}thr"), |b| {
        b.iter(|| {
            qnn::executor::parallel::batch_accuracy(
                black_box(&exec),
                &data.test,
                &weights,
                &snap,
                0,
                threads,
            )
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_statevector,
    bench_density,
    bench_fused,
    bench_trajectory,
    bench_rebind,
    bench_transpile,
    bench_framework,
    bench_parallel_eval
);
criterion_main!(benches);

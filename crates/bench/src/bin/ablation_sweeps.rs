//! Extension ablations beyond the paper's figures: sensitivity of QuCAD to
//! its design choices, as called out in DESIGN.md §8 —
//!
//! 1. compression-table granularity (`{0,π}` vs the paper's quarter turns
//!    vs eighth turns);
//! 2. mask-threshold sweep (compression aggressiveness);
//! 3. cluster-count `k` sweep (repository size vs match quality);
//! 4. measurement shots (why finite sampling makes compression matter).
//!
//! Run: `cargo run --release -p qucad-bench --bin ablation_sweeps`

use calibration::stats::mean;
use qnn::executor::{NoiseOptions, NoisyExecutor};
use qnn::train::{evaluate, Env};
use qucad::admm::compress;
use qucad::framework::{run_method, Method};
use qucad::levels::CompressionTable;
use qucad::mask::SelectionRule;
use qucad::report::render_table;
use qucad_bench::{banner, Experiment, Scale, Task};

fn main() {
    let scale = Scale::from_env_or_args();
    banner("Ablations: table granularity, threshold, k, shots", scale);

    let exp = Experiment::prepare(Task::Seismic, scale, 42);
    let exec = NoisyExecutor::new(&exp.model, &exp.topology, exp.noise);
    let online = exp.history.online();
    let probe_days: Vec<usize> = (0..5).map(|i| i * online.len() / 5).collect();
    let eval_subset: Vec<qnn::data::Sample> = exp
        .dataset
        .test
        .iter()
        .take(exp.qucad_config.eval_samples)
        .cloned()
        .collect();

    // --- 1. compression-table granularity -------------------------------
    println!("1) compression-table granularity (per-day compression, 5 days):");
    let mut rows = Vec::new();
    for (name, table) in [
        ("coarse {0, π}", CompressionTable::coarse()),
        ("standard {0, π/2, π, 3π/2}", CompressionTable::standard()),
        ("fine (eighth turns)", CompressionTable::fine()),
    ] {
        let accs: Vec<f64> = probe_days
            .iter()
            .map(|&d| {
                let out = compress(
                    &exp.model,
                    &exec,
                    &exp.dataset.train,
                    &online[d],
                    &table,
                    &exp.qucad_config.admm,
                    &exp.base_weights,
                );
                let env = Env::Noisy {
                    exec: &exec,
                    snapshot: &online[d],
                };
                evaluate(&exp.model, env, &eval_subset, &out.weights)
            })
            .collect();
        rows.push(vec![name.to_string(), format!("{:.4}", mean(&accs))]);
    }
    println!("{}", render_table(&["table", "mean accuracy"], &rows));

    // --- 2. threshold sweep ----------------------------------------------
    println!("2) mask-threshold sweep (compression aggressiveness):");
    let mut rows = Vec::new();
    for thr in [0.1, 0.05, 0.02, 0.01, 0.005] {
        let mut cfg = exp.qucad_config.admm;
        cfg.rule = SelectionRule::Threshold(thr);
        let accs: Vec<f64> = probe_days
            .iter()
            .map(|&d| {
                let out = compress(
                    &exp.model,
                    &exec,
                    &exp.dataset.train,
                    &online[d],
                    &exp.qucad_config.table,
                    &cfg,
                    &exp.base_weights,
                );
                let env = Env::Noisy {
                    exec: &exec,
                    snapshot: &online[d],
                };
                evaluate(&exp.model, env, &eval_subset, &out.weights)
            })
            .collect();
        rows.push(vec![format!("{thr}"), format!("{:.4}", mean(&accs))]);
    }
    println!("{}", render_table(&["threshold", "mean accuracy"], &rows));

    // --- 3. cluster-count sweep ------------------------------------------
    println!("3) repository cluster count k (full QuCAD runs):");
    let mut rows = Vec::new();
    for k in [2, 4, 6, 8] {
        let mut e2 = exp.clone();
        e2.qucad_config.k = k;
        let run = run_method(Method::Qucad, &e2.context());
        rows.push(vec![
            k.to_string(),
            format!("{:.4}", mean(&run.accuracies())),
            run.online_evals().to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["k", "mean accuracy", "online train evals"], &rows)
    );

    // --- 4. shots ---------------------------------------------------------
    println!("4) measurement shots (baseline model, 5 days):");
    let mut rows = Vec::new();
    for shots in [None, Some(256u64), Some(1024), Some(8192)] {
        let noise = NoiseOptions { shots, ..exp.noise };
        let ex = NoisyExecutor::new(&exp.model, &exp.topology, noise);
        let accs: Vec<f64> = probe_days
            .iter()
            .map(|&d| {
                let env = Env::Noisy {
                    exec: &ex,
                    snapshot: &online[d],
                };
                evaluate(&exp.model, env, &eval_subset, &exp.base_weights)
            })
            .collect();
        rows.push(vec![
            shots.map_or("exact".into(), |s| s.to_string()),
            format!("{:.4}", mean(&accs)),
        ]);
    }
    println!(
        "{}",
        render_table(&["shots", "baseline mean accuracy"], &rows)
    );
    println!(
        "expected shapes: the paper's quarter-turn table beats both extremes; \
         an intermediate threshold wins; k saturates once regimes are covered; \
         fewer shots lower the noisy baseline (motivating compression)."
    );
}

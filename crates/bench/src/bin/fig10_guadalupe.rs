//! **Guadalupe scenario**: per-day noisy evaluation of a 16-qubit VQC on
//! the `ibm_guadalupe` heavy-hexagon device — a register the dense
//! density-matrix engine structurally cannot simulate
//! (`quasim::density::MAX_DENSITY_QUBITS = 12`), and therefore the
//! flagship workload of the Monte-Carlo trajectory backend.
//!
//! The run builds a 16-qubit paper-style ansatz (encoder + one VQC block),
//! routes it onto guadalupe's coupling map, and evaluates per-day accuracy
//! of a fixed weight vector over a fluctuating calibration history with
//! the trajectory engine, reporting per-day accuracy and trajectory
//! throughput. The point is *engine reach and speed*, not model quality,
//! so the weights are the seeded random initialisation rather than a
//! trained model (training a 16-qubit QNN is outside this scenario's
//! budget).
//!
//! Run: `cargo run --release -p qucad_bench --bin fig10_guadalupe -- \
//!       [--scale=quick]` (QUCAD_BACKEND defaults to `trajectory` here;
//! setting `QUCAD_BACKEND=density` exits with an explanation of the cap).

use calibration::history::{FluctuatingHistory, HistoryConfig};
use calibration::topology::Topology;
use qnn::data::Dataset;
use qnn::executor::{parallel, NoiseOptions, NoisyExecutor, SimBackend};
use qnn::model::VqcModel;
use quasim::density::MAX_DENSITY_QUBITS;
use qucad_bench::Scale;

fn main() {
    let scale = Scale::from_env_or_args();
    // This scenario is trajectory-first: the register is wider than the
    // density cap, so only an explicit QUCAD_BACKEND overrides the default.
    let backend = SimBackend::from_env_or(SimBackend::Trajectory);

    let topo = Topology::ibm_guadalupe();
    let model = VqcModel::paper_model(topo.n_qubits(), 4, 16, 1);
    println!(
        "=== Guadalupe scenario: 16-qubit VQC under fluctuating noise \
         (scale: {scale:?}, backend: {}) ===",
        backend.name()
    );
    println!(
        "model: {} qubits, {} weights, {} classes on {} ({} edges)",
        model.n_qubits(),
        model.n_weights(),
        model.n_classes(),
        topo.name(),
        topo.n_edges()
    );

    if backend == SimBackend::Density {
        eprintln!(
            "error: the density backend is capped at {MAX_DENSITY_QUBITS} active qubits \
             (dense rho is 4^n); this circuit touches all {} qubits of {}.\n\
             Re-run with QUCAD_BACKEND=trajectory (the default for this binary).",
            topo.n_qubits(),
            topo.name()
        );
        std::process::exit(2);
    }

    // Evaluation budget per scale: days x samples x trajectories (one
    // trajectory of the routed 16-qubit circuit costs tens of ms, so the
    // quick budget keeps single-core runs under a minute).
    let (days, samples, trajectories) = match scale {
        Scale::Quick => (3usize, 4usize, 32u32),
        Scale::Standard => (12, 16, 128),
        Scale::Paper => (30, 32, 512),
    };

    let seed = 42u64;
    let dataset = Dataset::mnist4(32, samples, seed);
    let history =
        FluctuatingHistory::generate(&topo, &HistoryConfig::guadalupe_like(days, seed), 0);
    let weights = model.init_weights(seed);

    let noise = NoiseOptions {
        scale: 3.0,
        backend,
        trajectories,
        ..NoiseOptions::with_shots(1024, seed)
    };
    let exec = NoisyExecutor::new(&model, &topo, noise);
    println!(
        "routed physical length (generic weights): {} (pulses + 3xCX)",
        exec.circuit_length(&dataset.test[0].features, &weights)
    );

    let threads = parallel::worker_threads();
    let day_refs: Vec<_> = history.online().iter().collect();
    let eval_set = &dataset.test[..dataset.test.len().min(samples)];

    let t0 = std::time::Instant::now();
    let series = parallel::accuracy_over_days(&exec, &day_refs, eval_set, &weights, threads);
    let elapsed = t0.elapsed();

    println!();
    println!("day  accuracy");
    for (d, acc) in series.iter().enumerate() {
        println!("{d:>3}  {:.3}", acc);
    }
    let total_traj = trajectories as u64 * eval_set.len() as u64 * day_refs.len() as u64;
    println!();
    println!(
        "evaluated {} days x {} samples x {} trajectories = {} trajectories \
         of a 2^{} state in {:.1?} ({:.0} trajectories/s, {} threads)",
        day_refs.len(),
        eval_set.len(),
        trajectories,
        total_traj,
        model.n_qubits(),
        elapsed,
        total_traj as f64 / elapsed.as_secs_f64(),
        threads
    );
    println!(
        "(the density backend cannot run this scenario: 16 active qubits > \
         MAX_DENSITY_QUBITS = {MAX_DENSITY_QUBITS})"
    );
}

//! Regenerates **Fig. 1**: the fluctuating noise observed on `ibm_belem` —
//! Pauli-X, CNOT, and readout error time series over the full history, plus
//! the device heat snapshot (min/max per channel).
//!
//! Run: `cargo run --release -p qucad-bench --bin fig1_noise_series`

use calibration::history::{FluctuatingHistory, HistoryConfig};
use calibration::snapshot::CalibrationSnapshot;
use calibration::stats::{mean, std_dev};
use calibration::topology::Topology;
use qucad::report::to_csv;
use qucad_bench::{banner, Scale};

fn main() {
    let scale = Scale::from_env_or_args();
    banner("Fig. 1: fluctuating noise on ibm_belem", scale);

    let topo = Topology::ibm_belem();
    let (off, on) = scale.days();
    let history = FluctuatingHistory::generate(
        &topo,
        &HistoryConfig::belem_like(off + on, 42 ^ 0xACCE55),
        off,
    );

    // Panel 1: device snapshot ranges (the paper's colourbar min/max).
    println!("Device snapshot ranges over {} days:", history.len());
    let labels = CalibrationSnapshot::feature_labels(&topo);
    for (dim, label) in labels.iter().enumerate() {
        let series = history.feature_series(dim);
        let lo = series.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = series.iter().copied().fold(0.0_f64, f64::max);
        println!(
            "  {label:>16}: min {lo:.3e}  max {hi:.3e}  mean {:.3e}  sd {:.3e}",
            mean(&series),
            std_dev(&series),
        );
    }
    println!();
    println!(
        "Paper reference: X error 1.907e-4..3.735e-4 (calibration-day values),\n\
         CNOT error 7.438e-3..1.392e-2, readout excursions up to ~0.15."
    );
    println!();

    // Panel 2: weekly-sampled CSV of representative channels.
    let x0 = history.feature_series(0);
    let cx_first = history.feature_series(topo.n_qubits());
    let ro0 = history.feature_series(topo.n_qubits() + topo.n_edges());
    let rows: Vec<Vec<String>> = (0..history.len())
        .step_by(7)
        .map(|d| {
            vec![
                d.to_string(),
                format!("{:.4e}", x0[d]),
                format!("{:.4e}", cx_first[d]),
                format!("{:.4e}", ro0[d]),
            ]
        })
        .collect();
    println!("Weekly samples (CSV):");
    println!(
        "{}",
        to_csv(&["day", "x_err_q0", "cx_err_q0q1", "readout_q0"], &rows)
    );
}

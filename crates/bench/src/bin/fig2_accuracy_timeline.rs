//! Regenerates **Fig. 2**: daily accuracy of a 4-class MNIST QNN over the
//! online phase when adapted only on day 1 — (a) noise-aware training \[12]
//! vs. (b) one-time compression. Demonstrates Observation 1 (fluctuating
//! noise collapses a noise-aware-trained model) and Motivation 1
//! (compression is markedly more robust, with residual bad episodes).
//!
//! Run: `cargo run --release -p qucad-bench --bin fig2_accuracy_timeline`

use qucad::framework::Method;
use qucad::report::{pct, to_csv, SeriesSummary};
use qucad_bench::{banner, Experiment, Scale, Task};

fn main() {
    let scale = Scale::from_env_or_args();
    banner("Fig. 2: day-1 adaptation over a fluctuating year", scale);

    let exp = Experiment::prepare(Task::Mnist4, scale, 42);
    eprintln!("[fig2] running noise-aware-train-once ...");
    let nat = exp.run(Method::NoiseAwareOnce);
    eprintln!("[fig2] running one-time compression ...");
    let cmp = exp.run(Method::OneTimeCompression);

    let nat_acc = nat.accuracies();
    let cmp_acc = cmp.accuracies();
    let rows: Vec<Vec<String>> = nat
        .records
        .iter()
        .zip(cmp.records.iter())
        .map(|(a, b)| {
            vec![
                a.day.to_string(),
                format!("{:.4}", a.accuracy),
                format!("{:.4}", b.accuracy),
            ]
        })
        .collect();
    println!("Daily accuracy series (CSV):");
    println!(
        "{}",
        to_csv(&["day", "noise_aware_day1", "compression_day1"], &rows)
    );

    let s_nat = SeriesSummary::from_series(&nat_acc);
    let s_cmp = SeriesSummary::from_series(&cmp_acc);
    println!(
        "(a) noise-aware training on first day: mean {}",
        pct(s_nat.mean_accuracy)
    );
    println!(
        "(b) compression on first day:          mean {}",
        pct(s_cmp.mean_accuracy)
    );
    let worst_nat = nat_acc.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "worst day (noise-aware): {} — the paper's Observation-1 collapse \
         (80% -> 22% when error rates spiked)",
        pct(worst_nat)
    );
    println!(
        "expected shape: compression series sits above the noise-aware series \
         on most days, but both dip during high-noise episodes."
    );
}

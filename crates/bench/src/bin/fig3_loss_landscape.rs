//! Regenerates **Fig. 3**: the optimisation surface of a 2-parameter VQC in
//! a perfect environment (a), in a noisy environment (b), and their
//! difference (c) — revealing the "breakpoints": grid lines at the
//! compression levels `0, π/2, π, 3π/2` where the transpiled circuit gets
//! shorter and the noise-induced deviation drops sharply.
//!
//! Run: `cargo run --release -p qucad-bench --bin fig3_loss_landscape`

use calibration::snapshot::CalibrationSnapshot;
use calibration::stats::mean;
use calibration::topology::Topology;
use qnn::executor::{pure_z_scores, NoiseOptions, NoisyExecutor};
use qnn::model::VqcModel;
use qucad_bench::{banner, Scale};
use std::f64::consts::FRAC_PI_2;

fn main() {
    let scale = Scale::from_env_or_args();
    banner(
        "Fig. 3: 2-parameter loss landscape, perfect vs noisy",
        scale,
    );

    // A tiny 2-weight model: RY(θ1) + CRY(θ2) ring slice on 2 classes.
    let model = VqcModel::paper_model(2, 2, 2, 1);
    // Only sweep 2 of the weights; pin the rest at a generic angle.
    let n = model.n_weights();
    let topo = Topology::ibm_belem();
    let exec = NoisyExecutor::new(
        &model,
        &topo,
        NoiseOptions {
            scale: 3.0,
            ..NoiseOptions::default()
        },
    );
    let snap = CalibrationSnapshot::uniform(&topo, 0, 1.5e-3, 4e-2, 0.03);
    let features = [0.6, 1.1];

    // Sweep weight 0 (an RY) and weight 2 (a CRY) over [0, 2π).
    let grid = match scale {
        Scale::Quick => 13,
        _ => 25,
    };
    let step = std::f64::consts::TAU / (grid - 1) as f64;

    let deviation = |w0: f64, w2: f64| -> f64 {
        let mut weights = vec![0.9; n];
        weights[0] = w0;
        weights[2] = w2;
        let zp = pure_z_scores(&model, &features, &weights);
        let zn = exec.z_scores(&features, &weights, &snap);
        // Relative deviation: the fraction of the ideal signal the noise
        // destroys (absolute deviation would scale with the signal itself).
        let num: f64 = zp.iter().zip(zn.iter()).map(|(a, b)| (a - b).abs()).sum();
        let den: f64 = zp.iter().map(|a| a.abs()).sum();
        num / (den + 1e-9)
    };

    println!("|N(θ)| / |Wp(θ)| — relative noise deviation (rows = θ1 [RY], cols = θ2 [CRY]):");
    // Classify the CRY axis: level 0 (the controlled rotation disappears,
    // deleting two CNOTs), quarter levels (cheaper pulses), generic.
    let mut cry_zero = Vec::new();
    let mut cry_quarter = Vec::new();
    let mut cry_generic = Vec::new();
    let tau = std::f64::consts::TAU;
    for i in 0..grid {
        let w0 = i as f64 * step;
        let mut row = String::new();
        for j in 0..grid {
            let w2 = j as f64 * step;
            let d = deviation(w0, w2);
            let at_zero = w2 < 1e-9 || (tau - w2).abs() < 1e-6;
            let at_quarter = {
                let r = (w2 / FRAC_PI_2).round() * FRAC_PI_2;
                (w2 - r).abs() < 1e-9 && !at_zero
            };
            if at_zero {
                cry_zero.push(d);
            } else if at_quarter {
                cry_quarter.push(d);
            } else {
                cry_generic.push(d);
            }
            row.push_str(&format!("{d:.3} "));
        }
        println!("{row}");
    }
    println!();
    println!(
        "mean |N| with the CRY at level 0 (CNOTs removed): {:.4}",
        mean(&cry_zero)
    );
    println!(
        "mean |N| with the CRY at π/2, π, 3π/2:            {:.4}",
        mean(&cry_quarter)
    );
    println!(
        "mean |N| with the CRY at generic angles:          {:.4}",
        mean(&cry_generic)
    );
    // The paper's root-cause analysis: breakpoints exist because the
    // physical circuit gets shorter at the levels. Verify the mechanism on
    // the swept CRY directly.
    let length_at = |w2: f64| {
        let mut weights = vec![0.9; n];
        weights[2] = w2;
        exec.circuit_length(&features, &weights)
    };
    let len_zero = length_at(0.0);
    let len_pi = length_at(std::f64::consts::PI);
    let len_generic = length_at(1.1);
    println!();
    println!(
        "physical circuit length along the CRY axis: level 0 -> {len_zero}, \
         π -> {len_pi}, generic -> {len_generic}"
    );
    assert!(
        len_zero < len_pi && len_pi < len_generic,
        "compression levels must shorten the physical circuit"
    );
    println!(
        "expected shape: the level grid lines of Fig. 3(c) — physical length \
         (and with it the accumulated error) drops at 0, π/2, π, 3π/2, \
         deepest at 0 where the CNOT pair disappears."
    );
}

//! Regenerates **Fig. 4**: (a) per-edge CNOT noise on three representative
//! dates showing qubit heterogeneity (the noisiest edge changes identity);
//! (b) models noise-aware-compressed on each of those dates, tested on the
//! following weeks — each model is best near its own date, motivating the
//! repository.
//!
//! Run: `cargo run --release -p qucad-bench --bin fig4_heterogeneity`

use qnn::train::{evaluate, Env};
use qucad::admm::compress;
use qucad::report::{render_table, to_csv};
use qucad_bench::{banner, Experiment, Scale, Task};

fn main() {
    let scale = Scale::from_env_or_args();
    banner(
        "Fig. 4: heterogeneous noise and date-specific compression",
        scale,
    );

    let exp = Experiment::prepare(Task::Mnist4, scale, 42);
    let online = exp.history.online();
    // Three spread-out "training" dates (the paper uses Feb 12 / Mar 15 /
    // Apr 25).
    let idx = [0, online.len() / 3, 2 * online.len() / 3];

    // Panel (a): per-edge CNOT error on the three dates.
    println!("(a) CNOT error per edge:");
    let mut rows = Vec::new();
    for &i in &idx {
        let snap = &online[i];
        let mut row = vec![format!("day {}", snap.day)];
        for (e, &(a, b)) in exp.topology.edges().iter().enumerate() {
            let _ = (a, b);
            row.push(format!("{:.4}", snap.cnot_error[e]));
        }
        let worst = snap.worst_cnot_edge().map_or(0, |(e, _)| e);
        let (wa, wb) = exp.topology.edges()[worst];
        row.push(format!("CX{wa}_{wb}"));
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["date".into()];
    headers.extend(
        exp.topology
            .edges()
            .iter()
            .map(|&(a, b)| format!("CX{a}_{b}")),
    );
    headers.push("worst edge".into());
    let hdr_refs: Vec<&str> = headers.iter().map(std::string::String::as_str).collect();
    println!("{}", render_table(&hdr_refs, &rows));
    println!("expected shape: the worst edge differs across dates (Observation 2).");
    println!();

    // Panel (b): compress on each date, test on every following day.
    println!("(b) accuracy of date-compressed models over subsequent days (CSV):");
    let exec = exp.context();
    let executor = qnn::executor::NoisyExecutor::new(&exp.model, &exp.topology, exp.noise);
    let mut models = Vec::new();
    for &i in &idx {
        eprintln!("[fig4] compressing for day {} ...", online[i].day);
        let out = compress(
            &exp.model,
            &executor,
            exec.train_set,
            &online[i],
            &exp.qucad_config.table,
            &exp.qucad_config.admm,
            &exp.base_weights,
        );
        models.push(out.weights);
    }
    let eval_subset: Vec<qnn::data::Sample> = exp
        .dataset
        .test
        .iter()
        .take(exp.qucad_config.eval_samples)
        .cloned()
        .collect();
    let mut csv_rows = Vec::new();
    for snap in online.iter().step_by(2) {
        let mut row = vec![snap.day.to_string()];
        for w in &models {
            let env = Env::Noisy {
                exec: &executor,
                snapshot: snap,
            };
            row.push(format!("{:.4}", evaluate(&exp.model, env, &eval_subset, w)));
        }
        csv_rows.push(row);
    }
    let mut csv_headers = vec!["day".to_string()];
    for &i in &idx {
        csv_headers.push(format!("trained_day_{}", online[i].day));
    }
    let ch: Vec<&str> = csv_headers
        .iter()
        .map(std::string::String::as_str)
        .collect();
    println!("{}", to_csv(&ch, &csv_rows));
    println!(
        "expected shape: each model peaks around its own compression date; \
         accuracy degrades when the noise profile shifts (paper: 79% -> \
         22.5%/56.5% before re-compression, restored after)."
    );
}

//! Regenerates **Fig. 7**: online training cost vs. mean accuracy on
//! 4-class MNIST. The paper reports normalised training time
//! (compression-everyday 146.1×, noise-aware-train-everyday 110.3×, QuCAD
//! w/o offline 6.9×, QuCAD 1×); we report training cost in circuit
//! evaluations (the hardware-honest unit) plus wall time.
//!
//! Run: `cargo run --release -p qucad-bench --bin fig7_training_time`

use qucad::framework::Method;
use qucad::report::{pct, render_table, SeriesSummary};
use qucad_bench::{banner, Experiment, Scale, Task};

fn main() {
    let scale = Scale::from_env_or_args();
    banner(
        "Fig. 7: online training cost vs accuracy (4-class MNIST)",
        scale,
    );

    let exp = Experiment::prepare(Task::Mnist4, scale, 42);
    let methods = [
        Method::CompressionEveryday,
        Method::NoiseAwareEveryday,
        Method::QucadWithoutOffline,
        Method::Qucad,
    ];

    struct Row {
        name: &'static str,
        mean_acc: f64,
        online_evals: u64,
        wall: std::time::Duration,
    }
    let mut results = Vec::new();
    for method in methods {
        eprintln!("[fig7] running {} ...", method.name());
        let t0 = std::time::Instant::now();
        let run = exp.run(method);
        results.push(Row {
            name: method.name(),
            mean_acc: SeriesSummary::from_series(&run.accuracies()).mean_accuracy,
            online_evals: run.online_evals(),
            wall: t0.elapsed(),
        });
    }

    let qucad_evals = results.last().map_or(1, |r| r.online_evals.max(1));
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                pct(r.mean_acc),
                r.online_evals.to_string(),
                format!("{:.1}x", r.online_evals as f64 / qucad_evals as f64),
                format!("{:.1?}", r.wall),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Method",
                "Mean Accuracy",
                "Online train evals",
                "Normalized cost",
                "Wall time"
            ],
            &rows
        )
    );
    println!(
        "Paper reference: 146.1x / 110.3x / 6.9x / 1x normalised training time \
         with QuCAD's accuracy matching or beating the expensive baselines.\n\
         Expected shape: QuCAD achieves comparable accuracy at a cost 1–2 \
         orders of magnitude below the everyday methods."
    );
}

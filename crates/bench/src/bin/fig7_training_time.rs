//! Regenerates **Fig. 7**: online training cost vs. mean accuracy on
//! 4-class MNIST. The paper reports normalised training time
//! (compression-everyday 146.1×, noise-aware-train-everyday 110.3×, QuCAD
//! w/o offline 6.9×, QuCAD 1×); we report training cost in circuit
//! evaluations (the hardware-honest unit) plus wall time.
//!
//! Run: `cargo run --release -p qucad-bench --bin fig7_training_time`

use qnn::executor::{NoiseOptions, NoisyExecutor, SimBackend};
use qnn::train::{train_masked_sequential, train_masked_with_threads, Env, TrainConfig};
use qucad::framework::Method;
use qucad::report::{pct, render_table, SeriesSummary};
use qucad_bench::{banner, Experiment, Scale, Task};
use transpile::expand::ANGLE_TOL;
use transpile::template::CircuitTemplate;

fn main() {
    let scale = Scale::from_env_or_args();
    banner(
        "Fig. 7: online training cost vs accuracy (4-class MNIST)",
        scale,
    );

    let exp = Experiment::prepare(Task::Mnist4, scale, 42);
    let methods = [
        Method::CompressionEveryday,
        Method::NoiseAwareEveryday,
        Method::QucadWithoutOffline,
        Method::Qucad,
    ];

    struct Row {
        name: &'static str,
        mean_acc: f64,
        online_evals: u64,
        wall: std::time::Duration,
    }
    let mut results = Vec::new();
    for method in methods {
        eprintln!("[fig7] running {} ...", method.name());
        let t0 = std::time::Instant::now();
        let run = exp.run(method);
        results.push(Row {
            name: method.name(),
            mean_acc: SeriesSummary::from_series(&run.accuracies()).mean_accuracy,
            online_evals: run.online_evals(),
            wall: t0.elapsed(),
        });
    }

    let qucad_evals = results.last().map_or(1, |r| r.online_evals.max(1));
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                pct(r.mean_acc),
                r.online_evals.to_string(),
                format!("{:.1}x", r.online_evals as f64 / qucad_evals as f64),
                format!("{:.1?}", r.wall),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Method",
                "Mean Accuracy",
                "Online train evals",
                "Normalized cost",
                "Wall time"
            ],
            &rows
        )
    );
    println!(
        "Paper reference: 146.1x / 110.3x / 6.9x / 1x normalised training time \
         with QuCAD's accuracy matching or beating the expensive baselines.\n\
         Expected shape: QuCAD achieves comparable accuracy at a cost 1–2 \
         orders of magnitude below the everyday methods."
    );

    training_path_diagnostics(&exp);
}

/// One noisy finite-difference training step, batched (the production probe
/// engine) versus the retained sequential closure reference, with the
/// program-cache traffic and an estimated compile-vs-execute phase split.
///
/// The phase split is derived from micro-timed unit costs (one cold
/// template compile, one warm rebind) multiplied by the step's observed
/// cache traffic; "execute" is the remainder of the batched wall time
/// (density simulation + readout).
fn training_path_diagnostics(exp: &Experiment) {
    eprintln!("[fig7] training-path diagnostics ...");
    let train_subset = &exp.dataset.train[..exp.dataset.train.len().min(16)];
    let snap = &exp.history.online()[0];
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 8,
        lr: 0.08,
        seed: 5,
        grad_step: 1e-3,
    };
    let trainable = vec![true; exp.model.n_weights()];
    let density = NoiseOptions {
        backend: SimBackend::Density,
        ..exp.noise
    };

    let exec = NoisyExecutor::new(&exp.model, &exp.topology, density);
    let t0 = std::time::Instant::now();
    let batched = train_masked_with_threads(
        &exp.model,
        train_subset,
        Env::Noisy {
            exec: &exec,
            snapshot: snap,
        },
        &cfg,
        &exp.base_weights,
        &trainable,
        1,
    );
    let batched_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = exec.cache_stats();

    let seq_exec = NoisyExecutor::new(&exp.model, &exp.topology, density);
    let t0 = std::time::Instant::now();
    let sequential = train_masked_sequential(
        &exp.model,
        train_subset,
        Env::Noisy {
            exec: &seq_exec,
            snapshot: snap,
        },
        &cfg,
        &exp.base_weights,
        &trainable,
    );
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(
        batched
            .weights
            .iter()
            .zip(sequential.weights.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "batched training step diverged from the sequential reference"
    );

    // Unit costs for the phase split: a cold compile (simplify → route →
    // expand, the cache-miss path) and a warm rebind (the per-probe cost on
    // a hit).
    let full = exp
        .model
        .full_params(&train_subset[0].features, &exp.base_weights);
    let t0 = std::time::Instant::now();
    let template = CircuitTemplate::compile(exp.model.circuit(), &exp.topology, &full, ANGLE_TOL);
    let cold_compile_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = std::time::Instant::now();
    let reps = 64u32;
    for _ in 0..reps {
        std::hint::black_box(template.bind(&full));
    }
    let rebind_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(reps);

    let lookups = (stats.hits + stats.misses).max(1);
    let compile_ms = stats.misses as f64 * cold_compile_ms + lookups as f64 * rebind_ms;
    let execute_ms = (batched_ms - compile_ms).max(0.0);
    println!(
        "\nTraining-path diagnostics (one noisy FD epoch, {} evals, bit-identical):\n\
         \x20 batched probe engine : {batched_ms:>8.1} ms\n\
         \x20 sequential reference : {seq_ms:>8.1} ms  ({:.2}x)\n\
         \x20 program cache        : {} hits / {} misses ({:.1}% hit rate)\n\
         \x20 phase split (est.)   : compile {compile_ms:.1} ms ({:.1}%), \
         execute {execute_ms:.1} ms ({:.1}%)\n\
         \x20   unit costs: cold compile {cold_compile_ms:.3} ms, warm rebind {rebind_ms:.4} ms",
        batched.n_evals,
        seq_ms / batched_ms.max(1e-9),
        stats.hits,
        stats.misses,
        100.0 * stats.hits as f64 / lookups as f64,
        100.0 * compile_ms / batched_ms.max(1e-9),
        100.0 * execute_ms / batched_ms.max(1e-9),
    );
}

//! Regenerates **Fig. 8**: earthquake detection on the 7-qubit
//! `ibm_jakarta` processor — 5 rounds (distinct calibration days), three
//! approaches: Baseline, Noise-aware Training, QuCAD.
//!
//! The paper runs the QuCAD-output models on the real device; we run them
//! on the density-matrix simulator configured from jakarta's own
//! fluctuating calibration history (substitution documented in DESIGN.md
//! §4 — topology, qubit count, and day-to-day variation are preserved).
//!
//! Run: `cargo run --release -p qucad-bench --bin fig8_jakarta`

use calibration::stats::mean;
use calibration::topology::Topology;
use qucad::framework::Method;
use qucad::report::{pct, render_table};
use qucad_bench::{banner, Experiment, Scale, Task};

fn main() {
    let scale = Scale::from_env_or_args();
    banner(
        "Fig. 8: earthquake detection on ibm_jakarta (7 qubits)",
        scale,
    );

    let exp = Experiment::prepare_on(Task::Seismic, scale, 42, Topology::ibm_jakarta());

    // 5 rounds = 5 spread-out online days.
    let online = exp.history.online();
    let round_days: Vec<usize> = (0..5).map(|r| r * online.len() / 5).collect();

    let methods = [Method::Baseline, Method::NoiseAwareOnce, Method::Qucad];
    let mut table_rows = Vec::new();
    let mut means = Vec::new();
    for method in methods {
        eprintln!("[fig8] running {} ...", method.name());
        let run = exp.run(method);
        let acc = run.accuracies();
        let round_acc: Vec<f64> = round_days.iter().map(|&d| acc[d]).collect();
        let m = mean(&round_acc);
        means.push(m);
        let mut row = vec![method.name().to_string()];
        row.extend(round_acc.iter().map(|a| pct(*a)));
        row.push(pct(m));
        table_rows.push(row);
    }

    println!(
        "{}",
        render_table(
            &["Method", "Round 1", "Round 2", "Round 3", "Round 4", "Round 5", "Avg."],
            &table_rows
        )
    );
    println!(
        "Paper reference: Baseline 0.656, Noise-aware Training 0.668, QuCAD \
         0.793 average — QuCAD +13.7% / +12.52% over the competitors, and \
         visibly more stable across rounds."
    );
    println!(
        "measured gaps: QuCAD vs Baseline {:+.2}%, QuCAD vs Noise-aware {:+.2}%",
        100.0 * (means[2] - means[0]),
        100.0 * (means[2] - means[1]),
    );
}

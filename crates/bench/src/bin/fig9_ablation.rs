//! Regenerates **Fig. 9**: the ablation study on 8 representative online
//! days — (a) QuCAD vs. the practical upper bound (noise-aware compression
//! every day) and noise-aware training every day; (b) noise-aware vs.
//! noise-agnostic compression with an identical compression budget.
//!
//! Run: `cargo run --release -p qucad-bench --bin fig9_ablation`

use calibration::stats::mean;
use qnn::executor::NoisyExecutor;
use qnn::train::{evaluate, train_spsa_masked, Env, SpsaConfig};
use qucad::admm::{compress, AdmmConfig};
use qucad::framework::Qucad;
use qucad::mask::SelectionRule;
use qucad::report::{render_table, to_csv};
use qucad_bench::{banner, Experiment, Scale, Task};

fn main() {
    let scale = Scale::from_env_or_args();
    banner("Fig. 9: ablations on 8 representative days", scale);

    let exp = Experiment::prepare(Task::Mnist4, scale, 42);
    let online = exp.history.online();
    let days: Vec<usize> = (0..8).map(|i| i * online.len() / 8).collect();
    let exec = NoisyExecutor::new(&exp.model, &exp.topology, exp.noise);
    let eval_subset: Vec<qnn::data::Sample> = exp
        .dataset
        .test
        .iter()
        .take(exp.qucad_config.eval_samples)
        .cloned()
        .collect();
    let eval_on = |w: &[f64], d: usize| -> f64 {
        let env = Env::Noisy {
            exec: &exec,
            snapshot: &online[d],
        };
        evaluate(&exp.model, env, &eval_subset, w)
    };

    // --- (a) QuCAD vs compression-everyday (upper bound) vs NAT-everyday.
    eprintln!("[fig9] building QuCAD offline repository ...");
    let (mut qucad, _) = Qucad::build_offline(
        &exp.model,
        &exp.topology,
        exp.noise,
        exp.history.offline(),
        &exp.dataset.train,
        &exp.dataset.test,
        &exp.base_weights,
        &exp.qucad_config,
    );

    let mut rows_a: Vec<Vec<String>> = Vec::new();
    let mut qucad_acc = Vec::new();
    let mut ub_acc = Vec::new();
    let mut nat_acc = Vec::new();
    let all_trainable = vec![true; exp.model.n_weights()];
    for &d in &days {
        eprintln!("[fig9] (a) day {} ...", online[d].day);
        let (wq, _, _) = qucad.online_day(&online[d]);
        // Practical upper bound: fresh noise-aware compression for the day.
        let ub = compress(
            &exp.model,
            &exec,
            &exp.dataset.train,
            &online[d],
            &exp.qucad_config.table,
            &exp.qucad_config.admm,
            &exp.base_weights,
        );
        // NAT everyday from the base.
        let env = Env::Noisy {
            exec: &exec,
            snapshot: &online[d],
        };
        let nat = train_spsa_masked(
            &exp.model,
            &exp.dataset.train,
            env,
            &SpsaConfig {
                seed: 77 + d as u64,
                ..exp.nat_config
            },
            &exp.base_weights,
            &all_trainable,
        );
        let (aq, au, an) = (
            eval_on(&wq, d),
            eval_on(&ub.weights, d),
            eval_on(&nat.weights, d),
        );
        qucad_acc.push(aq);
        ub_acc.push(au);
        nat_acc.push(an);
        rows_a.push(vec![
            online[d].day.to_string(),
            format!("{aq:.3}"),
            format!("{au:.3}"),
            format!("{an:.3}"),
        ]);
    }
    println!("(a) per-day accuracy (CSV):");
    println!(
        "{}",
        to_csv(
            &["day", "qucad", "compression_everyday", "nat_everyday"],
            &rows_a
        )
    );
    println!(
        "means: QuCAD {:.3} | compression-everyday (upper bound) {:.3} | \
         NAT-everyday {:.3}",
        mean(&qucad_acc),
        mean(&ub_acc),
        mean(&nat_acc)
    );
    println!(
        "expected shape: QuCAD tracks the per-day compression upper bound \
         closely and beats noise-aware training."
    );
    println!();

    // --- (b) noise-aware vs noise-agnostic compression, same budget.
    let mut rows_b: Vec<Vec<String>> = Vec::new();
    let mut aware_acc = Vec::new();
    let mut agnostic_acc = Vec::new();
    for &d in &days {
        eprintln!("[fig9] (b) day {} ...", online[d].day);
        let budget = SelectionRule::TopFraction(0.4);
        let mk = |noise_aware: bool| AdmmConfig {
            noise_aware,
            rule: budget,
            ..exp.qucad_config.admm
        };
        let aware = compress(
            &exp.model,
            &exec,
            &exp.dataset.train,
            &online[d],
            &exp.qucad_config.table,
            &mk(true),
            &exp.base_weights,
        );
        let agnostic = compress(
            &exp.model,
            &exec,
            &exp.dataset.train,
            &online[d],
            &exp.qucad_config.table,
            &mk(false),
            &exp.base_weights,
        );
        let (aa, ag) = (eval_on(&aware.weights, d), eval_on(&agnostic.weights, d));
        aware_acc.push(aa);
        agnostic_acc.push(ag);
        rows_b.push(vec![
            online[d].day.to_string(),
            format!("{aa:.3}"),
            format!("{ag:.3}"),
        ]);
    }
    println!("(b) noise-aware vs noise-agnostic compression:");
    println!(
        "{}",
        render_table(&["day", "noise-aware", "noise-agnostic"], &rows_b)
    );
    println!(
        "means: noise-aware {:.3} | noise-agnostic {:.3}",
        mean(&aware_acc),
        mean(&agnostic_acc)
    );
    println!(
        "expected shape: noise-aware wins on most days; ties happen on calm \
         or homogeneous-noise days (the paper sees ties on 2 of 8 days)."
    );
}

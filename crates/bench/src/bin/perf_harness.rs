//! Performance harness for the hot evaluation path, wired into CI as a
//! regression gate.
//!
//! Times the `Scale::Quick` Table I evaluation path (per-day accuracy of
//! the base model over the online phase, plus per-sample noisy `z_scores`
//! micro sections), the trajectory backend in both execution shapes
//! (per-trajectory vs batched panel, on the 16-qubit `fig10_guadalupe`
//! scenario circuit), and the compile-once/rebind-many transpile split,
//! and writes a machine-readable `BENCH_<rev>.json`. With
//! `--check-against=bench/baseline.json` it compares probe-normalised
//! section costs against the committed baseline and exits non-zero when a
//! gated section regressed by more than `--max-regression` (default 25%).
//! The panel and rebind sections are gated, so the regression gate covers
//! the batched trajectory path and the program-cache rebind path alongside
//! the fused density path.
//!
//! Gated sections run single-threaded so the gate measures kernel speed,
//! not runner core count; a thread-fanned section is recorded ungated for
//! information. The harness also verifies that batch evaluation is
//! bit-identical at 1/4/16 threads and fails hard if it is not.
//!
//! Run: `cargo run --release -p qucad_bench --bin perf_harness -- \
//!       [--out-dir=DIR] [--rev=REV] [--check-against=PATH] \
//!       [--max-regression=0.25]`

use qnn::executor::{parallel, NoiseOptions, NoisyExecutor, SimBackend};
use qucad_bench::perf::{calibration_probe_ms, compare_reports, BenchReport};
use qucad_bench::{Experiment, Scale, Task};

use calibration::snapshot::CalibrationSnapshot;
use calibration::topology::Topology;
use qnn::model::VqcModel;
use quasim::trajectory::{
    auto_panel_width, auto_panel_width_is_clamped, estimate_prob_one, estimate_prob_one_panel,
    TrajectoryPanel, TrajectoryWorkspace,
};
use transpile::expand::ANGLE_TOL;
use transpile::route::route;
use transpile::template::CircuitTemplate;

fn arg_value(name: &str) -> Option<String> {
    let prefix = format!("--{name}=");
    std::env::args().find_map(|a| a.strip_prefix(&prefix).map(str::to_string))
}

fn resolve_rev() -> String {
    if let Some(rev) = arg_value("rev") {
        return rev;
    }
    for var in ["QUCAD_BENCH_REV", "GITHUB_SHA"] {
        // qucad-lint: allow(env-read) — audited entry point: CI revision stamp for perf baselines
        if let Ok(v) = std::env::var(var) {
            if !v.trim().is_empty() {
                return v.trim().chars().take(12).collect();
            }
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "local".to_string())
}

fn task_slug(task: Task) -> &'static str {
    match task {
        Task::Mnist4 => "mnist4",
        Task::Iris => "iris",
        Task::Seismic => "seismic",
    }
}

/// Asserts bit-identical batch evaluation across thread counts; the
/// parallel fan-out must never change the numbers the tables report.
fn verify_thread_invariance(exp: &Experiment) {
    let exec = NoisyExecutor::new(&exp.model, &exp.topology, exp.noise);
    let samples = &exp.dataset.test[..exp.dataset.test.len().min(8)];
    let snap = &exp.history.online()[0];
    let reference = parallel::batch_z_scores(&exec, samples, &exp.base_weights, snap, 0, 1);
    for threads in [4usize, 16] {
        let got = parallel::batch_z_scores(&exec, samples, &exp.base_weights, snap, 0, threads);
        for (i, (a, b)) in reference.iter().zip(got.iter()).enumerate() {
            for (j, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert!(
                    x.to_bits() == y.to_bits(),
                    "thread-invariance violation: sample {i} score {j} differs at \
                     {threads} threads ({x} vs {y})"
                );
            }
        }
    }
}

fn main() {
    let rev = resolve_rev();
    let out_dir = arg_value("out-dir").unwrap_or_else(|| ".".to_string());
    let max_regression: f64 = arg_value("max-regression").map_or(0.25, |v| {
        v.parse().expect("--max-regression must be a number")
    });
    let threads = parallel::worker_threads();

    eprintln!("[perf] measuring machine probe ...");
    let probe_ms = calibration_probe_ms();
    eprintln!("[perf] probe: {probe_ms:.1} ms");
    let mut report = BenchReport::new(&rev, threads, probe_ms);

    let mut experiments = Vec::new();
    for task in Task::table1() {
        let slug = task_slug(task);
        eprintln!("[perf] preparing {} ...", task.name());
        let exp = report.time(&format!("prepare_{slug}"), false, || {
            Experiment::prepare(task, Scale::Quick, 42)
        });
        experiments.push(exp);
    }

    for exp in &experiments {
        let slug = task_slug(exp.task);
        // Gated sections always measure the density engine: the committed
        // baseline is a density profile, so a QUCAD_BACKEND=trajectory
        // environment must not silently re-point the gate at the
        // stochastic engine (its cost scales with the trajectory budget).
        let exec = NoisyExecutor::new(
            &exp.model,
            &exp.topology,
            NoiseOptions {
                backend: SimBackend::Density,
                ..exp.noise
            },
        );
        let eval_subset =
            &exp.dataset.test[..exp.dataset.test.len().min(exp.qucad_config.eval_samples)];
        let days: Vec<_> = exp.history.online().iter().collect();

        // The Table I evaluation path: per-day accuracy of one weight
        // vector over the whole online phase. Single-threaded so the gate
        // tracks kernel speed, not core count.
        eprintln!("[perf] table1 eval ({slug}) ...");
        let series = report.time(&format!("table1_eval_{slug}"), true, || {
            parallel::accuracy_over_days(&exec, &days, eval_subset, &exp.base_weights, 1)
        });
        assert_eq!(series.len(), days.len());
        assert!(series.iter().all(|a| (0.0..=1.0).contains(a)));

        // Same path fanned over the configured worker count (ungated:
        // runner core counts vary).
        if threads > 1 {
            report.time(&format!("table1_eval_{slug}_{threads}thr"), false, || {
                parallel::accuracy_over_days(&exec, &days, eval_subset, &exp.base_weights, threads)
            });
        }

        // Micro: repeated single-sample noisy evaluation (the innermost
        // unit of every table/figure).
        let features = &exp.dataset.test[0].features;
        let snap = &exp.history.online()[0];
        report.time(&format!("noisy_z_scores_{slug}_x32"), true, || {
            for stream in 0..32u64 {
                std::hint::black_box(exec.z_scores_seeded(
                    features,
                    &exp.base_weights,
                    snap,
                    stream,
                ));
            }
        });

        // Same micro section on the Monte-Carlo trajectory backend, so the
        // two engines' throughput sits side by side in every report.
        // Ungated: the stochastic engine has no committed baseline yet and
        // its cost scales with the trajectory budget, not kernel speed
        // alone.
        let traj_exec = NoisyExecutor::new(
            &exp.model,
            &exp.topology,
            NoiseOptions {
                backend: SimBackend::Trajectory,
                trajectories: 64,
                ..exp.noise
            },
        );
        report.time(&format!("trajectory_z_scores_{slug}_64t_x8"), false, || {
            for stream in 0..8u64 {
                std::hint::black_box(traj_exec.z_scores_seeded(
                    features,
                    &exp.base_weights,
                    snap,
                    stream,
                ));
            }
        });
    }

    // Trajectory backend, both execution shapes, on the fig10_guadalupe
    // scenario circuit: a 16-qubit register the density engine cannot
    // touch. The panel section is gated (it is the production trajectory
    // path); the per-trajectory section documents the amortisation win and
    // its estimate must match the panel's bit for bit.
    eprintln!("[perf] guadalupe trajectory sections ...");
    {
        let topo = Topology::ibm_guadalupe();
        let model = VqcModel::paper_model(topo.n_qubits(), 4, 16, 1);
        let exec = NoisyExecutor::new(
            &model,
            &topo,
            NoiseOptions {
                scale: 3.0,
                backend: SimBackend::Trajectory,
                trajectories: 32,
                ..NoiseOptions::with_shots(1024, 42)
            },
        );
        let snap = CalibrationSnapshot::uniform(&topo, 0, 2e-4, 1e-2, 0.02);
        let features: Vec<f64> = (0..16).map(|i| 0.1 * i as f64).collect();
        let weights = model.init_weights(42);
        let (measured, program) = exec.compile_program(&features, &weights, &snap);
        let n_traj = 32u32;
        let width = auto_panel_width(program.n_qubits());
        if auto_panel_width_is_clamped(program.n_qubits()) {
            eprintln!(
                "[perf] note: panel width clamped to {width} columns at {} qubits — the \
                 cache budget would prefer fewer, but SIMD lane fill keeps a floor",
                program.n_qubits()
            );
        }

        let mut ws = TrajectoryWorkspace::new();
        let per_traj = report.time("trajectory_pertraj_guadalupe_32t", false, || {
            estimate_prob_one(&mut ws, &program, &measured, n_traj, 7)
        });
        let mut panel = TrajectoryPanel::new();
        let panel_est = report.time("trajectory_panel_guadalupe_32t", true, || {
            estimate_prob_one_panel(&mut panel, &program, &measured, n_traj, 7, width)
        });
        for (a, b) in per_traj.p_one.iter().zip(panel_est.p_one.iter()) {
            assert!(
                a.to_bits() == b.to_bits(),
                "panel estimate must be bit-identical to the per-trajectory engine"
            );
        }
        let wall = |name: &str| report.section(name).expect("timed above").wall_ms;
        println!(
            "guadalupe trajectory throughput: per-trajectory {:.1} ms, panel(B={width}) {:.1} ms \
             -> {:.2}x",
            wall("trajectory_pertraj_guadalupe_32t"),
            wall("trajectory_panel_guadalupe_32t"),
            wall("trajectory_pertraj_guadalupe_32t") / wall("trajectory_panel_guadalupe_32t")
        );
    }

    // Compile-once/rebind-many: the per-evaluation transpile cost the
    // program cache eliminates (full simplify → route → expand) versus the
    // residual rebind cost (expansion only). The rebind section is gated.
    eprintln!("[perf] rebind sections ...");
    {
        let model = VqcModel::paper_model(4, 4, 16, 2);
        let topo = Topology::ibm_belem();
        let full: Vec<f64> = (0..model.circuit().n_params())
            .map(|i| 0.2 + i as f64 * 0.07)
            .collect();
        report.time("transpile_from_scratch_mnist4_x256", false, || {
            for _ in 0..256 {
                let simplified = model.circuit().simplified(&full, ANGLE_TOL);
                let phys = route(&simplified, &topo, None);
                std::hint::black_box(transpile::expand::expand(&phys, &full));
            }
        });
        let template = CircuitTemplate::compile(model.circuit(), &topo, &full, ANGLE_TOL);
        report.time("transpile_rebind_mnist4_x256", true, || {
            for _ in 0..256 {
                std::hint::black_box(template.bind(&full));
            }
        });
    }

    // Training path: one epoch of batched noisy finite-difference training
    // on the 4-class MNIST model versus the retained sequential closure
    // reference. The batched section is gated (it is the production
    // training path, density + single-threaded like every gate); the
    // sequential section documents the win and its trained weights must
    // match the batched ones bit for bit.
    eprintln!("[perf] training step sections ...");
    {
        let exp = experiments
            .iter()
            .find(|e| matches!(e.task, Task::Mnist4))
            .expect("table1 includes mnist4");
        let train_subset = &exp.dataset.train[..exp.dataset.train.len().min(16)];
        let snap = &exp.history.online()[0];
        let cfg = qnn::train::TrainConfig {
            epochs: 1,
            batch_size: 8,
            lr: 0.08,
            seed: 5,
            grad_step: 1e-3,
        };
        let trainable = vec![true; exp.model.n_weights()];

        let exec = NoisyExecutor::new(
            &exp.model,
            &exp.topology,
            NoiseOptions {
                backend: SimBackend::Density,
                ..exp.noise
            },
        );
        let env = qnn::train::Env::Noisy {
            exec: &exec,
            snapshot: snap,
        };
        let batched = report.time("train_step_mnist4", true, || {
            qnn::train::train_masked_with_threads(
                &exp.model,
                train_subset,
                env,
                &cfg,
                &exp.base_weights,
                &trainable,
                1,
            )
        });
        let stats = exec.cache_stats();
        let lookups = (stats.hits + stats.misses).max(1);
        println!(
            "train-step program cache: {} hits / {} misses ({:.1}% hit rate)",
            stats.hits,
            stats.misses,
            100.0 * stats.hits as f64 / lookups as f64
        );

        let seq_exec = NoisyExecutor::new(
            &exp.model,
            &exp.topology,
            NoiseOptions {
                backend: SimBackend::Density,
                ..exp.noise
            },
        );
        let seq_env = qnn::train::Env::Noisy {
            exec: &seq_exec,
            snapshot: snap,
        };
        let sequential = report.time("train_step_mnist4_sequential", false, || {
            qnn::train::train_masked_sequential(
                &exp.model,
                train_subset,
                seq_env,
                &cfg,
                &exp.base_weights,
                &trainable,
            )
        });
        for (i, (a, b)) in batched
            .weights
            .iter()
            .zip(sequential.weights.iter())
            .enumerate()
        {
            assert!(
                a.to_bits() == b.to_bits(),
                "batched training diverged from the sequential reference at weight {i} \
                 ({a} vs {b})"
            );
        }
        {
            let wall = |name: &str| report.section(name).expect("timed above").wall_ms;
            println!(
                "train-step (noisy fd, {} evals): sequential {:.1} ms, batched {:.1} ms -> {:.2}x",
                batched.n_evals,
                wall("train_step_mnist4_sequential"),
                wall("train_step_mnist4"),
                wall("train_step_mnist4_sequential") / wall("train_step_mnist4")
            );
        }

        // The same step in the pure environment: the prefix-sharing probe
        // engine versus full per-probe state-vector reruns (ungated — the
        // pure path has no committed baseline section yet).
        let pure_batched = report.time("train_step_mnist4_pure", false, || {
            qnn::train::train_masked_with_threads(
                &exp.model,
                train_subset,
                qnn::train::Env::Pure,
                &cfg,
                &exp.base_weights,
                &trainable,
                1,
            )
        });
        let pure_sequential = report.time("train_step_mnist4_pure_sequential", false, || {
            qnn::train::train_masked_sequential(
                &exp.model,
                train_subset,
                qnn::train::Env::Pure,
                &cfg,
                &exp.base_weights,
                &trainable,
            )
        });
        assert_eq!(
            pure_batched.weights, pure_sequential.weights,
            "pure batched training diverged from the sequential reference"
        );
        let wall = |name: &str| report.section(name).expect("timed above").wall_ms;
        println!(
            "train-step (pure fd): sequential {:.1} ms, batched {:.1} ms -> {:.2}x",
            wall("train_step_mnist4_pure_sequential"),
            wall("train_step_mnist4_pure"),
            wall("train_step_mnist4_pure_sequential") / wall("train_step_mnist4_pure")
        );
    }

    // Serving path: an in-process qucad-serve instance driven by four
    // pipelined clients over three circuit structures and two days. The
    // sustained section is gated (it covers the queue/batcher, the wire
    // codec, and the shared-cache batched execution end to end); the
    // spot-check below re-asserts the served-bits-equal-direct-bits
    // contract inside the harness.
    eprintln!("[perf] serve sections ...");
    {
        use qucad_serve::client::ServeClient;
        use qucad_serve::codec::{Request, Response};
        use qucad_serve::scenario::ServeScenario;
        use qucad_serve::server::{serve, ServerConfig};

        let mut scenario = ServeScenario::build("belem", 2, 42);
        // Gated sections always measure the density engine (see above).
        scenario.options.backend = SimBackend::Density;
        let local = scenario.clone();
        let handle = serve(
            scenario,
            ServerConfig {
                port: 0,
                workers: 2,
                max_batch: 16,
                queue_depth: 256,
            },
        )
        .expect("bind in-process qucad-serve");
        let addr = handle.addr();

        const CLIENTS: u64 = 4;
        const REQUESTS: u64 = 64;
        let eval_request = |client: u64, i: u64| {
            let palette = (i % 3) as usize;
            Request::Eval {
                request_id: client * 1000 + i,
                client_id: client,
                day: ((client + i) % 2) as u32,
                stream: 7919 * client + i,
                features: vec![0.3 + 0.1 * client as f64, 0.8, 1.4, 2.1],
                weights: (0..local.model.n_weights())
                    .map(|j| if j < 3 * palette { 0.0 } else { 0.9 })
                    .collect(),
            }
        };

        report.time("serve_sustained_belem_4c_x64", true, || {
            std::thread::scope(|scope| {
                for client_id in 0..CLIENTS {
                    scope.spawn(move || {
                        let mut client = ServeClient::connect(addr).expect("connect");
                        let reqs: Vec<Request> =
                            (0..REQUESTS).map(|i| eval_request(client_id, i)).collect();
                        let responses = client.eval_all(&reqs).expect("eval burst");
                        assert_eq!(responses.len(), reqs.len());
                        assert!(responses
                            .values()
                            .all(|r| matches!(r, Response::Scores { .. })));
                    });
                }
            });
        });

        // Spot-check the bit-identity contract on a fresh connection.
        let mut client = ServeClient::connect(addr).expect("connect spot-check");
        let direct = local.executor(qnn::executor::ProgramCacheHandle::new());
        for i in 0..8u64 {
            let req = eval_request(9, i);
            let Request::Eval {
                day,
                stream,
                ref features,
                ref weights,
                ..
            } = req
            else {
                unreachable!()
            };
            let want =
                direct.z_scores_seeded(features, weights, &local.snapshots[day as usize], stream);
            match client.call(&req).expect("spot-check call") {
                Response::Scores { z, .. } => {
                    for (a, b) in z.iter().zip(want.iter()) {
                        assert!(
                            a.to_bits() == b.to_bits(),
                            "served z-score diverged from the direct path ({a} vs {b})"
                        );
                    }
                }
                other => panic!("spot-check: unexpected {other:?}"),
            }
        }
        let stats = client.stats(u64::MAX).expect("stats");
        client.shutdown(u64::MAX - 1).expect("shutdown ack");
        handle.join();
        let wall = report
            .section("serve_sustained_belem_4c_x64")
            .expect("timed above")
            .wall_ms;
        println!(
            "serve throughput: {} requests in {wall:.1} ms -> {:.0} req/s; {} batches \
             ({} cross-client, peak {}), cache {} hits / {} misses",
            CLIENTS * REQUESTS,
            (CLIENTS * REQUESTS) as f64 / (wall / 1e3),
            stats.batches,
            stats.cross_client_batches,
            stats.peak_batch,
            stats.cache_hits,
            stats.cache_misses
        );
    }

    eprintln!("[perf] verifying 1/4/16-thread bit-identity ...");
    report.time("thread_invariance_check", false, || {
        verify_thread_invariance(&experiments[2]);
    });

    // Human-readable summary.
    println!("perf_harness rev={rev} threads={threads} probe={probe_ms:.1}ms");
    for s in &report.sections {
        println!(
            "  {:<34} {:>10.1} ms  (norm {:>7.2}){}",
            s.name,
            s.wall_ms,
            report.normalized(s),
            if s.gated { "  [gated]" } else { "" }
        );
    }

    let path = format!("{}/BENCH_{}.json", out_dir.trim_end_matches('/'), rev);
    std::fs::create_dir_all(&out_dir).expect("create --out-dir");
    std::fs::write(&path, report.to_json()).expect("write report");
    println!("wrote {path}");

    if let Some(baseline_path) = arg_value("check-against") {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let baseline = BenchReport::from_json(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {baseline_path}: {e}"));
        let violations = compare_reports(&report, &baseline, max_regression);
        if violations.is_empty() {
            println!(
                "gate OK: no gated section regressed more than {:.0}% vs {} (rev {})",
                max_regression * 100.0,
                baseline_path,
                baseline.rev
            );
        } else {
            eprintln!(
                "PERF REGRESSION vs {} (rev {}), tolerance {:.0}%:",
                baseline_path,
                baseline.rev,
                max_regression * 100.0
            );
            for v in &violations {
                eprintln!(
                    "  {:<34} norm {:.2} vs baseline {:.2} (+{:.0}%)",
                    v.name,
                    v.current_norm,
                    v.baseline_norm,
                    v.ratio * 100.0
                );
            }
            std::process::exit(1);
        }
    }
}

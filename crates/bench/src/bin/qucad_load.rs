//! `qucad_load`: load generator and bit-identity verifier for a running
//! `qucad-serve` instance.
//!
//! Drives the server with several concurrent pipelined clients over a
//! deterministic workload (a palette of circuit structures spread across
//! calibration days), measures sustained requests/sec, and — with
//! `--verify` — rebuilds the server's scenario locally and checks every
//! served z-score against a direct in-process
//! [`qnn::executor::NoisyExecutor::z_scores_seeded`] call, bit for bit.
//! `--device`/`--days`/`--seed` must therefore match the server's flags,
//! and both processes must agree on `QUCAD_BACKEND`/`QUCAD_TRAJ_BATCH`.
//!
//! Run: `cargo run --release -p qucad_bench --bin qucad_load -- \
//!       --addr=127.0.0.1:7877 | --port-file=PATH \
//!       [--device=belem] [--days=8] [--seed=7] [--clients=4] \
//!       [--requests=64] [--verify] [--shutdown]`

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qnn::executor::ProgramCacheHandle;
use qucad_serve::client::ServeClient;
use qucad_serve::codec::{Request, Response};
use qucad_serve::scenario::ServeScenario;

fn arg_value(name: &str) -> Option<String> {
    let prefix = format!("--{name}=");
    std::env::args().find_map(|a| a.strip_prefix(&prefix).map(str::to_string))
}

fn arg_flag(name: &str) -> bool {
    let flag = format!("--{name}");
    std::env::args().any(|a| a == flag)
}

fn parse_num<T: std::str::FromStr>(name: &str, raw: &str) -> T {
    raw.parse()
        .unwrap_or_else(|_| panic!("--{name} must be a number, got '{raw}'"))
}

/// Resolves the server address: `--addr` directly, or `--port-file` by
/// polling for the file `qucad-serve --port-file` publishes (the CI
/// handshake — the server writes it only once it is listening).
fn resolve_addr() -> SocketAddr {
    if let Some(addr) = arg_value("addr") {
        return addr
            .parse()
            .unwrap_or_else(|_| panic!("--addr must be ip:port, got '{addr}'"));
    }
    let path = arg_value("port-file").expect("pass --addr=ip:port or --port-file=PATH");
    for _ in 0..3000 {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(addr) = text.trim().parse() {
                return addr;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("no server address appeared in {path} within 30s");
}

/// The deterministic request a client derives from its id and sequence
/// number: three weight structures spread over every calibration day.
fn request_for(scenario: &ServeScenario, client: u64, i: u64) -> Request {
    let n_days = scenario.snapshots.len() as u64;
    let palette = (i % 3) as usize;
    let weights: Vec<f64> = (0..scenario.model.n_weights())
        .map(|j| if j < 3 * palette { 0.0 } else { 0.9 })
        .collect();
    Request::Eval {
        request_id: client * 1_000_000 + i,
        client_id: client,
        day: ((client + i) % n_days) as u32,
        stream: 7919 * client + i,
        features: vec![0.3 + 0.1 * client as f64, 0.8, 1.4, 2.1],
        weights,
    }
}

fn main() {
    let addr = resolve_addr();
    let device = arg_value("device").unwrap_or_else(|| "belem".to_string());
    let days: usize = arg_value("days").map_or(8, |v| parse_num("days", &v));
    let seed: u64 = arg_value("seed").map_or(7, |v| parse_num("seed", &v));
    let clients: u64 = arg_value("clients").map_or(4, |v| parse_num("clients", &v));
    let requests: u64 = arg_value("requests").map_or(64, |v| parse_num("requests", &v));
    let verify = arg_flag("verify");
    let shutdown = arg_flag("shutdown");

    // The same recipe the server was started with; --verify checks the
    // served bits against this local reconstruction.
    let scenario = Arc::new(ServeScenario::build(&device, days, seed));

    println!(
        "qucad_load: driving {addr} with {clients} clients x {requests} requests \
         (device={device}, days={days}, seed={seed}, verify={verify})"
    );

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for client_id in 0..clients {
            let scenario = Arc::clone(&scenario);
            joins.push(scope.spawn(move || {
                let mut client =
                    ServeClient::connect(addr).unwrap_or_else(|e| panic!("connect {addr}: {e}"));
                let reqs: Vec<Request> = (0..requests)
                    .map(|i| request_for(&scenario, client_id, i))
                    .collect();
                let responses = client.eval_all(&reqs).expect("eval burst");
                assert_eq!(
                    responses.len(),
                    reqs.len(),
                    "client {client_id}: lost responses"
                );

                if !verify {
                    for (id, resp) in &responses {
                        assert!(
                            matches!(resp, Response::Scores { .. }),
                            "request {id}: unexpected {resp:?}"
                        );
                    }
                    return;
                }
                let direct = scenario.executor(ProgramCacheHandle::new());
                for req in &reqs {
                    let Request::Eval {
                        request_id,
                        day,
                        stream,
                        features,
                        weights,
                        ..
                    } = req
                    else {
                        unreachable!()
                    };
                    let want = direct.z_scores_seeded(
                        features,
                        weights,
                        &scenario.snapshots[*day as usize],
                        *stream,
                    );
                    match responses.get(request_id) {
                        Some(Response::Scores { z, .. }) => {
                            assert_eq!(z.len(), want.len(), "request {request_id}: arity");
                            for (a, b) in z.iter().zip(want.iter()) {
                                assert!(
                                    a.to_bits() == b.to_bits(),
                                    "BIT-IDENTITY VIOLATION request {request_id}: \
                                     served {a} != direct {b}"
                                );
                            }
                        }
                        other => panic!("request {request_id}: unexpected {other:?}"),
                    }
                }
            }));
        }
        for j in joins {
            j.join().expect("client thread");
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let total = clients * requests;

    let mut control = ServeClient::connect(addr).expect("connect control client");
    let stats = control.stats(u64::MAX).expect("stats");
    let lookups = (stats.cache_hits + stats.cache_misses).max(1);
    println!(
        "sustained: {total} requests in {:.1} ms -> {:.0} req/s",
        wall * 1e3,
        total as f64 / wall
    );
    println!(
        "server: {} requests, {} batches ({} cross-client, peak {}), \
         program cache {} hits / {} misses ({:.1}% hit rate)",
        stats.requests,
        stats.batches,
        stats.cross_client_batches,
        stats.peak_batch,
        stats.cache_hits,
        stats.cache_misses,
        100.0 * stats.cache_hits as f64 / lookups as f64
    );
    if verify {
        println!("verify OK: all {total} responses bit-identical to the direct path");
    }
    if shutdown {
        control.shutdown(u64::MAX - 1).expect("shutdown ack");
        println!("server acknowledged shutdown");
    }
}

//! Regenerates **Table I**: performance comparison of 6 methods on 3
//! datasets over the online phase with fluctuating noise.
//!
//! Paper columns: mean accuracy, gain vs. baseline, variance, and days with
//! accuracy over 0.8 / 0.7 / 0.5.
//!
//! Run: `cargo run --release -p qucad-bench --bin table1_main [--scale=paper]`

use qucad::framework::Method;
use qucad::report::{pct, pct_delta, render_table, SeriesSummary};
use qucad_bench::{banner, Experiment, Scale, Task};

fn main() {
    let scale = Scale::from_env_or_args();
    banner("Table I: method comparison under fluctuating noise", scale);

    let headers = [
        "Dataset",
        "Method",
        "Mean Accuracy",
        "vs. Baseline",
        "Variance",
        "Days>0.8",
        "Days>0.7",
        "Days>0.5",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();

    for task in Task::table1() {
        eprintln!("[table1] preparing {} ...", task.name());
        let exp = Experiment::prepare(task, scale, 42);
        let mut baseline_mean = 0.0;
        for method in Method::table1() {
            eprintln!("[table1]   running {} ...", method.name());
            let t0 = std::time::Instant::now();
            let run = exp.run(method);
            let summary = SeriesSummary::from_series(&run.accuracies());
            if method == Method::Baseline {
                baseline_mean = summary.mean_accuracy;
            }
            rows.push(vec![
                task.name().to_string(),
                method.name().to_string(),
                pct(summary.mean_accuracy),
                pct_delta(summary.mean_accuracy - baseline_mean),
                format!("{:.3}", summary.variance),
                summary.days_over_80.to_string(),
                summary.days_over_70.to_string(),
                summary.days_over_50.to_string(),
            ]);
            eprintln!(
                "[table1]     mean={} online_evals={} setup_evals={} ({:.1?})",
                pct(summary.mean_accuracy),
                run.online_evals(),
                run.setup_evals,
                t0.elapsed()
            );
        }
    }

    println!("{}", render_table(&headers, &rows));
    println!(
        "Paper reference (146 days, real belem calibrations): QuCAD gains \
         +16.32% / +38.88% / +15.36% over Baseline on MNIST / Iris / Seismic;\n\
         expected shape: Qucad > QuCAD w/o offline > One-time Compression > \
         Noise-aware variants ≈ Baseline, with QuCAD's variance lowest."
    );
}

//! Regenerates **Table II**: comparison of the proposed performance-aware
//! weighted-L1 k-medians against standard L2 k-means (K = 6).
//!
//! Columns: mean accuracy of the models compressed at the cluster
//! centroids, evaluated (1) at the centroid calibrations ("Mean Acc. of
//! Clusters") and (2) across every offline sample matched to its centroid's
//! model ("Mean Acc. of Samples").
//!
//! Run: `cargo run --release -p qucad-bench --bin table2_cluster`

use calibration::snapshot::CalibrationSnapshot;
use calibration::stats::mean;
use qnn::executor::NoisyExecutor;
use qnn::train::{evaluate, Env};
use qucad::admm::compress;
use qucad::cluster::{kmeans_l2, kmedians_weighted_l1, performance_weights, Clustering};
use qucad::report::{pct, render_table};
use qucad_bench::{banner, Experiment, Scale, Task};

fn main() {
    let scale = Scale::from_env_or_args();
    banner("Table II: clustering metric comparison (K=6)", scale);

    let exp = Experiment::prepare(Task::Mnist4, scale, 42);
    let exec = NoisyExecutor::new(&exp.model, &exp.topology, exp.noise);
    let eval_subset: Vec<qnn::data::Sample> = exp
        .dataset
        .test
        .iter()
        .take(exp.qucad_config.eval_samples)
        .cloned()
        .collect();

    // Offline profiling: base-model accuracy per offline day.
    let stride = (exp.history.offline().len() / exp.qucad_config.max_offline_evals.max(1)).max(1);
    let sampled: Vec<&CalibrationSnapshot> = exp.history.offline().iter().step_by(stride).collect();
    eprintln!("[table2] profiling {} offline days ...", sampled.len());
    let features: Vec<Vec<f64>> = sampled.iter().map(|s| s.feature_vector()).collect();
    let accs: Vec<f64> = sampled
        .iter()
        .map(|snap| {
            let env = Env::Noisy {
                exec: &exec,
                snapshot: snap,
            };
            evaluate(&exp.model, env, &eval_subset, &exp.base_weights)
        })
        .collect();

    let k = 6.min(features.len());
    let w = performance_weights(&features, &accs);
    let proposed = kmedians_weighted_l1(&features, &w, k, exp.qucad_config.seed, 60);
    let l2 = kmeans_l2(&features, k, exp.qucad_config.seed, 60);

    // For each clustering: compress one model per centroid, then score.
    let score = |name: &str, clustering: &Clustering| -> Vec<String> {
        eprintln!("[table2] compressing {} centroid models ...", name);
        let models: Vec<Vec<f64>> = clustering
            .centroids
            .iter()
            .map(|c| {
                let snap = CalibrationSnapshot::from_feature_vector(&exp.topology, 0, c);
                compress(
                    &exp.model,
                    &exec,
                    &exp.dataset.train,
                    &snap,
                    &exp.qucad_config.table,
                    &exp.qucad_config.admm,
                    &exp.base_weights,
                )
                .weights
            })
            .collect();
        // (1) Accuracy at the centroid calibrations.
        let centroid_acc: Vec<f64> = clustering
            .centroids
            .iter()
            .zip(models.iter())
            .map(|(c, m)| {
                let snap = CalibrationSnapshot::from_feature_vector(&exp.topology, 0, c);
                let env = Env::Noisy {
                    exec: &exec,
                    snapshot: &snap,
                };
                evaluate(&exp.model, env, &eval_subset, m)
            })
            .collect();
        // (2) Accuracy of each sample under its cluster's model.
        let sample_acc: Vec<f64> = sampled
            .iter()
            .enumerate()
            .map(|(i, snap)| {
                let g = clustering.assignment[i];
                let env = Env::Noisy {
                    exec: &exec,
                    snapshot: snap,
                };
                evaluate(&exp.model, env, &eval_subset, &models[g])
            })
            .collect();
        vec![
            name.to_string(),
            k.to_string(),
            pct(mean(&centroid_acc)),
            pct(mean(&sample_acc)),
        ]
    };

    let rows = vec![
        score("K-Means with L2", &l2),
        score("Proposed K-Means with dist_w_L1", &proposed),
    ];
    println!(
        "{}",
        render_table(
            &[
                "Method",
                "K",
                "Mean Acc. of Clusters",
                "Mean Acc. of Samples"
            ],
            &rows
        )
    );
    println!(
        "Paper reference: 72.94% / 78.45% (L2) vs 75.83% / 80.68% (proposed) — \
         the weighted metric should win both columns by a few points."
    );
}

//! **Static-verification sweep**: runs the Level-1 IR verifier
//! ([`quasim::verify_program`]) over the compiled programs of every
//! scenario binary's configuration — release-mode, so the `debug_assert!`
//! wiring at the compile/bind boundaries is *not* relied on — and then
//! proves the verifier's teeth by replaying the seeded mutation catalogue
//! ([`quasim::verify::mutate`]) against those same real programs: every
//! corruption class must be rejected.
//!
//! The fleet mirrors the scenario binaries at `Scale::Quick`:
//!
//! - Table I / fig1 / fig2 / fig3 / fig4 / fig7 / fig9 / ablations:
//!   `ibm_belem` × {MNIST-4, Iris, Seismic} with trained base weights;
//! - fig8: `ibm_jakarta` × Seismic;
//! - fig10: the untrained 16-qubit `ibm_guadalupe` model
//!   (trajectory-only — wider than the density cap).
//!
//! For each entry, programs are compiled across calibration days (first,
//! middle, and last offline day plus first and last online day) × test
//! samples × both backends where the register fits, exactly through the
//! pipeline the binaries use (`NoisyExecutor::compile_program`, program
//! cache warm and cold). Exit status is non-zero on any acceptance or
//! rejection failure, so CI can gate on it.
//!
//! Run: `cargo run --release -p qucad_bench --bin verify_sweep`

use calibration::snapshot::CalibrationSnapshot;
use calibration::topology::Topology;
use qnn::data::Dataset;
use qnn::executor::{NoiseOptions, NoisyExecutor, SimBackend};
use qnn::model::VqcModel;
use quasim::density::MAX_DENSITY_QUBITS;
use quasim::fused::FusedProgram;
use quasim::trajectory::supergroup_plan;
use quasim::verify::mutate;
use quasim::{verify_program, verify_supergroup_plan};
use qucad_bench::{Experiment, Scale, Task};
use std::process::ExitCode;

/// One fleet entry: a scenario family's model, device, weights, features,
/// and calibration days.
struct Entry {
    name: String,
    topology: Topology,
    model: VqcModel,
    weights: Vec<f64>,
    features: Vec<Vec<f64>>,
    days: Vec<CalibrationSnapshot>,
}

/// First/middle/last picks of a day slice (deduplicated when short).
fn day_picks(days: &[CalibrationSnapshot]) -> Vec<CalibrationSnapshot> {
    let mut picks = Vec::new();
    let mut idx: Vec<usize> = vec![0, days.len() / 2, days.len().saturating_sub(1)];
    idx.dedup();
    for i in idx {
        if i < days.len() {
            picks.push(days[i].clone());
        }
    }
    picks
}

/// The scenario fleet at `Scale::Quick`, seed 42 (the seed every scenario
/// binary uses).
fn fleet() -> Vec<Entry> {
    let seed = 42u64;
    let mut entries = Vec::new();

    // Table I tasks on ibm_belem (table1_main, fig1, fig2, fig3, fig4,
    // fig7, fig9, ablation_sweeps) and the fig8 jakarta variant.
    let prepared = [
        (Task::Mnist4, Topology::ibm_belem()),
        (Task::Iris, Topology::ibm_belem()),
        (Task::Seismic, Topology::ibm_belem()),
        (Task::Seismic, Topology::ibm_jakarta()),
    ];
    for (task, topo) in prepared {
        let exp = Experiment::prepare_on(task, Scale::Quick, seed, topo);
        let mut days = day_picks(exp.history.offline());
        days.extend(day_picks(exp.history.online()));
        let features = exp
            .dataset
            .test
            .iter()
            .take(3)
            .map(|s| s.features.clone())
            .collect();
        entries.push(Entry {
            name: format!("{} on {}", exp.task.name(), exp.topology.name()),
            topology: exp.topology,
            model: exp.model,
            weights: exp.base_weights,
            features,
            days,
        });
    }

    // fig10_guadalupe: 16-qubit untrained model, trajectory-only.
    let topo = Topology::ibm_guadalupe();
    let model = VqcModel::paper_model(topo.n_qubits(), 4, 16, 1);
    let weights = model.init_weights(seed);
    let dataset = Dataset::mnist4(8, 4, seed);
    let history = calibration::history::FluctuatingHistory::generate(
        &topo,
        &calibration::history::HistoryConfig::guadalupe_like(3, seed),
        0,
    );
    entries.push(Entry {
        name: format!("16q VQC on {}", topo.name()),
        topology: topo,
        model,
        weights,
        features: dataset
            .test
            .iter()
            .take(2)
            .map(|s| s.features.clone())
            .collect(),
        days: day_picks(history.online()),
    });
    entries
}

/// Verifies every program one entry compiles; returns the programs (for
/// the mutation pass) or the number of failures.
fn sweep_entry(entry: &Entry, failures: &mut usize) -> Vec<FusedProgram> {
    let mut backends = vec![SimBackend::Trajectory];
    if entry.model.n_qubits() <= MAX_DENSITY_QUBITS {
        backends.push(SimBackend::Density);
    }
    let mut programs = Vec::new();
    let mut checked = 0usize;
    for backend in backends {
        let options = NoiseOptions {
            scale: 3.0,
            backend,
            ..NoiseOptions::with_shots(1024, 42)
        };
        let exec = NoisyExecutor::new(&entry.model, &entry.topology, options);
        for day in &entry.days {
            for features in &entry.features {
                let (measured, program) = exec.compile_program(features, &entry.weights, day);
                if let Err(e) = verify_program(&program) {
                    eprintln!("FAIL [{}] {} rejected: {e}", entry.name, backend.name());
                    *failures += 1;
                }
                let plan = supergroup_plan(&program);
                if let Err(e) = verify_supergroup_plan(&program, &plan) {
                    eprintln!(
                        "FAIL [{}] {} plan rejected: {e}",
                        entry.name,
                        backend.name()
                    );
                    *failures += 1;
                }
                if let Some(&q) = measured.iter().find(|&&q| q >= program.n_qubits()) {
                    eprintln!(
                        "FAIL [{}] {} measured qubit {q} outside the {}-qubit register",
                        entry.name,
                        backend.name(),
                        program.n_qubits()
                    );
                    *failures += 1;
                }
                checked += 1;
                programs.push(program);
            }
        }
    }
    println!("  {:<28} {checked} programs verified", entry.name);
    programs
}

/// Replays the mutation catalogue against real compiled programs: every
/// produced mutant must be rejected, and every corruption class must find
/// a site somewhere in the fleet.
fn mutation_pass(programs: &[FusedProgram], failures: &mut usize) {
    let mut mutants = 0usize;
    for &class in &mutate::ALL {
        let mut sites = 0usize;
        for (pi, program) in programs.iter().enumerate() {
            for seed in 0..3u64 {
                let Some(mutant) = mutate::corrupt(program, class, seed) else {
                    continue;
                };
                sites += 1;
                mutants += 1;
                if verify_program(&mutant).is_ok() {
                    eprintln!(
                        "FAIL mutation {class:?} (program {pi}, seed {seed}) \
                         survived verification"
                    );
                    *failures += 1;
                }
            }
        }
        if sites == 0 {
            eprintln!("FAIL mutation {class:?} found no site in any fleet program");
            *failures += 1;
        }
    }
    println!(
        "  mutation self-test: {mutants} mutants across {} classes, all rejected",
        mutate::ALL.len()
    );
}

fn main() -> ExitCode {
    println!("=== verify_sweep: static IR verification over the scenario fleet ===");
    let mut failures = 0usize;
    let mut all_programs = Vec::new();
    for entry in fleet() {
        all_programs.extend(sweep_entry(&entry, &mut failures));
    }

    // The mutation pass replays the catalogue on a spread of real
    // programs (every fifth, plus the last, to keep the release run
    // seconds-scale while covering each fleet entry's structure).
    let sample: Vec<FusedProgram> = all_programs
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 5 == 0 || *i + 1 == all_programs.len())
        .map(|(_, p)| p.clone())
        .collect();
    mutation_pass(&sample, &mut failures);

    if failures == 0 {
        println!(
            "verify_sweep: OK ({} programs accepted, every mutation class rejected)",
            all_programs.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("verify_sweep: {failures} failure(s)");
        ExitCode::FAILURE
    }
}

//! Shared experiment harness for the QuCAD reproduction.
//!
//! Each table/figure of the paper has a binary under `src/bin/` that builds
//! an [`Experiment`] at a chosen [`Scale`] and prints the corresponding
//! rows/series. The harness centralises: dataset construction, base-model
//! training, history generation, and the per-day evaluation loop, so the
//! binaries stay thin.
//!
//! Scales: `quick` (seconds, CI-friendly smoke), `standard` (minutes,
//! default — reproduces the paper's *shape* on a reduced day count), and
//! `paper` (full 243+146-day protocol). Select with the `QUCAD_SCALE`
//! environment variable or a `--scale=` CLI argument.

// No unsafe code belongs in this crate; the only sanctioned unsafe in the
// workspace is quasim's (future) SIMD kernel layer.
#![forbid(unsafe_code)]

pub mod perf;

use calibration::history::{FluctuatingHistory, HistoryConfig};
use calibration::topology::Topology;
use qnn::data::Dataset;
use qnn::executor::{NoiseOptions, SimBackend};
use qnn::model::VqcModel;
use qnn::train::{train, Env, SpsaConfig, TrainConfig};
use qucad::admm::AdmmConfig;
use qucad::framework::{run_method, Method, MethodRun, QucadConfig, RunContext};
use qucad::mask::SelectionRule;

/// Experiment size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale smoke run.
    Quick,
    /// Minutes-scale run reproducing the paper's shape (default).
    Standard,
    /// The paper's full protocol (243 offline + 146 online days).
    Paper,
}

impl Scale {
    /// Resolves the scale from `--scale=` args or `QUCAD_SCALE`, defaulting
    /// to [`Scale::Standard`].
    pub fn from_env_or_args() -> Scale {
        let from_str = |s: &str| match s.to_ascii_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "standard" => Some(Scale::Standard),
            "paper" => Some(Scale::Paper),
            _ => None,
        };
        for arg in std::env::args() {
            if let Some(v) = arg.strip_prefix("--scale=") {
                if let Some(s) = from_str(v) {
                    return s;
                }
            }
        }
        // qucad-lint: allow(env-read) — audited entry point: experiment scale selection
        std::env::var("QUCAD_SCALE")
            .ok()
            .and_then(|v| from_str(&v))
            .unwrap_or(Scale::Standard)
    }

    /// Number of offline / online days for this scale.
    pub fn days(&self) -> (usize, usize) {
        match self {
            Scale::Quick => (24, 12),
            Scale::Standard => (90, 60),
            Scale::Paper => (243, 146),
        }
    }
}

/// Which classification task to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// 4-class MNIST (synthetic stand-in), 16 features, 2 block repeats.
    Mnist4,
    /// Iris, 4 features, 3 block repeats.
    Iris,
    /// Seismic / earthquake detection, 4 features, 2 block repeats.
    Seismic,
}

impl Task {
    /// All Table I tasks in row order.
    pub fn table1() -> [Task; 3] {
        [Task::Mnist4, Task::Iris, Task::Seismic]
    }

    /// Table-ready task name.
    pub fn name(&self) -> &'static str {
        match self {
            Task::Mnist4 => "4-class MNIST",
            Task::Iris => "Iris",
            Task::Seismic => "Seismic Wave",
        }
    }

    /// Builds the dataset at a scale.
    pub fn dataset(&self, scale: Scale, seed: u64) -> Dataset {
        let (ntr, nte) = match scale {
            Scale::Quick => (32, 24),
            Scale::Standard => (96, 48),
            Scale::Paper => (256, 96),
        };
        match self {
            Task::Mnist4 => Dataset::mnist4(ntr, nte, seed),
            Task::Iris => Dataset::iris(seed),
            Task::Seismic => Dataset::seismic(ntr, nte, seed),
        }
    }

    /// Per-task mask threshold for the noise-aware priority rule.
    ///
    /// The paper treats the threshold as a pre-set hyper-parameter; deeper
    /// circuits tolerate (and profit from) more aggressive compression, so
    /// the 3-repeat Iris model uses a lower threshold than the 2-repeat
    /// models (selected on the offline phase only).
    pub fn admm_threshold(&self) -> f64 {
        match self {
            Task::Mnist4 => 0.05,
            Task::Iris => 0.01,
            Task::Seismic => 0.02,
        }
    }

    /// Builds the paper's model for this task.
    pub fn model(&self) -> VqcModel {
        match self {
            Task::Mnist4 => VqcModel::paper_model(4, 4, 16, 2),
            Task::Iris => VqcModel::paper_model(4, 3, 4, 3),
            Task::Seismic => VqcModel::paper_model(4, 2, 4, 2),
        }
    }
}

/// A fully prepared experiment: data, model, trained base weights, and the
/// calibration history.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// The task.
    pub task: Task,
    /// The scale preset.
    pub scale: Scale,
    /// Device topology.
    pub topology: Topology,
    /// Train/test data.
    pub dataset: Dataset,
    /// The QNN.
    pub model: VqcModel,
    /// Noise-free-trained base weights.
    pub base_weights: Vec<f64>,
    /// Calibration history with offline/online split.
    pub history: FluctuatingHistory,
    /// Noise mapping options.
    pub noise: NoiseOptions,
    /// Framework configuration at this scale.
    pub qucad_config: QucadConfig,
    /// Noise-aware (SPSA) training configuration for the \[12] baselines.
    pub nat_config: SpsaConfig,
}

impl Experiment {
    /// Prepares an experiment on `ibm_belem` (the Table I device).
    pub fn prepare(task: Task, scale: Scale, seed: u64) -> Experiment {
        Experiment::prepare_on(task, scale, seed, Topology::ibm_belem())
    }

    /// Prepares an experiment on an arbitrary topology (Fig. 8 uses
    /// `ibm_jakarta`; the `fig10_guadalupe` scenario uses the 16-qubit
    /// `ibm_guadalupe`, which only the trajectory backend can simulate).
    pub fn prepare_on(task: Task, scale: Scale, seed: u64, topology: Topology) -> Experiment {
        let dataset = task.dataset(scale, seed);
        let model = task.model();
        let (offline_days, online_days) = scale.days();
        let history_cfg = match topology.name() {
            "ibm_jakarta" => {
                HistoryConfig::jakarta_like(offline_days + online_days, seed ^ 0xACCE55)
            }
            "ibm_guadalupe" => {
                HistoryConfig::guadalupe_like(offline_days + online_days, seed ^ 0xACCE55)
            }
            _ => HistoryConfig::belem_like(offline_days + online_days, seed ^ 0xACCE55),
        };
        let history = FluctuatingHistory::generate(&topology, &history_cfg, offline_days);

        let base_cfg = TrainConfig {
            epochs: match scale {
                Scale::Quick => 4,
                Scale::Standard => 12,
                Scale::Paper => 25,
            },
            batch_size: 16,
            lr: 0.08,
            seed,
            grad_step: 1e-3,
        };
        let base_weights = train(
            &model,
            &dataset.train,
            Env::Pure,
            &base_cfg,
            &model.init_weights(seed),
        )
        .weights;

        let admm = match scale {
            Scale::Quick => AdmmConfig {
                rounds: 4,
                theta_steps: 2,
                batch_size: 8,
                finetune_pure_epochs: 1,
                finetune_steps: 15,
                ..AdmmConfig::default()
            },
            Scale::Standard => AdmmConfig {
                rounds: 6,
                theta_steps: 3,
                batch_size: 12,
                finetune_pure_epochs: 2,
                finetune_steps: 40,
                rule: SelectionRule::Threshold(0.05),
                ..AdmmConfig::default()
            },
            Scale::Paper => AdmmConfig {
                rounds: 10,
                theta_steps: 4,
                batch_size: 16,
                finetune_pure_epochs: 3,
                finetune_steps: 60,
                rule: SelectionRule::Threshold(0.05),
                ..AdmmConfig::default()
            },
        };
        let mut admm = admm;
        admm.rule = SelectionRule::Threshold(task.admm_threshold());
        let qucad_config = QucadConfig {
            k: 6,
            admm,
            eval_samples: match scale {
                Scale::Quick => 16,
                Scale::Standard => 40,
                Scale::Paper => 96,
            },
            max_offline_evals: match scale {
                Scale::Quick => 12,
                Scale::Standard => 48,
                Scale::Paper => 120,
            },
            seed,
            ..QucadConfig::default()
        };
        let nat_config = SpsaConfig {
            steps: match scale {
                Scale::Quick => 15,
                Scale::Standard => 40,
                Scale::Paper => 60,
            },
            batch_size: 12,
            lr: 0.10,
            perturbation: 0.12,
            seed,
        };

        Experiment {
            task,
            scale,
            topology,
            dataset,
            model,
            base_weights,
            history,
            noise: NoiseOptions {
                // Calibration gate-error rates map to depolarising strength
                // with a 3x factor: randomized-benchmarking error understates
                // the effective per-gate damage (coherent + crosstalk terms),
                // and this setting reproduces the paper's baseline collapse
                // regime (see DESIGN.md).
                scale: 3.0,
                // Honour the QUCAD_BACKEND switch for every harness binary
                // (density by default; trajectory unlocks wide devices).
                backend: SimBackend::from_env(),
                ..NoiseOptions::with_shots(1024, seed)
            },
            qucad_config,
            nat_config,
        }
    }

    /// The run context borrowed from this experiment.
    pub fn context(&self) -> RunContext<'_> {
        RunContext {
            model: &self.model,
            topology: &self.topology,
            noise: self.noise,
            offline: self.history.offline(),
            online: self.history.online(),
            train_set: &self.dataset.train,
            test_set: &self.dataset.test,
            base_weights: &self.base_weights,
            config: &self.qucad_config,
            nat_config: self.nat_config,
        }
    }

    /// Runs one method over the online phase.
    pub fn run(&self, method: Method) -> MethodRun {
        run_method(method, &self.context())
    }
}

/// Prints a figure/table banner with scale and backend information.
pub fn banner(title: &str, scale: Scale) {
    println!(
        "=== {title} (scale: {scale:?}, backend: {}) ===",
        SimBackend::from_env().name()
    );
    println!(
        "(select scale with --scale=quick|standard|paper or QUCAD_SCALE, \
         engine with QUCAD_BACKEND=density|trajectory; \
         paper = 243 offline + 146 online days)"
    );
    println!();
}

//! Machine-readable performance reports and the regression gate behind the
//! `perf_harness` binary and the CI `bench` job.
//!
//! A [`BenchReport`] records wall times of named sections plus a
//! machine-speed *probe* measured in the same process. The regression gate
//! compares **probe-normalised** ratios (`wall_ms / probe_ms`), so a report
//! captured on a fast workstation can gate a slower CI runner without
//! tripping on raw hardware differences. Reports serialise to a small JSON
//! dialect written and parsed here (the workspace is offline and vendors no
//! serde).

use std::fmt::Write as _;
use std::time::Instant;

/// One timed section of a harness run.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Stable section name (compared against the baseline by name).
    pub name: String,
    /// Wall time in milliseconds.
    pub wall_ms: f64,
    /// Whether the CI regression gate applies to this section.
    pub gated: bool,
}

/// A full harness report: metadata, the machine probe, and all sections.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Report schema version (bump on breaking format changes).
    pub schema: u32,
    /// Revision identifier (git SHA, or `"local"`).
    pub rev: String,
    /// Worker threads the run used.
    pub threads: usize,
    /// Machine-speed probe duration in milliseconds (see
    /// [`calibration_probe_ms`]).
    pub probe_ms: f64,
    /// Timed sections in execution order.
    pub sections: Vec<Section>,
}

impl BenchReport {
    /// Creates an empty report for `rev` on `threads` workers.
    pub fn new(rev: &str, threads: usize, probe_ms: f64) -> Self {
        BenchReport {
            schema: 1,
            rev: rev.to_string(),
            threads,
            probe_ms,
            sections: Vec::new(),
        }
    }

    /// Times `f`, records it as a section, and passes its value through.
    pub fn time<T>(&mut self, name: &str, gated: bool, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        self.sections.push(Section {
            name: name.to_string(),
            wall_ms,
            gated,
        });
        out
    }

    /// Looks up a section by name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Probe-normalised cost of a section (`wall_ms / probe_ms`).
    pub fn normalized(&self, s: &Section) -> f64 {
        s.wall_ms / self.probe_ms.max(1e-9)
    }

    /// Serialises the report to JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", self.schema);
        let _ = writeln!(out, "  \"rev\": {},", json_string(&self.rev));
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"probe_ms\": {:.3},", self.probe_ms);
        out.push_str("  \"sections\": [\n");
        for (i, s) in self.sections.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": {}, \"wall_ms\": {:.3}, \"gated\": {}}}",
                json_string(&s.name),
                s.wall_ms,
                s.gated
            );
            out.push_str(if i + 1 == self.sections.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report from JSON produced by [`BenchReport::to_json`] (or
    /// hand-edited equivalents).
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not valid JSON or required fields
    /// are missing / mistyped.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let obj = v.as_object().ok_or("top level must be an object")?;
        let num = |k: &str| -> Result<f64, String> {
            json::get(obj, k)
                .and_then(json::Value::as_number)
                .ok_or_else(|| format!("missing numeric field `{k}`"))
        };
        let rev = json::get(obj, "rev")
            .and_then(json::Value::as_string)
            .ok_or("missing string field `rev`")?
            .to_string();
        let mut sections = Vec::new();
        let raw = json::get(obj, "sections")
            .and_then(json::Value::as_array)
            .ok_or("missing array field `sections`")?;
        for item in raw {
            let s = item.as_object().ok_or("section must be an object")?;
            sections.push(Section {
                name: json::get(s, "name")
                    .and_then(json::Value::as_string)
                    .ok_or("section missing `name`")?
                    .to_string(),
                wall_ms: json::get(s, "wall_ms")
                    .and_then(json::Value::as_number)
                    .ok_or("section missing `wall_ms`")?,
                gated: json::get(s, "gated")
                    .and_then(json::Value::as_bool)
                    .unwrap_or(false),
            });
        }
        Ok(BenchReport {
            schema: num("schema")? as u32,
            rev,
            threads: num("threads")? as usize,
            probe_ms: num("probe_ms")?,
            sections,
        })
    }
}

/// One gate violation found by [`compare_reports`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Section that regressed.
    pub name: String,
    /// Probe-normalised cost in the current run.
    pub current_norm: f64,
    /// Probe-normalised cost in the baseline.
    pub baseline_norm: f64,
    /// `current_norm / baseline_norm - 1`.
    pub ratio: f64,
}

/// Compares gated sections of `current` against `baseline` on
/// probe-normalised cost; returns every section whose cost grew by more
/// than `max_regression` (e.g. `0.25` = 25%).
///
/// Sections present only on one side are ignored (renames should refresh
/// the baseline in the same PR).
pub fn compare_reports(
    current: &BenchReport,
    baseline: &BenchReport,
    max_regression: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for s in current.sections.iter().filter(|s| s.gated) {
        let Some(b) = baseline.section(&s.name).filter(|b| b.gated) else {
            continue;
        };
        let current_norm = current.normalized(s);
        let baseline_norm = baseline.normalized(b);
        if baseline_norm <= 0.0 {
            continue;
        }
        let ratio = current_norm / baseline_norm - 1.0;
        if ratio > max_regression {
            out.push(Regression {
                name: s.name.clone(),
                current_norm,
                baseline_norm,
                ratio,
            });
        }
    }
    out
}

/// Measures the machine-speed probe: a fixed, allocation-free integer +
/// float workload whose wall time scales with single-core speed. Used to
/// normalise section times across machines of different speed.
pub fn calibration_probe_ms() -> f64 {
    // Take the fastest of three runs to shed warm-up and scheduler noise.
    (0..3)
        .map(|_| {
            let t0 = Instant::now();
            let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
            let mut f = 1.000_000_1_f64;
            for i in 0..8_000_000u64 {
                acc = acc
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                    .rotate_left(17)
                    .wrapping_add(i);
                f = (f * 1.000_000_3).min(2.0) + (acc & 0xFF) as f64 * 1e-12;
            }
            std::hint::black_box((acc, f));
            t0.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal recursive-descent parser for the JSON subset the reports use
/// (objects, arrays, strings, numbers, booleans, null).
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// Object as ordered key/value pairs.
        Object(Vec<(String, Value)>),
        /// Array.
        Array(Vec<Value>),
        /// String.
        Str(String),
        /// Number (always f64).
        Num(f64),
        /// Boolean.
        Bool(bool),
        /// Null.
        Null,
    }

    impl Value {
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(o) => Some(o),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }
        pub fn as_string(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_number(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }
    }

    /// Looks up a key in an object.
    pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, *pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(_) => parse_number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", *pos))
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            expect(b, pos, b':')?;
            let val = parse_value(b, pos)?;
            out.push((key, val));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
            }
        }
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
            }
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {}", *pos));
        }
        *pos += 1;
        let mut out = String::new();
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                c => {
                    // Copy the full UTF-8 sequence starting at this byte.
                    let start = *pos;
                    let len = match c {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = b.get(start..start + len).ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    *pos += len;
                }
            }
        }
        Err("unterminated string".into())
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("abc123", 2, 50.0);
        r.sections.push(Section {
            name: "eval".into(),
            wall_ms: 100.0,
            gated: true,
        });
        r.sections.push(Section {
            name: "prepare".into(),
            wall_ms: 40.0,
            gated: false,
        });
        r
    }

    #[test]
    fn json_roundtrip_preserves_report() {
        let r = sample();
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.rev, r.rev);
        assert_eq!(parsed.threads, r.threads);
        assert_eq!(parsed.sections.len(), 2);
        assert_eq!(parsed.sections[0].name, "eval");
        assert!(parsed.sections[0].gated);
        assert!(!parsed.sections[1].gated);
        assert!((parsed.sections[0].wall_ms - 100.0).abs() < 1e-9);
        assert!((parsed.probe_ms - 50.0).abs() < 1e-9);
    }

    #[test]
    fn compare_flags_only_gated_regressions() {
        let baseline = sample();
        let mut current = sample();
        current.sections[0].wall_ms = 150.0; // gated: +50% > 25% → flagged
        current.sections[1].wall_ms = 400.0; // ungated: ignored
        let viol = compare_reports(&current, &baseline, 0.25);
        assert_eq!(viol.len(), 1);
        assert_eq!(viol[0].name, "eval");
        assert!((viol[0].ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn compare_normalises_by_probe_speed() {
        let baseline = sample();
        let mut current = sample();
        // Machine is 2x slower: probe and section both double → no flag.
        current.probe_ms = 100.0;
        current.sections[0].wall_ms = 220.0; // 2.2 norm vs 2.0 baseline: +10%
        assert!(compare_reports(&current, &baseline, 0.25).is_empty());
        // But a real 2x algorithmic regression on the same machine trips.
        current.probe_ms = 50.0;
        current.sections[0].wall_ms = 220.0;
        assert_eq!(compare_reports(&current, &baseline, 0.25).len(), 1);
    }

    #[test]
    fn missing_sections_are_ignored() {
        let baseline = sample();
        let mut current = sample();
        current.sections[0].name = "renamed".into();
        assert!(compare_reports(&current, &baseline, 0.25).is_empty());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(BenchReport::from_json("{not json").is_err());
        assert!(BenchReport::from_json("[1, 2]").is_err());
        assert!(BenchReport::from_json("{\"schema\": 1} trailing").is_err());
    }
}

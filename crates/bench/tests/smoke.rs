//! Not-ignored smoke test: one `Scale::Quick` experiment end-to-end through
//! the shared harness (dataset → base training → history → offline
//! repository → online per-day loop), asserting the accuracy series is
//! finite and in range.

use qucad::framework::Method;
use qucad_bench::{Experiment, Scale, Task};

#[test]
fn quick_experiment_end_to_end() {
    let exp = Experiment::prepare(Task::Seismic, Scale::Quick, 7);
    let (offline_days, online_days) = Scale::Quick.days();
    assert_eq!(exp.history.offline().len(), offline_days);
    assert_eq!(exp.history.online().len(), online_days);

    // Full QuCAD: exercises the offline constructor and every online-manager
    // decision path reachable at this scale.
    let run = exp.run(Method::Qucad);
    assert_eq!(run.records.len(), online_days);
    for r in &run.records {
        assert!(
            r.accuracy.is_finite() && (0.0..=1.0).contains(&r.accuracy),
            "day {}: accuracy {} out of range",
            r.day,
            r.accuracy
        );
    }

    // The baseline shares the same evaluation protocol and must also stay
    // in range.
    let base = exp.run(Method::Baseline);
    assert_eq!(base.records.len(), online_days);
    for r in &base.records {
        assert!(r.accuracy.is_finite() && (0.0..=1.0).contains(&r.accuracy));
    }
    assert_eq!(base.online_evals(), 0, "baseline must not train online");
}

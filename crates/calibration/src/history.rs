//! Synthetic fluctuating-noise calibration histories.
//!
//! **Substitution note (see DESIGN.md §4).** The paper pulls 13 months of
//! real `ibm_belem` calibrations. Those archives are not available here, so
//! this module generates a statistically faithful stand-in with exactly the
//! properties QuCAD exploits:
//!
//! 1. *Wide-range fluctuation* (Fig. 1 / Observation 1): every channel
//!    follows an Ornstein–Uhlenbeck process in log space, so error rates
//!    wander over roughly an order of magnitude.
//! 2. *Device-wide regime shifts* (Observation 3): a slowly mean-reverting
//!    device-level component takes occasional jumps (recalibration events),
//!    producing multi-week "good" and "bad" episodes that recur — which is
//!    what makes a model repository reusable.
//! 3. *Per-qubit heterogeneity* (Observation 2): channels carry independent
//!    static offsets and independent decaying spikes, so the identity of the
//!    noisiest edge changes over time.
//!
//! All randomness is seeded; a given `(topology, config)` pair always yields
//! the same history.

use crate::snapshot::CalibrationSnapshot;
use crate::stats::sample_normal;
use crate::topology::Topology;
use quasim::noise::ReadoutError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic history generator.
///
/// # Examples
///
/// ```
/// use calibration::history::HistoryConfig;
/// use calibration::topology::Topology;
///
/// let cfg = HistoryConfig::belem_like(30, 7);
/// let history = cfg.generate(&Topology::ibm_belem());
/// assert_eq!(history.len(), 30);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryConfig {
    /// Number of daily snapshots to generate.
    pub n_days: usize,
    /// RNG seed; identical seeds reproduce identical histories.
    pub seed: u64,
    /// Median single-qubit (Pauli-X) gate error.
    pub single_qubit_base: f64,
    /// Median CNOT error.
    pub cnot_base: f64,
    /// Median readout assignment error.
    pub readout_base: f64,
    /// Std-dev of per-channel static offsets in log space (qubit
    /// heterogeneity).
    pub channel_spread: f64,
    /// OU mean-reversion rate κ per day.
    pub ou_reversion: f64,
    /// OU innovation std-dev σ per day (log space).
    pub ou_volatility: f64,
    /// Daily probability of a device-wide regime jump (recalibration /
    /// drift event).
    pub regime_shift_prob: f64,
    /// Std-dev of regime jumps in log space.
    pub regime_shift_scale: f64,
    /// Mean-reversion rate of the device regime component.
    pub regime_reversion: f64,
    /// Daily probability that an individual channel starts a noise spike.
    pub spike_prob: f64,
    /// Log-space magnitude of channel spikes.
    pub spike_scale: f64,
    /// Per-day multiplicative decay of active spikes (0..1, smaller decays
    /// faster).
    pub spike_decay: f64,
}

impl HistoryConfig {
    /// A configuration mimicking the `ibm_belem` error ranges shown in the
    /// paper's Fig. 1 (X error ≈ 1.9e-4…3.7e-4 baseline with excursions,
    /// CNOT ≈ 7.4e-3…1.4e-2 baseline, readout up to ~0.15).
    pub fn belem_like(n_days: usize, seed: u64) -> Self {
        HistoryConfig {
            n_days,
            seed,
            single_qubit_base: 2.6e-4,
            cnot_base: 9.5e-3,
            readout_base: 2.5e-2,
            channel_spread: 0.35,
            ou_reversion: 0.12,
            ou_volatility: 0.10,
            regime_shift_prob: 0.035,
            regime_shift_scale: 0.65,
            regime_reversion: 0.05,
            spike_prob: 0.02,
            spike_scale: 1.3,
            spike_decay: 0.55,
        }
    }

    /// A configuration for the 7-qubit `ibm_jakarta`: quieter single-qubit
    /// gates but hotter two-qubit/readout channels and more frequent spikes
    /// (jakarta's larger connectivity graph exposes more routing paths to
    /// bad edges, and its 2022 calibration archives show harsher CNOT
    /// excursions than belem's).
    pub fn jakarta_like(n_days: usize, seed: u64) -> Self {
        HistoryConfig {
            single_qubit_base: 2.2e-4,
            cnot_base: 1.4e-2,
            readout_base: 3.5e-2,
            spike_prob: 0.03,
            regime_shift_scale: 0.8,
            ..HistoryConfig::belem_like(n_days, seed)
        }
    }

    /// A configuration for the 16-qubit `ibm_guadalupe` (Falcon r4P).
    /// Falcon-generation devices run cooler single-qubit gates than the
    /// small Canary-class chips but accumulate more CNOT/readout spread
    /// across their 16 channels, and the larger graph makes regime shifts
    /// slightly more frequent (more independent recalibration domains).
    pub fn guadalupe_like(n_days: usize, seed: u64) -> Self {
        HistoryConfig {
            single_qubit_base: 2.0e-4,
            cnot_base: 1.1e-2,
            readout_base: 2.0e-2,
            channel_spread: 0.45,
            regime_shift_prob: 0.045,
            spike_prob: 0.025,
            ..HistoryConfig::belem_like(n_days, seed)
        }
    }

    /// A calm configuration (little fluctuation) for tests and ablations.
    pub fn calm(n_days: usize, seed: u64) -> Self {
        HistoryConfig {
            ou_volatility: 0.01,
            regime_shift_prob: 0.0,
            spike_prob: 0.0,
            channel_spread: 0.05,
            ..HistoryConfig::belem_like(n_days, seed)
        }
    }

    /// Generates the daily snapshots for `topology`.
    ///
    /// # Panics
    ///
    /// Panics if `n_days == 0`.
    pub fn generate(&self, topology: &Topology) -> Vec<CalibrationSnapshot> {
        assert!(self.n_days > 0, "history needs at least one day");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let nq = topology.n_qubits();
        let ne = topology.n_edges();

        // Channel layout: [0, nq) single-qubit, [nq, nq+ne) CNOT,
        // [nq+ne, nq+ne+nq) readout.
        let n_channels = nq + ne + nq;
        let mut mu: Vec<f64> = Vec::with_capacity(n_channels);
        for i in 0..n_channels {
            let base = if i < nq {
                self.single_qubit_base
            } else if i < nq + ne {
                self.cnot_base
            } else {
                self.readout_base
            };
            mu.push(base.ln() + self.channel_spread * sample_normal(&mut rng));
        }

        let mut ou = vec![0.0f64; n_channels];
        let mut spike = vec![0.0f64; n_channels];
        let mut regime = 0.0f64;

        let mut out = Vec::with_capacity(self.n_days);
        for day in 0..self.n_days {
            // Device-wide regime component.
            regime += self.regime_reversion * (0.0 - regime);
            if rng.gen::<f64>() < self.regime_shift_prob {
                regime += self.regime_shift_scale * sample_normal(&mut rng);
            }
            // Per-channel OU + spikes.
            for i in 0..n_channels {
                ou[i] += self.ou_reversion * (0.0 - ou[i])
                    + self.ou_volatility * sample_normal(&mut rng);
                spike[i] *= self.spike_decay;
                if rng.gen::<f64>() < self.spike_prob {
                    spike[i] += self.spike_scale * (0.5 + sample_normal(&mut rng).abs());
                }
            }

            let rate = |i: usize, cap: f64| -> f64 {
                (mu[i] + ou[i] + regime + spike[i]).exp().clamp(1e-6, cap)
            };

            let single_qubit_error: Vec<f64> = (0..nq).map(|q| rate(q, 0.05)).collect();
            let cnot_error: Vec<f64> = (0..ne).map(|e| rate(nq + e, 0.45)).collect();
            let readout: Vec<ReadoutError> = (0..nq)
                .map(|q| {
                    let e = rate(nq + ne + q, 0.40);
                    // IBM readout is typically asymmetric: |1⟩ decays during
                    // measurement, so P(read 0|1) > P(read 1|0).
                    ReadoutError::new((0.8 * e).min(1.0), (1.2 * e).min(1.0))
                })
                .collect();

            out.push(CalibrationSnapshot {
                day,
                single_qubit_error,
                cnot_error,
                readout,
            });
        }
        out
    }
}

/// A generated history plus its split into offline/online phases, mirroring
/// the paper's protocol (243 offline days, 146 online days).
///
/// # Examples
///
/// ```
/// use calibration::history::{FluctuatingHistory, HistoryConfig};
/// use calibration::topology::Topology;
///
/// let topo = Topology::ibm_belem();
/// let h = FluctuatingHistory::generate(&topo, &HistoryConfig::belem_like(50, 1), 30);
/// assert_eq!(h.offline().len(), 30);
/// assert_eq!(h.online().len(), 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FluctuatingHistory {
    snapshots: Vec<CalibrationSnapshot>,
    offline_days: usize,
}

impl FluctuatingHistory {
    /// Generates a history and records the offline/online split point.
    ///
    /// # Panics
    ///
    /// Panics if `offline_days > config.n_days`.
    pub fn generate(topology: &Topology, config: &HistoryConfig, offline_days: usize) -> Self {
        assert!(
            offline_days <= config.n_days,
            "offline phase cannot exceed the history length"
        );
        FluctuatingHistory {
            snapshots: config.generate(topology),
            offline_days,
        }
    }

    /// Wraps pre-existing snapshots (useful for tests / real data import).
    ///
    /// # Panics
    ///
    /// Panics if `offline_days > snapshots.len()`.
    pub fn from_snapshots(snapshots: Vec<CalibrationSnapshot>, offline_days: usize) -> Self {
        assert!(
            offline_days <= snapshots.len(),
            "split exceeds history length"
        );
        FluctuatingHistory {
            snapshots,
            offline_days,
        }
    }

    /// All snapshots in day order.
    pub fn snapshots(&self) -> &[CalibrationSnapshot] {
        &self.snapshots
    }

    /// The offline (historical, `Dt`) phase.
    pub fn offline(&self) -> &[CalibrationSnapshot] {
        &self.snapshots[..self.offline_days]
    }

    /// The online (deployment, `Dc` stream) phase.
    pub fn online(&self) -> &[CalibrationSnapshot] {
        &self.snapshots[self.offline_days..]
    }

    /// Total number of days.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Time series of one feature dimension across all days (for Fig. 1
    /// style plots).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range for the snapshots' feature vectors.
    pub fn feature_series(&self, dim: usize) -> Vec<f64> {
        self.snapshots
            .iter()
            .map(|s| {
                let v = s.feature_vector();
                assert!(dim < v.len(), "feature dim out of range");
                v[dim]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, std_dev};

    #[test]
    fn deterministic_for_same_seed() {
        let topo = Topology::ibm_belem();
        let a = HistoryConfig::belem_like(40, 9).generate(&topo);
        let b = HistoryConfig::belem_like(40, 9).generate(&topo);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let topo = Topology::ibm_belem();
        let a = HistoryConfig::belem_like(40, 1).generate(&topo);
        let b = HistoryConfig::belem_like(40, 2).generate(&topo);
        assert_ne!(a, b);
    }

    #[test]
    fn rates_within_physical_bounds() {
        let topo = Topology::ibm_belem();
        for snap in HistoryConfig::belem_like(400, 3).generate(&topo) {
            for &e in &snap.single_qubit_error {
                assert!(e > 0.0 && e <= 0.05);
            }
            for &e in &snap.cnot_error {
                assert!(e > 0.0 && e <= 0.45);
            }
            for r in &snap.readout {
                assert!(r.p01 <= 0.40 && r.p10 <= 0.48 + 1e-12);
            }
        }
    }

    #[test]
    fn median_rates_near_configured_bases() {
        let topo = Topology::ibm_belem();
        let cfg = HistoryConfig::belem_like(400, 5);
        let hist = cfg.generate(&topo);
        let cnot_means: Vec<f64> = hist
            .iter()
            .map(super::super::snapshot::CalibrationSnapshot::mean_cnot_error)
            .collect();
        let m = mean(&cnot_means);
        // Within a factor ~3 of the base (log-normal with spikes skews up).
        assert!(
            m > cfg.cnot_base / 3.0 && m < cfg.cnot_base * 5.0,
            "mean {m}"
        );
    }

    #[test]
    fn noise_actually_fluctuates() {
        let topo = Topology::ibm_belem();
        let hist = FluctuatingHistory::generate(&topo, &HistoryConfig::belem_like(300, 11), 200);
        // CNOT error on the first edge varies by at least 2x across the year.
        let series = hist.feature_series(5);
        let lo = series.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = series.iter().copied().fold(0.0, f64::max);
        assert!(hi / lo > 2.0, "expected fluctuation, got {lo}..{hi}");
    }

    #[test]
    fn heterogeneity_worst_edge_changes_over_time() {
        let topo = Topology::ibm_belem();
        let hist = HistoryConfig::belem_like(365, 13).generate(&topo);
        let mut worst: Vec<usize> = hist
            .iter()
            .filter_map(|s| s.worst_cnot_edge().map(|(i, _)| i))
            .collect();
        worst.dedup();
        // Observation 2: the noisiest edge is not constant.
        assert!(worst.len() > 3, "worst edge never changed");
    }

    #[test]
    fn calm_config_is_nearly_flat() {
        let topo = Topology::ibm_belem();
        let hist = HistoryConfig::calm(120, 17).generate(&topo);
        let series: Vec<f64> = hist
            .iter()
            .map(super::super::snapshot::CalibrationSnapshot::mean_cnot_error)
            .collect();
        assert!(std_dev(&series) / mean(&series) < 0.15);
    }

    #[test]
    fn split_phases_partition_history() {
        let topo = Topology::ibm_jakarta();
        let h = FluctuatingHistory::generate(&topo, &HistoryConfig::jakarta_like(60, 2), 45);
        assert_eq!(h.offline().len() + h.online().len(), h.len());
        assert_eq!(h.online()[0].day, 45);
    }

    #[test]
    #[should_panic(expected = "offline phase")]
    fn split_beyond_length_rejected() {
        let topo = Topology::ibm_belem();
        let _ = FluctuatingHistory::generate(&topo, &HistoryConfig::belem_like(10, 0), 11);
    }
}

//! CSV import/export of calibration histories.
//!
//! The synthetic generator in [`crate::history`] stands in for real
//! calibration archives, but the framework works with *any* source of daily
//! snapshots. This module defines a simple CSV interchange format so users
//! with access to real backend calibrations (e.g. pulled via Qiskit) can
//! feed them in:
//!
//! ```csv
//! day,x_err[q0],…,cx_err[q0,q1],…,ro_p01[q0],ro_p10[q0],…
//! 0,0.000190,…,0.007438,…,0.013,0.019,…
//! ```
//!
//! Columns follow the topology's canonical qubit/edge order; readout errors
//! are stored as explicit `(p01, p10)` pairs (not collapsed to the mean, so
//! a round-trip is lossless).

use crate::snapshot::CalibrationSnapshot;
use crate::topology::Topology;
use quasim::noise::ReadoutError;
use std::fmt;

/// Error parsing a calibration CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHistoryError {
    line: usize,
    reason: String,
}

impl ParseHistoryError {
    fn new(line: usize, reason: impl Into<String>) -> Self {
        ParseHistoryError {
            line,
            reason: reason.into(),
        }
    }

    /// 1-based line number of the offending row (0 for structural errors).
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseHistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "calibration csv line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseHistoryError {}

/// The CSV header for a topology.
pub fn csv_header(topology: &Topology) -> String {
    let mut cols = vec!["day".to_string()];
    for q in 0..topology.n_qubits() {
        cols.push(format!("x_err[q{q}]"));
    }
    for &(a, b) in topology.edges() {
        cols.push(format!("cx_err[q{a},q{b}]"));
    }
    for q in 0..topology.n_qubits() {
        cols.push(format!("ro_p01[q{q}]"));
        cols.push(format!("ro_p10[q{q}]"));
    }
    cols.join(",")
}

/// Serialises snapshots to CSV (header + one row per day).
///
/// # Panics
///
/// Panics if a snapshot's qubit count does not match the topology.
pub fn to_csv(topology: &Topology, snapshots: &[CalibrationSnapshot]) -> String {
    let mut out = csv_header(topology);
    out.push('\n');
    for s in snapshots {
        assert_eq!(
            s.n_qubits(),
            topology.n_qubits(),
            "snapshot/topology mismatch"
        );
        let mut cols = vec![s.day.to_string()];
        for &e in &s.single_qubit_error {
            cols.push(format!("{e:.17e}"));
        }
        for &e in &s.cnot_error {
            cols.push(format!("{e:.17e}"));
        }
        for r in &s.readout {
            cols.push(format!("{:.17e}", r.p01));
            cols.push(format!("{:.17e}", r.p10));
        }
        out.push_str(&cols.join(","));
        out.push('\n');
    }
    out
}

/// Parses snapshots from CSV produced by [`to_csv`] (or hand-assembled in
/// the same column order).
///
/// # Errors
///
/// Returns [`ParseHistoryError`] on a malformed header, wrong column count,
/// unparsable numbers, or error rates outside `[0, 1]`.
pub fn from_csv(
    topology: &Topology,
    text: &str,
) -> Result<Vec<CalibrationSnapshot>, ParseHistoryError> {
    let nq = topology.n_qubits();
    let ne = topology.n_edges();
    let expect_cols = 1 + nq + ne + 2 * nq;

    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseHistoryError::new(0, "empty input"))?;
    if header.trim() != csv_header(topology) {
        return Err(ParseHistoryError::new(
            1,
            format!("header mismatch for topology {}", topology.name()),
        ));
    }

    let mut out = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != expect_cols {
            return Err(ParseHistoryError::new(
                line_no,
                format!("expected {expect_cols} columns, got {}", cells.len()),
            ));
        }
        let day: usize = cells[0]
            .trim()
            .parse()
            .map_err(|_| ParseHistoryError::new(line_no, "bad day index"))?;
        let parse_rate = |cell: &str| -> Result<f64, ParseHistoryError> {
            let v: f64 = cell
                .trim()
                .parse()
                .map_err(|_| ParseHistoryError::new(line_no, "bad number"))?;
            if !(0.0..=1.0).contains(&v) {
                return Err(ParseHistoryError::new(
                    line_no,
                    format!("rate {v} outside [0,1]"),
                ));
            }
            Ok(v)
        };
        let mut col = 1usize;
        let mut single = Vec::with_capacity(nq);
        for _ in 0..nq {
            single.push(parse_rate(cells[col])?);
            col += 1;
        }
        let mut cnot = Vec::with_capacity(ne);
        for _ in 0..ne {
            cnot.push(parse_rate(cells[col])?);
            col += 1;
        }
        let mut readout = Vec::with_capacity(nq);
        for _ in 0..nq {
            let p01 = parse_rate(cells[col])?;
            let p10 = parse_rate(cells[col + 1])?;
            col += 2;
            readout.push(ReadoutError::new(p01, p10));
        }
        out.push(CalibrationSnapshot {
            day,
            single_qubit_error: single,
            cnot_error: cnot,
            readout,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryConfig;

    #[test]
    fn roundtrip_preserves_history() {
        let topo = Topology::ibm_belem();
        let original = HistoryConfig::belem_like(20, 7).generate(&topo);
        let csv = to_csv(&topo, &original);
        let parsed = from_csv(&topo, &csv).expect("roundtrip parse");
        assert_eq!(parsed.len(), original.len());
        for (a, b) in parsed.iter().zip(original.iter()) {
            assert_eq!(a.day, b.day);
            for (x, y) in a.single_qubit_error.iter().zip(&b.single_qubit_error) {
                assert!((x - y).abs() < 1e-12);
            }
            for (x, y) in a.cnot_error.iter().zip(&b.cnot_error) {
                assert!((x - y).abs() < 1e-12);
            }
            for (x, y) in a.readout.iter().zip(&b.readout) {
                assert!((x.p01 - y.p01).abs() < 1e-12);
                assert!((x.p10 - y.p10).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn header_matches_feature_labels_prefix() {
        let topo = Topology::ibm_jakarta();
        let header = csv_header(&topo);
        assert!(header.starts_with("day,x_err[q0]"));
        assert!(header.contains("cx_err[q0,q1]"));
        assert!(header.ends_with("ro_p10[q6]"));
    }

    #[test]
    fn rejects_wrong_header() {
        let topo = Topology::ibm_belem();
        let err = from_csv(&topo, "nope\n1,2,3").unwrap_err();
        assert_eq!(err.line(), 1);
    }

    #[test]
    fn rejects_wrong_column_count() {
        let topo = Topology::ibm_belem();
        let mut csv = csv_header(&topo);
        csv.push_str("\n0,0.1,0.2\n");
        let err = from_csv(&topo, &csv).unwrap_err();
        assert!(err.to_string().contains("columns"));
    }

    #[test]
    fn rejects_out_of_range_rate() {
        let topo = Topology::line(2);
        let mut csv = csv_header(&topo);
        // 1 + 2 + 1 + 4 = 8 columns; make one rate 2.0.
        csv.push_str("\n0,2.0,1e-4,1e-2,0.01,0.01,0.01,0.01\n");
        let err = from_csv(&topo, &csv).unwrap_err();
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn skips_blank_lines() {
        let topo = Topology::line(2);
        let snaps = vec![CalibrationSnapshot::uniform(&topo, 3, 1e-4, 1e-2, 0.02)];
        let mut csv = to_csv(&topo, &snaps);
        csv.push('\n');
        let parsed = from_csv(&topo, &csv).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].day, 3);
    }
}

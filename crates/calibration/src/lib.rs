//! # calibration — device noise data substrate
//!
//! Everything QuCAD knows about a quantum device's noise lives here:
//!
//! - [`topology`]: coupling maps (`ibm_belem`, `ibm_jakarta`, generators);
//! - [`snapshot`]: one day of calibration data (gate/readout/CNOT error
//!   rates) and its flattening into feature vectors for clustering;
//! - [`history`]: the seeded synthetic fluctuating-noise generator standing
//!   in for 13 months of real IBM calibration pulls (DESIGN.md §4);
//! - [`stats`]: correlation/mean/variance helpers used by the
//!   performance-aware clustering weights;
//! - [`io`]: CSV import/export so real backend calibration pulls can be
//!   substituted for the synthetic history.
//!
//! # Examples
//!
//! ```
//! use calibration::history::{FluctuatingHistory, HistoryConfig};
//! use calibration::topology::Topology;
//!
//! let topo = Topology::ibm_belem();
//! let history = FluctuatingHistory::generate(
//!     &topo,
//!     &HistoryConfig::belem_like(389, 42),
//!     243, // offline days, as in the paper
//! );
//! assert_eq!(history.online().len(), 146);
//! ```

// No unsafe code belongs in this crate; the only sanctioned unsafe in the
// workspace is quasim's (future) SIMD kernel layer.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod history;
pub mod io;
pub mod snapshot;
pub mod stats;
pub mod topology;

pub use history::{FluctuatingHistory, HistoryConfig};
pub use snapshot::CalibrationSnapshot;
pub use topology::Topology;

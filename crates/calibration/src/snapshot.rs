//! Daily calibration snapshots.
//!
//! A [`CalibrationSnapshot`] is the per-day noise description the framework
//! consumes: one single-qubit gate error per qubit, one readout error pair
//! per qubit, and one CNOT error per coupling edge — the same fields the
//! paper pulls from IBM backend calibrations (`Dt` historical and `Dc`
//! current data in Sec. III).

use crate::topology::Topology;
use quasim::noise::ReadoutError;

/// One day of calibration data for a device.
///
/// # Examples
///
/// ```
/// use calibration::topology::Topology;
/// use calibration::snapshot::CalibrationSnapshot;
///
/// let topo = Topology::ibm_belem();
/// let snap = CalibrationSnapshot::uniform(&topo, 0, 2e-4, 1e-2, 0.02);
/// assert_eq!(snap.feature_vector().len(), snap.feature_dim());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationSnapshot {
    /// Day index within the history (0-based).
    pub day: usize,
    /// Single-qubit gate (Pauli-X) error rate per qubit.
    pub single_qubit_error: Vec<f64>,
    /// CNOT error rate per topology edge (canonical edge order).
    pub cnot_error: Vec<f64>,
    /// Readout confusion per qubit.
    pub readout: Vec<ReadoutError>,
}

impl CalibrationSnapshot {
    /// Creates a snapshot with uniform error rates across the device.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]`.
    pub fn uniform(
        topology: &Topology,
        day: usize,
        single_qubit: f64,
        cnot: f64,
        readout: f64,
    ) -> Self {
        for r in [single_qubit, cnot, readout] {
            assert!((0.0..=1.0).contains(&r), "error rate must be in [0,1]");
        }
        CalibrationSnapshot {
            day,
            single_qubit_error: vec![single_qubit; topology.n_qubits()],
            cnot_error: vec![cnot; topology.n_edges()],
            readout: vec![ReadoutError::symmetric(readout); topology.n_qubits()],
        }
    }

    /// Number of qubits the snapshot describes.
    pub fn n_qubits(&self) -> usize {
        self.single_qubit_error.len()
    }

    /// Noise rate associated with a gate on the given physical qubits:
    /// the paper's `C(A(g_i))`.
    ///
    /// One qubit → that qubit's single-qubit error. Two qubits → the CNOT
    /// error on their edge, or (if not directly coupled, e.g. before
    /// routing) the maximum CNOT error along any incident edge as a
    /// conservative proxy.
    ///
    /// # Panics
    ///
    /// Panics if `qubits` is empty, has more than two entries, or indexes
    /// out of range.
    pub fn noise_on(&self, topology: &Topology, qubits: &[usize]) -> f64 {
        match qubits {
            [q] => {
                assert!(*q < self.n_qubits(), "qubit {q} out of range");
                self.single_qubit_error[*q]
            }
            [a, b] => {
                if let Some(idx) = topology.edge_index(*a, *b) {
                    self.cnot_error[idx]
                } else {
                    // Conservative fallback for uncoupled pairs.
                    topology
                        .edges()
                        .iter()
                        .enumerate()
                        .filter(|(_, &(x, y))| x == *a || y == *a || x == *b || y == *b)
                        .map(|(i, _)| self.cnot_error[i])
                        .fold(0.0, f64::max)
                }
            }
            _ => panic!("gates act on one or two qubits"),
        }
    }

    /// Flattens the snapshot to a feature vector for clustering / distance
    /// computation: `[1q errors… | CNOT errors… | mean readout errors…]`.
    pub fn feature_vector(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.feature_dim());
        v.extend_from_slice(&self.single_qubit_error);
        v.extend_from_slice(&self.cnot_error);
        v.extend(self.readout.iter().map(quasim::ReadoutError::mean_error));
        v
    }

    /// Length of [`CalibrationSnapshot::feature_vector`].
    pub fn feature_dim(&self) -> usize {
        self.single_qubit_error.len() + self.cnot_error.len() + self.readout.len()
    }

    /// Human-readable labels for each feature dimension, aligned with
    /// [`CalibrationSnapshot::feature_vector`].
    pub fn feature_labels(topology: &Topology) -> Vec<String> {
        let mut labels = Vec::new();
        for q in 0..topology.n_qubits() {
            labels.push(format!("x_err[q{q}]"));
        }
        for &(a, b) in topology.edges() {
            labels.push(format!("cx_err[q{a},q{b}]"));
        }
        for q in 0..topology.n_qubits() {
            labels.push(format!("ro_err[q{q}]"));
        }
        labels
    }

    /// Reconstructs a snapshot from a feature vector produced by
    /// [`CalibrationSnapshot::feature_vector`] (inverse mapping). Readout
    /// errors are rebuilt with the generator's 0.8/1.2 asymmetry around the
    /// stored mean. Values are clamped to `[0, 1]`.
    ///
    /// Used to turn cluster *centroids* (which live in feature space) back
    /// into snapshots the noisy executor can consume.
    ///
    /// # Panics
    ///
    /// Panics if the vector length does not match the topology's feature
    /// dimension.
    pub fn from_feature_vector(topology: &Topology, day: usize, v: &[f64]) -> Self {
        let nq = topology.n_qubits();
        let ne = topology.n_edges();
        assert_eq!(v.len(), nq + ne + nq, "feature vector length mismatch");
        let clamp = |x: f64| x.clamp(0.0, 1.0);
        CalibrationSnapshot {
            day,
            single_qubit_error: v[..nq].iter().map(|&x| clamp(x)).collect(),
            cnot_error: v[nq..nq + ne].iter().map(|&x| clamp(x)).collect(),
            readout: v[nq + ne..]
                .iter()
                .map(|&e| ReadoutError::new(clamp(0.8 * e), clamp(1.2 * e)))
                .collect(),
        }
    }

    /// Device-mean CNOT error, a convenient scalar severity measure.
    pub fn mean_cnot_error(&self) -> f64 {
        if self.cnot_error.is_empty() {
            return 0.0;
        }
        self.cnot_error.iter().sum::<f64>() / self.cnot_error.len() as f64
    }

    /// The noisiest edge (index into the topology's edge list) and its rate.
    pub fn worst_cnot_edge(&self) -> Option<(usize, f64)> {
        self.cnot_error
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &e)| (i, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> (Topology, CalibrationSnapshot) {
        let topo = Topology::ibm_belem();
        let mut s = CalibrationSnapshot::uniform(&topo, 3, 2e-4, 1e-2, 0.02);
        s.cnot_error[2] = 0.05; // edge (1,3)
        s.single_qubit_error[4] = 1e-3;
        (topo, s)
    }

    #[test]
    fn noise_on_single_qubit() {
        let (topo, s) = snap();
        assert_eq!(s.noise_on(&topo, &[4]), 1e-3);
        assert_eq!(s.noise_on(&topo, &[0]), 2e-4);
    }

    #[test]
    fn noise_on_edge_is_symmetric() {
        let (topo, s) = snap();
        assert_eq!(s.noise_on(&topo, &[1, 3]), 0.05);
        assert_eq!(s.noise_on(&topo, &[3, 1]), 0.05);
    }

    #[test]
    fn noise_on_uncoupled_pair_uses_incident_max() {
        let (topo, s) = snap();
        // (0, 3) is not an edge; incident edges include (1,3) at 0.05.
        assert_eq!(s.noise_on(&topo, &[0, 3]), 0.05);
    }

    #[test]
    fn feature_vector_layout() {
        let (topo, s) = snap();
        let v = s.feature_vector();
        assert_eq!(v.len(), 5 + 4 + 5);
        assert_eq!(v[4], 1e-3); // q4 single error
        assert_eq!(v[5 + 2], 0.05); // edge (1,3)
        assert!((v[9] - 0.02).abs() < 1e-12);
        let labels = CalibrationSnapshot::feature_labels(&topo);
        assert_eq!(labels.len(), v.len());
        assert_eq!(labels[7], "cx_err[q1,q3]");
    }

    #[test]
    fn worst_edge_found() {
        let (_, s) = snap();
        assert_eq!(s.worst_cnot_edge(), Some((2, 0.05)));
    }

    #[test]
    fn mean_cnot() {
        let (_, s) = snap();
        let expect = (1e-2 * 3.0 + 0.05) / 4.0;
        assert!((s.mean_cnot_error() - expect).abs() < 1e-12);
    }

    #[test]
    fn feature_vector_roundtrip() {
        let (topo, s) = snap();
        let v = s.feature_vector();
        let back = CalibrationSnapshot::from_feature_vector(&topo, s.day, &v);
        assert_eq!(back.single_qubit_error, s.single_qubit_error);
        assert_eq!(back.cnot_error, s.cnot_error);
        for (a, b) in back.readout.iter().zip(s.readout.iter()) {
            assert!((a.mean_error() - b.mean_error()).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_feature_vector_checks_length() {
        let topo = Topology::ibm_belem();
        let _ = CalibrationSnapshot::from_feature_vector(&topo, 0, &[0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "error rate")]
    fn uniform_rejects_bad_rate() {
        let topo = Topology::ibm_belem();
        let _ = CalibrationSnapshot::uniform(&topo, 0, -0.1, 0.0, 0.0);
    }
}

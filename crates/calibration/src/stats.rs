//! Small statistics helpers shared across the workspace.
//!
//! Provides the Pearson correlation coefficient used by the paper's
//! performance-aware clustering weights (`w_j = |cov(X,Y)/(σ_x σ_y)|`,
//! Sec. III-C), plus mean/variance and a Box–Muller Gaussian sampler so the
//! workspace does not need a distributions crate.

use rand::Rng;

/// Arithmetic mean; 0 for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(calibration::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson correlation coefficient `ρ(X, Y) ∈ [−1, 1]`.
///
/// Returns 0 when either series is constant (zero variance) or when the
/// lengths differ or are below 2, so callers can use it directly as a
/// clustering weight without special-casing degenerate dimensions.
///
/// # Examples
///
/// ```
/// use calibration::stats::pearson_correlation;
///
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((pearson_correlation(&x, &y) - 1.0).abs() < 1e-12);
/// ```
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    (cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0)
}

/// Samples a standard normal via the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let z = calibration::stats::sample_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_sign_and_bounds() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y_neg = [10.0, 8.0, 6.0, 4.0, 2.0];
        assert!((pearson_correlation(&x, &y_neg) + 1.0).abs() < 1e-12);
        let noise = [0.3, -0.1, 0.25, -0.2, 0.05];
        let r = pearson_correlation(&x, &noise);
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn correlation_degenerate_inputs_are_zero() {
        assert_eq!(pearson_correlation(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson_correlation(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson_correlation(&[1.0, 2.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<f64> = (0..20_000).map(|_| sample_normal(&mut rng)).collect();
        assert!(mean(&samples).abs() < 0.03);
        assert!((variance(&samples) - 1.0).abs() < 0.05);
    }
}

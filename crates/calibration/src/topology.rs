//! Physical device topologies (coupling maps).
//!
//! A [`Topology`] lists the qubit pairs on which a native two-qubit gate
//! (CNOT) can be executed. The paper evaluates on `ibm_belem` (5 qubits,
//! T-shaped) and `ibm-jakarta` (7 qubits, H-shaped); both are provided as
//! constructors, along with generic line/ring/fully-connected generators
//! used by tests and ablations.

use std::collections::VecDeque;

/// An undirected coupling map over `n_qubits` physical qubits.
///
/// Edges are stored with the smaller endpoint first and deduplicated; edge
/// order is stable and used as the canonical index for per-edge calibration
/// data.
///
/// # Examples
///
/// ```
/// use calibration::topology::Topology;
///
/// let belem = Topology::ibm_belem();
/// assert_eq!(belem.n_qubits(), 5);
/// assert!(belem.is_edge(1, 3));
/// assert_eq!(belem.distance(0, 4), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    name: String,
    n_qubits: usize,
    edges: Vec<(usize, usize)>,
    /// All-pairs shortest-path distances (BFS hops), row-major.
    dist: Vec<usize>,
}

impl Topology {
    /// Builds a topology from an explicit edge list.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits == 0`, any edge endpoint is out of range, an edge
    /// is a self-loop, or the coupling graph is disconnected.
    pub fn new(name: impl Into<String>, n_qubits: usize, edges: &[(usize, usize)]) -> Self {
        assert!(n_qubits > 0, "topology needs at least one qubit");
        let mut canon: Vec<(usize, usize)> = Vec::new();
        for &(a, b) in edges {
            assert!(a < n_qubits && b < n_qubits, "edge ({a},{b}) out of range");
            assert_ne!(a, b, "self-loop edge ({a},{b})");
            let e = (a.min(b), a.max(b));
            if !canon.contains(&e) {
                canon.push(e);
            }
        }
        let dist = all_pairs_bfs(n_qubits, &canon);
        if n_qubits > 1 {
            assert!(
                dist.iter().all(|&d| d != usize::MAX),
                "coupling graph must be connected"
            );
        }
        Topology {
            name: name.into(),
            n_qubits,
            edges: canon,
            dist,
        }
    }

    /// The 5-qubit `ibm_belem` T-shaped map: `0−1−2`, `1−3−4`.
    pub fn ibm_belem() -> Self {
        Topology::new("ibm_belem", 5, &[(0, 1), (1, 2), (1, 3), (3, 4)])
    }

    /// The 7-qubit `ibm_jakarta` H-shaped map:
    /// `0−1−2`, `1−3`, `3−5`, `4−5−6`.
    pub fn ibm_jakarta() -> Self {
        Topology::new(
            "ibm_jakarta",
            7,
            &[(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)],
        )
    }

    /// The 16-qubit `ibm_guadalupe` heavy-hexagon map (Falcon r4P).
    ///
    /// Well beyond the dense density-matrix engine's reach
    /// (`quasim::density::MAX_DENSITY_QUBITS = 12`) — circuits routed here
    /// are the flagship workload of the Monte-Carlo trajectory backend.
    pub fn ibm_guadalupe() -> Self {
        Topology::new(
            "ibm_guadalupe",
            16,
            &[
                (0, 1),
                (1, 2),
                (1, 4),
                (2, 3),
                (3, 5),
                (4, 7),
                (5, 8),
                (6, 7),
                (7, 10),
                (8, 9),
                (8, 11),
                (10, 12),
                (11, 14),
                (12, 13),
                (12, 15),
                (13, 14),
            ],
        )
    }

    /// A linear chain `0−1−…−(n−1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn line(n: usize) -> Self {
        assert!(n > 0, "line topology needs at least one qubit");
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Topology::new(format!("line{n}"), n, &edges)
    }

    /// A ring `0−1−…−(n−1)−0`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "ring needs at least 3 qubits");
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Topology::new(format!("ring{n}"), n, &edges)
    }

    /// A fully connected map (every pair is an edge).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn full(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        Topology::new(format!("full{n}"), n, &edges)
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Canonical edge list (smaller endpoint first).
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of coupling edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether `(a, b)` is directly coupled (order-insensitive).
    pub fn is_edge(&self, a: usize, b: usize) -> bool {
        let e = (a.min(b), a.max(b));
        self.edges.contains(&e)
    }

    /// Canonical index of edge `(a, b)`, if coupled.
    pub fn edge_index(&self, a: usize, b: usize) -> Option<usize> {
        let e = (a.min(b), a.max(b));
        self.edges.iter().position(|&x| x == e)
    }

    /// Shortest-path hop distance between two qubits.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        assert!(a < self.n_qubits && b < self.n_qubits, "qubit out of range");
        self.dist[a * self.n_qubits + b]
    }

    /// Direct neighbours of qubit `q`.
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == q {
                    Some(b)
                } else if b == q {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }
}

fn all_pairs_bfs(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut dist = vec![usize::MAX; n * n];
    for s in 0..n {
        dist[s * n + s] = 0;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            let du = dist[s * n + u];
            for &v in &adj[u] {
                if dist[s * n + v] == usize::MAX {
                    dist[s * n + v] = du + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn belem_shape() {
        let t = Topology::ibm_belem();
        assert_eq!(t.n_edges(), 4);
        assert!(t.is_edge(0, 1));
        assert!(t.is_edge(1, 0));
        assert!(!t.is_edge(0, 2));
        assert_eq!(t.distance(2, 4), 3);
        assert_eq!(t.neighbors(1), vec![0, 2, 3]);
    }

    #[test]
    fn jakarta_shape() {
        let t = Topology::ibm_jakarta();
        assert_eq!(t.n_qubits(), 7);
        assert_eq!(t.n_edges(), 6);
        assert_eq!(t.distance(0, 6), 4);
        assert_eq!(t.distance(2, 4), 4);
    }

    #[test]
    fn guadalupe_shape() {
        let t = Topology::ibm_guadalupe();
        assert_eq!(t.n_qubits(), 16);
        assert_eq!(t.n_edges(), 16);
        // Heavy-hex: degree ≤ 3 everywhere, and the map is connected with
        // the expected diameter corners.
        for q in 0..16 {
            assert!(
                (1..=3).contains(&t.neighbors(q).len()),
                "degree out of range at qubit {q}"
            );
        }
        assert_eq!(t.distance(0, 15), 6);
        assert_eq!(t.distance(6, 9), 8);
    }

    #[test]
    fn edge_index_is_order_insensitive() {
        let t = Topology::ibm_belem();
        assert_eq!(t.edge_index(3, 1), t.edge_index(1, 3));
        assert_eq!(t.edge_index(0, 4), None);
    }

    #[test]
    fn line_and_ring_distances() {
        let l = Topology::line(5);
        assert_eq!(l.distance(0, 4), 4);
        let r = Topology::ring(6);
        assert_eq!(r.distance(0, 3), 3);
        assert_eq!(r.distance(0, 5), 1);
    }

    #[test]
    fn full_topology_all_adjacent() {
        let f = Topology::full(4);
        assert_eq!(f.n_edges(), 6);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert_eq!(f.distance(a, b), 1);
                }
            }
        }
    }

    #[test]
    fn duplicate_edges_are_canonicalised() {
        let t = Topology::new("t", 3, &[(0, 1), (1, 0), (1, 2)]);
        assert_eq!(t.n_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn empty_line_rejected() {
        let _ = Topology::line(0);
    }

    #[test]
    fn single_qubit_line_is_edgeless() {
        let l = Topology::line(1);
        assert_eq!(l.n_qubits(), 1);
        assert_eq!(l.n_edges(), 0);
        assert_eq!(l.distance(0, 0), 0);
        assert!(l.neighbors(0).is_empty());
    }

    #[test]
    fn smallest_ring_wraps_around() {
        let r = Topology::ring(3);
        assert_eq!(r.n_edges(), 3);
        assert!(r.is_edge(2, 0));
        assert_eq!(r.distance(0, 2), 1);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_graph_rejected() {
        let _ = Topology::new("bad", 4, &[(0, 1), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let _ = Topology::new("bad", 2, &[(1, 1)]);
    }
}

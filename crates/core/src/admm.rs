//! ADMM-based noise-aware QNN compression (the paper's Sec. III-B).
//!
//! The optimisation `min f(Wp(θ)) + N(Z) + Σ s_i(z_i)` is split into:
//!
//! - a **θ-update** — a few gradient steps on the training loss plus the
//!   augmented-Lagrangian pull `ρ/2·Σ_masked (θ_i − z_i + u_i)²`;
//! - a **z-update** — the projection enforced by the indicator `s_i`:
//!   masked coordinates snap to their nearest compression level
//!   `T_admm_i`, unmasked ones follow `θ_i + u_i` freely;
//! - a **dual update** `u ← u + θ − z`.
//!
//! The mask is regenerated every round from the current `θ`, the
//! compression table, and the day's calibration data (noise-aware priority
//! `p_i = C(A(g_i))/d_i`, Fig. 6). After the rounds, masked parameters are
//! pinned to their levels and frozen, and the survivors are fine-tuned with
//! **noise injection** (training through the noisy executor) — exactly the
//! paper's final step.

use crate::levels::CompressionTable;
use crate::mask::{gate_associations, priorities, GateAssoc, SelectionRule};
use calibration::snapshot::CalibrationSnapshot;
use qnn::data::Sample;
use qnn::executor::NoisyExecutor;
use qnn::loss::cross_entropy;
use qnn::model::VqcModel;
use qnn::optim::Adam;
use qnn::probe::pure_fd_probes;
use qnn::train::{train_spsa_masked, Env, SpsaConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyper-parameters of the ADMM compression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmmConfig {
    /// Number of ADMM rounds `r`.
    pub rounds: usize,
    /// Augmented-Lagrangian weight `ρ`.
    pub rho: f64,
    /// Gradient steps per θ-update.
    pub theta_steps: usize,
    /// Minibatch size for loss gradients.
    pub batch_size: usize,
    /// Adam learning rate for the θ-update.
    pub lr: f64,
    /// Finite-difference step.
    pub grad_step: f64,
    /// Gate-selection rule for the mask.
    pub rule: SelectionRule,
    /// `true` = noise-aware priorities (the paper); `false` = noise-agnostic
    /// compression (prior work \[23], used in the Fig. 9(b) ablation).
    pub noise_aware: bool,
    /// Weight β of the noise-exposure term in the gate-related level choice
    /// (`T_admm`): the projection minimises
    /// `dist(θ, l) + β·C(A(g))·exposure(l)`, so gates on hot edges prefer
    /// level 0 (which deletes their CNOTs) over merely the nearest level.
    /// 0 reduces to nearest-level snapping. Ignored when `noise_aware` is
    /// `false`.
    pub level_noise_weight: f64,
    /// Epochs of *pure-environment* recovery fine-tuning right after
    /// projection (cheap analytic-loss training of the surviving weights;
    /// restores the function the snap perturbed before noise adaptation).
    pub finetune_pure_epochs: usize,
    /// SPSA steps of noise-injection fine-tuning after the recovery pass
    /// (SPSA keeps noisy training to two circuit evaluations per step).
    pub finetune_steps: usize,
    /// RNG seed for batching.
    pub seed: u64,
}

impl Default for AdmmConfig {
    fn default() -> Self {
        AdmmConfig {
            rounds: 5,
            rho: 0.6,
            theta_steps: 2,
            batch_size: 12,
            lr: 0.08,
            grad_step: 1e-3,
            rule: SelectionRule::Threshold(0.05),
            noise_aware: true,
            level_noise_weight: 6.0,
            finetune_pure_epochs: 2,
            finetune_steps: 40,
            seed: 17,
        }
    }
}

/// Result of one compression run.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionOutcome {
    /// Compressed (and fine-tuned) weights.
    pub weights: Vec<f64>,
    /// Final mask: `true` = pinned to a compression level.
    pub mask: Vec<bool>,
    /// Total circuit evaluations spent (cost proxy for Fig. 7).
    pub n_evals: u64,
}

impl CompressionOutcome {
    /// Number of compressed (pinned) parameters.
    pub fn n_compressed(&self) -> usize {
        self.mask.iter().filter(|&&m| m).count()
    }
}

/// Runs noise-aware (or noise-agnostic) ADMM compression of `init_weights`
/// for the given calibration snapshot, then noise-injection fine-tuning.
///
/// # Panics
///
/// Panics if `train_set` is empty or `init_weights` mismatches the model.
pub fn compress(
    model: &VqcModel,
    exec: &NoisyExecutor,
    train_set: &[Sample],
    snapshot: &CalibrationSnapshot,
    table: &CompressionTable,
    config: &AdmmConfig,
    init_weights: &[f64],
) -> CompressionOutcome {
    assert!(!train_set.is_empty(), "empty training set");
    assert_eq!(
        init_weights.len(),
        model.n_weights(),
        "weight count mismatch"
    );

    let assocs: Vec<GateAssoc> = gate_associations(model, exec.physical_circuit());
    let topology = exec.topology();
    // Per-gate noise rate and arity for the gate-related level choice.
    let gate_noise: Vec<f64> = assocs
        .iter()
        .map(|a| snapshot.noise_on(topology, &a.physical_qubits))
        .collect();
    let two_qubit: Vec<bool> = assocs
        .iter()
        .map(|a| a.physical_qubits.len() == 2)
        .collect();
    let beta = if config.noise_aware {
        config.level_noise_weight
    } else {
        0.0
    };
    let target_level = |i: usize, v: f64| -> f64 {
        table
            .best_level(v, |l| {
                let exposure = if two_qubit[i] {
                    if l.abs() < 1e-9 {
                        0.0
                    } else {
                        2.0
                    }
                } else {
                    transpile::expand::rotation_pulses(l) as f64
                };
                beta * gate_noise[i] * exposure
            })
            .0
    };
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut n_evals: u64 = 0;

    let mut theta = init_weights.to_vec();
    let mut z = theta.clone();
    let mut u = vec![0.0; theta.len()];
    let mut mask = vec![false; theta.len()];

    let mut order: Vec<usize> = (0..train_set.len()).collect();
    for _round in 0..config.rounds {
        // (1) Regenerate the mask from the current θ and calibration data.
        let p = priorities(
            &theta,
            &assocs,
            snapshot,
            topology,
            table,
            config.noise_aware,
        );
        mask = config.rule.select(&p);

        // (2) θ-update: a few Adam steps on f(θ) + ρ/2 Σ_masked (θ−z+u)².
        let mut opt = Adam::new(config.lr, theta.len());
        for _step in 0..config.theta_steps {
            order.shuffle(&mut rng);
            let batch: Vec<&Sample> = order
                .iter()
                .take(config.batch_size.min(train_set.len()))
                .map(|&i| &train_set[i])
                .collect();

            let penalty_grad = |th: &[f64]| -> Vec<f64> {
                th.iter()
                    .enumerate()
                    .map(|(i, &t)| {
                        if mask[i] {
                            config.rho * (t - z[i] + u[i])
                        } else {
                            0.0
                        }
                    })
                    .collect()
            };

            // Loss gradient by central differences (pure environment: the
            // paper's f is the training loss; noise enters via mask + the
            // fine-tune below). Probes of every θ coordinate run through
            // the prefix-sharing engine — one sweep per sample instead of
            // 2·P full state-vector runs, bit-identical sums.
            let mut grad = penalty_grad(&theta);
            n_evals += batch.len() as u64; // base loss bookkeeping
            let slots: Vec<usize> = (0..theta.len()).collect();
            let mut fp_sum = vec![0.0; theta.len()];
            let mut fm_sum = vec![0.0; theta.len()];
            for s in &batch {
                let probes = pure_fd_probes(model, &s.features, &theta, config.grad_step, &slots);
                for (t, (_, zp, zm)) in probes.shifted.iter().enumerate() {
                    fp_sum[t] += cross_entropy(zp, s.label);
                    fm_sum[t] += cross_entropy(zm, s.label);
                }
            }
            let b = batch.len() as f64;
            for i in 0..theta.len() {
                n_evals += 2 * batch.len() as u64;
                grad[i] += (fp_sum[i] / b - fm_sum[i] / b) / (2.0 * config.grad_step);
            }
            opt.step(&mut theta, &grad);
        }

        // (3) z-update: projection onto the indicator's feasible set,
        // using the gate-related (noise-aware) level table.
        for i in 0..theta.len() {
            let v = theta[i] + u[i];
            z[i] = if mask[i] { target_level(i, v) } else { v };
        }
        // (4) Dual update.
        for i in 0..theta.len() {
            u[i] += theta[i] - z[i];
        }
    }

    // Final projection: pin masked parameters to their (gate-related)
    // levels.
    let p = priorities(
        &theta,
        &assocs,
        snapshot,
        topology,
        table,
        config.noise_aware,
    );
    mask = config.rule.select(&p);
    for i in 0..theta.len() {
        if mask[i] {
            theta[i] = target_level(i, theta[i]);
        }
    }

    let trainable: Vec<bool> = mask.iter().map(|&m| !m).collect();

    // Recovery fine-tuning in the perfect environment: the projection can
    // move many parameters at once; a couple of cheap analytic epochs let
    // the surviving weights re-absorb that perturbation before the noisy
    // polish.
    if config.finetune_pure_epochs > 0 && trainable.iter().any(|&t| t) {
        let rec_cfg = qnn::train::TrainConfig {
            epochs: config.finetune_pure_epochs,
            batch_size: config.batch_size,
            lr: config.lr * 0.5,
            seed: config.seed ^ 0x51ed_270b,
            grad_step: config.grad_step,
        };
        let result =
            qnn::train::train_masked(model, train_set, Env::Pure, &rec_cfg, &theta, &trainable);
        theta = result.weights;
        n_evals += result.n_evals;
    }

    // Noise-injection fine-tuning with compressed parameters frozen.
    // SPSA keeps the noisy-environment cost at two circuit evaluations per
    // step instead of two per weight.
    if config.finetune_steps > 0 && trainable.iter().any(|&t| t) {
        let ft_cfg = SpsaConfig {
            steps: config.finetune_steps,
            batch_size: config.batch_size,
            lr: 0.10,
            perturbation: 0.12,
            seed: config.seed ^ 0x9e37_79b9,
        };
        let env = Env::Noisy { exec, snapshot };
        let result = train_spsa_masked(model, train_set, env, &ft_cfg, &theta, &trainable);
        theta = result.weights;
        n_evals += result.n_evals;
    }

    CompressionOutcome {
        weights: theta,
        mask,
        n_evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibration::topology::Topology;
    use qnn::data::Dataset;
    use qnn::executor::NoiseOptions;
    use qnn::train::{evaluate, TrainConfig};

    fn quick_cfg() -> AdmmConfig {
        AdmmConfig {
            rounds: 3,
            theta_steps: 1,
            batch_size: 8,
            finetune_steps: 10,
            ..AdmmConfig::default()
        }
    }

    fn setup() -> (
        VqcModel,
        Topology,
        NoisyExecutor,
        Dataset,
        CalibrationSnapshot,
    ) {
        let model = VqcModel::paper_model(4, 3, 4, 1);
        let topo = Topology::ibm_belem();
        let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::default());
        let data = Dataset::iris(3).truncated(24, 16);
        let snap = CalibrationSnapshot::uniform(&topo, 0, 5e-4, 2e-2, 0.03);
        (model, topo, exec, data, snap)
    }

    #[test]
    fn compression_pins_masked_weights_to_levels() {
        let (model, _, exec, data, snap) = setup();
        let table = CompressionTable::standard();
        let init = model.init_weights(1);
        let out = compress(
            &model,
            &exec,
            &data.train,
            &snap,
            &table,
            &quick_cfg(),
            &init,
        );
        assert!(out.n_compressed() > 0, "nothing was compressed");
        for (i, &m) in out.mask.iter().enumerate() {
            if m {
                let (_, d) = table.nearest(out.weights[i]);
                assert!(
                    d < 1e-9,
                    "masked weight {i} not at a level: {}",
                    out.weights[i]
                );
            }
        }
        assert!(out.n_evals > 0);
    }

    #[test]
    fn compression_shortens_physical_circuit() {
        let (model, _, exec, data, snap) = setup();
        let table = CompressionTable::standard();
        let init = model.init_weights(2);
        let out = compress(
            &model,
            &exec,
            &data.train,
            &snap,
            &table,
            &quick_cfg(),
            &init,
        );
        let f = &data.train[0].features;
        assert!(
            exec.circuit_length(f, &out.weights) < exec.circuit_length(f, &init),
            "compressed circuit should be shorter"
        );
    }

    #[test]
    fn compressed_model_beats_uncompressed_under_heavy_noise() {
        // Realistic regime: finite shots make deep noisy circuits collapse
        // (scores below ~1/sqrt(shots) are unresolvable), which is exactly
        // where compression pays off.
        let (model, topo, _, data, _) = setup();
        let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::with_shots(1024, 3));
        let heavy = CalibrationSnapshot::uniform(&topo, 0, 2e-3, 8e-2, 0.04);
        let table = CompressionTable::standard();
        // Start from a noise-free-trained model.
        let base = qnn::train::train(
            &model,
            &data.train,
            Env::Pure,
            &TrainConfig {
                epochs: 5,
                batch_size: 8,
                ..TrainConfig::default()
            },
            &model.init_weights(5),
        );
        // A realistic (non-truncated) compression budget.
        let cfg = AdmmConfig {
            rounds: 5,
            theta_steps: 3,
            batch_size: 12,
            finetune_steps: 60,
            ..AdmmConfig::default()
        };
        let out = compress(
            &model,
            &exec,
            &data.train,
            &heavy,
            &table,
            &cfg,
            &base.weights,
        );
        // Average over several shot-noise draws for a stable comparison.
        let mean_acc = |w: &[f64]| -> f64 {
            (0..5)
                .map(|_| {
                    let env = Env::Noisy {
                        exec: &exec,
                        snapshot: &heavy,
                    };
                    evaluate(&model, env, &data.test, w)
                })
                .sum::<f64>()
                / 5.0
        };
        let acc_base = mean_acc(&base.weights);
        let acc_comp = mean_acc(&out.weights);
        // Compression must not catastrophically hurt, and usually helps.
        assert!(
            acc_comp + 0.10 >= acc_base,
            "compression collapsed accuracy: {acc_base} -> {acc_comp}"
        );
    }

    #[test]
    fn noise_agnostic_variant_runs() {
        let (model, _, exec, data, snap) = setup();
        let table = CompressionTable::standard();
        let cfg = AdmmConfig {
            noise_aware: false,
            ..quick_cfg()
        };
        let out = compress(
            &model,
            &exec,
            &data.train,
            &snap,
            &table,
            &cfg,
            &model.init_weights(4),
        );
        assert!(out.n_compressed() > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (model, _, exec, data, snap) = setup();
        let table = CompressionTable::standard();
        let init = model.init_weights(9);
        let a = compress(
            &model,
            &exec,
            &data.train,
            &snap,
            &table,
            &quick_cfg(),
            &init,
        );
        let b = compress(
            &model,
            &exec,
            &data.train,
            &snap,
            &table,
            &quick_cfg(),
            &init,
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_set_rejected() {
        let (model, _, exec, _, snap) = setup();
        let table = CompressionTable::standard();
        let _ = compress(
            &model,
            &exec,
            &[],
            &snap,
            &table,
            &quick_cfg(),
            &model.init_weights(0),
        );
    }
}

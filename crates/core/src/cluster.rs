//! Performance-aware weighted clustering of calibration data
//! (the paper's Sec. III-C).
//!
//! Calibration snapshots are flattened to feature vectors; each dimension
//! `j` gets a weight `w_j = |ρ(p, C_{:,j})|`, the absolute Pearson
//! correlation between the base model's accuracy series `p` and that noise
//! dimension — dimensions the model actually cares about dominate the
//! metric. Clustering minimises the paper's WSAE objective
//! `Σ_g Σ_{c∈g} dist^w_{L1}(r_g, c)` with a k-medians loop (per-dimension
//! medians are the exact L1-optimal centroids). A standard L2 k-means is
//! included as the Table II baseline.

use calibration::stats::pearson_correlation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster centroids in feature space.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index of each input sample.
    pub assignment: Vec<usize>,
    /// Per-dimension distance weights used.
    pub weights: Vec<f64>,
    /// Final objective value (WSAE for L1, WSSE for L2).
    pub objective: f64,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Indices of the samples in cluster `g`.
    pub fn members(&self, g: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == g)
            .map(|(i, _)| i)
            .collect()
    }

    /// Average weighted distance between centroid `g` and its members — the
    /// paper's `(dist^w_L1)_g` used to derive the threshold `th_w`.
    pub fn avg_intra_distance(&self, samples: &[Vec<f64>], g: usize) -> f64 {
        let members = self.members(g);
        if members.is_empty() {
            return 0.0;
        }
        members
            .iter()
            .map(|&i| weighted_l1(&self.weights, &self.centroids[g], &samples[i]))
            .sum::<f64>()
            / members.len() as f64
    }

    /// The paper's Guidance-1 threshold: `th_w = max_g (dist^w_L1)_g`.
    pub fn guidance_threshold(&self, samples: &[Vec<f64>]) -> f64 {
        (0..self.k())
            .map(|g| self.avg_intra_distance(samples, g))
            .fold(0.0, f64::max)
    }

    /// Mean of `values` over each cluster's members (e.g. accuracies for
    /// Guidance 2). Empty clusters yield 0.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != assignment.len()`.
    pub fn cluster_means(&self, values: &[f64]) -> Vec<f64> {
        assert_eq!(values.len(), self.assignment.len(), "length mismatch");
        (0..self.k())
            .map(|g| {
                let members = self.members(g);
                if members.is_empty() {
                    0.0
                } else {
                    members.iter().map(|&i| values[i]).sum::<f64>() / members.len() as f64
                }
            })
            .collect()
    }
}

/// The paper's performance-aware weights: `w_j = |ρ(accuracy, C_{:,j})|`.
///
/// Degenerate dimensions (constant noise or constant accuracy) get weight 0;
/// if *all* weights vanish they fall back to uniform 1 so the metric stays
/// a metric.
///
/// # Panics
///
/// Panics if sample/accuracy counts differ.
pub fn performance_weights(samples: &[Vec<f64>], accuracy: &[f64]) -> Vec<f64> {
    assert_eq!(samples.len(), accuracy.len(), "one accuracy per sample");
    if samples.is_empty() {
        return Vec::new();
    }
    let dim = samples[0].len();
    let mut w = Vec::with_capacity(dim);
    for j in 0..dim {
        let col: Vec<f64> = samples.iter().map(|s| s[j]).collect();
        w.push(pearson_correlation(&col, accuracy).abs());
    }
    if w.iter().all(|&x| x == 0.0) {
        w.iter_mut().for_each(|x| *x = 1.0);
    }
    w
}

/// Weighted Manhattan distance `dist^w_L1(a, b) = Σ_j w_j·|a_j − b_j|`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn weighted_l1(w: &[f64], a: &[f64], b: &[f64]) -> f64 {
    assert!(w.len() == a.len() && a.len() == b.len(), "length mismatch");
    w.iter()
        .zip(a.iter().zip(b.iter()))
        .map(|(&wj, (&x, &y))| wj * (x - y).abs())
        .sum()
}

/// Squared Euclidean distance (Table II baseline metric).
pub fn l2_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum()
}

/// k-medians under the weighted L1 metric (the paper's proposed
/// clustering).
///
/// Initialisation is k-means++-style (probability proportional to distance
/// to the nearest chosen seed), updates take per-dimension medians, and
/// empty clusters are reseeded to the farthest sample.
///
/// # Panics
///
/// Panics if `k == 0`, `k > samples.len()`, or `weights` mismatches the
/// feature dimension.
pub fn kmedians_weighted_l1(
    samples: &[Vec<f64>],
    weights: &[f64],
    k: usize,
    seed: u64,
    max_iters: usize,
) -> Clustering {
    run_kmeans(samples, weights, k, seed, max_iters, Metric::WeightedL1)
}

/// Standard k-means with unweighted L2 (Table II baseline).
///
/// # Panics
///
/// As [`kmedians_weighted_l1`]; `weights` is still used for the reported
/// objective's dimension count check but distances ignore it.
pub fn kmeans_l2(samples: &[Vec<f64>], k: usize, seed: u64, max_iters: usize) -> Clustering {
    let dim = samples.first().map_or(0, std::vec::Vec::len);
    let uniform = vec![1.0; dim];
    run_kmeans(samples, &uniform, k, seed, max_iters, Metric::L2)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Metric {
    WeightedL1,
    L2,
}

fn run_kmeans(
    samples: &[Vec<f64>],
    weights: &[f64],
    k: usize,
    seed: u64,
    max_iters: usize,
    metric: Metric,
) -> Clustering {
    assert!(k >= 1, "need at least one cluster");
    assert!(k <= samples.len(), "more clusters than samples");
    let dim = samples[0].len();
    assert!(samples.iter().all(|s| s.len() == dim), "ragged samples");
    assert_eq!(weights.len(), dim, "weight dimension mismatch");

    let dist = |a: &[f64], b: &[f64]| -> f64 {
        match metric {
            Metric::WeightedL1 => weighted_l1(weights, a, b),
            Metric::L2 => l2_sq(a, b),
        }
    };

    // k-means++ style seeding.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(samples[rng.gen_range(0..samples.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = samples
            .iter()
            .map(|s| {
                centroids
                    .iter()
                    .map(|c| dist(c, s))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..samples.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = samples.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(samples[next].clone());
    }

    let mut assignment = vec![0usize; samples.len()];
    for _ in 0..max_iters {
        // Assignment step.
        let mut changed = false;
        for (i, s) in samples.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| dist(&centroids[a], s).total_cmp(&dist(&centroids[b], s)))
                .expect("k >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update step.
        for g in 0..k {
            let members: Vec<&Vec<f64>> = samples
                .iter()
                .zip(assignment.iter())
                .filter(|(_, &a)| a == g)
                .map(|(s, _)| s)
                .collect();
            if members.is_empty() {
                // Reseed to the sample farthest from its centroid.
                let far = (0..samples.len())
                    .max_by(|&a, &b| {
                        dist(&centroids[assignment[a]], &samples[a])
                            .total_cmp(&dist(&centroids[assignment[b]], &samples[b]))
                    })
                    .expect("non-empty samples");
                centroids[g] = samples[far].clone();
                continue;
            }
            centroids[g] = match metric {
                Metric::WeightedL1 => {
                    // Per-dimension median minimises L1 exactly.
                    (0..dim)
                        .map(|j| {
                            let mut col: Vec<f64> = members.iter().map(|s| s[j]).collect();
                            col.sort_by(f64::total_cmp);
                            let m = col.len();
                            if m % 2 == 1 {
                                col[m / 2]
                            } else {
                                0.5 * (col[m / 2 - 1] + col[m / 2])
                            }
                        })
                        .collect()
                }
                Metric::L2 => (0..dim)
                    .map(|j| members.iter().map(|s| s[j]).sum::<f64>() / members.len() as f64)
                    .collect(),
            };
        }
        if !changed {
            break;
        }
    }

    let objective = samples
        .iter()
        .zip(assignment.iter())
        .map(|(s, &a)| dist(&centroids[a], s))
        .sum();

    Clustering {
        centroids,
        assignment,
        weights: weights.to_vec(),
        objective,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: &[f64], n: usize, spread: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                center
                    .iter()
                    .map(|&c| c + spread * calibration::stats::sample_normal(&mut rng))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn performance_weights_pick_informative_dims() {
        // Dim 0 drives accuracy; dim 1 is pure noise.
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        let acc: Vec<f64> = samples.iter().map(|s| 1.0 - s[0]).collect();
        let w = performance_weights(&samples, &acc);
        assert!(w[0] > 0.95);
        assert!(w[1] < 0.2);
    }

    #[test]
    fn degenerate_weights_fall_back_to_uniform() {
        let samples = vec![vec![1.0, 2.0], vec![1.0, 2.0], vec![1.0, 2.0]];
        let acc = vec![0.5, 0.6, 0.7];
        assert_eq!(performance_weights(&samples, &acc), vec![1.0, 1.0]);
    }

    #[test]
    fn weighted_l1_is_a_metric_on_positive_weights() {
        let w = [0.5, 2.0];
        let (a, b, c) = ([0.0, 0.0], [1.0, 1.0], [2.0, 0.5]);
        assert_eq!(weighted_l1(&w, &a, &a), 0.0);
        assert_eq!(weighted_l1(&w, &a, &b), weighted_l1(&w, &b, &a));
        assert!(
            weighted_l1(&w, &a, &c) <= weighted_l1(&w, &a, &b) + weighted_l1(&w, &b, &c) + 1e-12
        );
    }

    #[test]
    fn kmedians_separates_blobs() {
        let mut samples = blob(&[0.0, 0.0, 0.0], 30, 0.1, 1);
        samples.extend(blob(&[5.0, 5.0, 5.0], 30, 0.1, 2));
        let w = vec![1.0; 3];
        let c = kmedians_weighted_l1(&samples, &w, 2, 7, 50);
        // All of blob A in one cluster, all of blob B in the other.
        let first = c.assignment[0];
        assert!(c.assignment[..30].iter().all(|&a| a == first));
        assert!(c.assignment[30..].iter().all(|&a| a != first));
    }

    #[test]
    fn weighting_changes_the_partition() {
        // Two groups separated only along dim 1; dim 0 is a decoy with
        // larger raw scale.
        let mut samples = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..40 {
            let decoy = 10.0 * rng.gen::<f64>();
            let signal = if i % 2 == 0 { 0.0 } else { 1.0 };
            samples.push(vec![decoy, signal]);
        }
        let informed = kmedians_weighted_l1(&samples, &[0.0, 1.0], 2, 5, 50);
        // With weight only on the signal dim, clusters align with parity.
        let g0 = informed.assignment[0];
        for (i, &a) in informed.assignment.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(a, g0, "even sample {i} misassigned");
            } else {
                assert_ne!(a, g0, "odd sample {i} misassigned");
            }
        }
    }

    #[test]
    fn objective_not_worse_than_random_assignment() {
        let samples = blob(&[1.0, 2.0], 50, 1.0, 9);
        let w = vec![1.0, 1.0];
        let c = kmedians_weighted_l1(&samples, &w, 4, 11, 60);
        // Objective with k=4 must beat k=1 (monotone in k for these data).
        let c1 = kmedians_weighted_l1(&samples, &w, 1, 11, 60);
        assert!(c.objective <= c1.objective);
    }

    #[test]
    fn guidance_threshold_is_max_intra() {
        let mut samples = blob(&[0.0, 0.0], 20, 0.05, 1);
        samples.extend(blob(&[3.0, 3.0], 20, 0.8, 2));
        let w = vec![1.0, 1.0];
        let c = kmedians_weighted_l1(&samples, &w, 2, 3, 50);
        let th = c.guidance_threshold(&samples);
        let d0 = c.avg_intra_distance(&samples, 0);
        let d1 = c.avg_intra_distance(&samples, 1);
        assert!((th - d0.max(d1)).abs() < 1e-12);
        assert!(th > 0.0);
    }

    #[test]
    fn cluster_means_track_member_values() {
        let samples = vec![vec![0.0], vec![0.1], vec![5.0], vec![5.1]];
        let c = kmedians_weighted_l1(&samples, &[1.0], 2, 2, 20);
        let means = c.cluster_means(&[1.0, 1.0, 0.0, 0.0]);
        let mut sorted = means.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(sorted, vec![0.0, 1.0]);
    }

    #[test]
    fn l2_baseline_runs_and_converges() {
        let mut samples = blob(&[0.0, 0.0], 25, 0.2, 5);
        samples.extend(blob(&[4.0, 4.0], 25, 0.2, 6));
        let c = kmeans_l2(&samples, 2, 1, 50);
        assert_eq!(c.k(), 2);
        let first = c.assignment[0];
        assert!(c.assignment[..25].iter().all(|&a| a == first));
    }

    #[test]
    fn deterministic_given_seed() {
        let samples = blob(&[0.0, 1.0], 30, 0.5, 8);
        let w = vec![1.0, 1.0];
        let a = kmedians_weighted_l1(&samples, &w, 3, 21, 40);
        let b = kmedians_weighted_l1(&samples, &w, 3, 21, 40);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "more clusters than samples")]
    fn k_larger_than_n_rejected() {
        let _ = kmedians_weighted_l1(&[vec![1.0]], &[1.0], 2, 0, 10);
    }
}

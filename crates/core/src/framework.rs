//! The end-to-end QuCAD framework and the paper's competitor methods.
//!
//! [`Qucad::build_offline`] implements the offline model-repository
//! constructor: evaluate the base model across historical calibrations,
//! derive performance-aware distance weights, cluster with weighted-L1
//! k-medians, and run noise-aware compression once per cluster centroid.
//! [`Qucad::online_day`] implements the online manager: match today's
//! calibration, reuse on a hit, compress-and-extend on a miss (Guidance 1),
//! or emit a failure report (Guidance 2).
//!
//! [`Method`] + [`run_method`] reproduce all six rows of Table I per
//! dataset, recording per-day accuracy and training cost (circuit
//! evaluations, the Fig. 7 cost proxy).
//!
//! Every noisy evaluation in the framework flows through the
//! [`qnn::executor::SimBackend`] carried by [`RunContext::noise`] /
//! [`Qucad::build_offline`]'s `noise` argument: the default exact
//! density-matrix engine, or the Monte-Carlo trajectory engine
//! (`QUCAD_BACKEND=trajectory` via the bench harness) for devices beyond
//! the dense-`ρ` qubit cap. The framework logic is backend-agnostic —
//! both engines are deterministic per `(seed, stream)` and thread-count
//! invariant, so method comparisons stay reproducible either way.

use crate::admm::{compress, AdmmConfig, CompressionOutcome};
use crate::cluster::{kmedians_weighted_l1, performance_weights};
use crate::levels::CompressionTable;
use crate::repository::{MatchOutcome, ModelRepository, RepositoryEntry};
use calibration::snapshot::CalibrationSnapshot;
use calibration::topology::Topology;
use qnn::data::Sample;
use qnn::executor::{parallel, NoiseOptions, NoisyExecutor};
use qnn::model::VqcModel;
use qnn::train::{train_spsa_masked, Env, SpsaConfig};

/// Framework configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct QucadConfig {
    /// Number of offline clusters `k`.
    pub k: usize,
    /// Compression hyper-parameters.
    pub admm: AdmmConfig,
    /// Compression-level table `T`.
    pub table: CompressionTable,
    /// Guidance-2 accuracy requirement (`None` disables failure reports).
    pub accuracy_requirement: Option<f64>,
    /// Max offline days evaluated for the accuracy series (subsampled
    /// evenly when the history is longer); bounds offline cost.
    pub max_offline_evals: usize,
    /// Test samples per accuracy evaluation.
    pub eval_samples: usize,
    /// Multiplier applied to the clustering-derived Guidance-1 threshold
    /// `th_w`. 1.0 uses the paper's `max_g avg-intra-distance` verbatim;
    /// larger values trade adaptation frequency for reuse (the offline
    /// clusters are built from a *sample* of history, so the literal max
    /// underestimates the day-to-day spread).
    pub threshold_scale: f64,
    /// Lower bound on the Guidance-1 threshold, as a fraction of the mean
    /// offline feature L1 norm. Prevents pathological everyday
    /// re-compression when the offline history happens to be very calm
    /// (clusters of near-identical days yield a near-zero `th_w`).
    pub threshold_floor_frac: f64,
    /// Relative fallback threshold (fraction of the mean offline feature
    /// L1 norm) used when no clustering is available (QuCAD w/o offline).
    pub fallback_threshold_frac: f64,
    /// K-medians iterations.
    pub cluster_iters: usize,
    /// Clustering / subsampling seed.
    pub seed: u64,
}

impl Default for QucadConfig {
    fn default() -> Self {
        QucadConfig {
            k: 6,
            admm: AdmmConfig::default(),
            table: CompressionTable::standard(),
            accuracy_requirement: None,
            max_offline_evals: 64,
            eval_samples: 50,
            threshold_scale: 1.6,
            threshold_floor_frac: 0.06,
            fallback_threshold_frac: 0.45,
            cluster_iters: 60,
            seed: 7,
        }
    }
}

/// Statistics from the offline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct OfflineStats {
    /// Days actually evaluated.
    pub days_evaluated: usize,
    /// Base-model accuracy per evaluated day.
    pub accuracies: Vec<f64>,
    /// Circuit evaluations spent offline (profiling + compression).
    pub n_evals: u64,
    /// Number of repository entries built.
    pub n_entries: usize,
    /// The Guidance-1 threshold derived from clustering.
    pub threshold: f64,
}

/// What the online manager decided on a given day.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineDecision {
    /// Reused repository entry `index` (a Guidance-1 hit).
    Reused {
        /// Matched entry.
        index: usize,
        /// Weighted distance to its centroid.
        distance: f64,
    },
    /// Compressed a fresh model and added it as entry `index`.
    Compressed {
        /// Index of the new entry.
        index: usize,
    },
    /// Guidance-2 failure report: predicted accuracy below requirement.
    /// The entry's weights are still returned so execution can proceed
    /// with the warning attached.
    Failure {
        /// Matched (invalid) entry.
        index: usize,
        /// Its predicted accuracy.
        predicted_accuracy: f64,
    },
}

/// The QuCAD framework state.
#[derive(Debug, Clone)]
pub struct Qucad {
    model: VqcModel,
    exec: NoisyExecutor,
    config: QucadConfig,
    repository: ModelRepository,
    base_weights: Vec<f64>,
    /// Training samples available for online compressions.
    train_set: Vec<Sample>,
}

impl Qucad {
    /// Builds the framework **with** the offline stage (full QuCAD).
    ///
    /// # Panics
    ///
    /// Panics if `offline` has fewer days than `config.k`, or the sets are
    /// empty.
    #[allow(clippy::too_many_arguments)]
    pub fn build_offline(
        model: &VqcModel,
        topology: &Topology,
        noise: NoiseOptions,
        offline: &[CalibrationSnapshot],
        train_set: &[Sample],
        eval_set: &[Sample],
        base_weights: &[f64],
        config: &QucadConfig,
    ) -> (Self, OfflineStats) {
        assert!(offline.len() >= config.k, "need at least k offline days");
        assert!(!train_set.is_empty() && !eval_set.is_empty(), "empty data");
        let exec = NoisyExecutor::new(model, topology, noise);
        let mut n_evals: u64 = 0;

        // 1. Profile the base model across (subsampled) offline days.
        let stride = (offline.len() / config.max_offline_evals.max(1)).max(1);
        let sampled: Vec<&CalibrationSnapshot> = offline.iter().step_by(stride).collect();
        let eval_subset: Vec<Sample> = eval_set.iter().take(config.eval_samples).cloned().collect();
        // Every (day, sample) evaluation is an independent density-matrix
        // simulation, so profile the whole grid batch-parallel, fanned over
        // days (deterministic: results are keyed by day/sample index, not
        // execution order).
        let features: Vec<Vec<f64>> = sampled.iter().map(|s| s.feature_vector()).collect();
        let accuracies = parallel::accuracy_over_days(
            &exec,
            &sampled,
            &eval_subset,
            base_weights,
            parallel::worker_threads(),
        );
        n_evals += (sampled.len() * eval_subset.len()) as u64;

        // 2–4. Performance-aware weights + weighted-L1 k-medians.
        let weights = performance_weights(&features, &accuracies);
        let k = config.k.min(features.len());
        let clustering =
            kmedians_weighted_l1(&features, &weights, k, config.seed, config.cluster_iters);
        let mean_norm = features
            .iter()
            .map(|f| f.iter().map(|x| x.abs()).sum::<f64>())
            .sum::<f64>()
            / features.len().max(1) as f64;
        let threshold = (clustering.guidance_threshold(&features) * config.threshold_scale)
            .max(config.threshold_floor_frac * mean_norm);
        let cluster_acc = clustering.cluster_means(&accuracies);

        // 5. One compression per centroid.
        let mut repository = ModelRepository::new(weights, threshold, config.accuracy_requirement);
        for (g, centroid) in clustering.centroids.iter().enumerate() {
            let snap = CalibrationSnapshot::from_feature_vector(topology, 0, centroid);
            let out = compress(
                model,
                &exec,
                train_set,
                &snap,
                &config.table,
                &config.admm,
                base_weights,
            );
            n_evals += out.n_evals;
            repository.push(RepositoryEntry {
                centroid: centroid.clone(),
                weights: out.weights,
                mean_accuracy: Some(cluster_acc[g]),
                origin_day: sampled.first().map_or(0, |s| s.day),
            });
        }

        let stats = OfflineStats {
            days_evaluated: sampled.len(),
            accuracies,
            n_evals,
            n_entries: repository.len(),
            threshold,
        };
        let qucad = Qucad {
            model: model.clone(),
            exec,
            config: config.clone(),
            repository,
            base_weights: base_weights.to_vec(),
            train_set: train_set.to_vec(),
        };
        (qucad, stats)
    }

    /// Builds the framework **without** the offline stage ("QuCAD w/o
    /// offline" in Table I): an empty repository with uniform distance
    /// weights and a relative threshold derived from `reference_day`.
    pub fn build_without_offline(
        model: &VqcModel,
        topology: &Topology,
        noise: NoiseOptions,
        reference_day: &CalibrationSnapshot,
        train_set: &[Sample],
        base_weights: &[f64],
        config: &QucadConfig,
    ) -> Self {
        let exec = NoisyExecutor::new(model, topology, noise);
        let f = reference_day.feature_vector();
        let norm: f64 = f.iter().map(|x| x.abs()).sum();
        let threshold = config.fallback_threshold_frac * norm;
        let repository =
            ModelRepository::new(vec![1.0; f.len()], threshold, config.accuracy_requirement);
        Qucad {
            model: model.clone(),
            exec,
            config: config.clone(),
            repository,
            base_weights: base_weights.to_vec(),
            train_set: train_set.to_vec(),
        }
    }

    /// The repository (for inspection).
    pub fn repository(&self) -> &ModelRepository {
        &self.repository
    }

    /// The routed noisy executor.
    pub fn executor(&self) -> &NoisyExecutor {
        &self.exec
    }

    /// Online adaptation for one day: returns the weights to run plus the
    /// manager's decision and the training cost incurred (0 on reuse).
    pub fn online_day(
        &mut self,
        snapshot: &CalibrationSnapshot,
    ) -> (Vec<f64>, OnlineDecision, u64) {
        match self.repository.match_snapshot(snapshot) {
            MatchOutcome::Hit { index, distance } => (
                self.repository.weights_of(index).to_vec(),
                OnlineDecision::Reused { index, distance },
                0,
            ),
            MatchOutcome::Invalid {
                index,
                predicted_accuracy,
            } => (
                self.repository.weights_of(index).to_vec(),
                OnlineDecision::Failure {
                    index,
                    predicted_accuracy,
                },
                0,
            ),
            MatchOutcome::Miss { .. } => {
                let out = self.compress_for(snapshot);
                let index = self.repository.len();
                self.repository.push(RepositoryEntry {
                    centroid: snapshot.feature_vector(),
                    weights: out.weights.clone(),
                    mean_accuracy: None,
                    origin_day: snapshot.day,
                });
                (
                    out.weights,
                    OnlineDecision::Compressed { index },
                    out.n_evals,
                )
            }
        }
    }

    fn compress_for(&self, snapshot: &CalibrationSnapshot) -> CompressionOutcome {
        compress(
            &self.model,
            &self.exec,
            &self.train_set,
            snapshot,
            &self.config.table,
            &self.config.admm,
            &self.base_weights,
        )
    }
}

// --- Competitor methods (Table I rows) --------------------------------------

/// The six methods compared in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Train noise-free once; never adapt.
    Baseline,
    /// Noise-aware (noise-injection) training on day 1 only \[12].
    NoiseAwareOnce,
    /// Noise-aware training repeated every day.
    NoiseAwareEveryday,
    /// Noise-agnostic compression on day 1 only \[23].
    OneTimeCompression,
    /// Noise-aware compression repeated every day (Fig. 7/9 reference).
    CompressionEveryday,
    /// QuCAD with an empty starting repository.
    QucadWithoutOffline,
    /// Full QuCAD (offline repository + online manager).
    Qucad,
}

impl Method {
    /// Table-ready method name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Baseline => "Baseline",
            Method::NoiseAwareOnce => "Noise-aware Train Once",
            Method::NoiseAwareEveryday => "Noise-aware Train Everyday",
            Method::OneTimeCompression => "One-time Compression",
            Method::CompressionEveryday => "Compression Everyday",
            Method::QucadWithoutOffline => "QuCAD w/o offline",
            Method::Qucad => "QuCAD (ours)",
        }
    }

    /// All Table I methods in row order.
    pub fn table1() -> [Method; 6] {
        [
            Method::Baseline,
            Method::NoiseAwareOnce,
            Method::NoiseAwareEveryday,
            Method::OneTimeCompression,
            Method::QucadWithoutOffline,
            Method::Qucad,
        ]
    }
}

/// One day of an online evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct DayRecord {
    /// Day index in the history.
    pub day: usize,
    /// Test accuracy under that day's noise.
    pub accuracy: f64,
    /// Training-circuit evaluations spent adapting on this day.
    pub train_evals: u64,
    /// Whether a Guidance-2 failure was reported.
    pub failure_reported: bool,
}

/// A full online run of one method.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodRun {
    /// Which method produced this run.
    pub method: Method,
    /// Per-day records over the online phase.
    pub records: Vec<DayRecord>,
    /// Training cost spent *before* the online phase (offline stage /
    /// day-1 adaptation).
    pub setup_evals: u64,
}

impl MethodRun {
    /// Accuracy series.
    pub fn accuracies(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.accuracy).collect()
    }

    /// Total online training cost.
    pub fn online_evals(&self) -> u64 {
        self.records.iter().map(|r| r.train_evals).sum()
    }
}

/// Everything a method run needs.
#[derive(Debug, Clone)]
pub struct RunContext<'a> {
    /// The QNN model.
    pub model: &'a VqcModel,
    /// Device topology.
    pub topology: &'a Topology,
    /// Noise mapping options, including the simulation backend
    /// ([`qnn::executor::SimBackend`]) every evaluation runs on.
    pub noise: NoiseOptions,
    /// Offline (historical) calibration days.
    pub offline: &'a [CalibrationSnapshot],
    /// Online calibration days to evaluate over.
    pub online: &'a [CalibrationSnapshot],
    /// Training samples.
    pub train_set: &'a [Sample],
    /// Held-out test samples.
    pub test_set: &'a [Sample],
    /// Noise-free-trained base weights shared by every method.
    pub base_weights: &'a [f64],
    /// Framework configuration.
    pub config: &'a QucadConfig,
    /// Noise-aware (noise-injection) training configuration for the \[12]
    /// baselines; SPSA because the objective runs through the noisy
    /// executor.
    pub nat_config: SpsaConfig,
}

/// Runs `method` over the online phase, recording per-day accuracy and
/// training cost.
///
/// # Panics
///
/// Panics if the context's sets are empty.
pub fn run_method(method: Method, ctx: &RunContext<'_>) -> MethodRun {
    assert!(!ctx.online.is_empty(), "no online days to run");
    let exec = NoisyExecutor::new(ctx.model, ctx.topology, ctx.noise);
    let eval_subset: Vec<Sample> = ctx
        .test_set
        .iter()
        .take(ctx.config.eval_samples)
        .cloned()
        .collect();
    let all_trainable = vec![true; ctx.model.n_weights()];
    let threads = parallel::worker_threads();

    // Per-day accuracy, batch-parallel over test samples. The shot-noise
    // stream is keyed on the day's position in the online phase, making the
    // series independent of evaluation order (and of `threads`): methods
    // that fan whole days out via `accuracy_over_days` below produce the
    // same bits as this per-day path.
    let eval_day = |weights: &[f64], day_index: usize| -> f64 {
        parallel::batch_accuracy(
            &exec,
            &eval_subset,
            weights,
            &ctx.online[day_index],
            day_index as u64,
            threads,
        )
    };

    // Whole-series evaluation of one fixed weight vector (the static
    // methods), fanned over days instead of samples.
    let eval_series = |weights: &[f64]| -> Vec<f64> {
        let days: Vec<&CalibrationSnapshot> = ctx.online.iter().collect();
        parallel::accuracy_over_days(&exec, &days, &eval_subset, weights, threads)
    };

    let nat_finetune = |init: &[f64], snap: &CalibrationSnapshot, seed: u64| {
        let env = Env::Noisy {
            exec: &exec,
            snapshot: snap,
        };
        let cfg = SpsaConfig {
            seed,
            ..ctx.nat_config
        };
        train_spsa_masked(ctx.model, ctx.train_set, env, &cfg, init, &all_trainable)
    };

    let mut records = Vec::with_capacity(ctx.online.len());
    let mut setup_evals: u64 = 0;

    match method {
        Method::Baseline => {
            for (snap, accuracy) in ctx.online.iter().zip(eval_series(ctx.base_weights)) {
                records.push(DayRecord {
                    day: snap.day,
                    accuracy,
                    train_evals: 0,
                    failure_reported: false,
                });
            }
        }
        Method::NoiseAwareOnce => {
            let day1 = &ctx.online[0];
            let result = nat_finetune(ctx.base_weights, day1, 101);
            setup_evals = result.n_evals;
            for (snap, accuracy) in ctx.online.iter().zip(eval_series(&result.weights)) {
                records.push(DayRecord {
                    day: snap.day,
                    accuracy,
                    train_evals: 0,
                    failure_reported: false,
                });
            }
        }
        Method::NoiseAwareEveryday => {
            let mut weights = ctx.base_weights.to_vec();
            for (day_index, snap) in ctx.online.iter().enumerate() {
                let result = nat_finetune(&weights, snap, 1000 + snap.day as u64);
                weights = result.weights;
                records.push(DayRecord {
                    day: snap.day,
                    accuracy: eval_day(&weights, day_index),
                    train_evals: result.n_evals,
                    failure_reported: false,
                });
            }
        }
        Method::OneTimeCompression => {
            // Noise-agnostic compression on day 1 (prior work [23]):
            // minimise circuit length, so select by closeness-to-level
            // alone with a fixed budget.
            let day1 = &ctx.online[0];
            let cfg = AdmmConfig {
                noise_aware: false,
                rule: crate::mask::SelectionRule::TopFraction(0.5),
                ..ctx.config.admm
            };
            let out = compress(
                ctx.model,
                &exec,
                ctx.train_set,
                day1,
                &ctx.config.table,
                &cfg,
                ctx.base_weights,
            );
            setup_evals = out.n_evals;
            for (snap, accuracy) in ctx.online.iter().zip(eval_series(&out.weights)) {
                records.push(DayRecord {
                    day: snap.day,
                    accuracy,
                    train_evals: 0,
                    failure_reported: false,
                });
            }
        }
        Method::CompressionEveryday => {
            for (day_index, snap) in ctx.online.iter().enumerate() {
                let out = compress(
                    ctx.model,
                    &exec,
                    ctx.train_set,
                    snap,
                    &ctx.config.table,
                    &ctx.config.admm,
                    ctx.base_weights,
                );
                records.push(DayRecord {
                    day: snap.day,
                    accuracy: eval_day(&out.weights, day_index),
                    train_evals: out.n_evals,
                    failure_reported: false,
                });
            }
        }
        Method::QucadWithoutOffline => {
            let mut qucad = Qucad::build_without_offline(
                ctx.model,
                ctx.topology,
                ctx.noise,
                &ctx.online[0],
                ctx.train_set,
                ctx.base_weights,
                ctx.config,
            );
            for (day_index, snap) in ctx.online.iter().enumerate() {
                let (weights, decision, evals) = qucad.online_day(snap);
                records.push(DayRecord {
                    day: snap.day,
                    accuracy: eval_day(&weights, day_index),
                    train_evals: evals,
                    failure_reported: matches!(decision, OnlineDecision::Failure { .. }),
                });
            }
        }
        Method::Qucad => {
            let (mut qucad, stats) = Qucad::build_offline(
                ctx.model,
                ctx.topology,
                ctx.noise,
                ctx.offline,
                ctx.train_set,
                ctx.test_set,
                ctx.base_weights,
                ctx.config,
            );
            setup_evals = stats.n_evals;
            for (day_index, snap) in ctx.online.iter().enumerate() {
                let (weights, decision, evals) = qucad.online_day(snap);
                records.push(DayRecord {
                    day: snap.day,
                    accuracy: eval_day(&weights, day_index),
                    train_evals: evals,
                    failure_reported: matches!(decision, OnlineDecision::Failure { .. }),
                });
            }
        }
    }

    MethodRun {
        method,
        records,
        setup_evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibration::history::{FluctuatingHistory, HistoryConfig};
    use qnn::data::Dataset;
    use qnn::train::{train, TrainConfig};

    fn tiny_ctx() -> (
        VqcModel,
        Topology,
        FluctuatingHistory,
        Dataset,
        Vec<f64>,
        QucadConfig,
    ) {
        let model = VqcModel::paper_model(4, 3, 4, 1);
        let topo = Topology::ibm_belem();
        let history = FluctuatingHistory::generate(&topo, &HistoryConfig::belem_like(30, 5), 20);
        let data = Dataset::iris(3).truncated(24, 20);
        let base = train(
            &model,
            &data.train,
            Env::Pure,
            &TrainConfig {
                epochs: 4,
                batch_size: 8,
                ..TrainConfig::default()
            },
            &model.init_weights(1),
        )
        .weights;
        let config = QucadConfig {
            k: 3,
            max_offline_evals: 8,
            eval_samples: 16,
            admm: AdmmConfig {
                rounds: 2,
                theta_steps: 1,
                batch_size: 6,
                finetune_steps: 0,
                ..AdmmConfig::default()
            },
            ..QucadConfig::default()
        };
        (model, topo, history, data, base, config)
    }

    #[test]
    fn offline_stage_builds_k_entries() {
        let (model, topo, history, data, base, config) = tiny_ctx();
        let (qucad, stats) = Qucad::build_offline(
            &model,
            &topo,
            NoiseOptions::default(),
            history.offline(),
            &data.train,
            &data.test,
            &base,
            &config,
        );
        assert_eq!(stats.n_entries, 3);
        assert_eq!(qucad.repository().len(), 3);
        assert!(stats.threshold > 0.0);
        assert!(stats.n_evals > 0);
        assert_eq!(stats.accuracies.len(), stats.days_evaluated);
    }

    #[test]
    fn online_reuse_is_free_and_miss_compresses() {
        let (model, topo, history, data, base, config) = tiny_ctx();
        let (mut qucad, _) = Qucad::build_offline(
            &model,
            &topo,
            NoiseOptions::default(),
            history.offline(),
            &data.train,
            &data.test,
            &base,
            &config,
        );
        let n0 = qucad.repository().len();
        let mut any_reuse = false;
        let mut any_compress = false;
        for snap in history.online() {
            let (_, decision, evals) = qucad.online_day(snap);
            match decision {
                OnlineDecision::Reused { .. } => {
                    assert_eq!(evals, 0);
                    any_reuse = true;
                }
                OnlineDecision::Compressed { .. } => {
                    assert!(evals > 0);
                    any_compress = true;
                }
                OnlineDecision::Failure { .. } => {}
            }
        }
        assert!(any_reuse, "repository was never reused");
        // Growth only if misses occurred.
        assert_eq!(
            qucad.repository().len() > n0,
            any_compress,
            "repository growth must match compression events"
        );
    }

    #[test]
    fn without_offline_starts_empty_and_grows() {
        let (model, topo, history, data, base, config) = tiny_ctx();
        let mut qucad = Qucad::build_without_offline(
            &model,
            &topo,
            NoiseOptions::default(),
            &history.online()[0],
            &data.train,
            &base,
            &config,
        );
        assert!(qucad.repository().is_empty());
        let (_, decision, evals) = qucad.online_day(&history.online()[0]);
        assert!(matches!(decision, OnlineDecision::Compressed { .. }));
        assert!(evals > 0);
        assert_eq!(qucad.repository().len(), 1);
    }

    #[test]
    fn run_method_baseline_and_qucad_cover_all_days() {
        let (model, topo, history, data, base, config) = tiny_ctx();
        let ctx = RunContext {
            model: &model,
            topology: &topo,
            noise: NoiseOptions::default(),
            offline: history.offline(),
            online: &history.online()[..5],
            train_set: &data.train,
            test_set: &data.test,
            base_weights: &base,
            config: &config,
            nat_config: SpsaConfig {
                steps: 6,
                batch_size: 6,
                ..SpsaConfig::default()
            },
        };
        let run = run_method(Method::Baseline, &ctx);
        assert_eq!(run.records.len(), 5);
        assert_eq!(run.online_evals(), 0);
        let run = run_method(Method::Qucad, &ctx);
        assert_eq!(run.records.len(), 5);
        assert!(run.setup_evals > 0);
        for r in &run.records {
            assert!((0.0..=1.0).contains(&r.accuracy));
        }
    }

    #[test]
    fn guidance_two_failure_reported_with_requirement() {
        let (model, topo, history, data, base, mut config) = tiny_ctx();
        // Absurdly high requirement → every valid match becomes a failure.
        config.accuracy_requirement = Some(1.01);
        let (mut qucad, _) = Qucad::build_offline(
            &model,
            &topo,
            NoiseOptions::default(),
            history.offline(),
            &data.train,
            &data.test,
            &base,
            &config,
        );
        let mut any_failure = false;
        for snap in history.online() {
            let (_, decision, _) = qucad.online_day(snap);
            if matches!(decision, OnlineDecision::Failure { .. }) {
                any_failure = true;
                break;
            }
        }
        assert!(
            any_failure,
            "expected at least one Guidance-2 failure report"
        );
    }

    #[test]
    fn method_names_are_stable() {
        assert_eq!(Method::Qucad.name(), "QuCAD (ours)");
        assert_eq!(Method::table1().len(), 6);
    }
}

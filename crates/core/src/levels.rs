//! Compression-level tables.
//!
//! The paper's table `T` collects the "breakpoint" angles observed in the
//! loss landscape (Motivation 1): `0, π/2, π, 3π/2`. Snapping a parameter to
//! the nearest level shortens the physical circuit after transpilation
//! (see `transpile::expand`), which is what makes compression a noise
//! mitigation tool.

use std::f64::consts::{FRAC_PI_2, PI, TAU};

/// A sorted table of compression levels in `[0, 2π)`.
///
/// # Examples
///
/// ```
/// use qucad::levels::CompressionTable;
///
/// let t = CompressionTable::standard();
/// let (level, dist) = t.nearest(3.0);
/// assert_eq!(level, std::f64::consts::PI);
/// assert!((dist - (std::f64::consts::PI - 3.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionTable {
    levels: Vec<f64>,
}

impl CompressionTable {
    /// The paper's table: `{0, π/2, π, 3π/2}`.
    pub fn standard() -> Self {
        CompressionTable {
            levels: vec![0.0, FRAC_PI_2, PI, 3.0 * FRAC_PI_2],
        }
    }

    /// Coarser table `{0, π}` (ablation: fewer levels, larger snaps).
    pub fn coarse() -> Self {
        CompressionTable {
            levels: vec![0.0, PI],
        }
    }

    /// Finer table with eighth turns (ablation: more levels, smaller
    /// snaps, but π/4 angles still cost two pulses).
    pub fn fine() -> Self {
        let levels: Vec<f64> = (0..8)
            .map(|k| k as f64 * std::f64::consts::FRAC_PI_4)
            .collect();
        CompressionTable::from_levels(&levels)
    }

    /// Builds a table from explicit levels (normalised into `[0, 2π)` and
    /// sorted).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn from_levels(levels: &[f64]) -> Self {
        assert!(!levels.is_empty(), "table needs at least one level");
        let mut ls: Vec<f64> = levels.iter().map(|&l| normalize(l)).collect();
        ls.sort_by(f64::total_cmp);
        ls.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        CompressionTable { levels: ls }
    }

    /// The levels, sorted, in `[0, 2π)`.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Nearest level to `theta` under circular distance, and that distance.
    /// This yields the paper's `T_admm_i` and `d_i` for one parameter.
    pub fn nearest(&self, theta: f64) -> (f64, f64) {
        let a = normalize(theta);
        let mut best = (self.levels[0], f64::INFINITY);
        for &l in &self.levels {
            let d = circular_distance(a, l);
            if d < best.1 {
                best = (l, d);
            }
        }
        best
    }

    /// Gate-related level choice (the paper's `T_admm` is "a gate-related
    /// compression table built on `T`"): picks the level minimising
    /// `circular_distance(θ, l) + penalty(l)`, where `penalty` encodes the
    /// physical cost the gate would keep at that level (e.g. a controlled
    /// rotation at `π` keeps its two CNOTs on a noisy edge, while level `0`
    /// removes them entirely).
    ///
    /// Returns `(level, circular_distance)`.
    pub fn best_level<F: Fn(f64) -> f64>(&self, theta: f64, penalty: F) -> (f64, f64) {
        let a = normalize(theta);
        let mut best = (self.levels[0], f64::INFINITY, f64::INFINITY);
        for &l in &self.levels {
            let d = circular_distance(a, l);
            let cost = d + penalty(l);
            if cost < best.2 {
                best = (l, d, cost);
            }
        }
        (best.0, best.1)
    }

    /// Distances `d_i` for a whole parameter vector (the paper's table `D`).
    pub fn distances(&self, theta: &[f64]) -> Vec<f64> {
        theta.iter().map(|&t| self.nearest(t).1).collect()
    }

    /// Nearest levels for a whole parameter vector (the paper's `T_admm`).
    pub fn snap_all(&self, theta: &[f64]) -> Vec<f64> {
        theta.iter().map(|&t| self.nearest(t).0).collect()
    }
}

impl Default for CompressionTable {
    fn default() -> Self {
        CompressionTable::standard()
    }
}

/// Normalises an angle into `[0, 2π)`.
pub fn normalize(theta: f64) -> f64 {
    let mut a = theta % TAU;
    if a < 0.0 {
        a += TAU;
    }
    if (TAU - a) < 1e-12 {
        a = 0.0;
    }
    a
}

/// Circular distance between two normalised angles.
pub fn circular_distance(a: f64, b: f64) -> f64 {
    let d = (a - b).abs();
    d.min(TAU - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_table_levels() {
        let t = CompressionTable::standard();
        assert_eq!(t.levels(), &[0.0, FRAC_PI_2, PI, 3.0 * FRAC_PI_2]);
    }

    #[test]
    fn nearest_handles_wraparound() {
        let t = CompressionTable::standard();
        // 2π − 0.1 is closest to level 0 at circular distance 0.1.
        let (l, d) = t.nearest(TAU - 0.1);
        assert_eq!(l, 0.0);
        assert!((d - 0.1).abs() < 1e-12);
        // Negative angles normalise first.
        let (l, d) = t.nearest(-0.2);
        assert_eq!(l, 0.0);
        assert!((d - 0.2).abs() < 1e-12);
    }

    #[test]
    fn nearest_midpoint_ties_resolve_to_a_level() {
        let t = CompressionTable::standard();
        let (l, d) = t.nearest(FRAC_PI_2 / 2.0);
        assert!((d - FRAC_PI_2 / 2.0).abs() < 1e-12);
        assert!(l == 0.0 || l == FRAC_PI_2);
    }

    #[test]
    fn distances_bounded_by_max_gap() {
        let t = CompressionTable::standard();
        for k in 0..100 {
            let theta = k as f64 * 0.097;
            let (_, d) = t.nearest(theta);
            assert!(d <= FRAC_PI_2 / 2.0 + 1e-12, "distance {d} too large");
        }
    }

    #[test]
    fn snap_all_lands_on_levels() {
        let t = CompressionTable::standard();
        let snapped = t.snap_all(&[0.1, 1.5, 3.0, 4.6, 6.2]);
        for s in snapped {
            assert!(t.levels().iter().any(|&l| (l - s).abs() < 1e-12));
        }
    }

    #[test]
    fn best_level_without_penalty_is_nearest() {
        let t = CompressionTable::standard();
        for theta in [0.2, 1.4, 2.9, 4.4, 6.0] {
            let (l_plain, d_plain) = t.nearest(theta);
            let (l_best, d_best) = t.best_level(theta, |_| 0.0);
            assert_eq!(l_plain, l_best);
            assert!((d_plain - d_best).abs() < 1e-12);
        }
    }

    #[test]
    fn best_level_penalty_steers_to_zero() {
        let t = CompressionTable::standard();
        // θ = 2.9 is nearest to π, but a heavy penalty on every non-zero
        // level (a hot edge whose CNOTs we want gone) steers it to 0.
        let penalty = |l: f64| if l == 0.0 { 0.0 } else { 10.0 };
        let (l, d) = t.best_level(2.9, penalty);
        assert_eq!(l, 0.0);
        assert!(d > 1.0);
    }

    #[test]
    fn from_levels_dedups_and_sorts() {
        let t = CompressionTable::from_levels(&[PI, 0.0, PI, -PI]);
        assert_eq!(t.levels(), &[0.0, PI]);
    }

    #[test]
    fn coarse_and_fine_tables() {
        assert_eq!(CompressionTable::coarse().levels().len(), 2);
        assert_eq!(CompressionTable::fine().levels().len(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_table_rejected() {
        let _ = CompressionTable::from_levels(&[]);
    }
}

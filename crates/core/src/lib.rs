//! # qucad — compression-aided framework for noise-robust QNNs
//!
//! Reproduction of *"Battle Against Fluctuating Quantum Noise:
//! Compression-Aided Framework to Enable Robust Quantum Neural Network"*
//! (Hu, Lin, Guan, Jiang — DAC 2023, arXiv:2304.04666).
//!
//! The framework adapts a trained QNN to fluctuating device noise through
//! three cooperating pieces:
//!
//! - [`admm`]: **noise-aware compression** — ADMM pruning/quantisation of
//!   rotation parameters toward the [`levels::CompressionTable`] breakpoint
//!   angles, guided by the noise-aware [`mask`] priorities
//!   `p_i = C(A(g_i))/d_i`, finished with noise-injection fine-tuning;
//! - [`cluster`] + [`repository`]: the **offline constructor** — weighted-L1
//!   k-medians over historical calibrations with performance-aware weights,
//!   one compressed model per centroid;
//! - [`framework`]: the **online manager** — match today's calibration,
//!   reuse on a hit, compress-and-extend on a Guidance-1 miss, report
//!   failure on a Guidance-2 invalid match — plus all Table I competitor
//!   methods.
//!
//! # Examples
//!
//! ```no_run
//! use calibration::history::{FluctuatingHistory, HistoryConfig};
//! use calibration::topology::Topology;
//! use qnn::data::Dataset;
//! use qnn::executor::NoiseOptions;
//! use qnn::model::VqcModel;
//! use qnn::train::{train, Env, TrainConfig};
//! use qucad::framework::{Qucad, QucadConfig};
//!
//! let topo = Topology::ibm_belem();
//! let history = FluctuatingHistory::generate(
//!     &topo, &HistoryConfig::belem_like(389, 42), 243);
//! let data = Dataset::iris(7);
//! let model = VqcModel::paper_model(4, 3, 4, 3);
//! let base = train(&model, &data.train, Env::Pure,
//!                  &TrainConfig::default(), &model.init_weights(0)).weights;
//! let (mut qucad, stats) = Qucad::build_offline(
//!     &model, &topo, NoiseOptions::default(), history.offline(),
//!     &data.train, &data.test, &base, &QucadConfig::default());
//! for day in history.online() {
//!     let (weights, decision, cost) = qucad.online_day(day);
//!     println!("day {}: {:?} (cost {})", day.day, decision, cost);
//! }
//! ```

// No unsafe code belongs in this crate; the only sanctioned unsafe in the
// workspace is quasim's (future) SIMD kernel layer.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admm;
pub mod cluster;
pub mod framework;
pub mod levels;
pub mod mask;
pub mod report;
pub mod repository;

pub use admm::{compress, AdmmConfig, CompressionOutcome};
pub use framework::{run_method, Method, MethodRun, Qucad, QucadConfig, RunContext};
pub use levels::CompressionTable;
pub use repository::{MatchOutcome, ModelRepository, RepositoryEntry};

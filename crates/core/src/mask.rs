//! Noise-aware mask generation (the paper's Fig. 6 pipeline).
//!
//! For each trainable weight `θ_i`:
//!
//! 1. `T_admm_i` / `d_i` — nearest compression level and circular distance
//!    (from [`crate::levels::CompressionTable`]);
//! 2. `p_i = C(A(g_i)) / d_i` — the priority: noise rate on the gate's
//!    *physical* qubits divided by distance-to-level, so both "close to a
//!    level" and "sitting on a noisy qubit" raise the priority;
//! 3. `mask_i = 1` iff `p_i` clears the selection rule, meaning *compress
//!    gate `g_i` to `T_admm_i`*.
//!
//! A noise-**agnostic** variant (`p_i = 1/d_i`) reproduces the prior-work
//! compression \[23] for the paper's Fig. 9(b) ablation.

use crate::levels::CompressionTable;
use calibration::snapshot::CalibrationSnapshot;
use calibration::topology::Topology;
use qnn::model::VqcModel;
use transpile::route::PhysicalCircuit;

/// Per-weight gate metadata: which physical qubits weight `i`'s gate acts
/// on (the paper's association `A(g_i)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateAssoc {
    /// Weight index within the model's weight vector.
    pub weight_index: usize,
    /// Physical qubit operands after routing.
    pub physical_qubits: Vec<usize>,
}

/// Extracts `A(g_i)` for every weight of a routed model.
///
/// # Panics
///
/// Panics if some weight has no associated op in the routed circuit (would
/// indicate a model/router mismatch).
pub fn gate_associations(model: &VqcModel, phys: &PhysicalCircuit) -> Vec<GateAssoc> {
    (0..model.n_weights())
        .map(|i| {
            let slot = model.weight_slot(i);
            let assoc = phys.assoc_for_param(slot);
            assert!(
                !assoc.is_empty(),
                "weight {i} (slot {slot}) has no routed op"
            );
            GateAssoc {
                weight_index: i,
                physical_qubits: assoc[0].clone(),
            }
        })
        .collect()
}

/// How the mask selects gates from the priority table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionRule {
    /// The paper's rule: mask gates with `p_i >= threshold`.
    Threshold(f64),
    /// Compress the top `fraction` of gates by priority (used by the
    /// ablations so noise-aware and noise-agnostic compress the *same
    /// number* of gates and only differ in which ones).
    TopFraction(f64),
}

impl SelectionRule {
    /// Applies the rule to a priority table.
    ///
    /// # Panics
    ///
    /// Panics if a `TopFraction` is outside `[0, 1]`.
    pub fn select(&self, priorities: &[f64]) -> Vec<bool> {
        match *self {
            SelectionRule::Threshold(t) => priorities.iter().map(|&p| p >= t).collect(),
            SelectionRule::TopFraction(f) => {
                assert!((0.0..=1.0).contains(&f), "fraction must be in [0,1]");
                let n = priorities.len();
                let k = ((n as f64) * f).round() as usize;
                let mut idx: Vec<usize> = (0..n).collect();
                idx.sort_by(|&a, &b| priorities[b].total_cmp(&priorities[a]));
                let mut mask = vec![false; n];
                for &i in idx.iter().take(k) {
                    mask[i] = true;
                }
                mask
            }
        }
    }
}

/// Computes the priority table `P`.
///
/// `noise_aware = true` gives `p_i = C(A(g_i)) / d_i`; `false` gives the
/// noise-agnostic `p_i = 1 / d_i`. Distances below `1e-9` yield
/// `f64::INFINITY` (already at a level — free to compress).
pub fn priorities(
    theta: &[f64],
    assocs: &[GateAssoc],
    snapshot: &CalibrationSnapshot,
    topology: &Topology,
    table: &CompressionTable,
    noise_aware: bool,
) -> Vec<f64> {
    assert_eq!(theta.len(), assocs.len(), "one association per weight");
    theta
        .iter()
        .zip(assocs.iter())
        .map(|(&t, assoc)| {
            let (_, d) = table.nearest(t);
            let c = if noise_aware {
                snapshot.noise_on(topology, &assoc.physical_qubits)
            } else {
                1.0
            };
            if d < 1e-9 {
                f64::INFINITY
            } else {
                c / d
            }
        })
        .collect()
}

/// One-call mask generation: priorities then selection.
pub fn noise_aware_mask(
    theta: &[f64],
    assocs: &[GateAssoc],
    snapshot: &CalibrationSnapshot,
    topology: &Topology,
    table: &CompressionTable,
    rule: SelectionRule,
) -> Vec<bool> {
    let p = priorities(theta, assocs, snapshot, topology, table, true);
    rule.select(&p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::executor::{NoiseOptions, NoisyExecutor};
    use std::f64::consts::PI;

    fn setup() -> (VqcModel, Topology, Vec<GateAssoc>, CalibrationSnapshot) {
        let model = VqcModel::paper_model(4, 4, 4, 1);
        let topo = Topology::ibm_belem();
        let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::default());
        let assocs = gate_associations(&model, exec.physical_circuit());
        let snap = CalibrationSnapshot::uniform(&topo, 0, 2e-4, 1e-2, 0.02);
        (model, topo, assocs, snap)
    }

    #[test]
    fn associations_cover_every_weight() {
        let (model, _, assocs, _) = setup();
        assert_eq!(assocs.len(), model.n_weights());
        for (i, a) in assocs.iter().enumerate() {
            assert_eq!(a.weight_index, i);
            assert!(!a.physical_qubits.is_empty() && a.physical_qubits.len() <= 2);
        }
    }

    #[test]
    fn priority_is_infinite_at_levels() {
        let (model, topo, assocs, snap) = setup();
        let table = CompressionTable::standard();
        let mut theta = vec![0.8; model.n_weights()];
        theta[3] = PI; // exactly at a level
        let p = priorities(&theta, &assocs, &snap, &topo, &table, true);
        assert!(p[3].is_infinite());
        assert!(p[0].is_finite());
    }

    #[test]
    fn noisier_qubits_get_higher_priority() {
        let (model, topo, assocs, mut snap) = setup();
        let table = CompressionTable::standard();
        // Make one edge much noisier.
        snap.cnot_error[0] = 0.2; // edge (0,1)
        let theta = vec![0.8; model.n_weights()];
        let p = priorities(&theta, &assocs, &snap, &topo, &table, true);
        // A 2q weight on edge (0,1) must outrank a 1q weight (same d).
        let idx_2q = assocs
            .iter()
            .position(|a| a.physical_qubits == vec![0, 1])
            .expect("some CR gate sits on edge (0,1)");
        let idx_1q = assocs
            .iter()
            .position(|a| a.physical_qubits.len() == 1)
            .unwrap();
        assert!(p[idx_2q] > p[idx_1q]);
    }

    #[test]
    fn agnostic_priorities_ignore_noise() {
        let (model, topo, assocs, mut snap) = setup();
        let table = CompressionTable::standard();
        let theta = vec![0.8; model.n_weights()];
        let p1 = priorities(&theta, &assocs, &snap, &topo, &table, false);
        snap.cnot_error.iter_mut().for_each(|e| *e = 0.4);
        let p2 = priorities(&theta, &assocs, &snap, &topo, &table, false);
        assert_eq!(p1, p2);
    }

    #[test]
    fn closer_to_level_means_higher_priority() {
        let (_, topo, assocs, snap) = setup();
        let table = CompressionTable::standard();
        let mut theta = vec![0.8; assocs.len()];
        theta[0] = 0.1; // close to level 0
        theta[1] = 0.7; // far from any level
        let p = priorities(&theta, &assocs, &snap, &topo, &table, true);
        // Same qubit class (both 1q RY on encoding-free ansatz start).
        assert!(p[0] > p[1]);
    }

    #[test]
    fn threshold_rule_masks_expected_gates() {
        let mask = SelectionRule::Threshold(0.5).select(&[0.4, 0.6, f64::INFINITY]);
        assert_eq!(mask, vec![false, true, true]);
    }

    #[test]
    fn top_fraction_rule_counts() {
        let p = [0.1, 0.9, 0.5, 0.7];
        let mask = SelectionRule::TopFraction(0.5).select(&p);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 2);
        assert!(mask[1] && mask[3]);
    }

    #[test]
    fn top_fraction_zero_and_one() {
        let p = [0.1, 0.2];
        assert_eq!(
            SelectionRule::TopFraction(0.0).select(&p),
            vec![false, false]
        );
        assert_eq!(SelectionRule::TopFraction(1.0).select(&p), vec![true, true]);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_rejected() {
        let _ = SelectionRule::TopFraction(1.5).select(&[0.1]);
    }
}

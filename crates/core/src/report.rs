//! Table formatting and summary statistics for experiment output.
//!
//! Converts per-day accuracy series into the columns Table I reports (mean
//! accuracy, variance, days over 0.8/0.7/0.5) and renders aligned text
//! tables for the bench binaries.

use calibration::stats::{mean, variance};

/// Table I summary of one method's accuracy series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesSummary {
    /// Mean accuracy over the series.
    pub mean_accuracy: f64,
    /// Population variance of the series.
    pub variance: f64,
    /// Days with accuracy > 0.8.
    pub days_over_80: usize,
    /// Days with accuracy > 0.7.
    pub days_over_70: usize,
    /// Days with accuracy > 0.5.
    pub days_over_50: usize,
}

impl SeriesSummary {
    /// Summarises an accuracy series.
    ///
    /// # Examples
    ///
    /// ```
    /// use qucad::report::SeriesSummary;
    ///
    /// let s = SeriesSummary::from_series(&[0.9, 0.75, 0.4]);
    /// assert_eq!(s.days_over_80, 1);
    /// assert_eq!(s.days_over_70, 2);
    /// assert_eq!(s.days_over_50, 2);
    /// ```
    pub fn from_series(acc: &[f64]) -> Self {
        SeriesSummary {
            mean_accuracy: mean(acc),
            variance: variance(acc),
            days_over_80: acc.iter().filter(|&&a| a > 0.8).count(),
            days_over_70: acc.iter().filter(|&&a| a > 0.7).count(),
            days_over_50: acc.iter().filter(|&&a| a > 0.5).count(),
        }
    }
}

/// Renders an aligned plain-text table.
///
/// # Examples
///
/// ```
/// use qucad::report::render_table;
///
/// let t = render_table(
///     &["method", "acc"],
///     &[vec!["Baseline".into(), "0.59".into()]],
/// );
/// assert!(t.contains("Baseline"));
/// ```
///
/// # Panics
///
/// Panics if any row length differs from the header length.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    for r in rows {
        assert_eq!(r.len(), ncols, "row width mismatch");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!(" {:<width$} |", c, width = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = headers
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    let sep = {
        let mut s = String::from("|");
        for w in &widths {
            s.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        s
    };
    let mut out = String::new();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r));
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage with two decimals (e.g. `"75.67%"`).
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Formats a signed percentage-point delta (e.g. `"+16.32%"`).
pub fn pct_delta(x: f64) -> String {
    format!("{:+.2}%", 100.0 * x)
}

/// Writes CSV (comma-separated, header first) for downstream plotting.
///
/// # Panics
///
/// Panics if any row length differs from the header length.
pub fn to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut out = headers.join(",");
    out.push('\n');
    for r in rows {
        assert_eq!(r.len(), ncols, "row width mismatch");
        out.push_str(&r.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_counts_thresholds() {
        let s = SeriesSummary::from_series(&[0.85, 0.81, 0.71, 0.55, 0.2]);
        assert_eq!(s.days_over_80, 2);
        assert_eq!(s.days_over_70, 3);
        assert_eq!(s.days_over_50, 4);
        assert!((s.mean_accuracy - 0.624).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_series() {
        let s = SeriesSummary::from_series(&[]);
        assert_eq!(s.mean_accuracy, 0.0);
        assert_eq!(s.days_over_50, 0);
    }

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "long-header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyy".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.7567), "75.67%");
        assert_eq!(pct_delta(0.1632), "+16.32%");
        assert_eq!(pct_delta(-0.0065), "-0.65%");
    }

    #[test]
    fn csv_output() {
        let csv = to_csv(&["day", "acc"], &[vec!["0".into(), "0.8".into()]]);
        assert_eq!(csv, "day,acc\n0,0.8\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }
}

//! The model repository: offline-built `(model, calibration)` pairs and the
//! online matching logic (the paper's Sec. III-C/III-D).
//!
//! Each [`RepositoryEntry`] pairs a compressed model `M'` with the
//! calibration centroid `D'` it was optimised for. Online, the manager
//! matches the day's calibration `Dc` against the entries under the
//! weighted L1 distance and applies the two guidance rules:
//!
//! - **Guidance 1**: if the nearest entry is farther than
//!   `th_w = max_g avg-intra-cluster-distance(g)`, predict degradation and
//!   request a fresh compression (the new pair joins the repository);
//! - **Guidance 2**: entries whose cluster mean accuracy falls below the
//!   user's requirement are *invalid*; matching one yields a failure
//!   report instead of a model.

use crate::cluster::weighted_l1;
use calibration::snapshot::CalibrationSnapshot;

/// One repository item: a compressed model and its calibration centroid.
#[derive(Debug, Clone, PartialEq)]
pub struct RepositoryEntry {
    /// Calibration feature vector the model was compressed for (`D'`).
    pub centroid: Vec<f64>,
    /// Compressed model weights (`M'`).
    pub weights: Vec<f64>,
    /// Mean accuracy of the originating cluster (Guidance 2 signal);
    /// `None` when unknown (e.g. online-added entries).
    pub mean_accuracy: Option<f64>,
    /// Day the entry was created (offline entries use the centroid's
    /// nominal day 0).
    pub origin_day: usize,
}

/// Outcome of matching a day's calibration against the repository.
#[derive(Debug, Clone, PartialEq)]
pub enum MatchOutcome {
    /// Use entry `index`; its weighted distance was within threshold.
    Hit {
        /// Index of the matched entry.
        index: usize,
        /// Weighted L1 distance to the matched centroid.
        distance: f64,
    },
    /// No entry is close enough (Guidance 1): compress a new model.
    Miss {
        /// Distance to the nearest entry (`∞` when the repository is empty).
        nearest_distance: f64,
    },
    /// The nearest entry is an invalid cluster (Guidance 2): report
    /// failure to the user instead of serving a model.
    Invalid {
        /// Index of the invalid matched entry.
        index: usize,
        /// Its predicted (cluster-mean) accuracy.
        predicted_accuracy: f64,
    },
}

/// The repository plus its matching policy.
///
/// # Examples
///
/// ```
/// use qucad::repository::{ModelRepository, RepositoryEntry, MatchOutcome};
///
/// let mut repo = ModelRepository::new(vec![1.0, 1.0], 0.5, None);
/// repo.push(RepositoryEntry {
///     centroid: vec![0.0, 0.0],
///     weights: vec![0.1, 0.2],
///     mean_accuracy: Some(0.9),
///     origin_day: 0,
/// });
/// assert!(matches!(repo.match_features(&[0.1, 0.1]), MatchOutcome::Hit { .. }));
/// assert!(matches!(repo.match_features(&[9.0, 9.0]), MatchOutcome::Miss { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRepository {
    entries: Vec<RepositoryEntry>,
    distance_weights: Vec<f64>,
    threshold: f64,
    accuracy_requirement: Option<f64>,
}

impl ModelRepository {
    /// Creates an empty repository.
    ///
    /// `distance_weights` are the performance-aware per-dimension weights;
    /// `threshold` is Guidance 1's `th_w`; `accuracy_requirement` enables
    /// Guidance 2 when set.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or not finite, or if any
    /// distance weight is non-finite (a NaN weight would poison every
    /// distance this repository ever computes).
    pub fn new(
        distance_weights: Vec<f64>,
        threshold: f64,
        accuracy_requirement: Option<f64>,
    ) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "threshold must be a finite non-negative number"
        );
        assert!(
            distance_weights.iter().all(|w| w.is_finite()),
            "distance weights must be finite"
        );
        ModelRepository {
            entries: Vec::new(),
            distance_weights,
            threshold,
            accuracy_requirement,
        }
    }

    /// The stored entries.
    pub fn entries(&self) -> &[RepositoryEntry] {
        &self.entries
    }

    /// Number of stored models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Guidance-1 distance threshold `th_w`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The per-dimension distance weights.
    pub fn distance_weights(&self) -> &[f64] {
        &self.distance_weights
    }

    /// Adds an entry.
    ///
    /// # Panics
    ///
    /// Panics if the centroid dimension mismatches the distance weights
    /// or the centroid contains non-finite values.
    pub fn push(&mut self, entry: RepositoryEntry) {
        assert_eq!(
            entry.centroid.len(),
            self.distance_weights.len(),
            "centroid dimension mismatch"
        );
        assert!(
            entry.centroid.iter().all(|c| c.is_finite()),
            "centroid features must be finite"
        );
        self.entries.push(entry);
    }

    /// Matches a calibration feature vector against the repository.
    ///
    /// # Panics
    ///
    /// Panics if `features` contains NaN or an infinity: a NaN distance
    /// compares false against every candidate and would silently mis-order
    /// the scan (e.g. returning a bogus `Hit` on whichever entry happened
    /// to be examined first), so non-finite calibration input is rejected
    /// at the boundary instead. Serving front-ends validate before calling
    /// and map this contract onto their own error responses.
    pub fn match_features(&self, features: &[f64]) -> MatchOutcome {
        assert!(
            features.iter().all(|f| f.is_finite()),
            "match features must be finite"
        );
        let mut best: Option<(usize, f64)> = None;
        for (i, e) in self.entries.iter().enumerate() {
            let d = weighted_l1(&self.distance_weights, &e.centroid, features);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        match best {
            None => MatchOutcome::Miss {
                nearest_distance: f64::INFINITY,
            },
            Some((index, distance)) => {
                if distance > self.threshold {
                    MatchOutcome::Miss {
                        nearest_distance: distance,
                    }
                } else if let (Some(req), Some(acc)) =
                    (self.accuracy_requirement, self.entries[index].mean_accuracy)
                {
                    if acc < req {
                        MatchOutcome::Invalid {
                            index,
                            predicted_accuracy: acc,
                        }
                    } else {
                        MatchOutcome::Hit { index, distance }
                    }
                } else {
                    MatchOutcome::Hit { index, distance }
                }
            }
        }
    }

    /// Convenience: matches a snapshot by its feature vector.
    pub fn match_snapshot(&self, snapshot: &CalibrationSnapshot) -> MatchOutcome {
        self.match_features(&snapshot.feature_vector())
    }

    /// Weights of entry `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn weights_of(&self, index: usize) -> &[f64] {
        &self.entries[index].weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(centroid: Vec<f64>, acc: Option<f64>) -> RepositoryEntry {
        RepositoryEntry {
            weights: vec![0.0; 4],
            centroid,
            mean_accuracy: acc,
            origin_day: 0,
        }
    }

    fn repo() -> ModelRepository {
        let mut r = ModelRepository::new(vec![1.0, 2.0], 1.0, Some(0.6));
        r.push(entry(vec![0.0, 0.0], Some(0.9)));
        r.push(entry(vec![10.0, 0.0], Some(0.4))); // invalid cluster
        r
    }

    #[test]
    fn empty_repository_always_misses() {
        let r = ModelRepository::new(vec![1.0], 5.0, None);
        match r.match_features(&[0.0]) {
            MatchOutcome::Miss { nearest_distance } => {
                assert!(nearest_distance.is_infinite());
            }
            other => panic!("expected Miss, got {other:?}"),
        }
    }

    #[test]
    fn near_centroid_hits() {
        let r = repo();
        match r.match_features(&[0.2, 0.1]) {
            MatchOutcome::Hit { index, distance } => {
                assert_eq!(index, 0);
                // 1·0.2 + 2·0.1
                assert!((distance - 0.4).abs() < 1e-12);
            }
            other => panic!("expected Hit, got {other:?}"),
        }
    }

    #[test]
    fn far_calibration_misses_with_distance() {
        let r = repo();
        match r.match_features(&[5.0, 0.0]) {
            MatchOutcome::Miss { nearest_distance } => {
                assert!((nearest_distance - 5.0).abs() < 1e-12);
            }
            other => panic!("expected Miss, got {other:?}"),
        }
    }

    #[test]
    fn invalid_cluster_reports_failure() {
        let r = repo();
        match r.match_features(&[10.1, 0.0]) {
            MatchOutcome::Invalid {
                index,
                predicted_accuracy,
            } => {
                assert_eq!(index, 1);
                assert!((predicted_accuracy - 0.4).abs() < 1e-12);
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn no_requirement_disables_guidance_two() {
        let mut r = ModelRepository::new(vec![1.0, 1.0], 1.0, None);
        r.push(entry(vec![0.0, 0.0], Some(0.1)));
        assert!(matches!(
            r.match_features(&[0.0, 0.0]),
            MatchOutcome::Hit { .. }
        ));
    }

    #[test]
    fn weighted_distance_used_for_matching() {
        // Weight 0 on dim 0 → differences there are ignored.
        let mut r = ModelRepository::new(vec![0.0, 1.0], 0.5, None);
        r.push(entry(vec![0.0, 0.0], None));
        assert!(matches!(
            r.match_features(&[100.0, 0.1]),
            MatchOutcome::Hit { .. }
        ));
        assert!(matches!(
            r.match_features(&[0.0, 2.0]),
            MatchOutcome::Miss { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "centroid dimension")]
    fn dimension_mismatch_rejected() {
        let mut r = ModelRepository::new(vec![1.0, 1.0], 1.0, None);
        r.push(entry(vec![0.0], None));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn negative_threshold_rejected() {
        let _ = ModelRepository::new(vec![1.0], -1.0, None);
    }

    #[test]
    #[should_panic(expected = "match features must be finite")]
    fn nan_features_rejected() {
        let r = repo();
        let _ = r.match_features(&[f64::NAN, 0.0]);
    }

    #[test]
    #[should_panic(expected = "match features must be finite")]
    fn infinite_features_rejected() {
        let r = repo();
        let _ = r.match_features(&[0.0, f64::INFINITY]);
    }

    #[test]
    fn negative_zero_features_match_like_positive_zero() {
        // -0.0 is finite and must behave exactly like +0.0 (|x − c| kills
        // the sign), not trip the non-finite rejection.
        let r = repo();
        let neg = r.match_features(&[-0.0, -0.0]);
        let pos = r.match_features(&[0.0, 0.0]);
        assert_eq!(neg, pos);
        match neg {
            MatchOutcome::Hit { index, distance } => {
                assert_eq!(index, 0);
                assert_eq!(distance, 0.0);
            }
            other => panic!("expected Hit, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "distance weights must be finite")]
    fn nan_distance_weights_rejected_at_construction() {
        let _ = ModelRepository::new(vec![1.0, f64::NAN], 1.0, None);
    }

    #[test]
    #[should_panic(expected = "centroid features must be finite")]
    fn non_finite_centroid_rejected_at_push() {
        let mut r = ModelRepository::new(vec![1.0, 1.0], 1.0, None);
        r.push(entry(vec![0.0, f64::NEG_INFINITY], None));
    }

    #[test]
    fn concurrent_reads_agree_with_sequential_matching() {
        // The serving path matches one shared repository from many
        // threads; `match_features` takes `&self`, so concurrent reads
        // must be safe and return exactly the sequential outcomes.
        let r = repo();
        let queries: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![f64::from(i) * 0.3, f64::from(i % 7) * 0.2])
            .collect();
        let want: Vec<MatchOutcome> = queries.iter().map(|q| r.match_features(q)).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        queries
                            .iter()
                            .map(|q| r.match_features(q))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                let got = h.join().expect("matcher thread panicked");
                assert_eq!(got, want);
            }
        });
    }
}

//! Property-based tests of the QuCAD core algorithms.

use proptest::prelude::*;
use qucad::cluster::{kmedians_weighted_l1, l2_sq, performance_weights, weighted_l1};
use qucad::levels::{circular_distance, normalize, CompressionTable};
use qucad::mask::SelectionRule;
use qucad::report::SeriesSummary;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Angle normalisation lands in [0, 2π) and preserves the angle class.
    #[test]
    fn normalize_is_canonical(theta in -50.0f64..50.0) {
        let a = normalize(theta);
        prop_assert!((0.0..std::f64::consts::TAU).contains(&a));
        // sin/cos agree → same angle modulo 2π.
        prop_assert!((theta.sin() - a.sin()).abs() < 1e-9);
        prop_assert!((theta.cos() - a.cos()).abs() < 1e-9);
    }

    /// Circular distance is a metric on the circle (symmetry + triangle).
    #[test]
    fn circular_distance_metric(
        a in 0.0f64..std::f64::consts::TAU,
        b in 0.0f64..std::f64::consts::TAU,
        c in 0.0f64..std::f64::consts::TAU,
    ) {
        prop_assert!((circular_distance(a, b) - circular_distance(b, a)).abs() < 1e-12);
        prop_assert!(circular_distance(a, a) < 1e-12);
        prop_assert!(
            circular_distance(a, c)
                <= circular_distance(a, b) + circular_distance(b, c) + 1e-9
        );
        prop_assert!(circular_distance(a, b) <= std::f64::consts::PI + 1e-12);
    }

    /// Snapping is idempotent and never farther than half the level gap.
    #[test]
    fn snapping_idempotent(theta in -20.0f64..20.0) {
        let t = CompressionTable::standard();
        let (level, d) = t.nearest(theta);
        prop_assert!(d <= std::f64::consts::FRAC_PI_4 + 1e-9);
        let (level2, d2) = t.nearest(level);
        prop_assert!((level - level2).abs() < 1e-12);
        prop_assert!(d2 < 1e-12);
    }

    /// `best_level` with zero penalty reduces to `nearest`; any penalty
    /// choice still returns a valid table level.
    #[test]
    fn best_level_valid(theta in -20.0f64..20.0, beta in 0.0f64..10.0) {
        let t = CompressionTable::standard();
        let (plain, _) = t.nearest(theta);
        let (free, _) = t.best_level(theta, |_| 0.0);
        prop_assert_eq!(plain, free);
        let (biased, _) = t.best_level(theta, |l| if l == 0.0 { 0.0 } else { beta });
        prop_assert!(t.levels().contains(&biased));
    }

    /// Weighted L1 satisfies metric axioms for non-negative weights.
    #[test]
    fn weighted_l1_metric(
        w in proptest::collection::vec(0.0f64..3.0, 5),
        a in proptest::collection::vec(-5.0f64..5.0, 5),
        b in proptest::collection::vec(-5.0f64..5.0, 5),
        c in proptest::collection::vec(-5.0f64..5.0, 5),
    ) {
        prop_assert!(weighted_l1(&w, &a, &a) < 1e-12);
        prop_assert!((weighted_l1(&w, &a, &b) - weighted_l1(&w, &b, &a)).abs() < 1e-12);
        prop_assert!(
            weighted_l1(&w, &a, &c)
                <= weighted_l1(&w, &a, &b) + weighted_l1(&w, &b, &c) + 1e-9
        );
    }

    /// Performance weights are correlations: bounded in [0, 1].
    #[test]
    fn performance_weights_bounded(
        cols in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 3), 4..24),
    ) {
        let acc: Vec<f64> = cols.iter().map(|s| (s[0] + s[1]) / 2.0).collect();
        let w = performance_weights(&cols, &acc);
        for v in w {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    /// K-medians: every sample is assigned to its nearest centroid
    /// (assignment optimality at convergence) and the objective is the sum
    /// of assigned distances.
    #[test]
    fn kmedians_assignment_optimal(
        samples in proptest::collection::vec(
            proptest::collection::vec(-4.0f64..4.0, 3), 8..32),
        k in 1usize..4,
        seed in 0u64..50,
    ) {
        prop_assume!(k <= samples.len());
        let w = vec![1.0, 0.5, 2.0];
        let clustering = kmedians_weighted_l1(&samples, &w, k, seed, 60);
        let mut total = 0.0;
        for (i, s) in samples.iter().enumerate() {
            let assigned = weighted_l1(&w, &clustering.centroids[clustering.assignment[i]], s);
            for c in &clustering.centroids {
                prop_assert!(assigned <= weighted_l1(&w, c, s) + 1e-9);
            }
            total += assigned;
        }
        prop_assert!((total - clustering.objective).abs() < 1e-6);
    }

    /// More clusters never raise the (converged) objective in practice on
    /// the same seed family — weak sanity on WSAE monotonicity.
    #[test]
    fn kmedians_objective_reasonable(
        samples in proptest::collection::vec(
            proptest::collection::vec(-2.0f64..2.0, 2), 12..24),
    ) {
        let w = vec![1.0, 1.0];
        let c1 = kmedians_weighted_l1(&samples, &w, 1, 3, 60);
        let ck = kmedians_weighted_l1(&samples, &w, samples.len(), 3, 60);
        // k = n puts a centroid on every sample: objective 0.
        prop_assert!(ck.objective < 1e-9);
        prop_assert!(c1.objective >= -1e-12);
    }

    /// L2 distance is non-negative and zero iff equal points.
    #[test]
    fn l2_axioms(
        a in proptest::collection::vec(-5.0f64..5.0, 4),
        b in proptest::collection::vec(-5.0f64..5.0, 4),
    ) {
        prop_assert!(l2_sq(&a, &b) >= 0.0);
        prop_assert!(l2_sq(&a, &a) < 1e-12);
    }

    /// Threshold masks are monotone: raising the threshold never masks
    /// more gates; TopFraction masks exactly ⌈n·f⌉ gates.
    #[test]
    fn selection_rules_monotone(
        p in proptest::collection::vec(0.0f64..2.0, 1..40),
        t1 in 0.0f64..2.0,
        dt in 0.0f64..1.0,
        frac in 0.0f64..1.0,
    ) {
        let lo = SelectionRule::Threshold(t1).select(&p);
        let hi = SelectionRule::Threshold(t1 + dt).select(&p);
        for (l, h) in lo.iter().zip(hi.iter()) {
            prop_assert!(*l || !*h, "raising threshold must not add masks");
        }
        let tf = SelectionRule::TopFraction(frac).select(&p);
        let expect = ((p.len() as f64) * frac).round() as usize;
        prop_assert_eq!(tf.iter().filter(|&&m| m).count(), expect);
    }

    /// Series summaries count days consistently (over-0.8 ⊆ over-0.7 ⊆
    /// over-0.5) and the mean is within the series range.
    #[test]
    fn summary_consistent(acc in proptest::collection::vec(0.0f64..1.0, 1..100)) {
        let s = SeriesSummary::from_series(&acc);
        prop_assert!(s.days_over_80 <= s.days_over_70);
        prop_assert!(s.days_over_70 <= s.days_over_50);
        let lo = acc.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = acc.iter().copied().fold(0.0, f64::max);
        prop_assert!(s.mean_accuracy >= lo - 1e-12 && s.mean_accuracy <= hi + 1e-12);
        prop_assert!(s.variance >= 0.0);
    }
}

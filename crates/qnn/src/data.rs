//! Classification datasets used by the paper's evaluation.
//!
//! Three tasks (Sec. IV-A):
//!
//! - **Iris** — Fisher's data embedded verbatim (public domain), 150×4,
//!   3 classes, split 2/3–1/3 as in the paper;
//! - **4-class MNIST** — the paper downsamples digits {0,1,3,6} to 4×4;
//!   real MNIST is unavailable offline, so a seeded generator produces
//!   class-prototype glyphs with pixel noise and shift jitter
//!   (substitution, DESIGN.md §4);
//! - **Seismic** — the FDSN earthquake-detection set is replaced by seeded
//!   synthetic seismograms (AR(1) background ± decaying-wavelet arrivals)
//!   reduced to 4 detection features (substitution, DESIGN.md §4).
//!
//! All features are min-max scaled to `[0, π]` angle range.

use crate::encoding::minmax_scale;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One labelled sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Encoded feature angles.
    pub features: Vec<f64>,
    /// Class label in `0..n_classes`.
    pub label: usize,
}

/// A train/test split of a classification task.
///
/// # Examples
///
/// ```
/// use qnn::data::Dataset;
///
/// let iris = Dataset::iris(7);
/// assert_eq!(iris.n_classes, 3);
/// assert_eq!(iris.train.len() + iris.test.len(), 150);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Task name.
    pub name: String,
    /// Number of classes.
    pub n_classes: usize,
    /// Training samples.
    pub train: Vec<Sample>,
    /// Held-out test samples.
    pub test: Vec<Sample>,
}

impl Dataset {
    /// Feature dimensionality (0 if the dataset is empty).
    pub fn feature_dim(&self) -> usize {
        self.train
            .first()
            .or(self.test.first())
            .map_or(0, |s| s.features.len())
    }

    /// A copy truncated to at most `n_train`/`n_test` samples, preserving
    /// order (used to bound experiment run time).
    pub fn truncated(&self, n_train: usize, n_test: usize) -> Dataset {
        Dataset {
            name: self.name.clone(),
            n_classes: self.n_classes,
            train: self.train.iter().take(n_train).cloned().collect(),
            test: self.test.iter().take(n_test).cloned().collect(),
        }
    }

    /// Test labels in order.
    pub fn test_labels(&self) -> Vec<usize> {
        self.test.iter().map(|s| s.label).collect()
    }

    /// Fisher's Iris: 150 samples, 4 features, 3 classes, shuffled with
    /// `seed` and split 100 train / 50 test (the paper's 66.6% / 33.4%).
    pub fn iris(seed: u64) -> Dataset {
        let raw: Vec<Vec<f64>> = IRIS.iter().map(|r| vec![r.0, r.1, r.2, r.3]).collect();
        let labels: Vec<usize> = IRIS.iter().map(|r| r.4).collect();
        let scaled = minmax_scale(&raw, 0.0, std::f64::consts::PI);
        let mut samples: Vec<Sample> = scaled
            .into_iter()
            .zip(labels)
            .map(|(features, label)| Sample { features, label })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        samples.shuffle(&mut rng);
        let test = samples.split_off(100);
        Dataset {
            name: "iris".into(),
            n_classes: 3,
            train: samples,
            test,
        }
    }

    /// Synthetic 4-class MNIST stand-in: 4×4 glyphs for digits {0,1,3,6}
    /// with Gaussian pixel noise and ±1-pixel shift jitter.
    pub fn mnist4(n_train: usize, n_test: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let gen = |rng: &mut StdRng, n: usize| -> Vec<Sample> {
            (0..n)
                .map(|i| {
                    let label = i % 4;
                    Sample {
                        features: mnist_glyph(label, rng),
                        label,
                    }
                })
                .collect()
        };
        let train = gen(&mut rng, n_train);
        let test = gen(&mut rng, n_test);
        Dataset {
            name: "mnist4".into(),
            n_classes: 4,
            train,
            test,
        }
    }

    /// Synthetic earthquake detection: binary classification of seismogram
    /// feature vectors (event present vs. background noise).
    pub fn seismic(n_train: usize, n_test: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let total = n_train + n_test;
        let mut raw = Vec::with_capacity(total);
        let mut labels = Vec::with_capacity(total);
        for i in 0..total {
            let label = i % 2;
            raw.push(seismic_features(label == 1, &mut rng));
            labels.push(label);
        }
        let scaled = minmax_scale(&raw, 0.0, std::f64::consts::PI);
        let mut samples: Vec<Sample> = scaled
            .into_iter()
            .zip(labels)
            .map(|(features, label)| Sample { features, label })
            .collect();
        let test = samples.split_off(n_train);
        Dataset {
            name: "seismic".into(),
            n_classes: 2,
            train: samples,
            test,
        }
    }
}

// --- MNIST-4 generator ------------------------------------------------------

/// 4×4 prototype glyphs for digits 0, 1, 3, 6 (row-major, intensity 0/1).
const GLYPHS: [[f64; 16]; 4] = [
    // 0: ring
    [
        0., 1., 1., 0., 1., 0., 0., 1., 1., 0., 0., 1., 0., 1., 1., 0.,
    ],
    // 1: vertical stroke with base
    [
        0., 0., 1., 0., 0., 1., 1., 0., 0., 0., 1., 0., 0., 1., 1., 1.,
    ],
    // 3: double bump
    [
        1., 1., 1., 0., 0., 0., 1., 0., 0., 1., 1., 0., 1., 1., 1., 0.,
    ],
    // 6: loop with open top
    [
        0., 1., 1., 0., 1., 0., 0., 0., 1., 1., 1., 0., 1., 1., 1., 0.,
    ],
];

fn mnist_glyph(class: usize, rng: &mut StdRng) -> Vec<f64> {
    let proto = &GLYPHS[class];
    // Shift jitter: with probability 0.3, roll by ±1 along one axis
    // (zero fill). Full ±1 jitter on a 4×4 canvas destroys too much glyph
    // mass to stay learnable.
    let (dx, dy): (i32, i32) = if rng.gen::<f64>() < 0.3 {
        if rng.gen::<bool>() {
            (if rng.gen::<bool>() { 1 } else { -1 }, 0)
        } else {
            (0, if rng.gen::<bool>() { 1 } else { -1 })
        }
    } else {
        (0, 0)
    };
    let mut img = [0.0f64; 16];
    for y in 0..4i32 {
        for x in 0..4i32 {
            let sx = x - dx;
            let sy = y - dy;
            if (0..4).contains(&sx) && (0..4).contains(&sy) {
                img[(y * 4 + x) as usize] = proto[(sy * 4 + sx) as usize];
            }
        }
    }
    // Pixel noise, clamp, scale to angles.
    img.iter()
        .map(|&p| {
            let noisy = (p + 0.18 * calibration::stats::sample_normal(rng)).clamp(0.0, 1.0);
            noisy * std::f64::consts::PI
        })
        .collect()
}

// --- Seismic generator ------------------------------------------------------

/// Generates a 64-sample trace and reduces it to 4 detection features:
/// log energy, max STA/LTA ratio, zero-crossing rate, crest factor.
fn seismic_features(event: bool, rng: &mut StdRng) -> Vec<f64> {
    const LEN: usize = 64;
    let mut trace = [0.0f64; LEN];
    // AR(1) coloured background noise.
    let mut x = 0.0;
    for slot in &mut trace {
        x = 0.7 * x + calibration::stats::sample_normal(rng);
        *slot = x;
    }
    if event {
        let onset = rng.gen_range(16..48);
        let amp = 3.5 + 2.5 * calibration::stats::sample_normal(rng).abs();
        for (dt, slot) in trace[onset..].iter_mut().enumerate() {
            let dt = dt as f64;
            *slot += amp * (-0.10 * dt).exp() * (0.9 * dt).sin();
        }
    }

    let energy: f64 = trace.iter().map(|v| v * v).sum();
    let log_energy = energy.max(1e-9).ln();

    // STA/LTA: short window 4, long window 16.
    let mut max_ratio = 0.0f64;
    for t in 16..LEN - 4 {
        let sta: f64 = trace[t..t + 4].iter().map(|v| v.abs()).sum::<f64>() / 4.0;
        let lta: f64 = trace[t - 16..t].iter().map(|v| v.abs()).sum::<f64>() / 16.0;
        if lta > 1e-9 {
            max_ratio = max_ratio.max(sta / lta);
        }
    }

    let zero_crossings = trace
        .windows(2)
        .filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0))
        .count() as f64
        / (LEN - 1) as f64;

    let peak = trace.iter().map(|v| v.abs()).fold(0.0, f64::max);
    let mean_abs = trace.iter().map(|v| v.abs()).sum::<f64>() / LEN as f64;
    let crest = peak / mean_abs.max(1e-9);

    // Log-compress heavy-tailed features so the min-max angle scaling is
    // not dominated by outliers.
    vec![
        log_energy,
        (1.0 + max_ratio).ln(),
        zero_crossings,
        (1.0 + crest).ln(),
    ]
}

/// Fisher's Iris data: (sepal length, sepal width, petal length, petal
/// width, class), classes 0 = setosa, 1 = versicolor, 2 = virginica.
#[rustfmt::skip]
const IRIS: [(f64, f64, f64, f64, usize); 150] = [
    (5.1,3.5,1.4,0.2,0),(4.9,3.0,1.4,0.2,0),(4.7,3.2,1.3,0.2,0),(4.6,3.1,1.5,0.2,0),
    (5.0,3.6,1.4,0.2,0),(5.4,3.9,1.7,0.4,0),(4.6,3.4,1.4,0.3,0),(5.0,3.4,1.5,0.2,0),
    (4.4,2.9,1.4,0.2,0),(4.9,3.1,1.5,0.1,0),(5.4,3.7,1.5,0.2,0),(4.8,3.4,1.6,0.2,0),
    (4.8,3.0,1.4,0.1,0),(4.3,3.0,1.1,0.1,0),(5.8,4.0,1.2,0.2,0),(5.7,4.4,1.5,0.4,0),
    (5.4,3.9,1.3,0.4,0),(5.1,3.5,1.4,0.3,0),(5.7,3.8,1.7,0.3,0),(5.1,3.8,1.5,0.3,0),
    (5.4,3.4,1.7,0.2,0),(5.1,3.7,1.5,0.4,0),(4.6,3.6,1.0,0.2,0),(5.1,3.3,1.7,0.5,0),
    (4.8,3.4,1.9,0.2,0),(5.0,3.0,1.6,0.2,0),(5.0,3.4,1.6,0.4,0),(5.2,3.5,1.5,0.2,0),
    (5.2,3.4,1.4,0.2,0),(4.7,3.2,1.6,0.2,0),(4.8,3.1,1.6,0.2,0),(5.4,3.4,1.5,0.4,0),
    (5.2,4.1,1.5,0.1,0),(5.5,4.2,1.4,0.2,0),(4.9,3.1,1.5,0.2,0),(5.0,3.2,1.2,0.2,0),
    (5.5,3.5,1.3,0.2,0),(4.9,3.6,1.4,0.1,0),(4.4,3.0,1.3,0.2,0),(5.1,3.4,1.5,0.2,0),
    (5.0,3.5,1.3,0.3,0),(4.5,2.3,1.3,0.3,0),(4.4,3.2,1.3,0.2,0),(5.0,3.5,1.6,0.6,0),
    (5.1,3.8,1.9,0.4,0),(4.8,3.0,1.4,0.3,0),(5.1,3.8,1.6,0.2,0),(4.6,3.2,1.4,0.2,0),
    (5.3,3.7,1.5,0.2,0),(5.0,3.3,1.4,0.2,0),
    (7.0,3.2,4.7,1.4,1),(6.4,3.2,4.5,1.5,1),(6.9,3.1,4.9,1.5,1),(5.5,2.3,4.0,1.3,1),
    (6.5,2.8,4.6,1.5,1),(5.7,2.8,4.5,1.3,1),(6.3,3.3,4.7,1.6,1),(4.9,2.4,3.3,1.0,1),
    (6.6,2.9,4.6,1.3,1),(5.2,2.7,3.9,1.4,1),(5.0,2.0,3.5,1.0,1),(5.9,3.0,4.2,1.5,1),
    (6.0,2.2,4.0,1.0,1),(6.1,2.9,4.7,1.4,1),(5.6,2.9,3.6,1.3,1),(6.7,3.1,4.4,1.4,1),
    (5.6,3.0,4.5,1.5,1),(5.8,2.7,4.1,1.0,1),(6.2,2.2,4.5,1.5,1),(5.6,2.5,3.9,1.1,1),
    (5.9,3.2,4.8,1.8,1),(6.1,2.8,4.0,1.3,1),(6.3,2.5,4.9,1.5,1),(6.1,2.8,4.7,1.2,1),
    (6.4,2.9,4.3,1.3,1),(6.6,3.0,4.4,1.4,1),(6.8,2.8,4.8,1.4,1),(6.7,3.0,5.0,1.7,1),
    (6.0,2.9,4.5,1.5,1),(5.7,2.6,3.5,1.0,1),(5.5,2.4,3.8,1.1,1),(5.5,2.4,3.7,1.0,1),
    (5.8,2.7,3.9,1.2,1),(6.0,2.7,5.1,1.6,1),(5.4,3.0,4.5,1.5,1),(6.0,3.4,4.5,1.6,1),
    (6.7,3.1,4.7,1.5,1),(6.3,2.3,4.4,1.3,1),(5.6,3.0,4.1,1.3,1),(5.5,2.5,4.0,1.3,1),
    (5.5,2.6,4.4,1.2,1),(6.1,3.0,4.6,1.4,1),(5.8,2.6,4.0,1.2,1),(5.0,2.3,3.3,1.0,1),
    (5.6,2.7,4.2,1.3,1),(5.7,3.0,4.2,1.2,1),(5.7,2.9,4.2,1.3,1),(6.2,2.9,4.3,1.3,1),
    (5.1,2.5,3.0,1.1,1),(5.7,2.8,4.1,1.3,1),
    (6.3,3.3,6.0,2.5,2),(5.8,2.7,5.1,1.9,2),(7.1,3.0,5.9,2.1,2),(6.3,2.9,5.6,1.8,2),
    (6.5,3.0,5.8,2.2,2),(7.6,3.0,6.6,2.1,2),(4.9,2.5,4.5,1.7,2),(7.3,2.9,6.3,1.8,2),
    (6.7,2.5,5.8,1.8,2),(7.2,3.6,6.1,2.5,2),(6.5,3.2,5.1,2.0,2),(6.4,2.7,5.3,1.9,2),
    (6.8,3.0,5.5,2.1,2),(5.7,2.5,5.0,2.0,2),(5.8,2.8,5.1,2.4,2),(6.4,3.2,5.3,2.3,2),
    (6.5,3.0,5.5,1.8,2),(7.7,3.8,6.7,2.2,2),(7.7,2.6,6.9,2.3,2),(6.0,2.2,5.0,1.5,2),
    (6.9,3.2,5.7,2.3,2),(5.6,2.8,4.9,2.0,2),(7.7,2.8,6.7,2.0,2),(6.3,2.7,4.9,1.8,2),
    (6.7,3.3,5.7,2.1,2),(7.2,3.2,6.0,1.8,2),(6.2,2.8,4.8,1.8,2),(6.1,3.0,4.9,1.8,2),
    (6.4,2.8,5.6,2.1,2),(7.2,3.0,5.8,1.6,2),(7.4,2.8,6.1,1.9,2),(7.9,3.8,6.4,2.0,2),
    (6.4,2.8,5.6,2.2,2),(6.3,2.8,5.1,1.5,2),(6.1,2.6,5.6,1.4,2),(7.7,3.0,6.1,2.3,2),
    (6.3,3.4,5.6,2.4,2),(6.4,3.1,5.5,1.8,2),(6.0,3.0,4.8,1.8,2),(6.9,3.1,5.4,2.1,2),
    (6.7,3.1,5.6,2.4,2),(6.9,3.1,5.1,2.3,2),(5.8,2.7,5.1,1.9,2),(6.8,3.2,5.9,2.3,2),
    (6.7,3.3,5.7,2.5,2),(6.7,3.0,5.2,2.3,2),(6.3,2.5,5.0,1.9,2),(6.5,3.0,5.2,2.0,2),
    (6.2,3.4,5.4,2.3,2),(5.9,3.0,5.1,1.8,2),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iris_split_and_classes() {
        let d = Dataset::iris(1);
        assert_eq!(d.train.len(), 100);
        assert_eq!(d.test.len(), 50);
        assert_eq!(d.feature_dim(), 4);
        for s in d.train.iter().chain(d.test.iter()) {
            assert!(s.label < 3);
            for &f in &s.features {
                assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&f));
            }
        }
        // All three classes present in both splits.
        for split in [&d.train, &d.test] {
            for c in 0..3 {
                assert!(split.iter().any(|s| s.label == c), "class {c} missing");
            }
        }
    }

    #[test]
    fn iris_shuffle_is_seeded() {
        assert_eq!(Dataset::iris(5), Dataset::iris(5));
        assert_ne!(Dataset::iris(5), Dataset::iris(6));
    }

    #[test]
    fn mnist4_shapes_and_labels() {
        let d = Dataset::mnist4(64, 32, 3);
        assert_eq!(d.train.len(), 64);
        assert_eq!(d.test.len(), 32);
        assert_eq!(d.feature_dim(), 16);
        assert_eq!(d.n_classes, 4);
        for s in &d.train {
            assert!(s.label < 4);
        }
    }

    #[test]
    fn mnist4_classes_are_linearly_separable_enough() {
        // A nearest-prototype classifier on clean glyph distances should be
        // far above chance, otherwise the generator is too noisy to learn.
        let d = Dataset::mnist4(0, 200, 9);
        // Distance to the nearest *shifted* variant of each prototype.
        let shifted_dist = |class: usize, feat: &[f64]| -> f64 {
            let mut best = f64::INFINITY;
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    let mut dist = 0.0;
                    for y in 0..4i32 {
                        for x in 0..4i32 {
                            let (sx, sy) = (x - dx, y - dy);
                            let g = if (0..4).contains(&sx) && (0..4).contains(&sy) {
                                GLYPHS[class][(sy * 4 + sx) as usize]
                            } else {
                                0.0
                            };
                            let f = feat[(y * 4 + x) as usize];
                            dist += (g * std::f64::consts::PI - f).powi(2);
                        }
                    }
                    best = best.min(dist);
                }
            }
            best
        };
        let mut hits = 0;
        for s in &d.test {
            let best = (0..4)
                .min_by(|&a, &b| {
                    shifted_dist(a, &s.features).total_cmp(&shifted_dist(b, &s.features))
                })
                .unwrap();
            if best == s.label {
                hits += 1;
            }
        }
        let acc = hits as f64 / d.test.len() as f64;
        assert!(acc > 0.7, "prototype accuracy too low: {acc}");
    }

    #[test]
    fn seismic_features_discriminate() {
        let d = Dataset::seismic(0, 300, 11);
        // Mean STA/LTA feature (index 1) must be higher for events.
        let (mut ev, mut bg) = (Vec::new(), Vec::new());
        for s in &d.test {
            if s.label == 1 {
                ev.push(s.features[1]);
            } else {
                bg.push(s.features[1]);
            }
        }
        let me = calibration::stats::mean(&ev);
        let mb = calibration::stats::mean(&bg);
        assert!(me > mb, "event STA/LTA {me} should exceed background {mb}");
    }

    #[test]
    fn seismic_is_balanced() {
        let d = Dataset::seismic(100, 50, 2);
        let pos = d.train.iter().filter(|s| s.label == 1).count();
        assert_eq!(pos, 50);
    }

    #[test]
    fn truncated_bounds_sizes() {
        let d = Dataset::mnist4(50, 50, 1).truncated(10, 5);
        assert_eq!(d.train.len(), 10);
        assert_eq!(d.test.len(), 5);
    }
}

//! Angle encoding of classical features into rotation gates.
//!
//! Follows the robust data-encoding scheme of LaRose & Coyle (PRA 102,
//! 032420) used by the paper: each feature becomes one rotation angle. With
//! more features than qubits the encoder *re-uploads*, cycling the rotation
//! axis layer by layer (`RY`, `RZ`, `RX`, …), which is how Torch-Quantum
//! encodes 4×4 MNIST images onto 4 qubits.

use quasim::gate::GateKind;
use transpile::circuit::{Circuit, Param};

/// An angle encoder mapping `n_features` values onto `n_qubits` qubits.
///
/// # Examples
///
/// ```
/// use qnn::encoding::AngleEncoder;
///
/// let enc = AngleEncoder::new(4, 16);
/// assert_eq!(enc.n_layers(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AngleEncoder {
    n_qubits: usize,
    n_features: usize,
}

impl AngleEncoder {
    /// Creates an encoder for `n_features` features on `n_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(n_qubits: usize, n_features: usize) -> Self {
        assert!(n_qubits > 0, "encoder needs at least one qubit");
        assert!(n_features > 0, "encoder needs at least one feature");
        AngleEncoder {
            n_qubits,
            n_features,
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of features consumed per sample.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of re-uploading layers (`ceil(n_features / n_qubits)`).
    pub fn n_layers(&self) -> usize {
        self.n_features.div_ceil(self.n_qubits)
    }

    /// Rotation axis used by layer `l` (cycles `RY → RZ → RX`).
    pub fn layer_axis(l: usize) -> GateKind {
        match l % 3 {
            0 => GateKind::Ry,
            1 => GateKind::Rz,
            _ => GateKind::Rx,
        }
    }

    /// Appends the encoding gates to `circuit`, reading feature `k` from
    /// trainable-parameter slot `param_offset + k`. The model binds those
    /// slots to per-sample feature values at run time.
    ///
    /// # Panics
    ///
    /// Panics if `circuit` has fewer qubits than the encoder.
    pub fn append_to(&self, circuit: &mut Circuit, param_offset: usize) {
        assert!(
            circuit.n_qubits() >= self.n_qubits,
            "circuit too small for encoder"
        );
        for k in 0..self.n_features {
            let layer = k / self.n_qubits;
            let qubit = k % self.n_qubits;
            let axis = Self::layer_axis(layer);
            let p = Param::Idx(param_offset + k);
            match axis {
                GateKind::Ry => circuit.ry(qubit, p),
                GateKind::Rz => circuit.rz(qubit, p),
                _ => circuit.rx(qubit, p),
            };
        }
    }
}

/// Rescales raw feature values to angles in `[lo, hi]` using per-dimension
/// min/max computed over the whole dataset.
///
/// Returns the scaled copies; constant dimensions map to the interval
/// midpoint.
///
/// # Examples
///
/// ```
/// use qnn::encoding::minmax_scale;
///
/// let scaled = minmax_scale(&[vec![0.0, 5.0], vec![10.0, 5.0]], 0.0, 1.0);
/// assert_eq!(scaled[0][0], 0.0);
/// assert_eq!(scaled[1][0], 1.0);
/// assert_eq!(scaled[0][1], 0.5); // constant dimension → midpoint
/// ```
///
/// # Panics
///
/// Panics if samples have inconsistent dimensionality or `lo >= hi`.
pub fn minmax_scale(samples: &[Vec<f64>], lo: f64, hi: f64) -> Vec<Vec<f64>> {
    assert!(lo < hi, "invalid target interval");
    if samples.is_empty() {
        return Vec::new();
    }
    let dim = samples[0].len();
    assert!(
        samples.iter().all(|s| s.len() == dim),
        "inconsistent feature dimensionality"
    );
    let mut mins = vec![f64::INFINITY; dim];
    let mut maxs = vec![f64::NEG_INFINITY; dim];
    for s in samples {
        for (d, &v) in s.iter().enumerate() {
            mins[d] = mins[d].min(v);
            maxs[d] = maxs[d].max(v);
        }
    }
    samples
        .iter()
        .map(|s| {
            s.iter()
                .enumerate()
                .map(|(d, &v)| {
                    let range = maxs[d] - mins[d];
                    if range <= 0.0 {
                        0.5 * (lo + hi)
                    } else {
                        lo + (v - mins[d]) / range * (hi - lo)
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_count() {
        assert_eq!(AngleEncoder::new(4, 4).n_layers(), 1);
        assert_eq!(AngleEncoder::new(4, 16).n_layers(), 4);
        assert_eq!(AngleEncoder::new(4, 5).n_layers(), 2);
    }

    #[test]
    fn axis_cycles() {
        assert_eq!(AngleEncoder::layer_axis(0), GateKind::Ry);
        assert_eq!(AngleEncoder::layer_axis(1), GateKind::Rz);
        assert_eq!(AngleEncoder::layer_axis(2), GateKind::Rx);
        assert_eq!(AngleEncoder::layer_axis(3), GateKind::Ry);
    }

    #[test]
    fn append_emits_one_gate_per_feature() {
        let enc = AngleEncoder::new(4, 16);
        let mut c = Circuit::new(4);
        enc.append_to(&mut c, 0);
        assert_eq!(c.len(), 16);
        assert_eq!(c.n_params(), 16);
        // First four gates are RY on qubits 0..4.
        for (q, op) in c.ops().iter().take(4).enumerate() {
            assert_eq!(op.kind, GateKind::Ry);
            assert_eq!(op.qubits, vec![q]);
        }
        // Second layer is RZ.
        assert_eq!(c.ops()[4].kind, GateKind::Rz);
    }

    #[test]
    fn append_respects_offset() {
        let enc = AngleEncoder::new(2, 2);
        let mut c = Circuit::new(2);
        enc.append_to(&mut c, 10);
        assert_eq!(c.n_params(), 12);
        assert_eq!(c.ops_for_param(10), vec![0]);
    }

    #[test]
    fn minmax_scales_to_interval() {
        let scaled = minmax_scale(
            &[vec![1.0, -3.0], vec![2.0, 0.0], vec![3.0, 3.0]],
            0.0,
            std::f64::consts::PI,
        );
        assert!(scaled[0][0].abs() < 1e-12);
        assert!((scaled[2][0] - std::f64::consts::PI).abs() < 1e-12);
        assert!((scaled[1][1] - std::f64::consts::PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn minmax_empty_ok() {
        assert!(minmax_scale(&[], 0.0, 1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn minmax_rejects_ragged() {
        let _ = minmax_scale(&[vec![1.0], vec![1.0, 2.0]], 0.0, 1.0);
    }
}

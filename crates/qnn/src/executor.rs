//! Circuit execution back-ends.
//!
//! Two evaluation paths mirror the paper's `Wp(θ)` / `Wn(θ)`:
//!
//! - [`pure_z_scores`]: noise-free state-vector run of the *logical*
//!   circuit (perfect environment);
//! - [`NoisyExecutor`]: routes the model once onto a device topology, then
//!   per call expands the circuit at the bound parameters and simulates it
//!   with calibration-driven depolarising channels after every native op,
//!   plus readout confusion on the measured qubits.
//!
//! The noisy path is where compression pays off: parameters at compression
//! levels expand to fewer native ops, so fewer channels are applied.
//!
//! # Compile-once / rebind-many
//!
//! Each evaluation needs the circuit *re-transpiled at its bound
//! parameters* (so compressed angles drop gates, and the SWAPs routing
//! would insert for them). The expensive half of that pipeline — simplify
//! and route — depends only on the parameters' **structure**
//! ([`transpile::template::StructureKey`]: which gates sit on identity
//! angles and vanish), not their raw values, so every executor holds a
//! program cache ([`ProgramCacheHandle`], shared across clones): one
//! simplified+routed
//! [`transpile::template::CircuitTemplate`] (plus register compaction) per
//! structure, re-bound per sample (fresh angles) and per day (fresh noise
//! strengths) with linear passes only. Batch evaluation and training loops
//! therefore route once per structure instead of once per circuit
//! evaluation; results are bit-identical to from-scratch compilation (the
//! `rebind_identity` property tests). [`NoisyExecutor::cache_stats`]
//! exposes the hit/miss counters.
//!
//! # Simulation backends
//!
//! The noisy simulation engine is selected by [`SimBackend`] (the
//! `QUCAD_BACKEND` environment variable via [`SimBackend::from_env`], or
//! per-executor via [`NoiseOptions::backend`]):
//!
//! - [`SimBackend::Density`] (default): exact dense density-matrix
//!   simulation. Each call compiles the expanded circuit plus its noise
//!   interleave with [`transpile::fuse`] — prebound matrices, same-support
//!   runs collapsed into single passes — and runs it on a per-executor
//!   reusable [`SimWorkspace`], so the simulation itself performs no
//!   per-gate allocation and each worker thread allocates density-matrix
//!   storage once per run. Results are **bit-identical** to the op-by-op
//!   reference path ([`NoisyExecutor::z_scores_seeded_unfused`]), which is
//!   retained as the differential-testing oracle. Capped at
//!   [`quasim::density::MAX_DENSITY_QUBITS`] active qubits.
//! - [`SimBackend::Trajectory`]: Monte-Carlo wavefunction simulation
//!   ([`quasim::trajectory`]). The same fused pipeline — additionally
//!   precomposed at bind time ([`transpile::fuse::fuse_native_trajectory`]:
//!   runs of consecutive same-support unitaries collapse into single
//!   matrices) — is unraveled into
//!   [`NoiseOptions::trajectories`] stochastic pure-state trajectories,
//!   executed in batched panels on a per-executor reusable
//!   [`TrajectoryPanel`] (each fused op applied once across the whole
//!   panel; width from `QUCAD_TRAJ_BATCH`, default auto); per-qubit `P(1)`
//!   is the trajectory average, an unbiased estimate of the exact channel
//!   average at O(2^n) per trajectory. This unlocks devices beyond the
//!   dense-`ρ` cap, e.g. the 16-qubit `ibm_guadalupe`. The trajectory
//!   stream is seeded from `(shot_seed, stream)` only and consumed in
//!   trajectory-major order regardless of panel width, so results are
//!   deterministic and identical across any thread fan-out *and* any
//!   panel width, exactly like the density path.

use crate::model::VqcModel;
use calibration::snapshot::CalibrationSnapshot;
use calibration::topology::Topology;
use quasim::density::{DensityMatrix, SimWorkspace, MAX_DENSITY_QUBITS};
use quasim::statevector::StateVector;
use quasim::trajectory::{
    estimate_prob_one_panel, estimate_prob_one_panel_multi, panel_width_from_env,
    TrajectoryEstimate, TrajectoryPanel,
};
use std::collections::HashMap;
use transpile::expand::{expand, NativeCircuit, NativeOp, ANGLE_TOL};
use transpile::fuse::{fuse_native_compacted, fuse_native_trajectory, QubitCompaction};
use transpile::route::{route, PhysicalCircuit};
use transpile::template::{structure_key, CircuitTemplate, StructureKey};

/// Noise-free evaluation: per-class `⟨Z⟩` scores on the logical circuit.
///
/// # Examples
///
/// ```
/// use qnn::model::VqcModel;
/// use qnn::executor::pure_z_scores;
///
/// let model = VqcModel::paper_model(4, 4, 4, 1);
/// let weights = vec![0.0; model.n_weights()];
/// let z = pure_z_scores(&model, &[0.0; 4], &weights);
/// assert_eq!(z.len(), 4);
/// ```
///
/// # Panics
///
/// Panics if slice lengths do not match the model.
pub fn pure_z_scores(model: &VqcModel, features: &[f64], weights: &[f64]) -> Vec<f64> {
    let full = model.full_params(features, weights);
    let gates = model.circuit().bind(&full);
    let mut sv = StateVector::zero_state(model.n_qubits());
    sv.run(&gates);
    model
        .measured_logical()
        .iter()
        .map(|&q| sv.expect_z(q))
        .collect()
}

/// Which engine simulates the noisy circuit.
///
/// See the [module docs](self) for the trade-off; select globally with the
/// `QUCAD_BACKEND` environment variable ([`SimBackend::from_env`]) or
/// per executor via [`NoiseOptions::backend`].
///
/// # Examples
///
/// ```
/// use qnn::executor::SimBackend;
///
/// assert_eq!(SimBackend::parse("trajectory"), Some(SimBackend::Trajectory));
/// assert_eq!(SimBackend::parse("DENSITY"), Some(SimBackend::Density));
/// assert_eq!(SimBackend::parse("qpu"), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimBackend {
    /// Exact dense density-matrix simulation (O(4^n) per op, ≤
    /// [`quasim::density::MAX_DENSITY_QUBITS`] active qubits).
    #[default]
    Density,
    /// Monte-Carlo wavefunction (quantum-trajectory) simulation
    /// (O(2^n) per op per trajectory, up to
    /// [`quasim::trajectory::MAX_TRAJECTORY_QUBITS`] qubits).
    Trajectory,
}

impl SimBackend {
    /// Parses a backend name (case-insensitive): `density` or
    /// `trajectory`/`traj`.
    pub fn parse(s: &str) -> Option<SimBackend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "density" => Some(SimBackend::Density),
            "trajectory" | "traj" => Some(SimBackend::Trajectory),
            _ => None,
        }
    }

    /// Resolves the backend from the `QUCAD_BACKEND` environment variable;
    /// unset or empty means [`SimBackend::Density`].
    ///
    /// # Panics
    ///
    /// Panics if the variable is set to an unknown name, so CI matrix typos
    /// fail loudly instead of silently testing the wrong engine.
    pub fn from_env() -> SimBackend {
        SimBackend::from_env_or(SimBackend::Density)
    }

    /// [`SimBackend::from_env`] with a caller-chosen fallback for when the
    /// variable is unset or empty (e.g. the guadalupe scenario defaults to
    /// the trajectory engine because its register exceeds the density cap).
    ///
    /// # Panics
    ///
    /// As [`SimBackend::from_env`] on an unknown name.
    pub fn from_env_or(default: SimBackend) -> SimBackend {
        // qucad-lint: allow(env-read) — audited entry point: simulation backend selection
        match std::env::var("QUCAD_BACKEND") {
            Ok(v) if !v.trim().is_empty() => SimBackend::parse(&v).unwrap_or_else(|| {
                panic!("QUCAD_BACKEND must be 'density' or 'trajectory', got '{v}'")
            }),
            _ => default,
        }
    }

    /// Stable lowercase name (`"density"` / `"trajectory"`).
    pub fn name(self) -> &'static str {
        match self {
            SimBackend::Density => "density",
            SimBackend::Trajectory => "trajectory",
        }
    }
}

/// Options controlling how calibration data maps to channel strengths and
/// which engine simulates the result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseOptions {
    /// Multiplier from calibration error rate to depolarising `λ`.
    /// 1.0 treats the reported gate error as the depolarising parameter.
    pub scale: f64,
    /// Whether to apply readout confusion to the measured qubits.
    pub readout: bool,
    /// Finite measurement shots. `None` returns exact probabilities;
    /// `Some(n)` adds per-qubit sampling noise (Gaussian approximation of
    /// the binomial, std `√(p(1−p)/n)`). Shot noise is what makes deep
    /// noisy circuits *collapse* in practice: depolarising channels shrink
    /// every Z score toward 0 and finite shots cannot resolve scores below
    /// `~1/√n`, which exact simulation would.
    pub shots: Option<u64>,
    /// Seed for the shot-noise stream (ignored when `shots` is `None`).
    pub shot_seed: u64,
    /// Simulation engine (default [`SimBackend::Density`]).
    pub backend: SimBackend,
    /// Trajectories averaged per evaluation when `backend` is
    /// [`SimBackend::Trajectory`]; the per-qubit `P(1)` standard error
    /// scales as `≤ 1/(2√N)`.
    pub trajectories: u32,
}

impl Default for NoiseOptions {
    fn default() -> Self {
        NoiseOptions {
            scale: 1.0,
            readout: true,
            shots: None,
            shot_seed: 0,
            backend: SimBackend::Density,
            trajectories: 256,
        }
    }
}

impl NoiseOptions {
    /// The experiment default: exact channels plus 1024-shot sampling, the
    /// typical IBM execution setting the paper's runs used.
    pub fn with_shots(shots: u64, shot_seed: u64) -> Self {
        NoiseOptions {
            shots: Some(shots),
            shot_seed,
            ..NoiseOptions::default()
        }
    }

    /// Returns a copy running on `backend`.
    pub fn with_backend(self, backend: SimBackend) -> Self {
        NoiseOptions { backend, ..self }
    }
}

/// Hit/miss counters of a [`NoisyExecutor`]'s program cache (see
/// [`NoisyExecutor::cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramCacheStats {
    /// Evaluations served by re-binding a cached template.
    pub hits: u64,
    /// Evaluations that ran the full simplify → route pipeline.
    pub misses: u64,
}

/// One cached circuit structure: the simplified+routed template plus the
/// register compaction it induces (both are pure functions of the
/// [`StructureKey`] for a fixed model and topology).
#[derive(Debug, Clone)]
struct CachedStructure {
    template: CircuitTemplate,
    compaction: QubitCompaction,
}

/// One resident cache entry plus the generation of its last touch, the
/// staleness signal [`ProgramCache::evict_stale`] keys on.
#[derive(Debug, Clone)]
struct CacheSlot {
    cached: CachedStructure,
    touched: u64,
}

/// Compile-once/rebind-many cache: one [`CachedStructure`] per distinct
/// [`StructureKey`] evaluated through it. Shared by every clone of an
/// executor behind a [`ProgramCacheHandle`].
///
/// Training loops move parameters continuously (one generic-angle key),
/// while compression snaps parameters onto level patterns (one key per
/// pattern), so a single tenant's live key set stays small; the entry cap
/// matters once many tenants share one cache (the serving path), where it
/// must degrade gracefully rather than thrash.
#[derive(Debug, Default)]
struct ProgramCache {
    entries: HashMap<StructureKey, CacheSlot>,
    /// Insertion order of the resident keys, the iteration index
    /// [`Self::evict_stale`] scans (the map itself is never iterated, so
    /// eviction order is deterministic).
    order: Vec<StructureKey>,
    /// Coarse logical clock: advances every [`GENERATION_LOOKUPS`]
    /// lookups, so "stale" means "untouched for a full generation of
    /// traffic" independent of wall time.
    generation: u64,
    lookups_in_generation: u64,
    stats: ProgramCacheStats,
}

/// Cap on resident structures per shared cache. On overflow only entries
/// untouched for a full generation are evicted; if every resident entry is
/// warm the newcomer is denied admission instead (served uncached), so a
/// hot working set larger than the cap degrades to a partial hit rate
/// rather than thrashing to ~0%.
const MAX_CACHED_STRUCTURES: usize = 256;

/// Lookups per generation of the cache's logical clock. Twice the entry
/// cap, so a full round-robin over a working set at the cap spans at most
/// one generation boundary and live entries are never mistaken for stale.
const GENERATION_LOOKUPS: u64 = 2 * MAX_CACHED_STRUCTURES as u64;

impl ProgramCache {
    /// Advances the logical clock by one lookup.
    fn tick(&mut self) {
        self.lookups_in_generation += 1;
        if self.lookups_in_generation >= GENERATION_LOOKUPS {
            self.generation += 1;
            self.lookups_in_generation = 0;
        }
    }

    /// Removes every entry untouched for a full generation, preserving the
    /// insertion order of the survivors.
    fn evict_stale(&mut self) {
        let generation = self.generation;
        let order = std::mem::take(&mut self.order);
        for key in order {
            // `touched + 1 < generation` (not `touched < generation - 1`):
            // generation is 0 at startup and must not underflow.
            let stale = self
                .entries
                .get(&key)
                .is_none_or(|slot| slot.touched + 1 < generation);
            if stale {
                self.entries.remove(&key);
            } else {
                self.order.push(key);
            }
        }
        debug_assert_eq!(
            self.order.len(),
            self.entries.len(),
            "eviction desynced the insertion-order index"
        );
    }
}

/// Shared, thread-safe handle to a [`ProgramCache`]: the unit of warm
/// state the serving path owns. Cloning the handle shares the cache (and
/// its hit/miss counters); [`NoisyExecutor`] clones therefore share one
/// cache rather than each inheriting a private warm copy, so aggregate
/// hit-rate diagnostics count every lookup exactly once.
#[derive(Debug, Clone, Default)]
pub struct ProgramCacheHandle {
    state: std::sync::Arc<std::sync::Mutex<ProgramCache>>,
}

impl ProgramCacheHandle {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ProgramCache> {
        // A panic while holding the lock poisons it; the cache itself is
        // never left mid-mutation (all writes are single insert/remove
        // calls), so the poisoned state is safe to keep using.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks `key` up, ticking the logical clock and the hit/miss
    /// counters; a hit refreshes the slot's touch generation.
    fn lookup(&self, key: &StructureKey) -> Option<CachedStructure> {
        let mut cache = self.lock();
        cache.tick();
        let generation = cache.generation;
        let hit = cache.entries.get_mut(key).map(|slot| {
            slot.touched = generation;
            slot.cached.clone()
        });
        if hit.is_some() {
            cache.stats.hits += 1;
        } else {
            cache.stats.misses += 1;
        }
        hit
    }

    /// Offers a freshly compiled structure to the cache. Returns the
    /// canonical resident entry: if a concurrent clone admitted the same
    /// key first, that entry wins (both are bit-identical by the template
    /// contract); if the cache is at capacity with no stale entries,
    /// admission is denied and the caller's own compile is returned
    /// uncached.
    fn admit(&self, key: StructureKey, cached: CachedStructure) -> CachedStructure {
        let mut cache = self.lock();
        let cache = &mut *cache;
        if let Some(slot) = cache.entries.get(&key) {
            return slot.cached.clone();
        }
        if cache.entries.len() >= MAX_CACHED_STRUCTURES {
            cache.evict_stale();
        }
        if cache.entries.len() < MAX_CACHED_STRUCTURES {
            let slot = CacheSlot {
                cached: cached.clone(),
                touched: cache.generation,
            };
            let evicted = cache.entries.insert(key.clone(), slot);
            debug_assert!(
                evicted.is_none(),
                "program cache admit raced an existing entry for the same key"
            );
            cache.order.push(key);
            debug_assert_eq!(
                cache.order.len(),
                cache.entries.len(),
                "admission desynced the insertion-order index"
            );
        }
        debug_assert!(
            cache.entries.len() <= MAX_CACHED_STRUCTURES,
            "program cache exceeds the {MAX_CACHED_STRUCTURES}-entry cap"
        );
        cached
    }

    /// Aggregate hit/miss counters across every executor sharing this
    /// cache.
    pub fn stats(&self) -> ProgramCacheStats {
        self.lock().stats
    }

    /// Number of structures currently resident.
    pub fn resident_structures(&self) -> usize {
        self.lock().entries.len()
    }
}

/// A model routed onto a device, ready for noisy evaluation under any
/// calibration snapshot.
///
/// # Examples
///
/// ```
/// use qnn::model::VqcModel;
/// use qnn::executor::{NoisyExecutor, NoiseOptions};
/// use calibration::topology::Topology;
/// use calibration::snapshot::CalibrationSnapshot;
///
/// let model = VqcModel::paper_model(4, 2, 4, 1);
/// let topo = Topology::ibm_belem();
/// let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::default());
/// let snap = CalibrationSnapshot::uniform(&topo, 0, 2e-4, 1e-2, 0.02);
/// let z = exec.z_scores(&[0.1; 4], &vec![0.3; model.n_weights()], &snap);
/// assert_eq!(z.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct NoisyExecutor {
    model: VqcModel,
    topology: Topology,
    phys: PhysicalCircuit,
    options: NoiseOptions,
    shot_rng: std::cell::RefCell<rand::rngs::StdRng>,
    /// Reusable density-matrix storage: one allocation per executor clone
    /// (i.e. per worker thread), reused across every evaluation it runs.
    workspace: std::cell::RefCell<SimWorkspace>,
    /// Reusable batched trajectory storage, the trajectory backend's
    /// counterpart of `workspace`: one panel allocation per executor
    /// clone, reused across every chunk of every evaluation.
    traj_panel: std::cell::RefCell<TrajectoryPanel>,
    /// Compile-once/rebind-many program cache: simplify + route run once
    /// per circuit structure; later evaluations re-bind angles (per
    /// sample) and noise strengths (per day) with linear passes only.
    /// Cloned executors **share** this cache (the handle is `Arc`-backed),
    /// so worker fan-outs and serving tenants warm one another and the
    /// hit/miss counters aggregate across clones.
    cache: ProgramCacheHandle,
}

impl NoisyExecutor {
    /// Routes `model` onto `topology` with the identity initial layout.
    ///
    /// # Panics
    ///
    /// Panics if the device is smaller than the model.
    pub fn new(model: &VqcModel, topology: &Topology, options: NoiseOptions) -> Self {
        Self::with_shared_cache(model, topology, options, ProgramCacheHandle::new())
    }

    /// [`Self::new`] with an explicit program cache, so independently
    /// constructed executors (e.g. one per serving worker) share warm
    /// templates. The model/topology must match across every executor on
    /// the handle: the cache key is the parameter structure only.
    ///
    /// # Panics
    ///
    /// Panics if the device is smaller than the model.
    pub fn with_shared_cache(
        model: &VqcModel,
        topology: &Topology,
        options: NoiseOptions,
        cache: ProgramCacheHandle,
    ) -> Self {
        use rand::SeedableRng;
        let phys = route(model.circuit(), topology, None);
        NoisyExecutor {
            model: model.clone(),
            topology: topology.clone(),
            phys,
            options,
            shot_rng: std::cell::RefCell::new(rand::rngs::StdRng::seed_from_u64(options.shot_seed)),
            workspace: std::cell::RefCell::new(SimWorkspace::new()),
            traj_panel: std::cell::RefCell::new(TrajectoryPanel::new()),
            cache,
        }
    }

    /// The shared program-cache handle (clone it to share warm templates
    /// with another executor, or to read aggregate stats from a thread
    /// that owns no executor).
    pub fn cache_handle(&self) -> ProgramCacheHandle {
        self.cache.clone()
    }

    /// The routed physical circuit (the compression input in the paper).
    pub fn physical_circuit(&self) -> &PhysicalCircuit {
        &self.phys
    }

    /// The device topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The model this executor runs.
    pub fn model(&self) -> &VqcModel {
        &self.model
    }

    /// Noisy per-class `⟨Z⟩` scores under a calibration snapshot.
    ///
    /// The circuit is *re-transpiled at the bound parameters*: gates at
    /// identity angles are dropped before routing, so compressed parameters
    /// also eliminate the SWAPs routing would have inserted for them — the
    /// full physical-length saving the paper exploits.
    ///
    /// Shot noise (when [`NoiseOptions::shots`] is set) draws from a stream
    /// shared across calls, so two calls with identical inputs return
    /// different samples. For an order-independent evaluation (required by
    /// the batch-parallel paths in [`parallel`]) use [`Self::z_scores_seeded`].
    ///
    /// # Panics
    ///
    /// Panics if slice lengths do not match the model or the snapshot does
    /// not describe this executor's topology.
    pub fn z_scores(
        &self,
        features: &[f64],
        weights: &[f64],
        snapshot: &CalibrationSnapshot,
    ) -> Vec<f64> {
        let mut rng = self.shot_rng.borrow_mut();
        // The trajectory path needs its own seed; draw it from the shared
        // stream only when that backend is active so density-backend bits
        // are unchanged.
        let traj_seed = match self.options.backend {
            SimBackend::Trajectory => {
                use rand::Rng;
                rng.gen::<u64>()
            }
            SimBackend::Density => 0,
        };
        self.z_scores_impl(features, weights, snapshot, &mut rng, traj_seed)
    }

    /// [`Self::z_scores`] with shot noise drawn from a private stream
    /// identified by `stream`.
    ///
    /// Calls with the same inputs and the same `stream` return bit-identical
    /// results regardless of call order, interleaving, or which thread runs
    /// them — the property the scoped-thread evaluators in [`parallel`] rely
    /// on for sequential/parallel equivalence. The stream is derived from
    /// both [`NoiseOptions::shot_seed`] and `stream`, so distinct executors
    /// keep distinct noise.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths do not match the model or the snapshot does
    /// not describe this executor's topology.
    pub fn z_scores_seeded(
        &self,
        features: &[f64],
        weights: &[f64],
        snapshot: &CalibrationSnapshot,
        stream: u64,
    ) -> Vec<f64> {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(mix_stream(self.options.shot_seed, stream));
        self.z_scores_impl(
            features,
            weights,
            snapshot,
            &mut rng,
            self.traj_seed(stream),
        )
    }

    /// Seed of the trajectory stream for a seeded evaluation: a function of
    /// `(shot_seed, stream)` only, salted so it never collides with the
    /// shot-noise stream, which keeps trajectory results order- and
    /// thread-independent exactly like the density path.
    fn traj_seed(&self, stream: u64) -> u64 {
        const TRAJ_SALT: u64 = 0x7452_414A_5F4D_4357; // "tRAJ_MCW"
        mix_stream(self.options.shot_seed ^ TRAJ_SALT, stream)
    }

    /// Retranspiles the circuit at the bound parameters (simplify → route →
    /// expand) from scratch; kept as the uncached reference the
    /// differential-testing oracle ([`Self::z_scores_seeded_unfused`])
    /// runs on.
    fn retranspile(&self, full: &[f64]) -> NativeCircuit {
        let simplified = self.model.circuit().simplified(full, ANGLE_TOL);
        let phys = route(&simplified, &self.topology, None);
        expand(&phys, full)
    }

    /// The cached native circuit at the bound parameters: looks the
    /// parameter vector's [`StructureKey`] up in the program cache,
    /// re-binding the stored template (a single linear expansion pass) on
    /// a hit and running the full simplify → route pipeline on a miss.
    ///
    /// Bit-identical to [`Self::retranspile`] by the template contract
    /// (equal keys → value-identical simplified circuits → identical
    /// routing), which the `rebind_identity` property tests enforce.
    fn native_at(&self, full: &[f64]) -> (NativeCircuit, QubitCompaction) {
        let entry = self.structure_at(full);
        (entry.template.bind(full), entry.compaction)
    }

    /// The cached structure (template + compaction) of a parameter vector:
    /// the group-level entry point of [`Self::evaluate_probes`], which
    /// fetches one structure per probe *group* and re-binds it per probe
    /// through [`CircuitTemplate::bind_batch`]. Counts one cache hit or
    /// miss per call — i.e. per structure group, not per probe.
    fn structure_at(&self, full: &[f64]) -> CachedStructure {
        let key = structure_key(self.model.circuit(), full, ANGLE_TOL);
        if let Some(entry) = self.cache.lookup(&key) {
            // Rebind-boundary invariant check: the cached template's key
            // must equal the bound vector's — binding across structures
            // would silently diverge from a from-scratch compile.
            debug_assert!(
                transpile::verify::verify_bound(
                    &entry.template,
                    self.model.circuit(),
                    full,
                    ANGLE_TOL
                )
                .is_ok(),
                "program cache hit on a structurally different template"
            );
            return entry;
        }
        // Compile outside the cache lock: concurrent clones missing on
        // *distinct* structures must not serialise on each other's
        // simplify → route passes. Two clones racing on the *same* key
        // both compile, and `admit` keeps the first entry (the results are
        // bit-identical by the template contract).
        let template =
            CircuitTemplate::compile(self.model.circuit(), &self.topology, full, ANGLE_TOL);
        let native = template.bind(full);
        let compaction = self.compaction(&native);
        self.cache.admit(
            key,
            CachedStructure {
                template,
                compaction,
            },
        )
    }

    /// Aggregate hit/miss counters of the shared program cache (every
    /// clone of this executor counts into the same totals; see
    /// [`ProgramCacheHandle::stats`]).
    pub fn cache_stats(&self) -> ProgramCacheStats {
        self.cache.stats()
    }

    /// Compaction of the device register to the qubits this circuit (and
    /// its measurements) actually touch — unused physical qubits stay in
    /// `|0⟩` forever and each one would quadruple the density matrix.
    /// Shared by the fused and unfused paths so both simulate the
    /// identical compact register.
    fn compaction(&self, native: &NativeCircuit) -> QubitCompaction {
        let measured: Vec<usize> = self
            .model
            .measured_logical()
            .iter()
            .map(|&l| native.measured_physical(l))
            .collect();
        QubitCompaction::for_native(native, &measured)
    }

    /// Depolarising strength the calibration snapshot assigns to one native
    /// op, if any — the noise interleave both execution paths apply.
    fn op_lambda(&self, op: &NativeOp, snapshot: &CalibrationSnapshot) -> Option<f64> {
        let qubits = op.gate.qubits();
        if op.is_entangler() {
            let edge = self
                .topology
                .edge_index(qubits[0], qubits[1])
                .expect("routed entangler must sit on an edge");
            Some(self.options.scale * snapshot.cnot_error[edge])
        } else if op.pulses > 0 {
            Some(self.options.scale * op.pulses as f64 * snapshot.single_qubit_error[qubits[0]])
        } else {
            None
        }
    }

    /// Readout + shot-noise post-processing from physical `P(1)` values to
    /// per-class Z scores.
    fn scores_from_probs(
        &self,
        native: &NativeCircuit,
        snapshot: &CalibrationSnapshot,
        shot_rng: &mut rand::rngs::StdRng,
        prob_one: impl Fn(usize) -> f64,
    ) -> Vec<f64> {
        self.model
            .measured_logical()
            .iter()
            .map(|&logical| {
                let phys_q = native.measured_physical(logical);
                let mut p1 = prob_one(phys_q);
                if self.options.readout {
                    p1 = snapshot.readout[phys_q].apply_to_prob_one(p1);
                }
                if let Some(shots) = self.options.shots {
                    let std =
                        (p1.clamp(0.0, 1.0) * (1.0 - p1.clamp(0.0, 1.0)) / shots as f64).sqrt();
                    let z = calibration::stats::sample_normal(shot_rng);
                    p1 = (p1 + std * z).clamp(0.0, 1.0);
                }
                1.0 - 2.0 * p1
            })
            .collect()
    }

    /// Shared per-evaluation compilation for both backends: fetch the
    /// bound parameters' structure from the program cache (simplify +
    /// route run once per structure), re-bind the gate matrices at the
    /// sample's angles, and fuse the native circuit plus the day's noise
    /// interleave into a program over the compacted register (matrices
    /// prebound once, same-support runs collapsed into single passes).
    fn compile(
        &self,
        features: &[f64],
        weights: &[f64],
        snapshot: &CalibrationSnapshot,
    ) -> (NativeCircuit, QubitCompaction, quasim::fused::FusedProgram) {
        assert_eq!(
            snapshot.n_qubits(),
            self.topology.n_qubits(),
            "snapshot does not match device"
        );
        let full = self.model.full_params(features, weights);
        let (native, compaction) = self.native_at(&full);
        // The trajectory backend additionally precomposes runs of
        // consecutive same-support unitaries at bind time (one matrix per
        // pass); the density path keeps the plain fusion so its pinned
        // fused-vs-unfused bit-identity is untouched.
        let program = match self.options.backend {
            SimBackend::Density => {
                fuse_native_compacted(&native, &compaction, |op| self.op_lambda(op, snapshot))
            }
            SimBackend::Trajectory => {
                fuse_native_trajectory(&native, &compaction, |op| self.op_lambda(op, snapshot))
            }
        };
        (native, compaction, program)
    }

    /// The compiled fused program for one evaluation plus the measured
    /// qubits as compact register indices ([`VqcModel::measured_logical`]
    /// order) — the raw material for driving the `quasim` engines
    /// directly (benchmarks, cross-engine tests).
    ///
    /// # Panics
    ///
    /// Panics as [`Self::z_scores_seeded`].
    pub fn compile_program(
        &self,
        features: &[f64],
        weights: &[f64],
        snapshot: &CalibrationSnapshot,
    ) -> (Vec<usize>, quasim::fused::FusedProgram) {
        let (native, compaction, program) = self.compile(features, weights, snapshot);
        (self.measured_compact(&native, &compaction), program)
    }

    /// The measured qubits as compact register indices, in
    /// [`VqcModel::measured_logical`] order — the single mapping behind
    /// [`Self::compile_program`] and the trajectory runner.
    fn measured_compact(&self, native: &NativeCircuit, compaction: &QubitCompaction) -> Vec<usize> {
        self.model
            .measured_logical()
            .iter()
            .map(|&l| compaction.compact(native.measured_physical(l)))
            .collect()
    }

    /// Runs the trajectory batch for a compiled program over the measured
    /// qubits (compact register indices, [`VqcModel::measured_logical`]
    /// order) — the single implementation behind both the trajectory arm
    /// of the z-score paths and [`Self::trajectory_estimate`], so the two
    /// can never drift apart.
    ///
    /// Executes on the batched [`TrajectoryPanel`] engine at the width
    /// resolved by [`panel_width_from_env`] (`QUCAD_TRAJ_BATCH` override,
    /// auto otherwise); results are bit-identical to the per-trajectory
    /// engine for every width.
    fn run_trajectories(
        &self,
        native: &NativeCircuit,
        compaction: &QubitCompaction,
        program: &quasim::fused::FusedProgram,
        traj_seed: u64,
    ) -> TrajectoryEstimate {
        let measured = self.measured_compact(native, compaction);
        let width = panel_width_from_env(program.n_qubits(), self.options.trajectories);
        let mut panel = self.traj_panel.borrow_mut();
        estimate_prob_one_panel(
            &mut panel,
            program,
            &measured,
            self.options.trajectories,
            traj_seed,
            width,
        )
    }

    fn z_scores_impl(
        &self,
        features: &[f64],
        weights: &[f64],
        snapshot: &CalibrationSnapshot,
        shot_rng: &mut rand::rngs::StdRng,
        traj_seed: u64,
    ) -> Vec<f64> {
        // Both backends execute the same compiled program on their
        // reusable per-executor workspace — the whole simulation allocates
        // nothing beyond the program itself.
        let (native, compaction, program) = self.compile(features, weights, snapshot);
        self.run_compiled(
            &native,
            &compaction,
            &program,
            snapshot,
            shot_rng,
            traj_seed,
        )
    }

    /// Simulates one compiled program and post-processes the probabilities
    /// into Z scores — the execution half of [`Self::z_scores_impl`],
    /// shared with the probe-batch engine so the batched and sequential
    /// paths can never drift apart.
    fn run_compiled(
        &self,
        native: &NativeCircuit,
        compaction: &QubitCompaction,
        program: &quasim::fused::FusedProgram,
        snapshot: &CalibrationSnapshot,
        shot_rng: &mut rand::rngs::StdRng,
        traj_seed: u64,
    ) -> Vec<f64> {
        match self.options.backend {
            SimBackend::Density => {
                assert!(
                    compaction.n_active() <= MAX_DENSITY_QUBITS,
                    "density backend supports at most {MAX_DENSITY_QUBITS} active qubits, \
                     this circuit needs {}; switch to the trajectory backend \
                     (QUCAD_BACKEND=trajectory or NoiseOptions::backend)",
                    compaction.n_active()
                );
                let mut ws = self.workspace.borrow_mut();
                ws.reset_zero(compaction.n_active());
                ws.run(program);
                self.scores_from_probs(native, snapshot, shot_rng, |q| {
                    ws.prob_one(compaction.compact(q))
                })
            }
            SimBackend::Trajectory => {
                let est = self.run_trajectories(native, compaction, program, traj_seed);
                self.scores_from_probs(native, snapshot, shot_rng, |q| {
                    est.p_one_of(compaction.compact(q))
                })
            }
        }
    }

    /// The trajectory backend's raw estimate for a seeded evaluation:
    /// per-measured-qubit `P(1)` means and standard errors, *before*
    /// readout confusion and shot noise. Uses the identical trajectory
    /// stream as [`Self::z_scores_seeded`] on [`SimBackend::Trajectory`],
    /// so the cross-backend consistency harness can derive its confidence
    /// bound from the very run it checks.
    ///
    /// The returned `qubits` are the measured **physical** qubits in
    /// [`VqcModel::measured_logical`] order.
    ///
    /// # Panics
    ///
    /// Panics as [`Self::z_scores_seeded`].
    pub fn trajectory_estimate(
        &self,
        features: &[f64],
        weights: &[f64],
        snapshot: &CalibrationSnapshot,
        stream: u64,
    ) -> TrajectoryEstimate {
        let (native, compaction, program) = self.compile(features, weights, snapshot);
        let mut est = self.run_trajectories(&native, &compaction, &program, self.traj_seed(stream));
        // Report physical qubit ids to the caller.
        est.qubits = self
            .model
            .measured_logical()
            .iter()
            .map(|&l| native.measured_physical(l))
            .collect();
        est
    }

    /// Reference implementation of [`Self::z_scores_seeded`] that applies
    /// every native op and noise channel one by one through
    /// [`DensityMatrix`], with no fusion and no workspace reuse.
    ///
    /// Kept as the differential-testing oracle: the fused production path
    /// must return **bit-identical** scores (see the `fused_identity`
    /// property tests). Not for production use — it allocates per call and
    /// walks `ρ` once per operation.
    pub fn z_scores_seeded_unfused(
        &self,
        features: &[f64],
        weights: &[f64],
        snapshot: &CalibrationSnapshot,
        stream: u64,
    ) -> Vec<f64> {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(mix_stream(self.options.shot_seed, stream));
        assert_eq!(
            snapshot.n_qubits(),
            self.topology.n_qubits(),
            "snapshot does not match device"
        );
        let full = self.model.full_params(features, weights);
        let native = self.retranspile(&full);
        let compaction = self.compaction(&native);
        let mut rho = DensityMatrix::zero_state(compaction.n_active());
        for op in native.ops() {
            let qubits = op.gate.qubits();
            let c0 = compaction.compact(qubits[0]);
            match op.gate.kind() {
                quasim::gate::GateKind::Cx => {
                    rho.apply_cx(c0, compaction.compact(qubits[1]));
                }
                kind if kind.arity() == 1 => {
                    rho.apply_unitary_1q(&op.gate.matrix(), c0);
                }
                _ => {
                    rho.apply_unitary_2q(&op.gate.matrix(), c0, compaction.compact(qubits[1]));
                }
            }
            if let Some(lambda) = self.op_lambda(op, snapshot) {
                match qubits.len() {
                    1 => rho.apply_depolarizing_1q(lambda, c0),
                    _ => rho.apply_depolarizing_2q(lambda, c0, compaction.compact(qubits[1])),
                }
            }
        }
        self.scores_from_probs(&native, snapshot, &mut rng, |q| {
            rho.prob_one(compaction.compact(q))
        })
    }

    /// Physical circuit length (pulses + 3×CX) at the given weights after
    /// simplify-then-route retranspilation (cache-assisted); the quantity
    /// compression shortens.
    pub fn circuit_length(&self, features: &[f64], weights: &[f64]) -> u32 {
        let full = self.model.full_params(features, weights);
        self.native_at(&full).0.length()
    }

    /// Evaluates a whole [`ProbeBatch`] — the batched gradient engine.
    ///
    /// Probes are grouped by [`StructureKey`]; each group routes/simplifies
    /// **once** through the program cache ([`Self::cache_stats`] counts one
    /// hit or miss per group) and re-binds per probe via
    /// [`CircuitTemplate::bind_batch`] (linear expansion only). The density
    /// backend then simulates each probe on the executor's reusable
    /// [`SimWorkspace`] (one workspace per worker thread); the trajectory
    /// backend packs probes that bind to bitwise-identical parameter
    /// vectors into shared [`TrajectoryPanel`] sweeps
    /// ([`quasim::trajectory::estimate_prob_one_panel_multi`]). With
    /// `threads > 1` contiguous probe chunks fan out over scoped threads,
    /// one executor clone (and so one workspace/panel) per worker.
    ///
    /// **Bit-identity contract**: element `i` of the result equals
    /// [`Self::z_scores_seeded`]`(probes[i].features, probes[i].weights,
    /// snapshot, probes[i].stream)` exactly — for either backend, any
    /// `threads`, any panel width, and any cache warmth. The training
    /// loops in [`crate::train`] rely on this to stay bit-identical to
    /// their retained sequential references (see the `training_path`
    /// property tests).
    ///
    /// # Panics
    ///
    /// Panics as [`Self::z_scores_seeded`].
    pub fn evaluate_probes(
        &self,
        snapshot: &CalibrationSnapshot,
        batch: &ProbeBatch<'_>,
        threads: usize,
    ) -> Vec<Vec<f64>> {
        let probes = batch.probes();
        if threads <= 1 || probes.len() <= 1 {
            return self.evaluate_probes_sequential(snapshot, probes);
        }
        // Contiguous probe chunks, one per worker, mirroring
        // `parallel::batch_z_scores`: results are keyed by probe index and
        // every probe's noise comes from its own stream, so the fan-out
        // cannot change bits.
        let chunk = probes.len().div_ceil(threads);
        let mut results: Vec<Vec<Vec<f64>>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for part in probes.chunks(chunk) {
                let exec = self.clone();
                handles.push(scope.spawn(move || exec.evaluate_probes_sequential(snapshot, part)));
            }
            for handle in handles {
                results.push(handle.join().expect("probe evaluation worker panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }

    /// Single-threaded core of [`Self::evaluate_probes`]: group by
    /// structure, compile once per group, evaluate probes in input order
    /// within each group.
    fn evaluate_probes_sequential(
        &self,
        snapshot: &CalibrationSnapshot,
        probes: &[ProbeRequest<'_>],
    ) -> Vec<Vec<f64>> {
        use rand::SeedableRng;
        assert_eq!(
            snapshot.n_qubits(),
            self.topology.n_qubits(),
            "snapshot does not match device"
        );
        let fulls: Vec<Vec<f64>> = probes
            .iter()
            .map(|p| self.model.full_params(p.features, p.weights))
            .collect();
        // Group probe indices by structure key in first-appearance order.
        let mut group_of: HashMap<StructureKey, usize> = HashMap::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, full) in fulls.iter().enumerate() {
            let key = structure_key(self.model.circuit(), full, ANGLE_TOL);
            let g = *group_of.entry(key).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[g].push(i);
        }
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); probes.len()];
        for idxs in &groups {
            let entry = self.structure_at(&fulls[idxs[0]]);
            match self.options.backend {
                SimBackend::Density => {
                    let thetas: Vec<&[f64]> = idxs.iter().map(|&i| fulls[i].as_slice()).collect();
                    let natives =
                        entry
                            .template
                            .bind_batch(self.model.circuit(), &thetas, ANGLE_TOL);
                    for (&i, native) in idxs.iter().zip(natives.iter()) {
                        let program = fuse_native_compacted(native, &entry.compaction, |op| {
                            self.op_lambda(op, snapshot)
                        });
                        let mut rng = rand::rngs::StdRng::seed_from_u64(mix_stream(
                            self.options.shot_seed,
                            probes[i].stream,
                        ));
                        out[i] = self.run_compiled(
                            native,
                            &entry.compaction,
                            &program,
                            snapshot,
                            &mut rng,
                            0,
                        );
                    }
                }
                SimBackend::Trajectory => {
                    // Probes whose parameter vectors are bitwise identical
                    // compile (deterministically) to the same program, so
                    // consecutive runs of them share one bind + fuse and
                    // one multi-probe panel call; each probe still owns
                    // its trajectory stream.
                    let mut j = 0;
                    while j < idxs.len() {
                        let i0 = idxs[j];
                        let mut k = j + 1;
                        while k < idxs.len() && bits_equal(&fulls[idxs[k]], &fulls[i0]) {
                            k += 1;
                        }
                        let native = entry.template.bind(&fulls[i0]);
                        let program = fuse_native_trajectory(&native, &entry.compaction, |op| {
                            self.op_lambda(op, snapshot)
                        });
                        let measured = self.measured_compact(&native, &entry.compaction);
                        let width =
                            panel_width_from_env(program.n_qubits(), self.options.trajectories);
                        let seeds: Vec<u64> = idxs[j..k]
                            .iter()
                            .map(|&i| self.traj_seed(probes[i].stream))
                            .collect();
                        let ests = {
                            let mut panel = self.traj_panel.borrow_mut();
                            estimate_prob_one_panel_multi(
                                &mut panel,
                                &program,
                                &measured,
                                self.options.trajectories,
                                &seeds,
                                width,
                            )
                        };
                        for (&i, est) in idxs[j..k].iter().zip(ests.iter()) {
                            let mut rng = rand::rngs::StdRng::seed_from_u64(mix_stream(
                                self.options.shot_seed,
                                probes[i].stream,
                            ));
                            out[i] = self.scores_from_probs(&native, snapshot, &mut rng, |q| {
                                est.p_one_of(entry.compaction.compact(q))
                            });
                        }
                        j = k;
                    }
                }
            }
        }
        out
    }
}

/// One probe of a [`ProbeBatch`]: an independent seeded evaluation of the
/// model at `(features, weights)` whose shot and trajectory noise come
/// from `stream` — the same stream id [`NoisyExecutor::z_scores_seeded`]
/// takes, so a probe names exactly one reproducible evaluation.
#[derive(Debug, Clone, Copy)]
pub struct ProbeRequest<'a> {
    /// Encoded sample features.
    pub features: &'a [f64],
    /// Weight vector to evaluate (base, shifted, or perturbed).
    pub weights: &'a [f64],
    /// Seeded noise stream id (see [`NoisyExecutor::z_scores_seeded`]).
    pub stream: u64,
}

/// An ordered batch of evaluation probes for
/// [`NoisyExecutor::evaluate_probes`] — one gradient step's worth of
/// parameter-shift / finite-difference / SPSA evaluations collected so the
/// executor can group them by circuit structure and evaluate each group in
/// one pass.
#[derive(Debug, Clone, Default)]
pub struct ProbeBatch<'a> {
    probes: Vec<ProbeRequest<'a>>,
}

impl<'a> ProbeBatch<'a> {
    /// An empty batch.
    pub fn new() -> Self {
        ProbeBatch::default()
    }

    /// An empty batch with room for `n` probes.
    pub fn with_capacity(n: usize) -> Self {
        ProbeBatch {
            probes: Vec::with_capacity(n),
        }
    }

    /// Appends one probe; results come back in push order.
    pub fn push(&mut self, features: &'a [f64], weights: &'a [f64], stream: u64) {
        self.probes.push(ProbeRequest {
            features,
            weights,
            stream,
        });
    }

    /// Number of probes.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// Whether the batch holds no probe.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }

    /// The probes in push order.
    pub fn probes(&self) -> &[ProbeRequest<'a>] {
        &self.probes
    }
}

/// Bitwise slice equality (`f64::to_bits`), the comparison the trajectory
/// probe packing uses to decide two probes compile to the same program —
/// value equality would conflate `±0.0`, whose compiled programs can
/// differ in zero signs.
fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// SplitMix64-style finalizer combining a base seed with a stream id into
/// an independent RNG seed (used by [`NoisyExecutor::z_scores_seeded`]).
fn mix_stream(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod parallel {
    //! Scoped-thread batch evaluation of density-matrix runs.
    //!
    //! The per-day evaluation loop of the QuCAD protocol — accuracy of one
    //! weight vector over the test set under one calibration snapshot —
    //! dominates experiment wall time: every sample is an independent dense
    //! density-matrix simulation. The helpers here fan those independent
    //! evaluations across OS threads (`std::thread::scope`; no external
    //! thread-pool dependency) while keeping results **bit-identical to the
    //! sequential path**:
    //!
    //! - every evaluation draws shot noise from its own stream, derived
    //!   only from `(shot_seed, day_stream, sample index)` via
    //!   [`NoisyExecutor::z_scores_seeded`] — never from execution order;
    //! - results are written back by sample index, so ordering is
    //!   deterministic regardless of thread interleaving.
    //!
    //! Consequently `threads = 1` and `threads = N` produce the same bits,
    //! which [`batch_z_scores`]'s contract (and the workspace's
    //! `parallel_identity` integration test) guarantees. The guarantee
    //! holds for **both** simulation backends: the trajectory engine seeds
    //! its jump stream from `(shot_seed, stream)` alone, never from
    //! execution order (see `tests/backend_consistency.rs`).
    //!
    //! Thread count selection: [`worker_threads`] honours the
    //! `QUCAD_THREADS` environment variable and falls back to
    //! [`std::thread::available_parallelism`].
    //!
    //! Each worker clones the executor once and with it one
    //! [`quasim::density::SimWorkspace`], so density-matrix storage is
    //! allocated **once per worker per run** and reset in place between
    //! samples — the thread fan-out adds no per-sample allocation on top
    //! of the fused simulation path.

    use super::NoisyExecutor;
    use crate::data::Sample;
    use crate::loss::{accuracy, predict};
    use calibration::snapshot::CalibrationSnapshot;

    /// Number of worker threads the batch evaluators should use:
    /// `QUCAD_THREADS` if set, otherwise the machine's available
    /// parallelism.
    ///
    /// # Panics
    ///
    /// Panics if `QUCAD_THREADS` is set to anything but a positive
    /// integer — `0`, garbage, and whitespace-only values are deployment
    /// typos and must not silently demote to the machine default (the
    /// same contract `QUCAD_TRAJ_BATCH` enforces).
    pub fn worker_threads() -> usize {
        // qucad-lint: allow(env-read) — audited entry point: worker thread count
        match std::env::var("QUCAD_THREADS") {
            Ok(v) => quasim::config::parse_positive("QUCAD_THREADS", &v),
            Err(_) => std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        }
    }

    /// Combines a day-level stream with a sample index into the evaluation
    /// stream id passed to [`NoisyExecutor::z_scores_seeded`].
    pub fn eval_stream(day_stream: u64, sample_index: u64) -> u64 {
        day_stream
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add(sample_index)
    }

    /// Derives the stream base of one training probe from its position:
    /// the day-level stream, the global step index, and the probe slot
    /// within the step (0 = base loss; finite differences use `1 + 2i` /
    /// `2 + 2i` for the ±shift of weight `i`; SPSA uses 1 / 2 for its ±
    /// perturbations). Combine with [`eval_stream`] per batch sample.
    ///
    /// Purely positional — no shared counter — so batched and sequential
    /// gradient evaluations assign every probe the identical stream
    /// regardless of evaluation order, which is what makes the training
    /// loops' bit-identity contract hold across thread counts.
    pub fn probe_stream(day_stream: u64, step: u64, slot: u64) -> u64 {
        super::mix_stream(super::mix_stream(day_stream, step), slot)
    }

    /// Per-sample `⟨Z⟩` scores of `samples` under `snapshot`, fanned over
    /// `threads` scoped threads.
    ///
    /// Result `i` is always computed on stream
    /// `eval_stream(day_stream, i)`, so the output is bit-identical for
    /// every `threads` value (1 reproduces the plain sequential loop) and
    /// results arrive in sample order.
    pub fn batch_z_scores(
        exec: &NoisyExecutor,
        samples: &[Sample],
        weights: &[f64],
        snapshot: &CalibrationSnapshot,
        day_stream: u64,
        threads: usize,
    ) -> Vec<Vec<f64>> {
        let one_sample = |i: usize, exec: &NoisyExecutor| {
            exec.z_scores_seeded(
                &samples[i].features,
                weights,
                snapshot,
                eval_stream(day_stream, i as u64),
            )
        };
        if threads <= 1 || samples.len() <= 1 {
            return (0..samples.len()).map(|i| one_sample(i, exec)).collect();
        }
        // Contiguous index chunks, one per worker; each worker owns a clone
        // of the executor (the shared shot stream's RefCell is not Sync,
        // and the seeded path never touches it anyway).
        let chunk = samples.len().div_ceil(threads);
        let mut results: Vec<Vec<Vec<f64>>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for start in (0..samples.len()).step_by(chunk) {
                let end = (start + chunk).min(samples.len());
                let exec = exec.clone();
                handles.push(
                    scope.spawn(move || (start..end).map(|i| one_sample(i, &exec)).collect()),
                );
            }
            for handle in handles {
                results.push(handle.join().expect("batch evaluation worker panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }

    /// Classification accuracy of `weights` on `samples` under `snapshot`,
    /// evaluated batch-parallel. Deterministic per `day_stream` (see
    /// [`batch_z_scores`]).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn batch_accuracy(
        exec: &NoisyExecutor,
        samples: &[Sample],
        weights: &[f64],
        snapshot: &CalibrationSnapshot,
        day_stream: u64,
        threads: usize,
    ) -> f64 {
        assert!(!samples.is_empty(), "empty evaluation set");
        let preds: Vec<usize> =
            batch_z_scores(exec, samples, weights, snapshot, day_stream, threads)
                .iter()
                .map(|z| predict(z))
                .collect();
        let labels: Vec<usize> = samples.iter().map(|s| s.label).collect();
        accuracy(&preds, &labels)
    }

    /// Accuracy of one weight vector over many days, fanned over days (the
    /// outer loop of the paper's protocol for the static Table I methods).
    ///
    /// Day `d` uses `day_stream = d`, and within a day samples use
    /// [`eval_stream`]`(d, i)` — exactly what per-day [`batch_accuracy`]
    /// calls with `day_stream = d` produce, so day-level and sample-level
    /// fan-out give bit-identical series.
    pub fn accuracy_over_days(
        exec: &NoisyExecutor,
        days: &[&CalibrationSnapshot],
        samples: &[Sample],
        weights: &[f64],
        threads: usize,
    ) -> Vec<f64> {
        assert!(!samples.is_empty(), "empty evaluation set");
        let one_day = |d: usize, exec: &NoisyExecutor| {
            batch_accuracy(exec, samples, weights, days[d], d as u64, 1)
        };
        if threads <= 1 || days.len() <= 1 {
            return (0..days.len()).map(|d| one_day(d, exec)).collect();
        }
        if days.len() < threads {
            // Fewer days than cores: the day-level fan-out alone would
            // leave workers idle, so fan each day's samples instead (same
            // eval_stream ids, hence the same bits).
            return (0..days.len())
                .map(|d| batch_accuracy(exec, samples, weights, days[d], d as u64, threads))
                .collect();
        }
        let chunk = days.len().div_ceil(threads);
        let mut results: Vec<Vec<f64>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for start in (0..days.len()).step_by(chunk) {
                let end = (start + chunk).min(days.len());
                let exec = exec.clone();
                handles
                    .push(scope.spawn(move || (start..end).map(|d| one_day(d, &exec)).collect()));
            }
            for handle in handles {
                results.push(handle.join().expect("day evaluation worker panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn setup() -> (VqcModel, Topology, NoisyExecutor) {
        let model = VqcModel::paper_model(4, 4, 4, 1);
        let topo = Topology::ibm_belem();
        let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::default());
        (model, topo, exec)
    }

    #[test]
    fn zero_noise_matches_pure_execution() {
        let (model, topo, exec) = setup();
        let snap = CalibrationSnapshot::uniform(&topo, 0, 0.0, 0.0, 0.0);
        let weights = model.init_weights(3);
        let features = [0.2, 0.7, 1.1, 2.0];
        let z_noisy = exec.z_scores(&features, &weights, &snap);
        let z_pure = pure_z_scores(&model, &features, &weights);
        for (a, b) in z_noisy.iter().zip(z_pure.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn noise_shrinks_z_scores_toward_zero() {
        let (model, topo, exec) = setup();
        let weights = model.init_weights(7);
        let features = [0.5, 1.0, 1.5, 2.0];
        let clean = CalibrationSnapshot::uniform(&topo, 0, 0.0, 0.0, 0.0);
        let noisy = CalibrationSnapshot::uniform(&topo, 0, 5e-3, 5e-2, 0.05);
        let z0 = exec.z_scores(&features, &weights, &clean);
        let z1 = exec.z_scores(&features, &weights, &noisy);
        let m0: f64 = z0.iter().map(|z| z.abs()).sum();
        let m1: f64 = z1.iter().map(|z| z.abs()).sum();
        assert!(m1 < m0, "noise should contract signals: {m1} !< {m0}");
    }

    #[test]
    fn compressed_weights_suffer_less_noise() {
        let (model, topo, exec) = setup();
        let snap = CalibrationSnapshot::uniform(&topo, 0, 2e-3, 4e-2, 0.0);
        let features = [0.0; 4];
        // All weights at a generic angle vs all at compression level 0.
        // Routing-inserted SWAPs stay either way (the routed structure is
        // fixed), so compare deviation from the ideal z = +1 signature of
        // the identity ansatz, which only the compressed circuit approaches.
        let generic = vec![0.9; model.n_weights()];
        let compressed = vec![0.0; model.n_weights()];
        let dev = |z: &[f64]| -> f64 { z.iter().map(|v| (v - 1.0).abs()).sum() };
        let z_cmp = exec.z_scores(&features, &compressed, &snap);
        let z_gen = exec.z_scores(&features, &generic, &snap);
        assert!(
            dev(&z_cmp) < dev(&z_gen),
            "compressed {z_cmp:?} should deviate less than generic {z_gen:?}"
        );
        // And the compressed circuit is strictly shorter.
        assert!(
            exec.circuit_length(&features, &compressed) < exec.circuit_length(&features, &generic)
        );
    }

    #[test]
    fn readout_error_flips_scores() {
        let (model, topo, exec) = setup();
        let mut snap = CalibrationSnapshot::uniform(&topo, 0, 0.0, 0.0, 0.0);
        for r in &mut snap.readout {
            *r = quasim::noise::ReadoutError::new(0.5, 0.5);
        }
        let weights = vec![0.0; model.n_weights()];
        let z = exec.z_scores(&[0.0; 4], &weights, &snap);
        // Fully random readout → z = 0.
        for v in z {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn circuit_length_drops_under_compression() {
        let (model, _, exec) = setup();
        let generic = vec![1.234; model.n_weights()];
        let mut half = generic.clone();
        for w in half.iter_mut().take(model.n_weights() / 2) {
            *w = 0.0;
        }
        let f = [0.3; 4];
        assert!(exec.circuit_length(&f, &half) < exec.circuit_length(&f, &generic));
        let levels: Vec<f64> = (0..model.n_weights()).map(|_| PI).collect();
        assert!(exec.circuit_length(&f, &levels) < exec.circuit_length(&f, &generic));
    }

    #[test]
    fn trajectory_backend_zero_noise_matches_pure() {
        // With every λ = 0 no stochastic atom is emitted, so a single
        // trajectory is exact and must match the pure path like the
        // density backend does.
        let model = VqcModel::paper_model(4, 4, 4, 1);
        let topo = Topology::ibm_belem();
        let exec = NoisyExecutor::new(
            &model,
            &topo,
            NoiseOptions {
                backend: SimBackend::Trajectory,
                readout: false,
                ..NoiseOptions::default()
            },
        );
        let snap = CalibrationSnapshot::uniform(&topo, 0, 0.0, 0.0, 0.0);
        let weights = model.init_weights(3);
        let features = [0.2, 0.7, 1.1, 2.0];
        let z_traj = exec.z_scores_seeded(&features, &weights, &snap, 0);
        let z_pure = pure_z_scores(&model, &features, &weights);
        for (a, b) in z_traj.iter().zip(z_pure.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn trajectory_backend_is_seed_deterministic() {
        let (model, topo, _) = setup();
        let exec = NoisyExecutor::new(
            &model,
            &topo,
            NoiseOptions {
                backend: SimBackend::Trajectory,
                trajectories: 32,
                ..NoiseOptions::default()
            },
        );
        let snap = CalibrationSnapshot::uniform(&topo, 0, 2e-3, 3e-2, 0.02);
        let weights = model.init_weights(5);
        let features = [0.4, 0.9, 1.3, 0.2];
        let a = exec.z_scores_seeded(&features, &weights, &snap, 7);
        let b = exec.z_scores_seeded(&features, &weights, &snap, 7);
        assert_eq!(a, b, "same stream must replay the same trajectories");
        let c = exec.z_scores_seeded(&features, &weights, &snap, 8);
        assert_ne!(a, c, "different streams must decorrelate");
    }

    #[test]
    fn program_cache_rebinds_same_structure_and_stays_bit_identical() {
        let (model, topo, exec) = setup();
        let snap = CalibrationSnapshot::uniform(&topo, 0, 2e-3, 3e-2, 0.02);
        let weights = model.init_weights(5);
        // Distinct generic-angle feature vectors share one structure:
        // after the first compile every evaluation is a cache hit.
        let feature_sets: Vec<[f64; 4]> = (0..6)
            .map(|i| [0.2 + 0.1 * i as f64, 0.7, 1.1 + 0.05 * i as f64, 2.0])
            .collect();
        let mut cached = Vec::new();
        for f in &feature_sets {
            cached.push(exec.z_scores_seeded(f, &weights, &snap, 3));
        }
        let stats = exec.cache_stats();
        assert_eq!(stats.misses, 1, "one structure, one miss");
        assert_eq!(stats.hits, 5);
        // A fresh executor compiles each evaluation from a cold cache; the
        // scores must match the warm-cache run bit for bit.
        for (f, want) in feature_sets.iter().zip(cached.iter()) {
            let fresh = NoisyExecutor::new(&model, &topo, NoiseOptions::default());
            let got = fresh.z_scores_seeded(f, &weights, &snap, 3);
            for (a, b) in got.iter().zip(want.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn program_cache_separates_compressed_structures() {
        let (model, topo, exec) = setup();
        let snap = CalibrationSnapshot::uniform(&topo, 0, 2e-3, 3e-2, 0.02);
        let features = [0.3, 0.8, 1.2, 2.1];
        let generic = vec![0.9; model.n_weights()];
        let mut compressed = generic.clone();
        compressed[0] = 0.0; // drops an op → different structure
        let _ = exec.z_scores_seeded(&features, &generic, &snap, 0);
        let _ = exec.z_scores_seeded(&features, &compressed, &snap, 0);
        let _ = exec.z_scores_seeded(&features, &generic, &snap, 1);
        let stats = exec.cache_stats();
        assert_eq!(stats.misses, 2, "two structures");
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn cache_rebinds_across_days_bit_identically() {
        // Same structure, different snapshots: the λ rebind must match a
        // cold compile under each day's calibration.
        let (model, topo, exec) = setup();
        let weights = model.init_weights(4);
        let features = [0.4, 0.9, 1.3, 0.2];
        let days: Vec<CalibrationSnapshot> = (0..4)
            .map(|d| CalibrationSnapshot::uniform(&topo, d, 1e-4 * (d + 1) as f64, 1e-2, 0.01))
            .collect();
        let warm: Vec<Vec<f64>> = days
            .iter()
            .map(|s| exec.z_scores_seeded(&features, &weights, s, 9))
            .collect();
        for (s, want) in days.iter().zip(warm.iter()) {
            let fresh = NoisyExecutor::new(&model, &topo, NoiseOptions::default());
            let got = fresh.z_scores_seeded(&features, &weights, s, 9);
            for (a, b) in got.iter().zip(want.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert_eq!(exec.cache_stats().misses, 1);
    }

    #[test]
    fn probe_batch_matches_seeded_evaluations_bitwise() {
        // Density with shots: every probe must reproduce its standalone
        // seeded evaluation exactly, across structures and thread counts.
        let model = VqcModel::paper_model(4, 4, 4, 1);
        let topo = Topology::ibm_belem();
        let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::with_shots(1024, 17));
        let snap = CalibrationSnapshot::uniform(&topo, 0, 2e-3, 3e-2, 0.02);
        let features = [0.4, 0.9, 1.3, 0.2];
        let base = model.init_weights(5);
        let mut compressed = base.clone();
        compressed[2] = 0.0; // second structure: identity-crossing probe
        let mut batch = ProbeBatch::new();
        for (s, w) in [&base, &compressed, &base, &base, &compressed]
            .iter()
            .enumerate()
        {
            batch.push(&features, w, s as u64);
        }
        let want: Vec<Vec<f64>> = batch
            .probes()
            .iter()
            .map(|p| exec.z_scores_seeded(p.features, p.weights, &snap, p.stream))
            .collect();
        for threads in [1usize, 3] {
            let got = exec.evaluate_probes(&snap, &batch, threads);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want.iter()) {
                for (a, b) in g.iter().zip(w.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "threads {threads}");
                }
            }
        }
    }

    #[test]
    fn probe_batch_trajectory_packing_matches_seeded_evaluations() {
        // Trajectory backend: repeated identical weight vectors ride shared
        // panel sweeps yet reproduce their standalone evaluations exactly.
        let model = VqcModel::paper_model(4, 4, 4, 1);
        let topo = Topology::ibm_belem();
        let exec = NoisyExecutor::new(
            &model,
            &topo,
            NoiseOptions {
                backend: SimBackend::Trajectory,
                trajectories: 24,
                ..NoiseOptions::with_shots(512, 9)
            },
        );
        let snap = CalibrationSnapshot::uniform(&topo, 0, 2e-3, 3e-2, 0.02);
        let features = [0.4, 0.9, 1.3, 0.2];
        let w_a = model.init_weights(5);
        let w_b = model.init_weights(6);
        let mut batch = ProbeBatch::with_capacity(6);
        // Two packed runs (same weights, distinct streams) plus a lone probe.
        for (s, w) in [&w_a, &w_a, &w_a, &w_b, &w_b, &w_a].iter().enumerate() {
            batch.push(&features, w, 100 + s as u64);
        }
        let got = exec.evaluate_probes(&snap, &batch, 1);
        for (p, g) in batch.probes().iter().zip(got.iter()) {
            let want = exec.z_scores_seeded(p.features, p.weights, &snap, p.stream);
            for (a, b) in g.iter().zip(want.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn probe_batch_counts_cache_traffic_per_group() {
        let (model, topo, exec) = setup();
        let snap = CalibrationSnapshot::uniform(&topo, 0, 2e-3, 3e-2, 0.02);
        let features = [0.4, 0.9, 1.3, 0.2];
        let base = model.init_weights(5);
        let mut compressed = base.clone();
        compressed[0] = 0.0;
        let mut batch = ProbeBatch::new();
        for (s, w) in [&base, &compressed, &base, &base].iter().enumerate() {
            batch.push(&features, w, s as u64);
        }
        let _ = exec.evaluate_probes(&snap, &batch, 1);
        let stats = exec.cache_stats();
        // One miss per structure group; re-binds within a group are not
        // separate lookups.
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 0);
        let _ = exec.evaluate_probes(&snap, &batch, 1);
        let stats = exec.cache_stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 2, "warm batch: one hit per group");
    }

    /// Weight vector with the low `bits` weights zeroed per `mask`'s bits:
    /// distinct masks put distinct gate subsets on the identity class, so
    /// each mask is its own structure key.
    fn mask_weights(n: usize, mask: u32, bits: u32) -> Vec<f64> {
        (0..n)
            .map(|j| {
                if (j as u32) < bits && mask & (1 << j) != 0 {
                    0.0
                } else {
                    0.9
                }
            })
            .collect()
    }

    #[test]
    fn cache_sustains_hit_rate_beyond_capacity_round_robin() {
        const WORKING_SET: usize = 300;
        let (model, _, exec) = setup();
        let features = [0.3; 4];
        let n = model.n_weights();
        assert!(
            n >= 9,
            "need 9 maskable weights for 300 distinct structures"
        );
        // Pass 1: cold — every structure compiles.
        for i in 0..WORKING_SET {
            exec.circuit_length(&features, &mask_weights(n, i as u32, 9));
        }
        let cold = exec.cache_stats();
        assert_eq!(cold.misses, WORKING_SET as u64);
        assert_eq!(cold.hits, 0);
        // Warm passes: the old clear-at-cap scheme collapsed any >cap
        // round-robin to ~0% hits every generation; stale-only eviction
        // plus admission denial must keep every resident structure warm
        // (cap / working set ≈ 85% here), pass after pass.
        for pass in 0..2 {
            let before = exec.cache_stats();
            for i in 0..WORKING_SET {
                exec.circuit_length(&features, &mask_weights(n, i as u32, 9));
            }
            let after = exec.cache_stats();
            let hits = after.hits - before.hits;
            assert!(
                hits >= 250,
                "warm pass {pass}: {hits}/{WORKING_SET} hits (cache thrash regression)"
            );
        }
        assert!(exec.cache_handle().resident_structures() <= MAX_CACHED_STRUCTURES);
    }

    #[test]
    fn clones_share_one_cache_and_aggregate_stats() {
        let (model, _, exec) = setup();
        let features = [0.3; 4];
        let weights = vec![0.7; model.n_weights()];
        let clone = exec.clone();
        clone.circuit_length(&features, &weights);
        // The clone's compile warms the original: the same key hits here.
        exec.circuit_length(&features, &weights);
        let stats = exec.cache_stats();
        assert_eq!(
            stats,
            clone.cache_stats(),
            "counters are shared, not per-clone"
        );
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(exec.cache_handle().resident_structures(), 1);
    }

    #[test]
    fn stale_entries_evicted_for_a_shifted_working_set() {
        let (model, _, exec) = setup();
        let features = [0.3; 4];
        let n = model.n_weights();
        for i in 0..MAX_CACHED_STRUCTURES {
            exec.circuit_length(&features, &mask_weights(n, i as u32, 9));
        }
        assert_eq!(
            exec.cache_handle().resident_structures(),
            MAX_CACHED_STRUCTURES
        );
        // Keep one key hot while the logical clock advances two full
        // generations: every other resident entry goes stale.
        let hot = mask_weights(n, 0, 9);
        for _ in 0..(2 * GENERATION_LOOKUPS + 10) {
            exec.circuit_length(&features, &hot);
        }
        // A genuinely new structure now evicts the stale entries and is
        // admitted; the hot key survives eviction.
        let newcomer = mask_weights(n, 300, 9);
        exec.circuit_length(&features, &newcomer);
        let before = exec.cache_stats();
        exec.circuit_length(&features, &newcomer);
        exec.circuit_length(&features, &hot);
        let after = exec.cache_stats();
        assert_eq!(
            after.hits - before.hits,
            2,
            "newcomer admitted and hot key retained"
        );
        assert_eq!(exec.cache_handle().resident_structures(), 2);
    }

    #[test]
    fn trajectory_compile_precomposes_density_does_not() {
        let (model, topo, density_exec) = setup();
        let snap = CalibrationSnapshot::uniform(&topo, 0, 2e-3, 3e-2, 0.02);
        let weights = model.init_weights(5);
        let features = [0.4, 0.9, 1.3, 0.2];
        let (_, plain) = density_exec.compile_program(&features, &weights, &snap);
        assert!(!plain.is_precomposed());
        let traj_exec = NoisyExecutor::new(
            &model,
            &topo,
            NoiseOptions::default().with_backend(SimBackend::Trajectory),
        );
        let (_, pre) = traj_exec.compile_program(&features, &weights, &snap);
        // The trajectory arm is exactly the density program post-composed
        // (whether or not this circuit offers a composable run), and the
        // stochastic stream is untouched either way.
        assert_eq!(pre, plain.precompose());
        assert_eq!(pre.n_stochastic_atoms(), plain.n_stochastic_atoms());
    }

    #[test]
    fn backend_parse_roundtrip() {
        for b in [SimBackend::Density, SimBackend::Trajectory] {
            assert_eq!(SimBackend::parse(b.name()), Some(b));
        }
        assert_eq!(SimBackend::parse(" Traj "), Some(SimBackend::Trajectory));
        assert_eq!(SimBackend::parse("statevector"), None);
    }

    #[test]
    #[should_panic(expected = "snapshot does not match")]
    fn snapshot_topology_mismatch_detected() {
        let (model, _, exec) = setup();
        let other = Topology::ibm_jakarta();
        let snap = CalibrationSnapshot::uniform(&other, 0, 0.0, 0.0, 0.0);
        let _ = exec.z_scores(&[0.0; 4], &vec![0.0; model.n_weights()], &snap);
    }
}

//! Gradients of scalar circuit losses.
//!
//! Plain rotations admit the exact two-term parameter-shift rule. The
//! paper's ansatz also contains *controlled* rotations, whose generators
//! have three eigenvalues, so the two-term rule is not exact for them; this
//! module therefore offers both the exact shift rule (for analyses/tests on
//! pure-rotation circuits) and a high-accuracy central finite difference
//! that is correct for every gate and for noisy objectives. Both cost two
//! objective evaluations per parameter.

/// Central finite-difference gradient of `f` at `theta`.
///
/// # Examples
///
/// ```
/// use qnn::grad::finite_diff_gradient;
///
/// let f = |t: &[f64]| t[0] * t[0] + 3.0 * t[1];
/// let g = finite_diff_gradient(&f, &[2.0, 0.0], 1e-5);
/// assert!((g[0] - 4.0).abs() < 1e-6);
/// assert!((g[1] - 3.0).abs() < 1e-6);
/// ```
///
/// # Panics
///
/// Panics if `h <= 0`.
pub fn finite_diff_gradient<F: Fn(&[f64]) -> f64>(f: &F, theta: &[f64], h: f64) -> Vec<f64> {
    assert!(h > 0.0, "step size must be positive");
    let mut grad = vec![0.0; theta.len()];
    let mut work = theta.to_vec();
    for i in 0..theta.len() {
        let orig = work[i];
        work[i] = orig + h;
        let fp = f(&work);
        work[i] = orig - h;
        let fm = f(&work);
        work[i] = orig;
        grad[i] = (fp - fm) / (2.0 * h);
    }
    grad
}

/// Two-term parameter-shift gradient with shift `π/2`:
/// `∂f/∂θ_i = [f(θ + π/2·e_i) − f(θ − π/2·e_i)] / 2`.
///
/// Exact for objectives built from single-qubit rotation gates
/// (`RX`, `RY`, `RZ`); approximate for controlled rotations.
pub fn param_shift_gradient<F: Fn(&[f64]) -> f64>(f: &F, theta: &[f64]) -> Vec<f64> {
    let shift = std::f64::consts::FRAC_PI_2;
    let mut grad = vec![0.0; theta.len()];
    let mut work = theta.to_vec();
    for i in 0..theta.len() {
        let orig = work[i];
        work[i] = orig + shift;
        let fp = f(&work);
        work[i] = orig - shift;
        let fm = f(&work);
        work[i] = orig;
        grad[i] = 0.5 * (fp - fm);
    }
    grad
}

/// Batched two-term parameter-shift gradient of a noisy scalar objective.
///
/// Semantically identical to [`param_shift_gradient`] over the closure
/// `|w| objective(&exec.z_scores_seeded(features, w, snapshot, stream))`,
/// but instead of `2·P` opaque executor round-trips it builds all `2·P`
/// shifted weight vectors up front and routes them through
/// [`NoisyExecutor::evaluate_probes`], which groups probes by circuit
/// structure (one route/simplify per structure, bind-only per probe) and
/// fans them across `threads` workers — or packs same-structure probes
/// into shared trajectory panels on the trajectory backend.
///
/// `stream_for(i, plus)` supplies the seeded shot-noise stream for the
/// `±π/2` probe of weight `i`. Because streams are assigned by *weight
/// index and sign* rather than evaluation order, the result is
/// bit-identical for any `threads`, either backend, and any panel width;
/// the closure form [`param_shift_gradient`] serves as the sequential
/// oracle for exactly that contract (see `tests/training_path.rs`).
///
/// Note there is no unshifted-loss evaluation to share or hoist: the
/// shift rule only ever consumes the `2·P` shifted points.
pub fn param_shift_gradient_batched<O, S>(
    exec: &crate::executor::NoisyExecutor,
    snapshot: &calibration::snapshot::CalibrationSnapshot,
    features: &[f64],
    weights: &[f64],
    objective: O,
    stream_for: S,
    threads: usize,
) -> Vec<f64>
where
    O: Fn(&[f64]) -> f64,
    S: Fn(usize, bool) -> u64,
{
    let shift = std::f64::consts::FRAC_PI_2;
    let n = weights.len();
    let mut shifted: Vec<Vec<f64>> = Vec::with_capacity(2 * n);
    for i in 0..n {
        for sign in [shift, -shift] {
            let mut w = weights.to_vec();
            w[i] += sign;
            shifted.push(w);
        }
    }
    let mut batch = crate::executor::ProbeBatch::with_capacity(2 * n);
    for (k, w) in shifted.iter().enumerate() {
        batch.push(features, w, stream_for(k / 2, k.is_multiple_of(2)));
    }
    let scores = exec.evaluate_probes(snapshot, &batch, threads);
    (0..n)
        .map(|i| 0.5 * (objective(&scores[2 * i]) - objective(&scores[2 * i + 1])))
        .collect()
}

/// Euclidean norm of a gradient vector.
pub fn grad_norm(grad: &[f64]) -> f64 {
    grad.iter().map(|g| g * g).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::pure_z_scores;
    use crate::model::VqcModel;
    use quasim::gate::{BoundGate, GateKind};
    use quasim::statevector::StateVector;

    #[test]
    fn fd_matches_analytic_on_quadratic() {
        let f = |t: &[f64]| 0.5 * t[0] * t[0] - t[1] + t[0] * t[1];
        let g = finite_diff_gradient(&f, &[1.0, 2.0], 1e-5);
        assert!((g[0] - 3.0).abs() < 1e-6);
        assert!((g[1] - 0.0).abs() < 1e-6);
    }

    #[test]
    fn param_shift_exact_for_single_rotation() {
        // f(θ) = ⟨Z⟩ after RY(θ) = cos θ; f' = −sin θ.
        let f = |t: &[f64]| {
            let mut sv = StateVector::zero_state(1);
            sv.apply(&BoundGate::one(GateKind::Ry, 0, t[0]));
            sv.expect_z(0)
        };
        for theta in [0.0, 0.4, 1.2, 2.9] {
            let g = param_shift_gradient(&f, &[theta]);
            assert!((g[0] + theta.sin()).abs() < 1e-12, "theta={theta}");
        }
    }

    #[test]
    fn param_shift_and_fd_agree_on_rotation_circuit() {
        let f = |t: &[f64]| {
            let mut sv = StateVector::zero_state(2);
            sv.apply(&BoundGate::one(GateKind::Ry, 0, t[0]));
            sv.apply(&BoundGate::one(GateKind::Rx, 1, t[1]));
            sv.apply(&BoundGate::two(GateKind::Cx, 0, 1, 0.0));
            sv.expect_z(1)
        };
        let theta = [0.7, -0.3];
        let ps = param_shift_gradient(&f, &theta);
        let fd = finite_diff_gradient(&f, &theta, 1e-6);
        for (a, b) in ps.iter().zip(fd.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn fd_gradient_of_model_loss_is_finite_and_nonzero() {
        let model = VqcModel::paper_model(4, 4, 4, 1);
        let weights = model.init_weights(11);
        let features = [0.4, 0.9, 1.3, 2.0];
        let f = |w: &[f64]| {
            let z = pure_z_scores(&model, &features, w);
            crate::loss::cross_entropy(&z, 2)
        };
        let g = finite_diff_gradient(&f, &weights, 1e-5);
        assert!(g.iter().all(|v| v.is_finite()));
        assert!(grad_norm(&g) > 1e-6, "gradient unexpectedly zero");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn fd_rejects_zero_step() {
        let f = |_: &[f64]| 0.0;
        let _ = finite_diff_gradient(&f, &[1.0], 0.0);
    }

    #[test]
    fn batched_param_shift_matches_closure_oracle_bitwise() {
        use crate::executor::{NoiseOptions, NoisyExecutor};
        use calibration::snapshot::CalibrationSnapshot;
        use calibration::topology::Topology;
        use std::cell::Cell;

        let model = VqcModel::paper_model(4, 3, 4, 1);
        let topo = Topology::ibm_belem();
        let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::with_shots(256, 5));
        let snap = CalibrationSnapshot::uniform(&topo, 0, 3e-4, 8e-3, 0.02);
        let features = [0.3, 1.1, 0.7, 2.2];
        let weights = model.init_weights(4);
        let obj = |z: &[f64]| crate::loss::cross_entropy(z, 1);
        let stream_for = |i: usize, plus: bool| 31 + 2 * i as u64 + u64::from(!plus);

        // The closure oracle calls f in the fixed order (+0, −0, +1, −1, …),
        // so a call counter recovers each evaluation's (weight, sign) and
        // with it the stream the batched engine would assign.
        let calls = Cell::new(0usize);
        let oracle = |w: &[f64]| {
            let k = calls.get();
            calls.set(k + 1);
            let z =
                exec.z_scores_seeded(&features, w, &snap, stream_for(k / 2, k.is_multiple_of(2)));
            obj(&z)
        };
        let want = param_shift_gradient(&oracle, &weights);

        for threads in [1, 3] {
            let got = param_shift_gradient_batched(
                &exec, &snap, &features, &weights, obj, stream_for, threads,
            );
            assert_eq!(got.len(), want.len());
            for (i, (a, b)) in got.iter().zip(want.iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "grad[{i}] threads={threads}");
            }
        }
    }
}

//! # qnn — quantum neural network substrate
//!
//! Everything needed to define, train, and evaluate the paper's QNN models:
//!
//! - [`encoding`]: angle encoding with feature re-uploading;
//! - [`model`]: the paper's VQC ansatz
//!   (`4RY + 4CRY + 4RY + 4RX + 4CRX + 4RX + 4RZ + 4CRZ + 4RZ + 4CRZ` per
//!   repeat) on 4 qubits with ring entanglement;
//! - [`data`]: Iris (embedded), synthetic 4-class MNIST and synthetic
//!   earthquake detection (substitutions documented in DESIGN.md §4);
//! - [`executor`]: noise-free (`Wp`) and calibration-driven noisy (`Wn`)
//!   evaluation back-ends;
//! - [`grad`], [`optim`], [`train`]: finite-difference / parameter-shift
//!   gradients, Adam, and the noise-injection training loop of
//!   QuantumNAT \[12].
//!
//! # Examples
//!
//! Train the paper's Iris model noise-free and evaluate it under a noisy
//! day:
//!
//! ```no_run
//! use qnn::data::Dataset;
//! use qnn::executor::{NoiseOptions, NoisyExecutor};
//! use qnn::model::VqcModel;
//! use qnn::train::{evaluate, train, Env, TrainConfig};
//! use calibration::snapshot::CalibrationSnapshot;
//! use calibration::topology::Topology;
//!
//! let data = Dataset::iris(7);
//! let model = VqcModel::paper_model(4, 3, 4, 3);
//! let result = train(
//!     &model, &data.train, Env::Pure, &TrainConfig::default(),
//!     &model.init_weights(0),
//! );
//! let topo = Topology::ibm_belem();
//! let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::default());
//! let snap = CalibrationSnapshot::uniform(&topo, 0, 3e-4, 1e-2, 0.03);
//! let env = Env::Noisy { exec: &exec, snapshot: &snap };
//! println!("noisy accuracy: {}", evaluate(&model, env, &data.test, &result.weights));
//! ```

// No unsafe code belongs in this crate; the only sanctioned unsafe in the
// workspace is quasim's (future) SIMD kernel layer.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod encoding;
pub mod executor;
pub mod grad;
pub mod loss;
pub mod model;
pub mod optim;
pub mod probe;
pub mod train;

pub use data::{Dataset, Sample};
pub use executor::{pure_z_scores, NoiseOptions, NoisyExecutor, ProbeBatch, ProbeRequest};
pub use model::VqcModel;
pub use probe::{pure_fd_probes, PureProbes};
pub use train::{
    evaluate, train, train_masked, train_masked_sequential, train_masked_with_threads,
    train_spsa_masked, train_spsa_masked_sequential, train_spsa_masked_with_threads, Env,
    SpsaConfig, TrainConfig, TrainResult,
};

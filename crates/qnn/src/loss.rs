//! Classification head: softmax over per-qubit Z scores, cross-entropy loss.
//!
//! Class `k`'s logit is the expectation `⟨Z_k⟩` of readout qubit `k`
//! (negated so that "more |1⟩" means "more class evidence", matching the
//! Torch-Quantum convention); probabilities come from a softmax and training
//! minimises cross-entropy.

/// Converts per-qubit `⟨Z⟩` values into class logits.
///
/// # Examples
///
/// ```
/// let logits = qnn::loss::logits_from_z(&[1.0, -1.0]);
/// assert!(logits[1] > logits[0]); // qubit 1 closer to |1⟩ → stronger class 1
/// ```
pub fn logits_from_z(z_scores: &[f64]) -> Vec<f64> {
    z_scores.iter().map(|&z| -z).collect()
}

/// Numerically stable softmax.
///
/// # Panics
///
/// Panics if `logits` is empty.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    assert!(!logits.is_empty(), "softmax needs at least one logit");
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let total: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / total).collect()
}

/// Cross-entropy of a single sample given per-qubit Z scores.
///
/// # Panics
///
/// Panics if `label` is out of range.
pub fn cross_entropy(z_scores: &[f64], label: usize) -> f64 {
    assert!(label < z_scores.len(), "label out of range");
    let probs = softmax(&logits_from_z(z_scores));
    -(probs[label].max(1e-12)).ln()
}

/// Mean cross-entropy over a batch of already-evaluated Z-score vectors.
///
/// Sums per-sample losses in slice order before the single division, so a
/// batched evaluation that produces the same scores as a sequential loop
/// yields the bit-identical loss — [`crate::train::batch_loss`] and the
/// probe-batched training paths both reduce through this function.
///
/// # Panics
///
/// Panics if the slices differ in length, the batch is empty, or a label
/// is out of range.
pub fn mean_cross_entropy(scores: &[Vec<f64>], labels: &[usize]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    assert!(!scores.is_empty(), "empty batch");
    let total: f64 = scores
        .iter()
        .zip(labels)
        .map(|(z, &label)| cross_entropy(z, label))
        .sum();
    total / scores.len() as f64
}

/// Gradient of [`cross_entropy`] with respect to the *Z scores*
/// (`∂L/∂z_k = −(p_k − 1{k=label})`, the extra minus from the logit flip).
///
/// # Panics
///
/// Panics if `label` is out of range.
pub fn cross_entropy_grad_z(z_scores: &[f64], label: usize) -> Vec<f64> {
    assert!(label < z_scores.len(), "label out of range");
    let probs = softmax(&logits_from_z(z_scores));
    probs
        .iter()
        .enumerate()
        .map(|(k, &p)| -(p - if k == label { 1.0 } else { 0.0 }))
        .collect()
}

/// Predicted class: argmax of the logits.
///
/// # Panics
///
/// Panics if `z_scores` is empty.
pub fn predict(z_scores: &[f64]) -> usize {
    assert!(!z_scores.is_empty(), "need at least one class");
    logits_from_z(z_scores)
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(k, _)| k)
        .expect("non-empty")
}

/// Fraction of correct predictions.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    assert!(!predictions.is_empty(), "empty evaluation set");
    let hits = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    hits as f64 / predictions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0]);
        let b = softmax(&[101.0, 102.0]);
        assert!((a[0] - b[0]).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_prefers_correct_qubit_excited() {
        // Label 0: loss smaller when qubit 0 is near |1⟩ (z = −1).
        let good = cross_entropy(&[-1.0, 1.0], 0);
        let bad = cross_entropy(&[1.0, -1.0], 0);
        assert!(good < bad);
    }

    #[test]
    fn grad_matches_finite_difference() {
        let z = [0.3, -0.2, 0.7];
        let label = 1;
        let g = cross_entropy_grad_z(&z, label);
        let h = 1e-6;
        for k in 0..3 {
            let mut zp = z;
            zp[k] += h;
            let mut zm = z;
            zm[k] -= h;
            let fd = (cross_entropy(&zp, label) - cross_entropy(&zm, label)) / (2.0 * h);
            assert!((g[k] - fd).abs() < 1e-6, "dim {k}: {} vs {}", g[k], fd);
        }
    }

    #[test]
    fn predict_picks_most_excited_qubit() {
        assert_eq!(predict(&[0.9, -0.8, 0.1]), 1);
        assert_eq!(predict(&[-0.5, -0.2]), 0);
    }

    #[test]
    fn accuracy_counts_hits() {
        assert_eq!(accuracy(&[0, 1, 2, 1], &[0, 1, 1, 1]), 0.75);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn cross_entropy_checks_label() {
        let _ = cross_entropy(&[0.0, 0.0], 5);
    }
}

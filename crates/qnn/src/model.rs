//! The paper's VQC ansatz and the full QNN model definition.
//!
//! The experiments use "2 repeats of a VQC block
//! (4RY + 4CRY + 4RY + 4RX + 4CRX + 4RX + 4RZ + 4CRZ + 4RZ + 4CRZ)"
//! (Sec. IV-A) on 4 qubits, preceded by an angle encoder. Controlled
//! rotations entangle in a ring (`q → (q+1) mod n`).
//!
//! Parameter layout convention: the circuit's trainable slots
//! `[0, n_features)` carry per-sample *feature* angles and
//! `[n_features, n_features + n_weights)` carry the *weights* `θ`. The
//! simulators see one flat vector; compression and training only ever touch
//! the weight span.

use crate::encoding::AngleEncoder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use transpile::circuit::{Circuit, Param};

/// Which rotation axis a block sub-layer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    X,
    Y,
    Z,
}

/// A QNN model: angle encoder + repeated VQC blocks + Z-readout.
///
/// # Examples
///
/// ```
/// use qnn::model::VqcModel;
///
/// // The paper's 4-class MNIST model: 16 features, 4 qubits, 2 repeats.
/// let model = VqcModel::paper_model(4, 4, 16, 2);
/// assert_eq!(model.n_weights(), 80);
/// assert_eq!(model.measured_logical(), vec![0, 1, 2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VqcModel {
    n_qubits: usize,
    n_classes: usize,
    n_features: usize,
    n_weights: usize,
    repeats: usize,
    circuit: Circuit,
}

impl VqcModel {
    /// Builds the paper's model: encoder + `repeats` VQC blocks.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes > n_qubits` (each class reads one qubit), or if
    /// any count is zero.
    pub fn paper_model(
        n_qubits: usize,
        n_classes: usize,
        n_features: usize,
        repeats: usize,
    ) -> Self {
        assert!(n_qubits >= 2, "model needs at least two qubits");
        assert!(
            n_classes >= 1 && n_classes <= n_qubits,
            "one readout qubit per class"
        );
        assert!(repeats >= 1, "at least one block repeat");

        let mut circuit = Circuit::new(n_qubits);
        let encoder = AngleEncoder::new(n_qubits, n_features);
        encoder.append_to(&mut circuit, 0);

        let mut next = n_features;
        for _ in 0..repeats {
            // 4RY + 4CRY + 4RY
            Self::rot_layer(&mut circuit, Axis::Y, &mut next);
            Self::entangle_layer(&mut circuit, Axis::Y, &mut next);
            Self::rot_layer(&mut circuit, Axis::Y, &mut next);
            // 4RX + 4CRX + 4RX
            Self::rot_layer(&mut circuit, Axis::X, &mut next);
            Self::entangle_layer(&mut circuit, Axis::X, &mut next);
            Self::rot_layer(&mut circuit, Axis::X, &mut next);
            // 4RZ + 4CRZ + 4RZ + 4CRZ
            Self::rot_layer(&mut circuit, Axis::Z, &mut next);
            Self::entangle_layer(&mut circuit, Axis::Z, &mut next);
            Self::rot_layer(&mut circuit, Axis::Z, &mut next);
            Self::entangle_layer(&mut circuit, Axis::Z, &mut next);
        }

        VqcModel {
            n_qubits,
            n_classes,
            n_features,
            n_weights: next - n_features,
            repeats,
            circuit,
        }
    }

    fn rot_layer(c: &mut Circuit, axis: Axis, next: &mut usize) {
        for q in 0..c.n_qubits() {
            let p = Param::Idx(*next);
            *next += 1;
            match axis {
                Axis::X => c.rx(q, p),
                Axis::Y => c.ry(q, p),
                Axis::Z => c.rz(q, p),
            };
        }
    }

    fn entangle_layer(c: &mut Circuit, axis: Axis, next: &mut usize) {
        let n = c.n_qubits();
        for q in 0..n {
            let p = Param::Idx(*next);
            *next += 1;
            let t = (q + 1) % n;
            match axis {
                Axis::X => c.crx(q, t, p),
                Axis::Y => c.cry(q, t, p),
                Axis::Z => c.crz(q, t, p),
            };
        }
    }

    /// Number of logical qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of output classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of input features per sample.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of trainable weights.
    pub fn n_weights(&self) -> usize {
        self.n_weights
    }

    /// Number of VQC block repeats.
    pub fn repeats(&self) -> usize {
        self.repeats
    }

    /// The underlying logical circuit (encoding + ansatz).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Logical qubits read out for classification (`0..n_classes`).
    pub fn measured_logical(&self) -> Vec<usize> {
        (0..self.n_classes).collect()
    }

    /// Flat parameter-slot index of weight `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_weights`.
    pub fn weight_slot(&self, i: usize) -> usize {
        assert!(i < self.n_weights, "weight index out of range");
        self.n_features + i
    }

    /// Concatenates features and weights into the flat binding vector.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the model.
    pub fn full_params(&self, features: &[f64], weights: &[f64]) -> Vec<f64> {
        assert_eq!(features.len(), self.n_features, "feature count mismatch");
        assert_eq!(weights.len(), self.n_weights, "weight count mismatch");
        let mut v = Vec::with_capacity(self.n_features + self.n_weights);
        v.extend_from_slice(features);
        v.extend_from_slice(weights);
        v
    }

    /// Samples initial weights uniformly from `[−π, π]` with a fixed seed.
    pub fn init_weights(&self, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..self.n_weights)
            .map(|_| rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasim::gate::GateKind;

    #[test]
    fn paper_block_structure() {
        let m = VqcModel::paper_model(4, 4, 16, 2);
        // 10 sub-layers × 4 qubits × 2 repeats.
        assert_eq!(m.n_weights(), 80);
        // 16 encoding + 80 ansatz gates.
        assert_eq!(m.circuit().len(), 96);
        assert_eq!(m.circuit().n_params(), 96);
    }

    #[test]
    fn iris_model_has_three_repeats() {
        let m = VqcModel::paper_model(4, 3, 4, 3);
        assert_eq!(m.n_weights(), 120);
        assert_eq!(m.measured_logical(), vec![0, 1, 2]);
    }

    #[test]
    fn block_layer_ordering() {
        let m = VqcModel::paper_model(4, 4, 4, 1);
        let ops = m.circuit().ops();
        // After 4 encoding RYs: 4 RY, 4 CRY, 4 RY, 4 RX, 4 CRX, 4 RX,
        // 4 RZ, 4 CRZ, 4 RZ, 4 CRZ.
        let kinds: Vec<GateKind> = ops[4..].iter().map(|o| o.kind).collect();
        let expect_block = |i: usize| match i / 4 {
            0 | 2 => GateKind::Ry,
            1 => GateKind::Cry,
            3 | 5 => GateKind::Rx,
            4 => GateKind::Crx,
            6 | 8 => GateKind::Rz,
            7 | 9 => GateKind::Crz,
            _ => unreachable!(),
        };
        for (i, k) in kinds.iter().enumerate() {
            assert_eq!(*k, expect_block(i), "sub-layer mismatch at gate {i}");
        }
    }

    #[test]
    fn entanglement_is_a_ring() {
        let m = VqcModel::paper_model(4, 4, 4, 1);
        let crys: Vec<&transpile::circuit::Op> = m
            .circuit()
            .ops()
            .iter()
            .filter(|o| o.kind == GateKind::Cry)
            .collect();
        let pairs: Vec<(usize, usize)> = crys.iter().map(|o| (o.qubits[0], o.qubits[1])).collect();
        assert_eq!(pairs, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
    }

    #[test]
    fn weight_slot_offsets_past_features() {
        let m = VqcModel::paper_model(4, 2, 16, 1);
        assert_eq!(m.weight_slot(0), 16);
        assert_eq!(m.weight_slot(39), 55);
    }

    #[test]
    fn init_weights_deterministic_and_bounded() {
        let m = VqcModel::paper_model(4, 4, 4, 1);
        let a = m.init_weights(5);
        let b = m.init_weights(5);
        assert_eq!(a, b);
        assert!(a.iter().all(|w| w.abs() <= std::f64::consts::PI));
        assert_ne!(a, m.init_weights(6));
    }

    #[test]
    fn full_params_concatenates() {
        let m = VqcModel::paper_model(2, 2, 2, 1);
        let v = m.full_params(&[0.1, 0.2], &vec![0.0; m.n_weights()]);
        assert_eq!(v.len(), 2 + m.n_weights());
        assert_eq!(v[0], 0.1);
    }

    #[test]
    #[should_panic(expected = "one readout qubit per class")]
    fn too_many_classes_rejected() {
        let _ = VqcModel::paper_model(2, 3, 2, 1);
    }
}

//! First-order optimisers.
//!
//! Adam is the workhorse (as in Torch-Quantum training); plain SGD is kept
//! for ablations and tests.

/// Adam optimiser state.
///
/// # Examples
///
/// ```
/// use qnn::optim::Adam;
///
/// let mut opt = Adam::new(0.1, 2);
/// let mut theta = vec![1.0, -1.0];
/// for _ in 0..200 {
///     let grad: Vec<f64> = theta.iter().map(|t| 2.0 * t).collect(); // ∇(θ²)
///     opt.step(&mut theta, &grad);
/// }
/// assert!(theta.iter().all(|t| t.abs() < 1e-2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an Adam optimiser with standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64, n_params: usize) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; n_params],
            v: vec![0.0; n_params],
            t: 0,
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// In-place parameter update from a gradient.
    ///
    /// # Panics
    ///
    /// Panics if `theta` / `grad` lengths differ from the optimiser state.
    pub fn step(&mut self, theta: &mut [f64], grad: &[f64]) {
        assert_eq!(theta.len(), self.m.len(), "parameter count mismatch");
        assert_eq!(grad.len(), self.m.len(), "gradient count mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..theta.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grad[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            theta[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Applies the update only to coordinates where `mask[i]` is `true`
    /// (used to freeze compressed parameters during fine-tuning).
    ///
    /// # Panics
    ///
    /// Panics on any length mismatch.
    pub fn step_masked(&mut self, theta: &mut [f64], grad: &[f64], trainable: &[bool]) {
        assert_eq!(trainable.len(), theta.len(), "mask length mismatch");
        let before: Vec<f64> = theta.to_vec();
        self.step(theta, grad);
        for i in 0..theta.len() {
            if !trainable[i] {
                theta[i] = before[i];
            }
        }
    }

    /// Resets moments and step count (e.g. between fine-tuning phases).
    pub fn reset(&mut self) {
        self.m.iter_mut().for_each(|x| *x = 0.0);
        self.v.iter_mut().for_each(|x| *x = 0.0);
        self.t = 0;
    }
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sgd {
    lr: f64,
}

impl Sgd {
    /// Creates an SGD optimiser.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd { lr }
    }

    /// In-place update `θ ← θ − lr·∇`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn step(&self, theta: &mut [f64], grad: &[f64]) {
        assert_eq!(theta.len(), grad.len(), "gradient count mismatch");
        for (t, g) in theta.iter_mut().zip(grad.iter()) {
            *t -= self.lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimises_rosenbrock_slice() {
        // f(x, y) = (1−x)² + 5(y−x²)²
        let grad = |t: &[f64]| {
            let (x, y) = (t[0], t[1]);
            vec![
                -2.0 * (1.0 - x) - 20.0 * x * (y - x * x),
                10.0 * (y - x * x),
            ]
        };
        let mut theta = vec![-0.5, 0.5];
        let mut opt = Adam::new(0.05, 2);
        for _ in 0..3000 {
            let g = grad(&theta);
            opt.step(&mut theta, &g);
        }
        assert!((theta[0] - 1.0).abs() < 0.05, "x={}", theta[0]);
        assert!((theta[1] - 1.0).abs() < 0.1, "y={}", theta[1]);
    }

    #[test]
    fn masked_step_freezes_parameters() {
        let mut theta = vec![1.0, 1.0];
        let mut opt = Adam::new(0.5, 2);
        opt.step_masked(&mut theta, &[1.0, 1.0], &[true, false]);
        assert!(theta[0] < 1.0);
        assert_eq!(theta[1], 1.0);
    }

    #[test]
    fn sgd_descends() {
        let mut theta = vec![2.0];
        let sgd = Sgd::new(0.1);
        for _ in 0..100 {
            let g = vec![2.0 * theta[0]];
            sgd.step(&mut theta, &g);
        }
        assert!(theta[0].abs() < 1e-3);
    }

    #[test]
    fn reset_clears_momentum() {
        let mut opt = Adam::new(0.1, 1);
        let mut theta = vec![1.0];
        opt.step(&mut theta, &[1.0]);
        opt.reset();
        let fresh = Adam::new(0.1, 1);
        assert_eq!(opt, fresh);
    }

    #[test]
    #[should_panic(expected = "parameter count")]
    fn step_checks_lengths() {
        let mut opt = Adam::new(0.1, 2);
        let mut theta = vec![0.0];
        opt.step(&mut theta, &[0.0]);
    }
}

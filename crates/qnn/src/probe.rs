//! Batched noise-free probe evaluation for finite-difference gradients.
//!
//! The pure finite-difference loop in [`crate::train::train_masked`] (and
//! the ADMM θ-update) evaluates `2·P` shifted weight vectors per sample,
//! each as a full bind + state-vector run even though a ±h shift of weight
//! `i` changes only the gate(s) referencing parameter slot `i`. This
//! module exploits that: one pass binds the base circuit, advances a
//! shared **prefix state** gate by gate, and evaluates every ± probe by
//! copying the prefix at the probe's divergence point and replaying only
//! the suffix with the affected gates re-bound at the shifted angle.
//!
//! **Bit-identity**: every probe's Z scores equal
//! [`crate::executor::pure_z_scores`] at the correspondingly shifted
//! weight vector, bit for bit. Gates before the divergence point bind to
//! identical [`quasim::gate::BoundGate`]s (same angles → same matrices),
//! so the saved prefix state is the state a from-scratch run would reach;
//! unaffected suffix gates reuse the base-bound gates (their angles are
//! untouched by the shift); affected gates are re-bound through the same
//! [`transpile::circuit::Op::bind`] the full bind would use. The
//! `pure_probes_match_full_reruns` tests pin this, and the golden
//! z-score fixture pins the trained result end to end.
//!
//! Cost per sample drops from `(1 + 2·P)` full runs to one full run plus
//! `2·P` suffix replays (half the circuit on average, with no per-probe
//! full bind), using two state vectors of memory total.

use crate::model::VqcModel;
use quasim::statevector::StateVector;

/// One probe's result: `(weight index, z at +h, z at −h)`.
pub type ShiftedScores = (usize, Vec<f64>, Vec<f64>);

/// Z scores of one sample's base evaluation and all its ±h probes, as
/// produced by [`pure_fd_probes`].
#[derive(Debug, Clone, PartialEq)]
pub struct PureProbes {
    /// Z scores at the unshifted weights (bit-identical to
    /// [`crate::executor::pure_z_scores`]).
    pub base: Vec<f64>,
    /// Per requested slot, in request order.
    pub shifted: Vec<ShiftedScores>,
}

/// Evaluates the base circuit and the `±h` finite-difference probes of
/// every weight in `slots` for one sample, sharing prefix states across
/// probes (see the [module docs](self)).
///
/// # Panics
///
/// Panics if slice lengths mismatch the model, a slot index is out of
/// range, or `h` is not finite.
pub fn pure_fd_probes(
    model: &VqcModel,
    features: &[f64],
    weights: &[f64],
    h: f64,
    slots: &[usize],
) -> PureProbes {
    assert!(h.is_finite(), "shift must be finite");
    let full = model.full_params(features, weights);
    let circuit = model.circuit();
    let gates = circuit.bind(&full);
    let ops = circuit.ops();
    let measured = model.measured_logical();

    // Divergence point of each requested slot: the first gate whose angle
    // the shift changes (probes of a slot with no referencing op never
    // diverge and reuse the base state).
    let probes: Vec<(usize, usize, Vec<usize>)> = slots
        .iter()
        .map(|&slot| {
            let param = model.weight_slot(slot);
            let affected = circuit.ops_for_param(param);
            (slot, param, affected)
        })
        .collect();
    let mut order: Vec<usize> = (0..probes.len()).collect();
    let divergence = |p: &(usize, usize, Vec<usize>)| p.2.first().copied().unwrap_or(gates.len());
    order.sort_by_key(|&k| divergence(&probes[k]));

    let mut prefix = StateVector::zero_state(model.n_qubits());
    let mut work = prefix.clone();
    let mut cursor = 0usize;
    let mut full_shift = full.clone();
    let mut results: Vec<Option<ShiftedScores>> = vec![None; probes.len()];

    for &k in &order {
        let (slot, param, affected) = &probes[k];
        let div = divergence(&probes[k]);
        // Advance the shared prefix to this probe's divergence point; every
        // earlier probe diverged at or before it, so each gate is applied
        // exactly once across the whole sweep.
        while cursor < div {
            prefix.apply(&gates[cursor]);
            cursor += 1;
        }
        let mut run_shifted = |sign: f64| -> Vec<f64> {
            full_shift[*param] = full[*param] + sign * h;
            work.clone_from(&prefix);
            let mut next_affected = affected.iter().peekable();
            for idx in div..gates.len() {
                if next_affected.peek() == Some(&&idx) {
                    next_affected.next();
                    work.apply(&ops[idx].bind(&full_shift));
                } else {
                    work.apply(&gates[idx]);
                }
            }
            measured.iter().map(|&q| work.expect_z(q)).collect()
        };
        let zp = run_shifted(1.0);
        let zm = run_shifted(-1.0);
        full_shift[*param] = full[*param];
        results[k] = Some((*slot, zp, zm));
    }
    // Finish the base run: the prefix carried through every gate is the
    // unshifted evaluation itself.
    while cursor < gates.len() {
        prefix.apply(&gates[cursor]);
        cursor += 1;
    }
    let base = measured.iter().map(|&q| prefix.expect_z(q)).collect();
    PureProbes {
        base,
        shifted: results
            .into_iter()
            .map(|r| r.expect("every requested probe is evaluated"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::pure_z_scores;

    fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn pure_probes_match_full_reruns() {
        let model = VqcModel::paper_model(4, 4, 8, 2);
        let weights = model.init_weights(11);
        let features = [0.4, 0.9, 1.3, 2.0, 0.2, 1.7, 0.8, 2.6];
        let h = 1e-3;
        let slots: Vec<usize> = (0..model.n_weights()).collect();
        let probes = pure_fd_probes(&model, &features, &weights, h, &slots);
        assert_bits_eq(
            &probes.base,
            &pure_z_scores(&model, &features, &weights),
            "base",
        );
        assert_eq!(probes.shifted.len(), slots.len());
        for (slot, zp, zm) in &probes.shifted {
            let mut w = weights.clone();
            w[*slot] += h;
            assert_bits_eq(zp, &pure_z_scores(&model, &features, &w), "plus");
            let mut w = weights.clone();
            w[*slot] -= h;
            assert_bits_eq(zm, &pure_z_scores(&model, &features, &w), "minus");
        }
    }

    #[test]
    fn pure_probes_handle_subset_and_unsorted_slots() {
        let model = VqcModel::paper_model(4, 3, 4, 1);
        let weights = model.init_weights(3);
        let features = [0.1, 0.5, 0.9, 1.4];
        let h = 0.05;
        // Unsorted, non-contiguous request: results must come back in
        // request order.
        let slots = [7usize, 0, 11, 3];
        let probes = pure_fd_probes(&model, &features, &weights, h, &slots);
        for ((slot, zp, _), &want_slot) in probes.shifted.iter().zip(slots.iter()) {
            assert_eq!(*slot, want_slot);
            let mut w = weights.clone();
            w[*slot] += h;
            assert_bits_eq(zp, &pure_z_scores(&model, &features, &w), "plus");
        }
    }

    #[test]
    fn pure_probes_cross_identity_boundaries() {
        // A probe that pushes a weight onto (and off) an identity angle
        // changes nothing for the pure path — no simplification runs here —
        // but it is the key-splitting case of the noisy engine, so keep the
        // pure oracle honest on it too.
        let model = VqcModel::paper_model(4, 3, 4, 1);
        let mut weights = model.init_weights(2);
        weights[0] = 0.0;
        weights[1] = -0.05;
        let features = [0.2, 0.4, 0.6, 0.8];
        let probes = pure_fd_probes(&model, &features, &weights, 0.05, &[0, 1]);
        for (slot, zp, zm) in &probes.shifted {
            let mut w = weights.clone();
            w[*slot] += 0.05;
            assert_bits_eq(zp, &pure_z_scores(&model, &features, &w), "plus");
            let mut w = weights.clone();
            w[*slot] -= 0.05;
            assert_bits_eq(zm, &pure_z_scores(&model, &features, &w), "minus");
        }
    }
}

//! Training loops: noise-free and noise-aware (noise-injection) training.
//!
//! Noise-aware training follows QuantumNAT (Wang et al., DAC'22, the
//! paper's baseline \[12]): the forward pass runs through the *noisy*
//! executor configured with a calibration snapshot, so gradients see the
//! device noise. The same loop with the pure environment is the paper's
//! "Baseline" (train in a noise-free environment).
//!
//! Noisy training leans hard on the executor's compile-once/rebind-many
//! program cache: finite-difference and SPSA steps evaluate thousands of
//! parameter vectors that almost always share one angle-class structure
//! (training moves weights continuously, so no gate crosses an
//! identity/quarter-turn boundary between evaluations), meaning the
//! circuit is simplified and routed once and every subsequent forward
//! pass only re-binds gate matrices — see
//! [`crate::executor::NoisyExecutor::cache_stats`].
//!
//! # Batched probe evaluation
//!
//! The gradient loops no longer evaluate probes one opaque closure call
//! at a time. Each training step assembles every circuit evaluation it
//! needs — the base loss plus all `±` gradient probes, across the whole
//! minibatch — and hands them off in one go:
//!
//! - **noisy environments** go through
//!   [`NoisyExecutor::evaluate_probes`], which groups the probes by
//!   circuit structure through the program cache and fans them across the
//!   worker pool (or packs identical-program probes into shared
//!   trajectory panels);
//! - **the pure environment** goes through
//!   [`crate::probe::pure_fd_probes`], which shares state-vector prefixes
//!   between a sample's finite-difference probes.
//!
//! Every noisy probe draws shot noise from a stream derived *positionally*
//! from `(day, step, probe slot, sample index)` via
//! [`crate::executor::parallel::probe_stream`] + [`crate::executor::parallel::eval_stream`], never from a
//! shared RNG, so trained parameters are **bit-identical** to the plain
//! sequential loops — retained as [`train_masked_sequential`] and
//! [`train_spsa_masked_sequential`] — for any thread count, either
//! backend, and any trajectory panel width. `tests/training_path.rs`
//! enforces the contract property-style.

use crate::data::Sample;
use crate::executor::parallel::{eval_stream, probe_stream, worker_threads};
use crate::executor::{pure_z_scores, NoisyExecutor, ProbeBatch};
use crate::loss::{accuracy, cross_entropy, mean_cross_entropy, predict};
use crate::model::VqcModel;
use crate::optim::Adam;
use crate::probe::pure_fd_probes;
use calibration::snapshot::CalibrationSnapshot;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Execution environment for loss/accuracy evaluation.
#[derive(Debug, Clone, Copy)]
pub enum Env<'a> {
    /// Noise-free state-vector execution (`Wp`).
    Pure,
    /// Noisy density-matrix execution under a calibration snapshot (`Wn`).
    Noisy {
        /// The routed executor.
        exec: &'a NoisyExecutor,
        /// The day's calibration data.
        snapshot: &'a CalibrationSnapshot,
    },
}

impl Env<'_> {
    /// Per-class Z scores of one sample.
    pub fn z_scores(&self, model: &VqcModel, features: &[f64], weights: &[f64]) -> Vec<f64> {
        match self {
            Env::Pure => pure_z_scores(model, features, weights),
            Env::Noisy { exec, snapshot } => exec.z_scores(features, weights, snapshot),
        }
    }
}

/// Hyper-parameters of a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Shuffling seed.
    pub seed: u64,
    /// Central finite-difference step for gradients.
    pub grad_step: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            batch_size: 16,
            lr: 0.08,
            seed: 0,
            grad_step: 1e-3,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainResult {
    /// Trained weights.
    pub weights: Vec<f64>,
    /// Mean batch loss per epoch.
    pub loss_history: Vec<f64>,
    /// Total circuit evaluations performed (the paper's training-cost
    /// proxy for Fig. 7).
    pub n_evals: u64,
}

/// Mean cross-entropy of a batch.
pub fn batch_loss(model: &VqcModel, env: Env<'_>, batch: &[&Sample], weights: &[f64]) -> f64 {
    assert!(!batch.is_empty(), "empty batch");
    let scores: Vec<Vec<f64>> = batch
        .iter()
        .map(|s| env.z_scores(model, &s.features, weights))
        .collect();
    let labels: Vec<usize> = batch.iter().map(|s| s.label).collect();
    mean_cross_entropy(&scores, &labels)
}

/// Classification accuracy of `weights` on `samples` in `env`.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn evaluate(model: &VqcModel, env: Env<'_>, samples: &[Sample], weights: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "empty evaluation set");
    let preds: Vec<usize> = samples
        .iter()
        .map(|s| predict(&env.z_scores(model, &s.features, weights)))
        .collect();
    let labels: Vec<usize> = samples.iter().map(|s| s.label).collect();
    accuracy(&preds, &labels)
}

/// Trains all weights; see [`train_masked`].
pub fn train(
    model: &VqcModel,
    train_set: &[Sample],
    env: Env<'_>,
    config: &TrainConfig,
    init_weights: &[f64],
) -> TrainResult {
    let trainable = vec![true; init_weights.len()];
    train_masked(model, train_set, env, config, init_weights, &trainable)
}

/// Minibatch Adam training with a trainability mask, routed through the
/// batched probe engine with [`crate::executor::parallel::worker_threads`] workers; see
/// [`train_masked_with_threads`].
pub fn train_masked(
    model: &VqcModel,
    train_set: &[Sample],
    env: Env<'_>,
    config: &TrainConfig,
    init_weights: &[f64],
    trainable: &[bool],
) -> TrainResult {
    train_masked_with_threads(
        model,
        train_set,
        env,
        config,
        init_weights,
        trainable,
        worker_threads(),
    )
}

/// Base loss and masked central-difference gradient of one minibatch,
/// evaluated as a single probe batch.
///
/// `slots` lists the trainable weight indices. Probe slot `0` is the base
/// loss; weight `i`'s `±h` probes use slots `1 + 2i` / `2 + 2i` (indexed
/// by *weight*, not slot position, so a mask change never re-keys the
/// surviving probes' noise streams).
#[allow(clippy::too_many_arguments)]
fn masked_fd_gradient(
    model: &VqcModel,
    env: Env<'_>,
    batch: &[&Sample],
    weights: &[f64],
    slots: &[usize],
    h: f64,
    step: u64,
    threads: usize,
) -> (f64, Vec<f64>) {
    let b = batch.len() as f64;
    let mut base_sum = 0.0;
    let mut fp_sum = vec![0.0; slots.len()];
    let mut fm_sum = vec![0.0; slots.len()];
    match env {
        Env::Pure => {
            // One prefix-sharing sweep per sample replaces `1 + 2·|slots|`
            // full state-vector runs; per-sample losses still accumulate in
            // batch order, keeping the sums bit-identical to the loop.
            for s in batch {
                let probes = pure_fd_probes(model, &s.features, weights, h, slots);
                base_sum += cross_entropy(&probes.base, s.label);
                for (t, (_, zp, zm)) in probes.shifted.iter().enumerate() {
                    fp_sum[t] += cross_entropy(zp, s.label);
                    fm_sum[t] += cross_entropy(zm, s.label);
                }
            }
        }
        Env::Noisy { exec, snapshot } => {
            let day_stream = snapshot.day as u64;
            let mut shifted: Vec<Vec<f64>> = Vec::with_capacity(2 * slots.len());
            for &i in slots {
                for sign in [h, -h] {
                    let mut w = weights.to_vec();
                    w[i] += sign;
                    shifted.push(w);
                }
            }
            let stride = 1 + 2 * slots.len();
            let mut probes = ProbeBatch::with_capacity(batch.len() * stride);
            for (sp, s) in batch.iter().enumerate() {
                probes.push(
                    &s.features,
                    weights,
                    eval_stream(probe_stream(day_stream, step, 0), sp as u64),
                );
                for (t, &i) in slots.iter().enumerate() {
                    probes.push(
                        &s.features,
                        &shifted[2 * t],
                        eval_stream(probe_stream(day_stream, step, 1 + 2 * i as u64), sp as u64),
                    );
                    probes.push(
                        &s.features,
                        &shifted[2 * t + 1],
                        eval_stream(probe_stream(day_stream, step, 2 + 2 * i as u64), sp as u64),
                    );
                }
            }
            let scores = exec.evaluate_probes(snapshot, &probes, threads);
            for (sp, s) in batch.iter().enumerate() {
                base_sum += cross_entropy(&scores[sp * stride], s.label);
                for t in 0..slots.len() {
                    fp_sum[t] += cross_entropy(&scores[sp * stride + 1 + 2 * t], s.label);
                    fm_sum[t] += cross_entropy(&scores[sp * stride + 2 + 2 * t], s.label);
                }
            }
        }
    }
    let mut grad = vec![0.0; weights.len()];
    for (t, &i) in slots.iter().enumerate() {
        grad[i] = (fp_sum[t] / b - fm_sum[t] / b) / (2.0 * h);
    }
    (base_sum / b, grad)
}

/// Minibatch Adam training with a trainability mask.
///
/// Frozen coordinates (`trainable[i] == false`) receive no gradient
/// evaluations and never move — this is how compressed parameters stay at
/// their compression levels during fine-tuning.
///
/// All circuit evaluations of one step go through the batched probe engine
/// (see the [module docs](self)); the result is bit-identical to
/// [`train_masked_sequential`] for every `threads` value.
///
/// # Panics
///
/// Panics if the training set is empty or slice lengths mismatch the model.
pub fn train_masked_with_threads(
    model: &VqcModel,
    train_set: &[Sample],
    env: Env<'_>,
    config: &TrainConfig,
    init_weights: &[f64],
    trainable: &[bool],
    threads: usize,
) -> TrainResult {
    assert!(!train_set.is_empty(), "empty training set");
    assert_eq!(
        init_weights.len(),
        model.n_weights(),
        "weight count mismatch"
    );
    assert_eq!(trainable.len(), init_weights.len(), "mask length mismatch");

    let slots: Vec<usize> = (0..init_weights.len()).filter(|&i| trainable[i]).collect();
    let mut weights = init_weights.to_vec();
    let mut opt = Adam::new(config.lr, weights.len());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut loss_history = Vec::with_capacity(config.epochs);
    let mut n_evals: u64 = 0;
    let mut step: u64 = 0;

    let mut order: Vec<usize> = (0..train_set.len()).collect();
    for _epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut n_batches = 0usize;
        for chunk in order.chunks(config.batch_size.max(1)) {
            let batch: Vec<&Sample> = chunk.iter().map(|&i| &train_set[i]).collect();
            let (base, grad) = masked_fd_gradient(
                model,
                env,
                &batch,
                &weights,
                &slots,
                config.grad_step,
                step,
                threads,
            );
            n_evals += batch.len() as u64;
            n_evals += 2 * slots.len() as u64 * batch.len() as u64;
            epoch_loss += base;
            n_batches += 1;
            step += 1;
            opt.step_masked(&mut weights, &grad, trainable);
        }
        loss_history.push(epoch_loss / n_batches.max(1) as f64);
    }

    TrainResult {
        weights,
        loss_history,
        n_evals,
    }
}

/// Plain one-evaluation-at-a-time reference implementation of
/// [`train_masked`].
///
/// Kept as the bit-identity oracle for the batched engine: it assigns
/// every probe the same positional noise stream the batched path does and
/// evaluates them with individual [`NoisyExecutor::z_scores_seeded`]
/// calls, so `train_masked(..) == train_masked_sequential(..)` bit for
/// bit (`tests/training_path.rs`).
///
/// # Panics
///
/// Panics if the training set is empty or slice lengths mismatch the model.
pub fn train_masked_sequential(
    model: &VqcModel,
    train_set: &[Sample],
    env: Env<'_>,
    config: &TrainConfig,
    init_weights: &[f64],
    trainable: &[bool],
) -> TrainResult {
    assert!(!train_set.is_empty(), "empty training set");
    assert_eq!(
        init_weights.len(),
        model.n_weights(),
        "weight count mismatch"
    );
    assert_eq!(trainable.len(), init_weights.len(), "mask length mismatch");

    let mut weights = init_weights.to_vec();
    let mut opt = Adam::new(config.lr, weights.len());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut loss_history = Vec::with_capacity(config.epochs);
    let mut n_evals: u64 = 0;
    let mut step: u64 = 0;

    let mut order: Vec<usize> = (0..train_set.len()).collect();
    for _epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut n_batches = 0usize;
        for chunk in order.chunks(config.batch_size.max(1)) {
            let batch: Vec<&Sample> = chunk.iter().map(|&i| &train_set[i]).collect();
            let step_now = step;
            let eval = |w: &[f64], slot: u64| -> f64 {
                let total: f64 = batch
                    .iter()
                    .enumerate()
                    .map(|(sp, s)| {
                        let z = match env {
                            Env::Pure => pure_z_scores(model, &s.features, w),
                            Env::Noisy { exec, snapshot } => exec.z_scores_seeded(
                                &s.features,
                                w,
                                snapshot,
                                eval_stream(
                                    probe_stream(snapshot.day as u64, step_now, slot),
                                    sp as u64,
                                ),
                            ),
                        };
                        cross_entropy(&z, s.label)
                    })
                    .sum();
                total / batch.len() as f64
            };

            let base = eval(&weights, 0);
            n_evals += batch.len() as u64;
            epoch_loss += base;
            n_batches += 1;

            // Central finite differences on trainable coordinates only.
            let mut grad = vec![0.0; weights.len()];
            for i in 0..weights.len() {
                if !trainable[i] {
                    continue;
                }
                let orig = weights[i];
                weights[i] = orig + config.grad_step;
                let fp = eval(&weights, 1 + 2 * i as u64);
                weights[i] = orig - config.grad_step;
                let fm = eval(&weights, 2 + 2 * i as u64);
                weights[i] = orig;
                n_evals += 2 * batch.len() as u64;
                grad[i] = (fp - fm) / (2.0 * config.grad_step);
            }
            step += 1;
            opt.step_masked(&mut weights, &grad, trainable);
        }
        loss_history.push(epoch_loss / n_batches.max(1) as f64);
    }

    TrainResult {
        weights,
        loss_history,
        n_evals,
    }
}

/// SPSA (simultaneous-perturbation stochastic approximation)
/// hyper-parameters.
///
/// SPSA estimates the full gradient from **two** objective evaluations per
/// step regardless of dimension, which makes it the standard choice for
/// training through noisy quantum executions — exactly where the
/// finite-difference loop of [`train_masked`] would cost `2·n_weights`
/// noisy circuit evaluations per batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpsaConfig {
    /// Optimisation steps.
    pub steps: usize,
    /// Minibatch size per step.
    pub batch_size: usize,
    /// Initial step gain `a` (decays as `a/(k+1+A)^0.602`).
    pub lr: f64,
    /// Initial perturbation `c` (decays as `c/(k+1)^0.101`).
    pub perturbation: f64,
    /// Seed for perturbation directions and batching.
    pub seed: u64,
}

impl Default for SpsaConfig {
    fn default() -> Self {
        SpsaConfig {
            steps: 60,
            batch_size: 12,
            lr: 0.12,
            perturbation: 0.15,
            seed: 0,
        }
    }
}

/// SPSA training with a trainability mask, routed through the batched
/// probe engine with [`crate::executor::parallel::worker_threads`] workers; see
/// [`train_spsa_masked_with_threads`].
pub fn train_spsa_masked(
    model: &VqcModel,
    train_set: &[Sample],
    env: Env<'_>,
    config: &SpsaConfig,
    init_weights: &[f64],
    trainable: &[bool],
) -> TrainResult {
    train_spsa_masked_with_threads(
        model,
        train_set,
        env,
        config,
        init_weights,
        trainable,
        worker_threads(),
    )
}

/// SPSA training with a trainability mask (frozen coordinates are never
/// perturbed or moved). Suited to noisy environments; see [`SpsaConfig`].
///
/// The two perturbed losses of each step are evaluated as one probe batch
/// (probe slots 1/2 for the `±` perturbations); the result is
/// bit-identical to [`train_spsa_masked_sequential`] for every `threads`
/// value.
///
/// # Panics
///
/// Panics if the training set is empty or slice lengths mismatch the model.
pub fn train_spsa_masked_with_threads(
    model: &VqcModel,
    train_set: &[Sample],
    env: Env<'_>,
    config: &SpsaConfig,
    init_weights: &[f64],
    trainable: &[bool],
    threads: usize,
) -> TrainResult {
    assert!(!train_set.is_empty(), "empty training set");
    assert_eq!(
        init_weights.len(),
        model.n_weights(),
        "weight count mismatch"
    );
    assert_eq!(trainable.len(), init_weights.len(), "mask length mismatch");

    let mut weights = init_weights.to_vec();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut n_evals: u64 = 0;
    let mut loss_history = Vec::with_capacity(config.steps);
    let stability = (config.steps as f64 * 0.1).max(1.0);
    // Perturbed-weight scratch buffers, refilled in place every step (the
    // old per-step `shifted` closure allocated two fresh vectors each
    // iteration).
    let mut wp = vec![0.0; weights.len()];
    let mut wm = vec![0.0; weights.len()];

    let mut order: Vec<usize> = (0..train_set.len()).collect();
    for k in 0..config.steps {
        order.shuffle(&mut rng);
        let batch: Vec<&Sample> = order
            .iter()
            .take(config.batch_size.min(train_set.len()))
            .map(|&i| &train_set[i])
            .collect();

        let ak = config.lr / (k as f64 + 1.0 + stability).powf(0.602);
        let ck = config.perturbation / (k as f64 + 1.0).powf(0.101);

        // Rademacher direction on trainable coordinates.
        let delta: Vec<f64> = trainable
            .iter()
            .map(|&t| {
                if t {
                    if rng.gen::<bool>() {
                        1.0
                    } else {
                        -1.0
                    }
                } else {
                    0.0
                }
            })
            .collect();

        for i in 0..weights.len() {
            wp[i] = weights[i] + ck * delta[i];
            wm[i] = weights[i] - ck * delta[i];
        }
        let (fp, fm) = match env {
            Env::Pure => (
                batch_loss(model, env, &batch, &wp),
                batch_loss(model, env, &batch, &wm),
            ),
            Env::Noisy { exec, snapshot } => {
                let day_stream = snapshot.day as u64;
                let mut probes = ProbeBatch::with_capacity(2 * batch.len());
                for (sp, s) in batch.iter().enumerate() {
                    probes.push(
                        &s.features,
                        &wp,
                        eval_stream(probe_stream(day_stream, k as u64, 1), sp as u64),
                    );
                }
                for (sp, s) in batch.iter().enumerate() {
                    probes.push(
                        &s.features,
                        &wm,
                        eval_stream(probe_stream(day_stream, k as u64, 2), sp as u64),
                    );
                }
                let scores = exec.evaluate_probes(snapshot, &probes, threads);
                let labels: Vec<usize> = batch.iter().map(|s| s.label).collect();
                (
                    mean_cross_entropy(&scores[..batch.len()], &labels),
                    mean_cross_entropy(&scores[batch.len()..], &labels),
                )
            }
        };
        n_evals += 2 * batch.len() as u64;
        loss_history.push(0.5 * (fp + fm));

        let scale = (fp - fm) / (2.0 * ck);
        for i in 0..weights.len() {
            if trainable[i] && delta[i] != 0.0 {
                weights[i] -= ak * scale / delta[i];
            }
        }
    }

    TrainResult {
        weights,
        loss_history,
        n_evals,
    }
}

/// Plain one-evaluation-at-a-time reference implementation of
/// [`train_spsa_masked`], retained as the batched engine's bit-identity
/// oracle (same positional noise streams, individual
/// [`NoisyExecutor::z_scores_seeded`] calls).
///
/// # Panics
///
/// Panics if the training set is empty or slice lengths mismatch the model.
pub fn train_spsa_masked_sequential(
    model: &VqcModel,
    train_set: &[Sample],
    env: Env<'_>,
    config: &SpsaConfig,
    init_weights: &[f64],
    trainable: &[bool],
) -> TrainResult {
    assert!(!train_set.is_empty(), "empty training set");
    assert_eq!(
        init_weights.len(),
        model.n_weights(),
        "weight count mismatch"
    );
    assert_eq!(trainable.len(), init_weights.len(), "mask length mismatch");

    let mut weights = init_weights.to_vec();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut n_evals: u64 = 0;
    let mut loss_history = Vec::with_capacity(config.steps);
    let stability = (config.steps as f64 * 0.1).max(1.0);

    let mut order: Vec<usize> = (0..train_set.len()).collect();
    for k in 0..config.steps {
        order.shuffle(&mut rng);
        let batch: Vec<&Sample> = order
            .iter()
            .take(config.batch_size.min(train_set.len()))
            .map(|&i| &train_set[i])
            .collect();

        let ak = config.lr / (k as f64 + 1.0 + stability).powf(0.602);
        let ck = config.perturbation / (k as f64 + 1.0).powf(0.101);

        // Rademacher direction on trainable coordinates.
        let delta: Vec<f64> = trainable
            .iter()
            .map(|&t| {
                if t {
                    if rng.gen::<bool>() {
                        1.0
                    } else {
                        -1.0
                    }
                } else {
                    0.0
                }
            })
            .collect();

        let shifted = |sign: f64, w: &[f64]| -> Vec<f64> {
            w.iter()
                .zip(delta.iter())
                .map(|(&wi, &di)| wi + sign * ck * di)
                .collect()
        };
        let wp = shifted(1.0, &weights);
        let wm = shifted(-1.0, &weights);
        let eval = |w: &[f64], slot: u64| -> f64 {
            let total: f64 = batch
                .iter()
                .enumerate()
                .map(|(sp, s)| {
                    let z = match env {
                        Env::Pure => pure_z_scores(model, &s.features, w),
                        Env::Noisy { exec, snapshot } => exec.z_scores_seeded(
                            &s.features,
                            w,
                            snapshot,
                            eval_stream(
                                probe_stream(snapshot.day as u64, k as u64, slot),
                                sp as u64,
                            ),
                        ),
                    };
                    cross_entropy(&z, s.label)
                })
                .sum();
            total / batch.len() as f64
        };
        let fp = eval(&wp, 1);
        let fm = eval(&wm, 2);
        n_evals += 2 * batch.len() as u64;
        loss_history.push(0.5 * (fp + fm));

        let scale = (fp - fm) / (2.0 * ck);
        for i in 0..weights.len() {
            if trainable[i] && delta[i] != 0.0 {
                weights[i] -= ak * scale / delta[i];
            }
        }
    }

    TrainResult {
        weights,
        loss_history,
        n_evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;
    use crate::executor::NoiseOptions;
    use calibration::topology::Topology;

    fn quick_config() -> TrainConfig {
        TrainConfig {
            epochs: 6,
            batch_size: 8,
            lr: 0.15,
            seed: 1,
            grad_step: 1e-3,
        }
    }

    #[test]
    fn pure_training_learns_iris() {
        let data = Dataset::iris(3).truncated(48, 30);
        let model = VqcModel::paper_model(4, 3, 4, 1);
        let init = model.init_weights(2);
        let before = evaluate(&model, Env::Pure, &data.test, &init);
        let result = train(&model, &data.train, Env::Pure, &quick_config(), &init);
        let after = evaluate(&model, Env::Pure, &data.test, &result.weights);
        assert!(
            after > before.max(0.5),
            "training should beat init: {before} -> {after}"
        );
        // Loss should broadly decrease.
        assert!(result.loss_history.last().unwrap() < result.loss_history.first().unwrap());
        assert!(result.n_evals > 0);
    }

    #[test]
    fn masked_training_freezes_weights() {
        let data = Dataset::iris(3).truncated(24, 10);
        let model = VqcModel::paper_model(4, 3, 4, 1);
        let init = model.init_weights(4);
        let mut trainable = vec![true; model.n_weights()];
        for t in trainable.iter_mut().step_by(2) {
            *t = false;
        }
        let cfg = TrainConfig {
            epochs: 2,
            ..quick_config()
        };
        let result = train_masked(&model, &data.train, Env::Pure, &cfg, &init, &trainable);
        for i in 0..model.n_weights() {
            if !trainable[i] {
                assert_eq!(result.weights[i], init[i], "frozen weight {i} moved");
            }
        }
        // At least one trainable weight moved.
        assert!(result
            .weights
            .iter()
            .zip(init.iter())
            .enumerate()
            .any(|(i, (a, b))| trainable[i] && a != b));
    }

    #[test]
    fn noise_aware_training_runs_and_counts_evals() {
        let data = Dataset::seismic(16, 8, 5).truncated(16, 8);
        let model = VqcModel::paper_model(4, 2, 4, 1);
        let topo = Topology::ibm_belem();
        let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::default());
        let snap = CalibrationSnapshot::uniform(&topo, 0, 3e-4, 8e-3, 0.02);
        let env = Env::Noisy {
            exec: &exec,
            snapshot: &snap,
        };
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 8,
            ..quick_config()
        };
        let init = model.init_weights(9);
        let result = train(&model, &data.train, env, &cfg, &init);
        // 1 epoch × 2 batches × (8 + 2·n_weights·8) evals.
        let expected = 2 * (8 + 2 * model.n_weights() as u64 * 8);
        assert_eq!(result.n_evals, expected);
        let acc = evaluate(&model, env, &data.test, &result.weights);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = Dataset::iris(3).truncated(16, 8);
        let model = VqcModel::paper_model(4, 3, 4, 1);
        let init = model.init_weights(2);
        let cfg = TrainConfig {
            epochs: 1,
            ..quick_config()
        };
        let a = train(&model, &data.train, Env::Pure, &cfg, &init);
        let b = train(&model, &data.train, Env::Pure, &cfg, &init);
        assert_eq!(a, b);
    }

    #[test]
    fn spsa_improves_noisy_loss() {
        let data = Dataset::iris(3).truncated(40, 20);
        let model = VqcModel::paper_model(4, 3, 4, 1);
        let topo = Topology::ibm_belem();
        let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::default());
        let snap = CalibrationSnapshot::uniform(&topo, 0, 3e-4, 8e-3, 0.02);
        let env = Env::Noisy {
            exec: &exec,
            snapshot: &snap,
        };
        let init = model.init_weights(3);
        let cfg = SpsaConfig {
            steps: 40,
            batch_size: 10,
            seed: 4,
            ..SpsaConfig::default()
        };
        let trainable = vec![true; model.n_weights()];
        let result = train_spsa_masked(&model, &data.train, env, &cfg, &init, &trainable);
        // Cost: exactly 2 evals per batch sample per step.
        assert_eq!(result.n_evals, 40 * 2 * 10);
        let before = evaluate(&model, env, &data.test, &init);
        let after = evaluate(&model, env, &data.test, &result.weights);
        assert!(
            after + 0.1 >= before,
            "SPSA should not regress materially: {before} -> {after}"
        );
    }

    #[test]
    fn spsa_respects_mask() {
        let data = Dataset::iris(3).truncated(16, 8);
        let model = VqcModel::paper_model(4, 3, 4, 1);
        let init = model.init_weights(6);
        let mut trainable = vec![true; model.n_weights()];
        trainable[0] = false;
        trainable[5] = false;
        let cfg = SpsaConfig {
            steps: 5,
            batch_size: 4,
            seed: 1,
            ..SpsaConfig::default()
        };
        let r = train_spsa_masked(&model, &data.train, Env::Pure, &cfg, &init, &trainable);
        assert_eq!(r.weights[0], init[0]);
        assert_eq!(r.weights[5], init[5]);
        assert_ne!(r.weights, init);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_set_rejected() {
        let model = VqcModel::paper_model(4, 3, 4, 1);
        let init = model.init_weights(2);
        let _ = train(&model, &[], Env::Pure, &quick_config(), &init);
    }

    fn assert_results_bit_eq(a: &TrainResult, b: &TrainResult, what: &str) {
        assert_eq!(a.n_evals, b.n_evals, "{what}: n_evals");
        assert_eq!(a.weights.len(), b.weights.len(), "{what}: weight count");
        for (i, (x, y)) in a.weights.iter().zip(b.weights.iter()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: weights[{i}] {x} vs {y}");
        }
        for (i, (x, y)) in a.loss_history.iter().zip(b.loss_history.iter()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: loss[{i}] {x} vs {y}");
        }
    }

    #[test]
    fn batched_masked_training_matches_sequential_reference_bitwise() {
        let data = Dataset::iris(3).truncated(12, 4);
        let model = VqcModel::paper_model(4, 3, 4, 1);
        let topo = Topology::ibm_belem();
        // Finite shots so the seeded streams actually matter.
        let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::with_shots(128, 7));
        let snap = CalibrationSnapshot::uniform(&topo, 3, 3e-4, 8e-3, 0.02);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            ..quick_config()
        };
        let init = model.init_weights(5);
        let mut trainable = vec![true; model.n_weights()];
        trainable[2] = false;
        for env in [
            Env::Pure,
            Env::Noisy {
                exec: &exec,
                snapshot: &snap,
            },
        ] {
            let reference =
                train_masked_sequential(&model, &data.train, env, &cfg, &init, &trainable);
            for threads in [1, 3] {
                let batched = train_masked_with_threads(
                    &model,
                    &data.train,
                    env,
                    &cfg,
                    &init,
                    &trainable,
                    threads,
                );
                assert_results_bit_eq(&batched, &reference, &format!("threads={threads}"));
            }
        }
    }

    #[test]
    fn batched_spsa_matches_sequential_reference_bitwise() {
        let data = Dataset::iris(3).truncated(16, 4);
        let model = VqcModel::paper_model(4, 3, 4, 1);
        let topo = Topology::ibm_belem();
        let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::with_shots(128, 11));
        let snap = CalibrationSnapshot::uniform(&topo, 2, 3e-4, 8e-3, 0.02);
        let cfg = SpsaConfig {
            steps: 6,
            batch_size: 5,
            seed: 2,
            ..SpsaConfig::default()
        };
        let init = model.init_weights(8);
        let mut trainable = vec![true; model.n_weights()];
        trainable[1] = false;
        for env in [
            Env::Pure,
            Env::Noisy {
                exec: &exec,
                snapshot: &snap,
            },
        ] {
            let reference =
                train_spsa_masked_sequential(&model, &data.train, env, &cfg, &init, &trainable);
            for threads in [1, 3] {
                let batched = train_spsa_masked_with_threads(
                    &model,
                    &data.train,
                    env,
                    &cfg,
                    &init,
                    &trainable,
                    threads,
                );
                assert_results_bit_eq(&batched, &reference, &format!("threads={threads}"));
            }
        }
    }
}

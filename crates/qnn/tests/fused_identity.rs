//! Differential property tests of the fused executor path: for arbitrary
//! features, weights, calibration snapshots, and noise options, the fused
//! production path must return `z_scores` **byte-identical** to the
//! unfused op-by-op reference ([`NoisyExecutor::z_scores_seeded_unfused`]).

use calibration::snapshot::CalibrationSnapshot;
use calibration::topology::Topology;
use proptest::prelude::*;
use qnn::executor::{NoiseOptions, NoisyExecutor};
use qnn::model::VqcModel;

fn arb_options() -> impl Strategy<Value = NoiseOptions> {
    (
        prop_oneof![Just(0.0f64), Just(1.0), Just(3.0)],
        any::<bool>(),
        prop_oneof![Just(None), Just(Some(64u64)), Just(Some(1024u64))],
        0u64..1_000_000,
    )
        .prop_map(|(scale, readout, shots, shot_seed)| NoiseOptions {
            scale,
            readout,
            shots,
            shot_seed,
            ..NoiseOptions::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fused and unfused z_scores agree bit-for-bit across random inputs,
    /// noise options, shot-noise streams, and both Table I devices.
    #[test]
    fn fused_z_scores_byte_identical_to_unfused(
        options in arb_options(),
        features in proptest::collection::vec(-2.0f64..2.0, 4),
        weight_scale in -1.5f64..1.5,
        err_1q in 0.0f64..5e-3,
        err_cx in 0.0f64..5e-2,
        err_ro in 0.0f64..0.05,
        stream in 0u64..1_000,
        jakarta in any::<bool>(),
    ) {
        let topo = if jakarta { Topology::ibm_jakarta() } else { Topology::ibm_belem() };
        let model = VqcModel::paper_model(4, 3, 4, 1);
        let exec = NoisyExecutor::new(&model, &topo, options);
        let snap = CalibrationSnapshot::uniform(&topo, 0, err_1q, err_cx, err_ro);
        let weights: Vec<f64> = (0..model.n_weights())
            .map(|i| weight_scale * (i as f64 * 0.61).sin())
            .collect();

        let fused = exec.z_scores_seeded(&features, &weights, &snap, stream);
        let unfused = exec.z_scores_seeded_unfused(&features, &weights, &snap, stream);
        prop_assert_eq!(fused.len(), unfused.len());
        for (i, (a, b)) in fused.iter().zip(unfused.iter()).enumerate() {
            prop_assert!(
                a.to_bits() == b.to_bits(),
                "score {} differs: {} (fused) vs {} (unfused)", i, a, b
            );
        }
    }

    /// Compressed parameter vectors retranspile to shorter circuits whose
    /// fused execution still matches the reference bit-for-bit (the
    /// simplify → route → expand pipeline changes shape per input).
    #[test]
    fn fused_identity_holds_under_compression(
        n_zeroed in 0usize..12,
        stream in 0u64..1_000,
    ) {
        let topo = Topology::ibm_belem();
        let model = VqcModel::paper_model(4, 2, 4, 2);
        let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::with_shots(512, 9));
        let snap = CalibrationSnapshot::uniform(&topo, 0, 2e-3, 3e-2, 0.02);
        let mut weights: Vec<f64> = (0..model.n_weights())
            .map(|i| 0.9 + 0.1 * i as f64)
            .collect();
        for w in weights.iter_mut().take(n_zeroed) {
            *w = 0.0; // identity angles vanish during simplification
        }
        let features = [0.4, -0.2, 1.1, 0.7];
        let fused = exec.z_scores_seeded(&features, &weights, &snap, stream);
        let unfused = exec.z_scores_seeded_unfused(&features, &weights, &snap, stream);
        for (a, b) in fused.iter().zip(unfused.iter()) {
            prop_assert!(a.to_bits() == b.to_bits(), "{} vs {}", a, b);
        }
    }
}

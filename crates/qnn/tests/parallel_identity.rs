//! The batch-parallel evaluator's core contract: results are bit-identical
//! to the sequential path on a fixed seed, for every thread count, at both
//! the sample level and the day level.

use calibration::history::{FluctuatingHistory, HistoryConfig};
use calibration::snapshot::CalibrationSnapshot;
use calibration::topology::Topology;
use qnn::data::Dataset;
use qnn::executor::parallel::{accuracy_over_days, batch_accuracy, batch_z_scores, eval_stream};
use qnn::executor::{NoiseOptions, NoisyExecutor};
use qnn::model::VqcModel;

fn setup() -> (
    VqcModel,
    Topology,
    NoisyExecutor,
    Dataset,
    CalibrationSnapshot,
) {
    let model = VqcModel::paper_model(4, 2, 4, 1);
    let topo = Topology::ibm_belem();
    // Finite shots ON: shot noise is the only stochastic part of an
    // evaluation, so this is exactly the path where parallelism could
    // diverge from the sequential stream if seeding were order-dependent.
    let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::with_shots(512, 42));
    let data = Dataset::seismic(12, 12, 9);
    let snap = CalibrationSnapshot::uniform(&topo, 0, 2e-3, 3e-2, 0.02);
    (model, topo, exec, data, snap)
}

fn assert_bits_eq(a: &[Vec<f64>], b: &[Vec<f64>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.len(), y.len(), "{what}: row {i} length mismatch");
        for (j, (u, v)) in x.iter().zip(y.iter()).enumerate() {
            assert_eq!(
                u.to_bits(),
                v.to_bits(),
                "{what}: element [{i}][{j}] differs: {u} vs {v}"
            );
        }
    }
}

#[test]
fn batch_z_scores_identical_across_thread_counts() {
    let (model, _, exec, data, snap) = setup();
    let weights = model.init_weights(7);
    let sequential = batch_z_scores(&exec, &data.test, &weights, &snap, 3, 1);
    for threads in [2, 3, 4, 16] {
        let parallel = batch_z_scores(&exec, &data.test, &weights, &snap, 3, threads);
        assert_bits_eq(&sequential, &parallel, &format!("threads={threads}"));
    }
}

#[test]
fn batch_matches_manual_seeded_loop() {
    let (model, _, exec, data, snap) = setup();
    let weights = model.init_weights(1);
    let manual: Vec<Vec<f64>> = data
        .test
        .iter()
        .enumerate()
        .map(|(i, s)| exec.z_scores_seeded(&s.features, &weights, &snap, eval_stream(5, i as u64)))
        .collect();
    let batch = batch_z_scores(&exec, &data.test, &weights, &snap, 5, 4);
    assert_bits_eq(&manual, &batch, "manual vs batch");
}

#[test]
fn batch_accuracy_identical_and_in_range() {
    let (model, _, exec, data, snap) = setup();
    let weights = model.init_weights(3);
    let seq = batch_accuracy(&exec, &data.test, &weights, &snap, 0, 1);
    let par = batch_accuracy(&exec, &data.test, &weights, &snap, 0, 4);
    assert_eq!(seq.to_bits(), par.to_bits());
    assert!((0.0..=1.0).contains(&seq));
}

#[test]
fn day_fanout_matches_per_day_batches() {
    let (model, topo, exec, data, _) = setup();
    let weights = model.init_weights(5);
    let history = FluctuatingHistory::generate(&topo, &HistoryConfig::belem_like(8, 11), 4);
    let days: Vec<&CalibrationSnapshot> = history.online().iter().collect();

    let fanned = accuracy_over_days(&exec, &days, &data.test, &weights, 4);
    let fanned_seq = accuracy_over_days(&exec, &days, &data.test, &weights, 1);
    let per_day: Vec<f64> = (0..days.len())
        .map(|d| batch_accuracy(&exec, &data.test, &weights, days[d], d as u64, 2))
        .collect();

    for (i, ((a, b), c)) in fanned.iter().zip(&fanned_seq).zip(&per_day).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "day {i}: fan-out vs sequential");
        assert_eq!(
            a.to_bits(),
            c.to_bits(),
            "day {i}: day-level vs sample-level"
        );
    }
}

#[test]
fn seeded_scores_are_call_order_independent() {
    let (model, _, exec, data, snap) = setup();
    let weights = model.init_weights(2);
    let f = &data.test[0].features;
    let first = exec.z_scores_seeded(f, &weights, &snap, 99);
    // Interleave unrelated draws on other streams and on the shared stream.
    let _ = exec.z_scores_seeded(f, &weights, &snap, 7);
    let _ = exec.z_scores(f, &weights, &snap);
    let again = exec.z_scores_seeded(f, &weights, &snap, 99);
    assert_bits_eq(
        &[first],
        &[again],
        "same stream must reproduce identical scores",
    );
}

//! Property tests of the executor's program cache: evaluations served by
//! re-binding a cached template (warm cache) must be **bit-identical** to
//! from-scratch compiles (cold cache) and to the unfused op-by-op oracle,
//! over random angle mixes × calibration days, on both simulation
//! backends.

use calibration::snapshot::CalibrationSnapshot;
use calibration::topology::Topology;
use proptest::prelude::*;
use qnn::executor::{NoiseOptions, NoisyExecutor, SimBackend};
use qnn::model::VqcModel;

/// Feature-sized angle vectors mixing generic values with the compression
/// levels (0, π/2, π, 3π/2) whose classes drive the structure key.
fn arb_angles(len: usize) -> impl Strategy<Value = Vec<f64>> {
    use std::f64::consts::{FRAC_PI_2, PI, TAU};
    proptest::collection::vec(
        prop_oneof![
            Just(0.0),
            Just(FRAC_PI_2),
            Just(PI),
            Just(3.0 * FRAC_PI_2),
            Just(TAU),
            -6.0f64..6.0,
        ],
        len,
    )
}

fn arb_day() -> impl Strategy<Value = (u64, f64, f64, f64)> {
    (0u64..1000, 0.0f64..4e-3, 0.0f64..5e-2, 0.0f64..0.05)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One long-lived executor evaluating a stream of (angles, day) pairs
    /// — hitting the cache whenever a structure repeats — returns exactly
    /// the bits a cold-cache executor and the unfused oracle return for
    /// each pair.
    #[test]
    fn warm_cache_matches_cold_compile_and_unfused_oracle(
        evals in proptest::collection::vec(
            (arb_angles(4), arb_angles(40), arb_day()), 1..6),
    ) {
        let model = VqcModel::paper_model(4, 3, 4, 1);
        assert!(model.n_weights() <= 40, "generated weight vector shorter than the model");
        let topo = Topology::ibm_belem();
        let warm = NoisyExecutor::new(&model, &topo, NoiseOptions::with_shots(1024, 7));
        for (features, weights, (day_seed, e1, e2, er)) in &evals {
            let weights = &weights[..model.n_weights()];
            let snap = CalibrationSnapshot::uniform(&topo, *day_seed as usize, *e1, *e2, *er);
            let got = warm.z_scores_seeded(features, weights, &snap, *day_seed);
            let cold = NoisyExecutor::new(&model, &topo, NoiseOptions::with_shots(1024, 7));
            let want = cold.z_scores_seeded(features, weights, &snap, *day_seed);
            let oracle = cold.z_scores_seeded_unfused(features, weights, &snap, *day_seed);
            for ((a, b), c) in got.iter().zip(want.iter()).zip(oracle.iter()) {
                prop_assert!(a.to_bits() == b.to_bits(), "warm {} vs cold {}", a, b);
                prop_assert!(a.to_bits() == c.to_bits(), "warm {} vs oracle {}", a, c);
            }
        }
        // Sanity: the stream genuinely exercised the cache machinery.
        let stats = warm.cache_stats();
        prop_assert_eq!(stats.hits + stats.misses, evals.len() as u64);
    }

    /// Same contract on the trajectory backend: the cached-rebind program
    /// must drive the stochastic engine to identical bits, across days.
    #[test]
    fn warm_cache_matches_cold_compile_on_trajectory_backend(
        features in arb_angles(4),
        weights in arb_angles(40),
        days in proptest::collection::vec(arb_day(), 1..4),
    ) {
        let model = VqcModel::paper_model(4, 3, 4, 1);
        assert!(model.n_weights() <= 40, "generated weight vector shorter than the model");
        let topo = Topology::ibm_belem();
        let options = NoiseOptions {
            backend: SimBackend::Trajectory,
            trajectories: 16,
            ..NoiseOptions::with_shots(1024, 3)
        };
        let warm = NoisyExecutor::new(&model, &topo, options);
        for (day_seed, e1, e2, er) in &days {
            let weights = &weights[..model.n_weights()];
            let snap = CalibrationSnapshot::uniform(&topo, *day_seed as usize, *e1, *e2, *er);
            let got = warm.z_scores_seeded(&features, weights, &snap, *day_seed);
            let cold = NoisyExecutor::new(&model, &topo, options);
            let want = cold.z_scores_seeded(&features, weights, &snap, *day_seed);
            for (a, b) in got.iter().zip(want.iter()) {
                prop_assert!(a.to_bits() == b.to_bits(), "warm {} vs cold {}", a, b);
            }
        }
    }
}

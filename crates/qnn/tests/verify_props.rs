//! Property tests of the static verifier against the *real* pipeline:
//! every fused program the executor compiles — across random angle mixes,
//! calibration days, five device topologies, and both simulation
//! backends — must pass `quasim::verify_program`, and its derived panel
//! supergroup plan must pass `verify_supergroup_plan`. The verifier
//! rejecting corrupted programs is proven in `quasim::verify::mutate`'s
//! own tests; this suite proves the complement: it never rejects a
//! program the pipeline can actually produce.

use calibration::snapshot::CalibrationSnapshot;
use calibration::topology::Topology;
use proptest::prelude::*;
use qnn::executor::{NoiseOptions, NoisyExecutor, SimBackend};
use qnn::model::VqcModel;
use quasim::trajectory::supergroup_plan;
use quasim::{verify_program, verify_supergroup_plan};

/// Feature-sized angle vectors mixing generic values with the compression
/// levels (0, π/2, π, 3π/2) that change the compiled program's structure.
fn arb_angles(len: usize) -> impl Strategy<Value = Vec<f64>> {
    use std::f64::consts::{FRAC_PI_2, PI, TAU};
    proptest::collection::vec(
        prop_oneof![
            Just(0.0),
            Just(FRAC_PI_2),
            Just(PI),
            Just(3.0 * FRAC_PI_2),
            Just(TAU),
            -6.0f64..6.0,
        ],
        len,
    )
}

fn arb_day() -> impl Strategy<Value = (u64, f64, f64, f64)> {
    (0u64..1000, 0.0f64..4e-3, 0.0f64..5e-2, 0.0f64..0.05)
}

/// The devices under test. `ibm_guadalupe` (16 qubits) exceeds
/// [`quasim::density::MAX_DENSITY_QUBITS`], so it runs on the trajectory
/// backend only; every other device is exercised on both backends.
fn devices() -> Vec<(Topology, Vec<SimBackend>)> {
    let both = vec![SimBackend::Density, SimBackend::Trajectory];
    vec![
        (Topology::ibm_belem(), both.clone()),
        (Topology::ibm_jakarta(), both.clone()),
        (Topology::line(4), both.clone()),
        (Topology::ring(5), both),
        (Topology::ibm_guadalupe(), vec![SimBackend::Trajectory]),
    ]
}

/// A model sized for the device: the Table I 4-qubit shape everywhere it
/// fits, the Fig. 10 16-qubit shape on guadalupe.
fn model_for(topology: &Topology) -> VqcModel {
    if topology.n_qubits() >= 16 {
        VqcModel::paper_model(16, 4, 16, 1)
    } else {
        VqcModel::paper_model(4, 3, 4, 1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `verify_program` accepts every program the pipeline compiles, and
    /// `verify_supergroup_plan` accepts the plan the panel engine derives
    /// for it — over random angles × days × devices × backends.
    #[test]
    fn pipeline_programs_always_verify(
        features in arb_angles(16),
        weights in arb_angles(200),
        day in arb_day(),
    ) {
        let (day_seed, e1, e2, er) = day;
        for (topo, backends) in devices() {
            let model = model_for(&topo);
            prop_assert!(model.n_weights() <= weights.len());
            let features = &features[..model.n_features()];
            let weights = &weights[..model.n_weights()];
            let snap = CalibrationSnapshot::uniform(
                &topo, day_seed as usize, e1, e2, er);
            for backend in backends {
                let options = NoiseOptions {
                    backend,
                    ..NoiseOptions::with_shots(256, 7)
                };
                let exec = NoisyExecutor::new(&model, &topo, options);
                let (measured, program) =
                    exec.compile_program(features, weights, &snap);
                prop_assert!(
                    verify_program(&program).is_ok(),
                    "rejected a pipeline program on {} ({}): {}",
                    topo.name(),
                    backend.name(),
                    verify_program(&program).unwrap_err()
                );
                let plan = supergroup_plan(&program);
                prop_assert!(
                    verify_supergroup_plan(&program, &plan).is_ok(),
                    "rejected the derived supergroup plan on {} ({}): {}",
                    topo.name(),
                    backend.name(),
                    verify_supergroup_plan(&program, &plan).unwrap_err()
                );
                for &q in &measured {
                    prop_assert!(q < program.n_qubits());
                }
            }
        }
    }
}

//! Shared parsing for the workspace's environment knobs.
//!
//! Every audited `env::var` entry point (`QUCAD_THREADS`,
//! `QUCAD_TRAJ_BATCH`, the `QUCAD_SERVE_*` family) resolves its raw value
//! through these pure helpers, so all knobs share one contract: a *set*
//! variable must parse. Garbage, empty, whitespace-only, and out-of-range
//! values fail fast with one uniform message instead of being silently
//! ignored — a typo in a CI matrix or a deployment manifest must not
//! demote a knob to its default.
//!
//! The helpers take the raw string, not the variable name to read: they
//! stay side-effect-free so the panic contract is testable without racing
//! on process-global environment state, and so each call site keeps its
//! own audited env-read lint annotation.

/// Parses a positive (non-zero) integer knob.
///
/// # Panics
///
/// Panics unless `raw` trims to a positive integer — `0`, garbage, empty,
/// and whitespace-only values all fail with the knob's name in the
/// message.
pub fn parse_positive(name: &str, raw: &str) -> usize {
    raw.trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .unwrap_or_else(|| panic!("{name} must be a positive integer, got '{raw}'"))
}

/// Parses a TCP port knob. `0` is accepted: it asks the OS for an
/// ephemeral port (the serve CI leg binds that way).
///
/// # Panics
///
/// Panics unless `raw` trims to an integer in `0..=65535`.
pub fn parse_port(name: &str, raw: &str) -> u16 {
    raw.trim()
        .parse::<u16>()
        .unwrap_or_else(|_| panic!("{name} must be a port number (0-65535), got '{raw}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_accepts_trimmed_integers() {
        assert_eq!(parse_positive("K", "3"), 3);
        assert_eq!(parse_positive("K", " 17 "), 17);
        assert_eq!(parse_positive("K", "1"), 1);
    }

    #[test]
    #[should_panic(expected = "QUCAD_THREADS must be a positive integer, got '0'")]
    fn positive_rejects_zero() {
        parse_positive("QUCAD_THREADS", "0");
    }

    #[test]
    #[should_panic(expected = "QUCAD_THREADS must be a positive integer, got 'four'")]
    fn positive_rejects_garbage() {
        parse_positive("QUCAD_THREADS", "four");
    }

    #[test]
    #[should_panic(expected = "QUCAD_THREADS must be a positive integer, got '  '")]
    fn positive_rejects_whitespace_only() {
        parse_positive("QUCAD_THREADS", "  ");
    }

    #[test]
    #[should_panic(expected = "must be a positive integer, got '-2'")]
    fn positive_rejects_negatives() {
        parse_positive("QUCAD_SERVE_MAX_BATCH", "-2");
    }

    #[test]
    fn port_accepts_full_range_and_zero() {
        assert_eq!(parse_port("QUCAD_SERVE_PORT", "0"), 0);
        assert_eq!(parse_port("QUCAD_SERVE_PORT", " 9107 "), 9107);
        assert_eq!(parse_port("QUCAD_SERVE_PORT", "65535"), 65535);
    }

    #[test]
    #[should_panic(expected = "QUCAD_SERVE_PORT must be a port number (0-65535), got '65536'")]
    fn port_rejects_out_of_range() {
        parse_port("QUCAD_SERVE_PORT", "65536");
    }

    #[test]
    #[should_panic(expected = "QUCAD_SERVE_PORT must be a port number (0-65535), got 'http'")]
    fn port_rejects_garbage() {
        parse_port("QUCAD_SERVE_PORT", "http");
    }
}

//! Density-matrix simulation with noise channels.
//!
//! The density matrix `ρ` is stored dense and row-major (`D×D`,
//! `D = 2^n_qubits`). For the register sizes in this workspace (4–7 qubits,
//! `D ≤ 128`) dense simulation is exact and fast, avoiding the sampling
//! variance a shot-based simulator would add on top of the physical noise
//! being studied.
//!
//! All mutation goes through the bit-twiddled block kernels in [`kernels`]:
//! a one-qubit op couples `ρ` entries only within `2×2` blocks (rows and
//! columns paired along the qubit's bit) and a two-qubit op within `4×4`
//! blocks, so every kernel loads a block once, transforms it in registers,
//! and stores it back — one cache-friendly pass per operation and **zero
//! heap allocation**. Runs of operations sharing a support can be collapsed
//! into a single pass via [`crate::fused::FusedProgram`] /
//! [`DensityMatrix::apply_fused`], and [`SimWorkspace`] makes the backing
//! storage reusable across simulations.

use crate::fused::FusedProgram;
use crate::gate::BoundGate;
use crate::math::{CMatrix, Complex64, M2, M4};
use crate::noise::{apply_readout_to_distribution, KrausChannel, ReadoutError};
use crate::statevector::StateVector;

/// Largest register the dense density-matrix engine accepts: `ρ` costs
/// `4^n` complex entries, so 12 qubits (256 MiB) is the practical ceiling.
/// Wider devices need the O(2^n)-per-trajectory [`crate::trajectory`]
/// engine.
pub const MAX_DENSITY_QUBITS: usize = 12;

/// A mixed quantum state over `n` qubits.
///
/// # Examples
///
/// ```
/// use quasim::density::DensityMatrix;
/// use quasim::gate::{BoundGate, GateKind};
/// use quasim::noise::KrausChannel;
///
/// let mut rho = DensityMatrix::zero_state(2);
/// rho.apply_gate(&BoundGate::one(GateKind::H, 0, 0.0));
/// rho.apply_channel(&KrausChannel::depolarizing_1q(0.1), &[0]);
/// assert!((rho.trace() - 1.0).abs() < 1e-12);
/// assert!(rho.purity() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n_qubits: usize,
    dim: usize,
    data: Vec<Complex64>,
}

impl DensityMatrix {
    /// Creates `|0…0⟩⟨0…0|` over `n_qubits`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is 0 or greater than 12 (dense ρ would be huge).
    pub fn zero_state(n_qubits: usize) -> Self {
        assert!(
            (1..=MAX_DENSITY_QUBITS).contains(&n_qubits),
            "unsupported qubit count"
        );
        let dim = 1usize << n_qubits;
        let mut data = vec![Complex64::ZERO; dim * dim];
        data[0] = Complex64::ONE;
        DensityMatrix {
            n_qubits,
            dim,
            data,
        }
    }

    /// Creates `|ψ⟩⟨ψ|` from a pure state.
    pub fn from_statevector(sv: &StateVector) -> Self {
        let n_qubits = sv.n_qubits();
        let dim = 1usize << n_qubits;
        let amps = sv.amplitudes();
        let mut data = vec![Complex64::ZERO; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                data[i * dim + j] = amps[i] * amps[j].conj();
            }
        }
        DensityMatrix {
            n_qubits,
            dim,
            data,
        }
    }

    /// The maximally mixed state `I / 2^n`.
    pub fn maximally_mixed(n_qubits: usize) -> Self {
        let mut rho = DensityMatrix::zero_state(n_qubits);
        rho.data[0] = Complex64::ZERO;
        let w = Complex64::real(1.0 / rho.dim as f64);
        for i in 0..rho.dim {
            rho.data[i * rho.dim + i] = w;
        }
        rho
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Matrix dimension `2^n`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Entry `ρ[i, j]`.
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        self.data[i * self.dim + j]
    }

    /// Applies a unitary bound gate: `ρ → UρU†`. CNOTs dispatch to the
    /// permutation fast path [`DensityMatrix::apply_cx`].
    ///
    /// # Panics
    ///
    /// Panics if qubit indices are out of range.
    pub fn apply_gate(&mut self, gate: &BoundGate) {
        if gate.kind() == crate::gate::GateKind::Cx {
            self.apply_cx(gate.qubits()[0], gate.qubits()[1]);
            return;
        }
        let u = gate.matrix();
        match gate.kind().arity() {
            1 => self.apply_unitary_1q(&u, gate.qubits()[0]),
            _ => self.apply_unitary_2q(&u, gate.qubits()[0], gate.qubits()[1]),
        }
    }

    /// Applies a 2×2 unitary on qubit `q`: `ρ → UρU†`, one blocked pass.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range or `u` is not 2×2.
    pub fn apply_unitary_1q(&mut self, u: &CMatrix, q: usize) {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let m = u.to_2x2().expect("expected a 2x2 matrix");
        kernels::unitary_1q(&mut self.data, self.dim, &m, crate::fused::classify2(&m), q);
    }

    /// Applies a 4×4 unitary on qubits `(a, b)`: `ρ → UρU†`, one blocked
    /// pass. Qubit `a` maps to the most significant local bit.
    ///
    /// # Panics
    ///
    /// Panics if indices are invalid or `u` is not 4×4.
    pub fn apply_unitary_2q(&mut self, u: &CMatrix, a: usize, b: usize) {
        assert!(a < self.n_qubits && b < self.n_qubits, "qubit out of range");
        assert_ne!(a, b, "qubits must be distinct");
        let m = u.to_4x4().expect("expected a 4x4 matrix");
        kernels::unitary_2q(&mut self.data, self.dim, &m, a, b);
    }

    /// Applies a Kraus channel on the given qubits: `ρ → Σ_k K_k ρ K_k†`.
    ///
    /// Each block of the sum is conjugated out of the untouched source and
    /// accumulated into a single scratch buffer (no per-Kraus-term copy of
    /// `ρ`), which is then adopted as the new state.
    ///
    /// # Panics
    ///
    /// Panics if `qubits.len() != channel.arity()` or indices are invalid.
    pub fn apply_channel(&mut self, channel: &KrausChannel, qubits: &[usize]) {
        assert_eq!(
            qubits.len(),
            channel.arity(),
            "channel arity does not match qubit count"
        );
        for &q in qubits {
            assert!(q < self.n_qubits, "qubit {q} out of range");
        }
        let mut acc = vec![Complex64::ZERO; self.data.len()];
        match channel.arity() {
            1 => {
                let ks: Vec<(M2, crate::fused::MatClass)> = channel
                    .kraus_ops()
                    .iter()
                    .map(|k| {
                        let m = k.to_2x2().expect("one-qubit Kraus operator");
                        (m, crate::fused::classify2(&m))
                    })
                    .collect();
                kernels::channel_accumulate_1q(&self.data, &mut acc, self.dim, &ks, qubits[0]);
            }
            _ => {
                assert_ne!(qubits[0], qubits[1], "qubits must be distinct");
                let ks: Vec<M4> = channel
                    .kraus_ops()
                    .iter()
                    .map(|k| k.to_4x4().expect("two-qubit Kraus operator"))
                    .collect();
                kernels::channel_accumulate_2q(
                    &self.data, &mut acc, self.dim, &ks, qubits[0], qubits[1],
                );
            }
        }
        self.data = acc;
    }

    /// Fast CNOT application: `ρ → CX ρ CX†` as a pure index permutation
    /// (no complex multiplications), one blocked pass.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or equal.
    pub fn apply_cx(&mut self, control: usize, target: usize) {
        assert!(
            control < self.n_qubits && target < self.n_qubits,
            "qubit out of range"
        );
        assert_ne!(control, target, "qubits must be distinct");
        kernels::cx(&mut self.data, self.dim, control, target);
    }

    /// Fast closed-form one-qubit depolarising channel on qubit `q`:
    /// `ρ → (1−λ)ρ + λ·(I/2 ⊗ Tr_q ρ)`.
    ///
    /// Equivalent to `apply_channel(&KrausChannel::depolarizing_1q(λ), &[q])`
    /// but O(D²) instead of four Kraus conjugations; `λ` is clamped to
    /// `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_depolarizing_1q(&mut self, lambda: f64, q: usize) {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let l = lambda.clamp(0.0, 1.0);
        if l == 0.0 {
            return;
        }
        kernels::depol_1q(&mut self.data, self.dim, l, q);
    }

    /// Fast closed-form two-qubit depolarising channel on `(a, b)`:
    /// `ρ → (1−λ)ρ + λ·(I/4 ⊗ Tr_{a,b} ρ)`.
    ///
    /// Equivalent to the 16-operator Kraus form but O(D²); `λ` is clamped
    /// to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or equal.
    pub fn apply_depolarizing_2q(&mut self, lambda: f64, a: usize, b: usize) {
        assert!(a < self.n_qubits && b < self.n_qubits, "qubit out of range");
        assert_ne!(a, b, "qubits must be distinct");
        let l = lambda.clamp(0.0, 1.0);
        if l == 0.0 {
            return;
        }
        kernels::depol_2q(&mut self.data, self.dim, l, a, b);
    }

    /// Executes a fused program in place; bit-identical to applying the
    /// program's operations one by one through the methods above.
    ///
    /// # Panics
    ///
    /// Panics if the program's qubit count differs from this matrix's.
    pub fn apply_fused(&mut self, program: &FusedProgram) {
        assert_eq!(
            program.n_qubits(),
            self.n_qubits,
            "program qubit count mismatch"
        );
        program.run_on(&mut self.data);
    }

    /// Diagonal of `ρ` as a classical probability distribution.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.dim)
            .map(|i| self.data[i * self.dim + i].re)
            .collect()
    }

    /// Probabilities after pushing through per-qubit readout errors.
    ///
    /// # Panics
    ///
    /// Panics if `errors.len() != n_qubits`.
    pub fn probabilities_with_readout(&self, errors: &[ReadoutError]) -> Vec<f64> {
        assert_eq!(errors.len(), self.n_qubits, "one readout error per qubit");
        let mut probs = self.probabilities();
        apply_readout_to_distribution(&mut probs, errors);
        probs
    }

    /// Probability of measuring qubit `q` as `1` (no readout error).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn prob_one(&self, q: usize) -> f64 {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let mask = 1usize << q;
        (0..self.dim)
            .filter(|i| i & mask != 0)
            .map(|i| self.data[i * self.dim + i].re)
            .sum()
    }

    /// Expectation value `⟨Z_q⟩`.
    pub fn expect_z(&self, q: usize) -> f64 {
        1.0 - 2.0 * self.prob_one(q)
    }

    /// Trace of `ρ` (should be 1 up to rounding).
    pub fn trace(&self) -> f64 {
        (0..self.dim).map(|i| self.data[i * self.dim + i].re).sum()
    }

    /// Purity `Tr(ρ²)`; 1 for pure states, `1/2^n` for maximally mixed.
    pub fn purity(&self) -> f64 {
        // Tr(ρ²) = Σ_ij ρ[i,j] ρ[j,i] = Σ_ij |ρ[i,j]|² for Hermitian ρ.
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Maximum deviation from Hermitian symmetry `|ρ[i,j] − ρ[j,i]*|`.
    pub fn hermiticity_error(&self) -> f64 {
        let mut max = 0.0f64;
        for i in 0..self.dim {
            for j in 0..=i {
                let d = (self.get(i, j) - self.get(j, i).conj()).abs();
                max = max.max(d);
            }
        }
        max
    }

    /// Fidelity with a pure state: `⟨ψ|ρ|ψ⟩`.
    ///
    /// # Panics
    ///
    /// Panics if qubit counts differ.
    pub fn fidelity_with_pure(&self, sv: &StateVector) -> f64 {
        assert_eq!(sv.n_qubits(), self.n_qubits, "qubit counts must match");
        let amps = sv.amplitudes();
        let mut acc = Complex64::ZERO;
        for i in 0..self.dim {
            for j in 0..self.dim {
                acc += amps[i].conj() * self.get(i, j) * amps[j];
            }
        }
        acc.re
    }
}

/// A reusable density-matrix simulation workspace.
///
/// Owns the flat row-major `ρ` storage the kernels write into, so a worker
/// thread can simulate thousands of circuits with **one** allocation:
/// [`SimWorkspace::reset_zero`] re-initialises the state in place (growing
/// the buffer only when the register grows) and
/// [`SimWorkspace::run`] executes a [`FusedProgram`] on it.
///
/// # Examples
///
/// ```
/// use quasim::density::SimWorkspace;
/// use quasim::fused::ProgramBuilder;
/// use quasim::gate::GateKind;
///
/// let mut builder = ProgramBuilder::new(2);
/// builder.unitary_1q(0, GateKind::H.entries_1q(0.0).unwrap());
/// builder.cx(0, 1);
/// let program = builder.finish();
///
/// let mut ws = SimWorkspace::new();
/// for _ in 0..3 {
///     ws.reset_zero(2); // reuses the same buffer every iteration
///     ws.run(&program);
///     assert!((ws.prob_one(1) - 0.5).abs() < 1e-12);
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimWorkspace {
    n_qubits: usize,
    dim: usize,
    rho: Vec<Complex64>,
}

impl SimWorkspace {
    /// Creates an empty workspace (no storage until the first reset).
    pub fn new() -> Self {
        SimWorkspace::default()
    }

    /// Re-initialises the state to `|0…0⟩⟨0…0|` over `n_qubits`, reusing
    /// the existing buffer when large enough.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is 0 or greater than 12.
    pub fn reset_zero(&mut self, n_qubits: usize) {
        assert!(
            (1..=MAX_DENSITY_QUBITS).contains(&n_qubits),
            "unsupported qubit count"
        );
        let dim = 1usize << n_qubits;
        self.n_qubits = n_qubits;
        self.dim = dim;
        self.rho.clear();
        self.rho.resize(dim * dim, Complex64::ZERO);
        self.rho[0] = Complex64::ONE;
    }

    /// Number of qubits of the current state (0 before the first reset).
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Matrix dimension `2^n` of the current state.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Executes a fused program in place.
    ///
    /// # Panics
    ///
    /// Panics if the program's qubit count differs from the workspace's
    /// current register (reset first).
    pub fn run(&mut self, program: &FusedProgram) {
        assert_eq!(
            program.n_qubits(),
            self.n_qubits,
            "program/workspace qubit count mismatch"
        );
        program.run_on(&mut self.rho);
    }

    /// Probability of measuring qubit `q` as `1`; bit-identical to
    /// [`DensityMatrix::prob_one`] on the same state.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn prob_one(&self, q: usize) -> f64 {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let mask = 1usize << q;
        (0..self.dim)
            .filter(|i| i & mask != 0)
            .map(|i| self.rho[i * self.dim + i].re)
            .sum()
    }

    /// Diagonal of `ρ` as a classical probability distribution;
    /// bit-identical to [`DensityMatrix::probabilities`].
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.dim)
            .map(|i| self.rho[i * self.dim + i].re)
            .collect()
    }

    /// The flat row-major storage.
    pub fn rho(&self) -> &[Complex64] {
        &self.rho
    }

    /// Copies the current state into an owned [`DensityMatrix`] (for
    /// inspection and tests; the hot path never needs this).
    pub fn to_density_matrix(&self) -> DensityMatrix {
        assert!(self.n_qubits > 0, "workspace not initialised");
        DensityMatrix {
            n_qubits: self.n_qubits,
            dim: self.dim,
            data: self.rho.clone(),
        }
    }
}

pub(crate) mod kernels {
    //! Bit-twiddled block kernels shared by [`super::DensityMatrix`], the
    //! Kraus-channel accumulator, and the fused-program runners.
    //!
    //! Every kernel walks `ρ` in coupled blocks (2×2 for one-qubit support,
    //! 4×4 for two-qubit support), loading each block into registers once,
    //! and exploits two structural facts:
    //!
    //! - **Hermitian symmetry.** `ρ` is Hermitian and every operation here
    //!   (unitary conjugation, depolarising channels, Kraus sums) preserves
    //!   Hermiticity, so kernels compute only blocks on or above the block
    //!   diagonal and write the conjugate transpose into the mirror block —
    //!   half the arithmetic.
    //! - **Matrix structure.** Real (`RY`, `H`, Paulis) and diagonal
    //!   (`RZ`, phases) 2×2 unitaries are classified once per program
    //!   ([`crate::fused::MatClass`]) and conjugated with specialised
    //!   expressions that skip the exactly-zero terms — about 2× fewer
    //!   floating-point operations on the dominant kernel.
    //!
    //! Both the op-by-op [`super::DensityMatrix`] methods and the fused
    //! segment runners call these same primitives, so fused execution stays
    //! **bit-identical** to the unfused reference by construction.

    use crate::fused::MatClass;
    use crate::math::{Complex64, M2, M4};

    /// Spreads `k` by inserting a `0` bit at the position of the
    /// single-bit `mask`: enumerating `k = 0..dim/2` yields every index
    /// with that bit clear, in ascending order.
    #[inline(always)]
    pub(crate) fn insert_zero_bit(k: usize, mask: usize) -> usize {
        let low = k & (mask - 1);
        ((k ^ low) << 1) | low
    }

    /// Conjugates a 2×2 block: `B → U B U†`, dispatching on the matrix
    /// class (the specialised paths skip exactly-zero terms; any deviation
    /// from the general path is confined to the sign of zeros).
    ///
    /// Block layout: `[b(r0,c0), b(r0,c1), b(r1,c0), b(r1,c1)]` with
    /// `r1 = r0 | mask`, `c1 = c0 | mask`.
    #[inline(always)]
    pub(crate) fn conj2(b: [Complex64; 4], u: &M2, class: MatClass) -> [Complex64; 4] {
        match class {
            MatClass::General => conj2_general(b, u),
            MatClass::Real => conj2_real(b, u),
            MatClass::Diagonal => conj2_diag(b, u),
        }
    }

    #[inline(always)]
    fn conj2_general(b: [Complex64; 4], u: &M2) -> [Complex64; 4] {
        let [u00, u01, u10, u11] = *u;
        // Left multiply (U B), columns independent.
        let t00 = u00 * b[0] + u01 * b[2];
        let t01 = u00 * b[1] + u01 * b[3];
        let t10 = u10 * b[0] + u11 * b[2];
        let t11 = u10 * b[1] + u11 * b[3];
        // Right multiply ((U B) U†), rows independent.
        [
            t00 * u00.conj() + t01 * u01.conj(),
            t00 * u10.conj() + t01 * u11.conj(),
            t10 * u00.conj() + t11 * u01.conj(),
            t10 * u10.conj() + t11 * u11.conj(),
        ]
    }

    /// Real unitary: `U† = Uᵀ` and every product is real×complex (two
    /// multiplies instead of a full complex multiply).
    #[inline(always)]
    fn conj2_real(b: [Complex64; 4], u: &M2) -> [Complex64; 4] {
        let (u00, u01, u10, u11) = (u[0].re, u[1].re, u[2].re, u[3].re);
        let rc = |x: f64, z: Complex64| Complex64::new(x * z.re, x * z.im);
        let t00 = rc(u00, b[0]) + rc(u01, b[2]);
        let t01 = rc(u00, b[1]) + rc(u01, b[3]);
        let t10 = rc(u10, b[0]) + rc(u11, b[2]);
        let t11 = rc(u10, b[1]) + rc(u11, b[3]);
        [
            rc(u00, t00) + rc(u01, t01),
            rc(u10, t00) + rc(u11, t01),
            rc(u00, t10) + rc(u01, t11),
            rc(u10, t10) + rc(u11, t11),
        ]
    }

    /// Diagonal unitary: rows scale by `u_rr`, columns by `conj(u_cc)`.
    #[inline(always)]
    fn conj2_diag(b: [Complex64; 4], u: &M2) -> [Complex64; 4] {
        let (u00, u11) = (u[0], u[3]);
        [
            (u00 * b[0]) * u00.conj(),
            (u00 * b[1]) * u11.conj(),
            (u11 * b[2]) * u00.conj(),
            (u11 * b[3]) * u11.conj(),
        ]
    }

    /// One-qubit depolarising update of a 2×2 block (`l` pre-clamped,
    /// non-zero).
    #[inline(always)]
    pub(crate) fn depol1(b: [Complex64; 4], l: f64) -> [Complex64; 4] {
        let keep = 1.0 - l;
        let avg = (b[0] + b[3]).scale(0.5 * l);
        [
            b[0].scale(keep) + avg,
            b[1].scale(keep),
            b[2].scale(keep),
            b[3].scale(keep) + avg,
        ]
    }

    /// Conjugates a 4×4 block in place: `B → U B U†`.
    ///
    /// `map` translates the unitary's own quartet order to the block's
    /// canonical order (identity, or the bit-swap `[0, 2, 1, 3]` when the
    /// op's qubit order is reversed relative to the block layout), keeping
    /// summation order — and therefore bits — identical to applying the op
    /// with its own qubit order.
    #[inline(always)]
    pub(crate) fn conj4(b: &mut [Complex64; 16], u: &M4, map: [usize; 4]) {
        // Left multiply, columns independent.
        let mut t = [Complex64::ZERO; 16];
        for c in 0..4 {
            for r in 0..4 {
                let mut acc = Complex64::ZERO;
                for k in 0..4 {
                    acc += u[r * 4 + k] * b[map[k] * 4 + c];
                }
                t[map[r] * 4 + c] = acc;
            }
        }
        // Right multiply by U†, rows independent.
        for r in 0..4 {
            let mut row = [Complex64::ZERO; 4];
            for (c, slot) in row.iter_mut().enumerate() {
                let mut acc = Complex64::ZERO;
                for k in 0..4 {
                    acc += t[r * 4 + map[k]] * u[c * 4 + k].conj();
                }
                *slot = acc;
            }
            for (c, &v) in row.iter().enumerate() {
                b[r * 4 + map[c]] = v;
            }
        }
    }

    /// Two-qubit depolarising update of a 4×4 block (`l` pre-clamped,
    /// non-zero); `map` as in [`conj4`].
    #[inline(always)]
    pub(crate) fn depol2(b: &mut [Complex64; 16], l: f64, map: [usize; 4]) {
        let keep = 1.0 - l;
        // Partial trace over the block diagonal, in the op's own order.
        let mut tr = Complex64::ZERO;
        for &m in &map {
            tr += b[m * 4 + m];
        }
        let mix = tr.scale(0.25 * l);
        for r in 0..4 {
            for c in 0..4 {
                let idx = map[r] * 4 + map[c];
                let mut v = b[idx].scale(keep);
                if r == c {
                    v += mix;
                }
                b[idx] = v;
            }
        }
    }

    /// CNOT on a 4×4 block: flips the target bit wherever the control bit
    /// is set (pure permutation). `control_is_a` selects which local bit is
    /// the control; canonical index = `2·a_bit + b_bit`.
    #[inline(always)]
    pub(crate) fn cx_block(b: &mut [Complex64; 16], control_is_a: bool) {
        let (x, y) = if control_is_a {
            (2usize, 3usize)
        } else {
            (1usize, 3usize)
        };
        for c in 0..4 {
            b.swap(x * 4 + c, y * 4 + c);
        }
        for r in 0..4 {
            b.swap(r * 4 + x, r * 4 + y);
        }
    }

    /// Loads the 2×2 block at row pair `(base0, base1)` × column pair
    /// `(c0, c1)`.
    #[inline(always)]
    pub(crate) fn load2(
        data: &[Complex64],
        base0: usize,
        base1: usize,
        c0: usize,
        c1: usize,
    ) -> [Complex64; 4] {
        [
            data[base0 + c0],
            data[base0 + c1],
            data[base1 + c0],
            data[base1 + c1],
        ]
    }

    /// Stores a 2×2 block back.
    #[inline(always)]
    pub(crate) fn store2(
        data: &mut [Complex64],
        base0: usize,
        base1: usize,
        c0: usize,
        c1: usize,
        blk: [Complex64; 4],
    ) {
        data[base0 + c0] = blk[0];
        data[base0 + c1] = blk[1];
        data[base1 + c0] = blk[2];
        data[base1 + c1] = blk[3];
    }

    /// Stores the conjugate transpose of a 2×2 block into its Hermitian
    /// mirror position (rows ↔ columns).
    #[inline(always)]
    pub(crate) fn store2_mirror(
        data: &mut [Complex64],
        dim: usize,
        r0: usize,
        r1: usize,
        c0: usize,
        c1: usize,
        blk: [Complex64; 4],
    ) {
        data[c0 * dim + r0] = blk[0].conj();
        data[c0 * dim + r1] = blk[2].conj();
        data[c1 * dim + r0] = blk[1].conj();
        data[c1 * dim + r1] = blk[3].conj();
    }

    /// `ρ → U ρ U†` for a 2×2 unitary on qubit `q`: one pass over the
    /// upper block triangle, mirroring the lower half.
    pub(crate) fn unitary_1q(
        data: &mut [Complex64],
        dim: usize,
        u: &M2,
        class: MatClass,
        q: usize,
    ) {
        let mask = 1usize << q;
        let half = dim >> 1;
        for rk in 0..half {
            let r0 = insert_zero_bit(rk, mask);
            let r1 = r0 | mask;
            let (base0, base1) = (r0 * dim, r1 * dim);
            // Diagonal block: computed fully in place.
            let blk = conj2(load2(data, base0, base1, r0, r1), u, class);
            store2(data, base0, base1, r0, r1, blk);
            for ck in rk + 1..half {
                let c0 = insert_zero_bit(ck, mask);
                let c1 = c0 | mask;
                let blk = conj2(load2(data, base0, base1, c0, c1), u, class);
                store2(data, base0, base1, c0, c1, blk);
                store2_mirror(data, dim, r0, r1, c0, c1, blk);
            }
        }
    }

    /// One-qubit depolarising channel on qubit `q` (`l` pre-clamped,
    /// non-zero): one pass over the upper block triangle.
    pub(crate) fn depol_1q(data: &mut [Complex64], dim: usize, l: f64, q: usize) {
        let mask = 1usize << q;
        let half = dim >> 1;
        for rk in 0..half {
            let r0 = insert_zero_bit(rk, mask);
            let r1 = r0 | mask;
            let (base0, base1) = (r0 * dim, r1 * dim);
            let blk = depol1(load2(data, base0, base1, r0, r1), l);
            store2(data, base0, base1, r0, r1, blk);
            for ck in rk + 1..half {
                let c0 = insert_zero_bit(ck, mask);
                let c1 = c0 | mask;
                let blk = depol1(load2(data, base0, base1, c0, c1), l);
                store2(data, base0, base1, c0, c1, blk);
                store2_mirror(data, dim, r0, r1, c0, c1, blk);
            }
        }
    }

    /// Enumerates the masks of a two-qubit support in ascending order.
    #[inline(always)]
    fn sorted_masks(a: usize, b: usize) -> (usize, usize, usize, usize) {
        let ma = 1usize << a;
        let mb = 1usize << b;
        let (lo, hi) = if ma < mb { (ma, mb) } else { (mb, ma) };
        (ma, mb, lo, hi)
    }

    /// Loads a 4×4 block (row bases × column indices).
    #[inline(always)]
    pub(crate) fn load4(
        data: &[Complex64],
        rows: &[usize; 4],
        cols: &[usize; 4],
    ) -> [Complex64; 16] {
        let mut blk = [Complex64::ZERO; 16];
        for (r, &row) in rows.iter().enumerate() {
            for (c, &col) in cols.iter().enumerate() {
                blk[r * 4 + c] = data[row + col];
            }
        }
        blk
    }

    /// Stores a 4×4 block back.
    #[inline(always)]
    pub(crate) fn store4(
        data: &mut [Complex64],
        rows: &[usize; 4],
        cols: &[usize; 4],
        blk: &[Complex64; 16],
    ) {
        for (r, &row) in rows.iter().enumerate() {
            for (c, &col) in cols.iter().enumerate() {
                data[row + col] = blk[r * 4 + c];
            }
        }
    }

    /// Stores the conjugate transpose of a 4×4 block into its Hermitian
    /// mirror position (`ridx` are the block's row *indices*, not bases).
    #[inline(always)]
    pub(crate) fn store4_mirror(
        data: &mut [Complex64],
        dim: usize,
        ridx: &[usize; 4],
        cols: &[usize; 4],
        blk: &[Complex64; 16],
    ) {
        for (c, &col) in cols.iter().enumerate() {
            let base = col * dim;
            for (r, &row) in ridx.iter().enumerate() {
                data[base + row] = blk[r * 4 + c].conj();
            }
        }
    }

    /// `ρ → U ρ U†` for a 4×4 unitary on `(a, b)` (`a` = high local bit):
    /// one pass over the upper block triangle.
    pub(crate) fn unitary_2q(data: &mut [Complex64], dim: usize, u: &M4, a: usize, b: usize) {
        let (ma, mb, m_lo, m_hi) = sorted_masks(a, b);
        let quarter = dim >> 2;
        for rk in 0..quarter {
            let i = insert_zero_bit(insert_zero_bit(rk, m_lo), m_hi);
            let ridx = [i, i | mb, i | ma, i | ma | mb];
            let rows = ridx.map(|r| r * dim);
            for ck in rk..quarter {
                let j = insert_zero_bit(insert_zero_bit(ck, m_lo), m_hi);
                let cols = [j, j | mb, j | ma, j | ma | mb];
                let mut blk = load4(data, &rows, &cols);
                conj4(&mut blk, u, [0, 1, 2, 3]);
                store4(data, &rows, &cols, &blk);
                if ck > rk {
                    store4_mirror(data, dim, &ridx, &cols, &blk);
                }
            }
        }
    }

    /// Two-qubit depolarising channel on `(a, b)` (`l` pre-clamped,
    /// non-zero): one pass over the upper block triangle.
    pub(crate) fn depol_2q(data: &mut [Complex64], dim: usize, l: f64, a: usize, b: usize) {
        let (ma, mb, m_lo, m_hi) = sorted_masks(a, b);
        let quarter = dim >> 2;
        for rk in 0..quarter {
            let i = insert_zero_bit(insert_zero_bit(rk, m_lo), m_hi);
            let ridx = [i, i | mb, i | ma, i | ma | mb];
            let rows = ridx.map(|r| r * dim);
            for ck in rk..quarter {
                let j = insert_zero_bit(insert_zero_bit(ck, m_lo), m_hi);
                let cols = [j, j | mb, j | ma, j | ma | mb];
                let mut blk = load4(data, &rows, &cols);
                depol2(&mut blk, l, [0, 1, 2, 3]);
                store4(data, &rows, &cols, &blk);
                if ck > rk {
                    store4_mirror(data, dim, &ridx, &cols, &blk);
                }
            }
        }
    }

    /// CNOT conjugation `ρ → CX ρ CX†` as an index permutation: one pass
    /// over the upper block triangle, mirroring the lower half (so a lone
    /// CX leaves exactly the same bits as a fused segment containing one).
    pub(crate) fn cx(data: &mut [Complex64], dim: usize, control: usize, target: usize) {
        let (mc, mt, m_lo, m_hi) = sorted_masks(control, target);
        let quarter = dim >> 2;
        for rk in 0..quarter {
            let i = insert_zero_bit(insert_zero_bit(rk, m_lo), m_hi);
            let ridx = [i, i | mt, i | mc, i | mc | mt];
            let rows = ridx.map(|r| r * dim);
            for ck in rk..quarter {
                let j = insert_zero_bit(insert_zero_bit(ck, m_lo), m_hi);
                let cols = [j, j | mt, j | mc, j | mc | mt];
                // Rows with the control bit set swap target-bit pairs …
                for &col in &cols {
                    data.swap(rows[2] + col, rows[3] + col);
                }
                // … and likewise the columns, in every row of the block.
                for &row in &rows {
                    data.swap(row + cols[2], row + cols[3]);
                }
                if ck > rk {
                    for (c, &col) in cols.iter().enumerate() {
                        let base = col * dim;
                        for (r, &row) in ridx.iter().enumerate() {
                            data[base + row] = data[rows[r] + cols[c]].conj();
                        }
                    }
                }
            }
        }
    }

    /// Accumulates `Σ_k K_k ρ K_k†` for 2×2 Kraus operators on qubit `q`
    /// into `acc` (reading `src` untouched), upper block triangle +
    /// mirror.
    pub(crate) fn channel_accumulate_1q(
        src: &[Complex64],
        acc: &mut [Complex64],
        dim: usize,
        ks: &[(M2, MatClass)],
        q: usize,
    ) {
        let mask = 1usize << q;
        let half = dim >> 1;
        for rk in 0..half {
            let r0 = insert_zero_bit(rk, mask);
            let r1 = r0 | mask;
            let (base0, base1) = (r0 * dim, r1 * dim);
            for ck in rk..half {
                let c0 = insert_zero_bit(ck, mask);
                let c1 = c0 | mask;
                let blk = load2(src, base0, base1, c0, c1);
                let mut tot = [Complex64::ZERO; 4];
                for (k, class) in ks {
                    let term = conj2(blk, k, *class);
                    for (t, v) in tot.iter_mut().zip(term.iter()) {
                        *t += *v;
                    }
                }
                store2(acc, base0, base1, c0, c1, tot);
                if ck > rk {
                    store2_mirror(acc, dim, r0, r1, c0, c1, tot);
                }
            }
        }
    }

    /// Accumulates `Σ_k K_k ρ K_k†` for 4×4 Kraus operators on `(a, b)`
    /// into `acc` (reading `src` untouched), upper block triangle +
    /// mirror.
    pub(crate) fn channel_accumulate_2q(
        src: &[Complex64],
        acc: &mut [Complex64],
        dim: usize,
        ks: &[M4],
        a: usize,
        b: usize,
    ) {
        let (ma, mb, m_lo, m_hi) = sorted_masks(a, b);
        let quarter = dim >> 2;
        for rk in 0..quarter {
            let i = insert_zero_bit(insert_zero_bit(rk, m_lo), m_hi);
            let ridx = [i, i | mb, i | ma, i | ma | mb];
            let rows = ridx.map(|r| r * dim);
            for ck in rk..quarter {
                let j = insert_zero_bit(insert_zero_bit(ck, m_lo), m_hi);
                let cols = [j, j | mb, j | ma, j | ma | mb];
                let blk = load4(src, &rows, &cols);
                let mut tot = [Complex64::ZERO; 16];
                for k in ks {
                    let mut term = blk;
                    conj4(&mut term, k, [0, 1, 2, 3]);
                    for (t, v) in tot.iter_mut().zip(term.iter()) {
                        *t += *v;
                    }
                }
                store4(acc, &rows, &cols, &tot);
                if ck > rk {
                    store4_mirror(acc, dim, &ridx, &cols, &tot);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::statevector::run_circuit;

    fn g1(kind: GateKind, q: usize, t: f64) -> BoundGate {
        BoundGate::one(kind, q, t)
    }

    #[test]
    fn zero_state_is_pure_and_normalised() {
        let rho = DensityMatrix::zero_state(3);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!(rho.hermiticity_error() < 1e-12);
    }

    #[test]
    fn unitary_evolution_matches_statevector() {
        let gates = [
            g1(GateKind::H, 0, 0.0),
            g1(GateKind::Ry, 1, 0.7),
            BoundGate::two(GateKind::Cry, 0, 2, 1.1),
            BoundGate::two(GateKind::Cx, 1, 3, 0.0),
            g1(GateKind::Rz, 2, 2.0),
            BoundGate::two(GateKind::Crz, 3, 0, 0.4),
        ];
        let sv = run_circuit(4, &gates);
        let mut rho = DensityMatrix::zero_state(4);
        for g in &gates {
            rho.apply_gate(g);
        }
        for q in 0..4 {
            assert!(
                (rho.prob_one(q) - sv.prob_one(q)).abs() < 1e-10,
                "mismatch on qubit {q}"
            );
        }
        assert!((rho.fidelity_with_pure(&sv) - 1.0).abs() < 1e-10);
        assert!((rho.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn from_statevector_roundtrip() {
        let sv = run_circuit(2, &[g1(GateKind::Ry, 0, 0.4), g1(GateKind::Rx, 1, 1.3)]);
        let rho = DensityMatrix::from_statevector(&sv);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.fidelity_with_pure(&sv) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn depolarizing_mixes_state() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_channel(&KrausChannel::depolarizing_1q(1.0), &[0]);
        // λ=1 → maximally mixed.
        assert!((rho.prob_one(0) - 0.5).abs() < 1e-12);
        assert!((rho.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn channel_preserves_trace_and_hermiticity() {
        let mut rho = DensityMatrix::zero_state(3);
        rho.apply_gate(&g1(GateKind::H, 0, 0.0));
        rho.apply_gate(&BoundGate::two(GateKind::Cx, 0, 1, 0.0));
        rho.apply_channel(&KrausChannel::depolarizing_2q(0.05), &[0, 1]);
        rho.apply_channel(&KrausChannel::amplitude_damping(0.1), &[2]);
        assert!((rho.trace() - 1.0).abs() < 1e-10);
        assert!(rho.hermiticity_error() < 1e-10);
    }

    #[test]
    fn amplitude_damping_fully_decays_to_ground() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&g1(GateKind::X, 0, 0.0));
        rho.apply_channel(&KrausChannel::amplitude_damping(1.0), &[0]);
        assert!(rho.prob_one(0).abs() < 1e-12);
    }

    #[test]
    fn two_qubit_depolarizing_at_one_gives_maximally_mixed_pair() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&g1(GateKind::X, 0, 0.0));
        rho.apply_channel(&KrausChannel::depolarizing_2q(1.0), &[0, 1]);
        let probs = rho.probabilities();
        for p in probs {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn maximally_mixed_has_min_purity() {
        let rho = DensityMatrix::maximally_mixed(3);
        assert!((rho.purity() - 1.0 / 8.0).abs() < 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn readout_probabilities_sum_to_one() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&g1(GateKind::H, 0, 0.0));
        let probs = rho.probabilities_with_readout(&[
            ReadoutError::new(0.03, 0.08),
            ReadoutError::symmetric(0.02),
        ]);
        let total: f64 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noise_reduces_fidelity_monotonically() {
        let gates = [
            g1(GateKind::H, 0, 0.0),
            BoundGate::two(GateKind::Cx, 0, 1, 0.0),
        ];
        let ideal = run_circuit(2, &gates);
        let mut last_fid = 1.1;
        for lambda in [0.0, 0.05, 0.2, 0.5] {
            let mut rho = DensityMatrix::zero_state(2);
            for g in &gates {
                rho.apply_gate(g);
                rho.apply_channel(&KrausChannel::depolarizing_2q(lambda), &[0, 1]);
            }
            let fid = rho.fidelity_with_pure(&ideal);
            assert!(fid < last_fid, "fidelity should decrease with noise");
            last_fid = fid;
        }
    }

    #[test]
    fn fast_cx_matches_dense_unitary() {
        let prep = [
            g1(GateKind::H, 0, 0.0),
            g1(GateKind::Ry, 1, 0.8),
            g1(GateKind::Rz, 2, 1.7),
            BoundGate::two(GateKind::Cry, 0, 2, 0.9),
        ];
        for (c, t) in [(0usize, 1usize), (1, 0), (2, 0), (1, 2)] {
            let mut a = DensityMatrix::zero_state(3);
            let mut b = DensityMatrix::zero_state(3);
            for g in &prep {
                a.apply_gate(g);
                b.apply_gate(g);
            }
            a.apply_unitary_2q(&GateKind::Cx.matrix(0.0), c, t);
            b.apply_cx(c, t);
            for i in 0..8 {
                for j in 0..8 {
                    assert!(
                        (a.get(i, j) - b.get(i, j)).abs() < 1e-12,
                        "cx({c},{t}) mismatch at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_depolarizing_1q_matches_kraus_form() {
        let gates = [
            g1(GateKind::H, 0, 0.0),
            g1(GateKind::Ry, 1, 0.8),
            BoundGate::two(GateKind::Cx, 0, 2, 0.0),
        ];
        for lambda in [0.0, 0.02, 0.3, 1.0] {
            let mut a = DensityMatrix::zero_state(3);
            let mut b = DensityMatrix::zero_state(3);
            for g in &gates {
                a.apply_gate(g);
                b.apply_gate(g);
            }
            a.apply_channel(&KrausChannel::depolarizing_1q(lambda), &[1]);
            b.apply_depolarizing_1q(lambda, 1);
            for i in 0..8 {
                for j in 0..8 {
                    assert!(
                        (a.get(i, j) - b.get(i, j)).abs() < 1e-12,
                        "λ={lambda} mismatch at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_depolarizing_2q_matches_kraus_form() {
        let gates = [
            g1(GateKind::H, 0, 0.0),
            BoundGate::two(GateKind::Cry, 0, 1, 1.2),
            g1(GateKind::Rz, 2, 0.4),
        ];
        for lambda in [0.0, 0.05, 0.4, 1.0] {
            let mut a = DensityMatrix::zero_state(3);
            let mut b = DensityMatrix::zero_state(3);
            for g in &gates {
                a.apply_gate(g);
                b.apply_gate(g);
            }
            a.apply_channel(&KrausChannel::depolarizing_2q(lambda), &[0, 2]);
            b.apply_depolarizing_2q(lambda, 0, 2);
            for i in 0..8 {
                for j in 0..8 {
                    assert!(
                        (a.get(i, j) - b.get(i, j)).abs() < 1e-12,
                        "λ={lambda} mismatch at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn channel_qubit_count_checked() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_channel(&KrausChannel::depolarizing_1q(0.1), &[0, 1]);
    }
}

//! Density-matrix simulation with noise channels.
//!
//! The density matrix `ρ` is stored dense and row-major (`D×D`,
//! `D = 2^n_qubits`). For the register sizes in this workspace (4–7 qubits,
//! `D ≤ 128`) dense simulation is exact and fast, avoiding the sampling
//! variance a shot-based simulator would add on top of the physical noise
//! being studied.

use crate::gate::BoundGate;
use crate::math::{CMatrix, Complex64};
use crate::noise::{apply_readout_to_distribution, KrausChannel, ReadoutError};
use crate::statevector::StateVector;

/// A mixed quantum state over `n` qubits.
///
/// # Examples
///
/// ```
/// use quasim::density::DensityMatrix;
/// use quasim::gate::{BoundGate, GateKind};
/// use quasim::noise::KrausChannel;
///
/// let mut rho = DensityMatrix::zero_state(2);
/// rho.apply_gate(&BoundGate::one(GateKind::H, 0, 0.0));
/// rho.apply_channel(&KrausChannel::depolarizing_1q(0.1), &[0]);
/// assert!((rho.trace() - 1.0).abs() < 1e-12);
/// assert!(rho.purity() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n_qubits: usize,
    dim: usize,
    data: Vec<Complex64>,
}

impl DensityMatrix {
    /// Creates `|0…0⟩⟨0…0|` over `n_qubits`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is 0 or greater than 12 (dense ρ would be huge).
    pub fn zero_state(n_qubits: usize) -> Self {
        assert!((1..=12).contains(&n_qubits), "unsupported qubit count");
        let dim = 1usize << n_qubits;
        let mut data = vec![Complex64::ZERO; dim * dim];
        data[0] = Complex64::ONE;
        DensityMatrix {
            n_qubits,
            dim,
            data,
        }
    }

    /// Creates `|ψ⟩⟨ψ|` from a pure state.
    pub fn from_statevector(sv: &StateVector) -> Self {
        let n_qubits = sv.n_qubits();
        let dim = 1usize << n_qubits;
        let amps = sv.amplitudes();
        let mut data = vec![Complex64::ZERO; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                data[i * dim + j] = amps[i] * amps[j].conj();
            }
        }
        DensityMatrix {
            n_qubits,
            dim,
            data,
        }
    }

    /// The maximally mixed state `I / 2^n`.
    pub fn maximally_mixed(n_qubits: usize) -> Self {
        let mut rho = DensityMatrix::zero_state(n_qubits);
        rho.data[0] = Complex64::ZERO;
        let w = Complex64::real(1.0 / rho.dim as f64);
        for i in 0..rho.dim {
            rho.data[i * rho.dim + i] = w;
        }
        rho
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Matrix dimension `2^n`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Entry `ρ[i, j]`.
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        self.data[i * self.dim + j]
    }

    /// Applies a unitary bound gate: `ρ → UρU†`. CNOTs dispatch to the
    /// permutation fast path [`DensityMatrix::apply_cx`].
    ///
    /// # Panics
    ///
    /// Panics if qubit indices are out of range.
    pub fn apply_gate(&mut self, gate: &BoundGate) {
        if gate.kind() == crate::gate::GateKind::Cx {
            self.apply_cx(gate.qubits()[0], gate.qubits()[1]);
            return;
        }
        let u = gate.matrix();
        match gate.kind().arity() {
            1 => self.apply_unitary_1q(&u, gate.qubits()[0]),
            _ => self.apply_unitary_2q(&u, gate.qubits()[0], gate.qubits()[1]),
        }
    }

    /// Applies a 2×2 unitary on qubit `q`: `ρ → UρU†`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range or `u` is not 2×2.
    pub fn apply_unitary_1q(&mut self, u: &CMatrix, q: usize) {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        assert_eq!(u.dim(), 2, "expected a 2x2 matrix");
        self.left_mul_1q(u, q);
        self.right_mul_dagger_1q(u, q);
    }

    /// Applies a 4×4 unitary on qubits `(a, b)`: `ρ → UρU†`. Qubit `a` maps
    /// to the most significant local bit.
    ///
    /// # Panics
    ///
    /// Panics if indices are invalid or `u` is not 4×4.
    pub fn apply_unitary_2q(&mut self, u: &CMatrix, a: usize, b: usize) {
        assert!(a < self.n_qubits && b < self.n_qubits, "qubit out of range");
        assert_ne!(a, b, "qubits must be distinct");
        assert_eq!(u.dim(), 4, "expected a 4x4 matrix");
        self.left_mul_2q(u, a, b);
        self.right_mul_dagger_2q(u, a, b);
    }

    /// Applies a Kraus channel on the given qubits: `ρ → Σ_k K_k ρ K_k†`.
    ///
    /// # Panics
    ///
    /// Panics if `qubits.len() != channel.arity()` or indices are invalid.
    pub fn apply_channel(&mut self, channel: &KrausChannel, qubits: &[usize]) {
        assert_eq!(
            qubits.len(),
            channel.arity(),
            "channel arity does not match qubit count"
        );
        let mut acc = vec![Complex64::ZERO; self.data.len()];
        let original = self.data.clone();
        for k in channel.kraus_ops() {
            self.data.copy_from_slice(&original);
            match channel.arity() {
                1 => {
                    self.left_mul_1q(k, qubits[0]);
                    self.right_mul_dagger_1q(k, qubits[0]);
                }
                _ => {
                    self.left_mul_2q(k, qubits[0], qubits[1]);
                    self.right_mul_dagger_2q(k, qubits[0], qubits[1]);
                }
            }
            for (a, &d) in acc.iter_mut().zip(self.data.iter()) {
                *a += d;
            }
        }
        self.data = acc;
    }

    /// Fast CNOT application: `ρ → CX ρ CX†` as a pure index permutation
    /// (no complex multiplications).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or equal.
    pub fn apply_cx(&mut self, control: usize, target: usize) {
        assert!(
            control < self.n_qubits && target < self.n_qubits,
            "qubit out of range"
        );
        assert_ne!(control, target, "qubits must be distinct");
        let mc = 1usize << control;
        let mt = 1usize << target;
        let dim = self.dim;
        // Row permutation: rows with control bit set swap target-bit pairs.
        for row in 0..dim {
            if row & mc != 0 && row & mt == 0 {
                let r2 = row | mt;
                for col in 0..dim {
                    self.data.swap(row * dim + col, r2 * dim + col);
                }
            }
        }
        // Column permutation.
        for row in 0..dim {
            let base = row * dim;
            for col in 0..dim {
                if col & mc != 0 && col & mt == 0 {
                    self.data.swap(base + col, base + (col | mt));
                }
            }
        }
    }

    /// Fast closed-form one-qubit depolarising channel on qubit `q`:
    /// `ρ → (1−λ)ρ + λ·(I/2 ⊗ Tr_q ρ)`.
    ///
    /// Equivalent to `apply_channel(&KrausChannel::depolarizing_1q(λ), &[q])`
    /// but O(D²) instead of four Kraus conjugations; `λ` is clamped to
    /// `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_depolarizing_1q(&mut self, lambda: f64, q: usize) {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let l = lambda.clamp(0.0, 1.0);
        if l == 0.0 {
            return;
        }
        let mask = 1usize << q;
        let dim = self.dim;
        let keep = 1.0 - l;
        for i in 0..dim {
            if i & mask != 0 {
                continue;
            }
            let i1 = i | mask;
            for j in 0..dim {
                if j & mask != 0 {
                    continue;
                }
                let j1 = j | mask;
                let d00 = self.data[i * dim + j];
                let d11 = self.data[i1 * dim + j1];
                let avg = (d00 + d11).scale(0.5 * l);
                self.data[i * dim + j] = d00.scale(keep) + avg;
                self.data[i1 * dim + j1] = d11.scale(keep) + avg;
                self.data[i * dim + j1] = self.data[i * dim + j1].scale(keep);
                self.data[i1 * dim + j] = self.data[i1 * dim + j].scale(keep);
            }
        }
    }

    /// Fast closed-form two-qubit depolarising channel on `(a, b)`:
    /// `ρ → (1−λ)ρ + λ·(I/4 ⊗ Tr_{a,b} ρ)`.
    ///
    /// Equivalent to the 16-operator Kraus form but O(D²); `λ` is clamped
    /// to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or equal.
    pub fn apply_depolarizing_2q(&mut self, lambda: f64, a: usize, b: usize) {
        assert!(a < self.n_qubits && b < self.n_qubits, "qubit out of range");
        assert_ne!(a, b, "qubits must be distinct");
        let l = lambda.clamp(0.0, 1.0);
        if l == 0.0 {
            return;
        }
        let ma = 1usize << a;
        let mb = 1usize << b;
        let dim = self.dim;
        let keep = 1.0 - l;
        for i in 0..dim {
            if i & ma != 0 || i & mb != 0 {
                continue;
            }
            let irows = [i, i | mb, i | ma, i | ma | mb];
            for j in 0..dim {
                if j & ma != 0 || j & mb != 0 {
                    continue;
                }
                let jcols = [j, j | mb, j | ma, j | ma | mb];
                // Partial trace over the 4×4 block diagonal.
                let mut tr = Complex64::ZERO;
                for k in 0..4 {
                    tr += self.data[irows[k] * dim + jcols[k]];
                }
                let mix = tr.scale(0.25 * l);
                for (r, &row) in irows.iter().enumerate() {
                    for (c, &col) in jcols.iter().enumerate() {
                        let idx = row * dim + col;
                        let mut v = self.data[idx].scale(keep);
                        if r == c {
                            v += mix;
                        }
                        self.data[idx] = v;
                    }
                }
            }
        }
    }

    /// Diagonal of `ρ` as a classical probability distribution.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.dim)
            .map(|i| self.data[i * self.dim + i].re)
            .collect()
    }

    /// Probabilities after pushing through per-qubit readout errors.
    ///
    /// # Panics
    ///
    /// Panics if `errors.len() != n_qubits`.
    pub fn probabilities_with_readout(&self, errors: &[ReadoutError]) -> Vec<f64> {
        assert_eq!(errors.len(), self.n_qubits, "one readout error per qubit");
        let mut probs = self.probabilities();
        apply_readout_to_distribution(&mut probs, errors);
        probs
    }

    /// Probability of measuring qubit `q` as `1` (no readout error).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn prob_one(&self, q: usize) -> f64 {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let mask = 1usize << q;
        (0..self.dim)
            .filter(|i| i & mask != 0)
            .map(|i| self.data[i * self.dim + i].re)
            .sum()
    }

    /// Expectation value `⟨Z_q⟩`.
    pub fn expect_z(&self, q: usize) -> f64 {
        1.0 - 2.0 * self.prob_one(q)
    }

    /// Trace of `ρ` (should be 1 up to rounding).
    pub fn trace(&self) -> f64 {
        (0..self.dim).map(|i| self.data[i * self.dim + i].re).sum()
    }

    /// Purity `Tr(ρ²)`; 1 for pure states, `1/2^n` for maximally mixed.
    pub fn purity(&self) -> f64 {
        // Tr(ρ²) = Σ_ij ρ[i,j] ρ[j,i] = Σ_ij |ρ[i,j]|² for Hermitian ρ.
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Maximum deviation from Hermitian symmetry `|ρ[i,j] − ρ[j,i]*|`.
    pub fn hermiticity_error(&self) -> f64 {
        let mut max = 0.0f64;
        for i in 0..self.dim {
            for j in 0..=i {
                let d = (self.get(i, j) - self.get(j, i).conj()).abs();
                max = max.max(d);
            }
        }
        max
    }

    /// Fidelity with a pure state: `⟨ψ|ρ|ψ⟩`.
    ///
    /// # Panics
    ///
    /// Panics if qubit counts differ.
    pub fn fidelity_with_pure(&self, sv: &StateVector) -> f64 {
        assert_eq!(sv.n_qubits(), self.n_qubits, "qubit counts must match");
        let amps = sv.amplitudes();
        let mut acc = Complex64::ZERO;
        for i in 0..self.dim {
            for j in 0..self.dim {
                acc += amps[i].conj() * self.get(i, j) * amps[j];
            }
        }
        acc.re
    }

    // --- local multiplication kernels -------------------------------------

    /// `ρ → (U_q) ρ` for a 2×2 `u` acting on qubit `q`.
    ///
    /// Iterates row pairs in the outer loop so both row slices are walked
    /// contiguously (row-major layout).
    fn left_mul_1q(&mut self, u: &CMatrix, q: usize) {
        let mask = 1usize << q;
        let (u00, u01, u10, u11) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
        let dim = self.dim;
        for row in 0..dim {
            if row & mask != 0 {
                continue;
            }
            let r1 = row | mask;
            let (base0, base1) = (row * dim, r1 * dim);
            for col in 0..dim {
                let a0 = self.data[base0 + col];
                let a1 = self.data[base1 + col];
                self.data[base0 + col] = u00 * a0 + u01 * a1;
                self.data[base1 + col] = u10 * a0 + u11 * a1;
            }
        }
    }

    /// `ρ → ρ (U_q)†` for a 2×2 `u` acting on qubit `q`.
    fn right_mul_dagger_1q(&mut self, u: &CMatrix, q: usize) {
        let mask = 1usize << q;
        let (u00, u01, u10, u11) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
        let dim = self.dim;
        for row in 0..dim {
            let base = row * dim;
            for col in 0..dim {
                if col & mask == 0 {
                    let c1 = col | mask;
                    let a0 = self.data[base + col];
                    let a1 = self.data[base + c1];
                    // (ρU†)[·,c] pairs: new0 = a0·conj(u00) + a1·conj(u01)
                    self.data[base + col] = a0 * u00.conj() + a1 * u01.conj();
                    self.data[base + c1] = a0 * u10.conj() + a1 * u11.conj();
                }
            }
        }
    }

    /// `ρ → (U_{a,b}) ρ` for a 4×4 `u`; qubit `a` is the high local bit.
    fn left_mul_2q(&mut self, u: &CMatrix, a: usize, b: usize) {
        let ma = 1usize << a;
        let mb = 1usize << b;
        let dim = self.dim;
        for col in 0..dim {
            for row in 0..dim {
                if row & ma == 0 && row & mb == 0 {
                    let idx = [row, row | mb, row | ma, row | ma | mb];
                    let old = [
                        self.data[idx[0] * dim + col],
                        self.data[idx[1] * dim + col],
                        self.data[idx[2] * dim + col],
                        self.data[idx[3] * dim + col],
                    ];
                    for r in 0..4 {
                        let mut acc = Complex64::ZERO;
                        for c in 0..4 {
                            acc += u[(r, c)] * old[c];
                        }
                        self.data[idx[r] * dim + col] = acc;
                    }
                }
            }
        }
    }

    /// `ρ → ρ (U_{a,b})†` for a 4×4 `u`; qubit `a` is the high local bit.
    fn right_mul_dagger_2q(&mut self, u: &CMatrix, a: usize, b: usize) {
        let ma = 1usize << a;
        let mb = 1usize << b;
        let dim = self.dim;
        for row in 0..dim {
            let base = row * dim;
            for col in 0..dim {
                if col & ma == 0 && col & mb == 0 {
                    let idx = [col, col | mb, col | ma, col | ma | mb];
                    let old = [
                        self.data[base + idx[0]],
                        self.data[base + idx[1]],
                        self.data[base + idx[2]],
                        self.data[base + idx[3]],
                    ];
                    for c in 0..4 {
                        let mut acc = Complex64::ZERO;
                        for k in 0..4 {
                            // (ρU†)[r, c] = Σ_k ρ[r, k] · conj(U[c, k])
                            acc += old[k] * u[(c, k)].conj();
                        }
                        self.data[base + idx[c]] = acc;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::statevector::run_circuit;

    fn g1(kind: GateKind, q: usize, t: f64) -> BoundGate {
        BoundGate::one(kind, q, t)
    }

    #[test]
    fn zero_state_is_pure_and_normalised() {
        let rho = DensityMatrix::zero_state(3);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!(rho.hermiticity_error() < 1e-12);
    }

    #[test]
    fn unitary_evolution_matches_statevector() {
        let gates = [
            g1(GateKind::H, 0, 0.0),
            g1(GateKind::Ry, 1, 0.7),
            BoundGate::two(GateKind::Cry, 0, 2, 1.1),
            BoundGate::two(GateKind::Cx, 1, 3, 0.0),
            g1(GateKind::Rz, 2, 2.0),
            BoundGate::two(GateKind::Crz, 3, 0, 0.4),
        ];
        let sv = run_circuit(4, &gates);
        let mut rho = DensityMatrix::zero_state(4);
        for g in &gates {
            rho.apply_gate(g);
        }
        for q in 0..4 {
            assert!(
                (rho.prob_one(q) - sv.prob_one(q)).abs() < 1e-10,
                "mismatch on qubit {q}"
            );
        }
        assert!((rho.fidelity_with_pure(&sv) - 1.0).abs() < 1e-10);
        assert!((rho.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn from_statevector_roundtrip() {
        let sv = run_circuit(2, &[g1(GateKind::Ry, 0, 0.4), g1(GateKind::Rx, 1, 1.3)]);
        let rho = DensityMatrix::from_statevector(&sv);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.fidelity_with_pure(&sv) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn depolarizing_mixes_state() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_channel(&KrausChannel::depolarizing_1q(1.0), &[0]);
        // λ=1 → maximally mixed.
        assert!((rho.prob_one(0) - 0.5).abs() < 1e-12);
        assert!((rho.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn channel_preserves_trace_and_hermiticity() {
        let mut rho = DensityMatrix::zero_state(3);
        rho.apply_gate(&g1(GateKind::H, 0, 0.0));
        rho.apply_gate(&BoundGate::two(GateKind::Cx, 0, 1, 0.0));
        rho.apply_channel(&KrausChannel::depolarizing_2q(0.05), &[0, 1]);
        rho.apply_channel(&KrausChannel::amplitude_damping(0.1), &[2]);
        assert!((rho.trace() - 1.0).abs() < 1e-10);
        assert!(rho.hermiticity_error() < 1e-10);
    }

    #[test]
    fn amplitude_damping_fully_decays_to_ground() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&g1(GateKind::X, 0, 0.0));
        rho.apply_channel(&KrausChannel::amplitude_damping(1.0), &[0]);
        assert!(rho.prob_one(0).abs() < 1e-12);
    }

    #[test]
    fn two_qubit_depolarizing_at_one_gives_maximally_mixed_pair() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&g1(GateKind::X, 0, 0.0));
        rho.apply_channel(&KrausChannel::depolarizing_2q(1.0), &[0, 1]);
        let probs = rho.probabilities();
        for p in probs {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn maximally_mixed_has_min_purity() {
        let rho = DensityMatrix::maximally_mixed(3);
        assert!((rho.purity() - 1.0 / 8.0).abs() < 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn readout_probabilities_sum_to_one() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&g1(GateKind::H, 0, 0.0));
        let probs = rho.probabilities_with_readout(&[
            ReadoutError::new(0.03, 0.08),
            ReadoutError::symmetric(0.02),
        ]);
        let total: f64 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noise_reduces_fidelity_monotonically() {
        let gates = [
            g1(GateKind::H, 0, 0.0),
            BoundGate::two(GateKind::Cx, 0, 1, 0.0),
        ];
        let ideal = run_circuit(2, &gates);
        let mut last_fid = 1.1;
        for lambda in [0.0, 0.05, 0.2, 0.5] {
            let mut rho = DensityMatrix::zero_state(2);
            for g in &gates {
                rho.apply_gate(g);
                rho.apply_channel(&KrausChannel::depolarizing_2q(lambda), &[0, 1]);
            }
            let fid = rho.fidelity_with_pure(&ideal);
            assert!(fid < last_fid, "fidelity should decrease with noise");
            last_fid = fid;
        }
    }

    #[test]
    fn fast_cx_matches_dense_unitary() {
        let prep = [
            g1(GateKind::H, 0, 0.0),
            g1(GateKind::Ry, 1, 0.8),
            g1(GateKind::Rz, 2, 1.7),
            BoundGate::two(GateKind::Cry, 0, 2, 0.9),
        ];
        for (c, t) in [(0usize, 1usize), (1, 0), (2, 0), (1, 2)] {
            let mut a = DensityMatrix::zero_state(3);
            let mut b = DensityMatrix::zero_state(3);
            for g in &prep {
                a.apply_gate(g);
                b.apply_gate(g);
            }
            a.apply_unitary_2q(&GateKind::Cx.matrix(0.0), c, t);
            b.apply_cx(c, t);
            for i in 0..8 {
                for j in 0..8 {
                    assert!(
                        (a.get(i, j) - b.get(i, j)).abs() < 1e-12,
                        "cx({c},{t}) mismatch at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_depolarizing_1q_matches_kraus_form() {
        let gates = [
            g1(GateKind::H, 0, 0.0),
            g1(GateKind::Ry, 1, 0.8),
            BoundGate::two(GateKind::Cx, 0, 2, 0.0),
        ];
        for lambda in [0.0, 0.02, 0.3, 1.0] {
            let mut a = DensityMatrix::zero_state(3);
            let mut b = DensityMatrix::zero_state(3);
            for g in &gates {
                a.apply_gate(g);
                b.apply_gate(g);
            }
            a.apply_channel(&KrausChannel::depolarizing_1q(lambda), &[1]);
            b.apply_depolarizing_1q(lambda, 1);
            for i in 0..8 {
                for j in 0..8 {
                    assert!(
                        (a.get(i, j) - b.get(i, j)).abs() < 1e-12,
                        "λ={lambda} mismatch at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_depolarizing_2q_matches_kraus_form() {
        let gates = [
            g1(GateKind::H, 0, 0.0),
            BoundGate::two(GateKind::Cry, 0, 1, 1.2),
            g1(GateKind::Rz, 2, 0.4),
        ];
        for lambda in [0.0, 0.05, 0.4, 1.0] {
            let mut a = DensityMatrix::zero_state(3);
            let mut b = DensityMatrix::zero_state(3);
            for g in &gates {
                a.apply_gate(g);
                b.apply_gate(g);
            }
            a.apply_channel(&KrausChannel::depolarizing_2q(lambda), &[0, 2]);
            b.apply_depolarizing_2q(lambda, 0, 2);
            for i in 0..8 {
                for j in 0..8 {
                    assert!(
                        (a.get(i, j) - b.get(i, j)).abs() < 1e-12,
                        "λ={lambda} mismatch at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn channel_qubit_count_checked() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_channel(&KrausChannel::depolarizing_1q(0.1), &[0, 1]);
    }
}

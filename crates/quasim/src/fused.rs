//! Fused density-matrix programs: runs of operations sharing a one- or
//! two-qubit support, executed block-by-block in a single pass over `ρ`.
//!
//! # Why fusion helps
//!
//! Every unitary conjugation `ρ → UρU†` and every closed-form depolarising
//! channel touches all `D²` entries of the density matrix, but a one-qubit
//! op only *couples* entries within `2×2` blocks (rows/columns paired along
//! the qubit's bit), and a two-qubit op within `4×4` blocks. A fused
//! [`Segment`] — a run of consecutive operations sharing one support, such
//! as a native gate followed by its calibration-noise channel, or a string
//! of encoding rotations on one wire — loads each block into registers
//! **once**, applies every atom in order, and stores it back: one memory
//! pass for the whole run. Matrices are *prebound* when the program is
//! built (fixed gates once per process, see
//! [`crate::gate::GateKind::fixed_entries_1q`]) and classified
//! ([`MatClass`]) so the kernels can use cheaper conjugation paths, and
//! the blocked kernels exploit `ρ`'s Hermitian symmetry (see
//! `quasim::density::kernels`).
//!
//! # Bit-identity
//!
//! Fused execution is **bit-identical** to applying the same operations
//! one by one through [`crate::density::DensityMatrix`]: atoms are never
//! reordered, segments only group *consecutive* ops with the **same**
//! support — so every atom sees exactly the triangle geometry and scalar
//! expression sequence of its standalone kernel — and prebinding changes
//! no bits because binding is a pure function of the gate.
//!
//! Programs are built with [`ProgramBuilder`] (usually via the
//! `transpile::fuse` pass) and executed with
//! [`crate::density::SimWorkspace::run`] or
//! [`crate::density::DensityMatrix::apply_fused`].

use crate::density::kernels;
use crate::math::Complex64;
pub use crate::math::{M2, M4};

/// Structural class of a 2×2 matrix, detected once at program build time
/// so the kernels can use specialised conjugation paths (real matrices —
/// `RY`, `H`, Paulis — and diagonal matrices — `RZ`, phases — dominate the
/// transpiled circuits and cost roughly half the arithmetic of the general
/// path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatClass {
    /// No exploitable structure.
    General,
    /// All entries have zero imaginary part.
    Real,
    /// Off-diagonal entries are exactly zero.
    Diagonal,
}

/// Classifies a 2×2 matrix for kernel specialisation.
pub fn classify2(m: &M2) -> MatClass {
    if m.iter().all(|z| z.im == 0.0) {
        MatClass::Real
    } else if m[1] == Complex64::ZERO && m[2] == Complex64::ZERO {
        MatClass::Diagonal
    } else {
        MatClass::General
    }
}

/// Which wire of a segment's support an atom acts on (`A` is the first /
/// most significant local bit, matching the two-qubit matrix convention of
/// [`crate::gate::GateKind::matrix`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wire {
    /// The segment's first support qubit.
    A,
    /// The segment's second support qubit.
    B,
}

/// One fusible operation inside a segment.
///
/// Matrix payloads are indices into the program's prebound matrix tables,
/// keeping atoms small and `Copy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusedAtom {
    /// 2×2 unitary conjugation (one-qubit segments only).
    Unitary1 {
        /// Index into the program's 2×2 matrix table.
        m2: u32,
        /// Structural class of the matrix (detected at build time).
        class: MatClass,
    },
    /// Closed-form one-qubit depolarising channel (`λ` pre-clamped,
    /// non-zero; one-qubit segments only).
    Depol1 {
        /// Depolarising strength in `(0, 1]`.
        lambda: f64,
    },
    /// CNOT with the given control wire (target is the other wire).
    Cx {
        /// Control wire.
        control: Wire,
    },
    /// 4×4 unitary conjugation on both wires.
    Unitary2 {
        /// Index into the program's 4×4 matrix table.
        m4: u32,
        /// Whether the atom's own qubit order is `(B, A)` rather than the
        /// segment's `(A, B)`.
        swapped: bool,
    },
    /// Closed-form two-qubit depolarising channel (`λ` pre-clamped,
    /// non-zero).
    Depol2 {
        /// Depolarising strength in `(0, 1]`.
        lambda: f64,
        /// Whether the atom's own qubit order is `(B, A)`.
        swapped: bool,
    },
}

/// A segment's qubit support.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Support {
    /// All atoms act on this single qubit.
    One(usize),
    /// Atoms act within this ordered qubit pair (first = wire `A`).
    Two(usize, usize),
}

/// A maximal run of consecutive atoms sharing a support.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    pub(crate) support: Support,
    pub(crate) atoms: std::ops::Range<usize>,
}

impl Segment {
    /// The segment's support.
    pub fn support(&self) -> Support {
        self.support
    }

    /// Number of fused atoms in this segment.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the segment is empty (never produced by the builder).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The segment's atom index range within the program's atom table.
    pub fn atom_range(&self) -> std::ops::Range<usize> {
        self.atoms.clone()
    }
}

/// A compiled, prebound, fusion-grouped density-matrix program.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedProgram {
    pub(crate) n_qubits: usize,
    pub(crate) segments: Vec<Segment>,
    pub(crate) atoms: Vec<FusedAtom>,
    pub(crate) m2s: Vec<M2>,
    pub(crate) m4s: Vec<M4>,
    /// Provenance of precomposed `m2s` entries: `(table index, factors in
    /// application order)`. Empty unless [`FusedProgram::precompose`] built
    /// this program; lets [`crate::verify`] re-derive each product.
    pub(crate) composed2: Vec<(u32, Vec<M2>)>,
    /// Provenance of precomposed `m4s` entries (factors normalised to the
    /// segment's `(A, B)` wire order before composition).
    pub(crate) composed4: Vec<(u32, Vec<M4>)>,
}

impl FusedProgram {
    /// Number of qubits the program addresses.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The fused segments in execution order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total number of atoms across all segments.
    pub fn n_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// The atoms of one segment, in execution order (for alternative
    /// execution engines such as [`crate::trajectory`]).
    pub fn atoms_in(&self, seg: &Segment) -> &[FusedAtom] {
        &self.atoms[seg.atoms.clone()]
    }

    /// Prebound 2×2 matrix referenced by a [`FusedAtom::Unitary1`].
    pub fn m2(&self, idx: u32) -> &M2 {
        &self.m2s[idx as usize]
    }

    /// Prebound 4×4 matrix referenced by a [`FusedAtom::Unitary2`].
    pub fn m4(&self, idx: u32) -> &M4 {
        &self.m4s[idx as usize]
    }

    /// Number of prebound 2×2 matrices in the program's table.
    pub fn n_m2s(&self) -> usize {
        self.m2s.len()
    }

    /// Number of prebound 4×4 matrices in the program's table.
    pub fn n_m4s(&self) -> usize {
        self.m4s.len()
    }

    /// All atoms in program order (segment boundaries via
    /// [`Segment::atom_range`]).
    pub fn atoms(&self) -> &[FusedAtom] {
        &self.atoms
    }

    /// Provenance of precomposed 2×2 table entries: for each `(idx,
    /// factors)` pair, `m2s[idx]` is exactly `compose2(&factors)`.
    pub fn composed2(&self) -> &[(u32, Vec<M2>)] {
        &self.composed2
    }

    /// Provenance of precomposed 4×4 table entries: for each `(idx,
    /// factors)` pair, `m4s[idx]` is exactly `compose4(&factors)`.
    pub fn composed4(&self) -> &[(u32, Vec<M4>)] {
        &self.composed4
    }

    /// Whether this program was produced by [`FusedProgram::precompose`]
    /// and actually collapsed at least one unitary run.
    pub fn is_precomposed(&self) -> bool {
        !self.composed2.is_empty() || !self.composed4.is_empty()
    }

    /// Whether the program contains no stochastic (noise-channel) atom, so
    /// any unraveling of it is exact in a single pass.
    pub fn is_deterministic(&self) -> bool {
        self.n_stochastic_atoms() == 0
    }

    /// Number of stochastic (noise-channel) atoms.
    ///
    /// Each one consumes exactly one uniform draw per trajectory, so this
    /// is also the per-trajectory RNG budget the batched panel engine
    /// ([`crate::trajectory::TrajectoryPanel`]) pre-draws to replay the
    /// per-trajectory stream bit-exactly.
    pub fn n_stochastic_atoms(&self) -> usize {
        self.atoms
            .iter()
            .filter(|a| matches!(a, FusedAtom::Depol1 { .. } | FusedAtom::Depol2 { .. }))
            .count()
    }

    /// Executes the program in place on flat row-major storage of dimension
    /// `dim = 2^n_qubits`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != dim * dim` with `dim = 2^n_qubits`.
    pub fn run_on(&self, data: &mut [Complex64]) {
        let dim = 1usize << self.n_qubits;
        assert_eq!(data.len(), dim * dim, "storage size mismatch");
        for seg in &self.segments {
            let atoms = &self.atoms[seg.atoms.clone()];
            match seg.support {
                Support::One(q) => run_1q_segment(data, dim, q, atoms, &self.m2s),
                Support::Two(a, b) => run_2q_segment(data, dim, a, b, atoms, &self.m4s),
            }
        }
    }

    /// Returns a copy of the program with every run of two or more
    /// consecutive unitary atoms collapsed into a single precomposed
    /// matrix, so a trajectory pass applies one matrix where it used to
    /// apply several.
    ///
    /// Swapped 4×4 factors are first reoriented ([`reorient4`]) to the
    /// segment's `(A, B)` wire order, so the composed atom always carries
    /// `swapped = false`. Stochastic atoms and CNOTs are never touched or
    /// reordered, which keeps the per-trajectory RNG stream aligned with
    /// the source program. Factor provenance is recorded in
    /// [`FusedProgram::composed2`] / [`FusedProgram::composed4`] so the
    /// static verifier can re-derive every product bit-exactly.
    ///
    /// Composition changes the floating-point rounding of the affected
    /// amplitudes, so the result is numerically equivalent but **not**
    /// bit-identical to the source program — the density path (whose
    /// fused-vs-unfused bit-identity is pinned) never precomposes; the
    /// trajectory engines both run the same precomposed program, so their
    /// mutual bit-identity contract is unaffected.
    pub fn precompose(&self) -> FusedProgram {
        let mut segments = Vec::with_capacity(self.segments.len());
        let mut atoms = Vec::with_capacity(self.atoms.len());
        let mut m2s = Vec::new();
        let mut m4s = Vec::new();
        let mut composed2 = Vec::new();
        let mut composed4 = Vec::new();
        for seg in &self.segments {
            let start = atoms.len();
            let seg_atoms = self.atoms_in(seg);
            let mut i = 0;
            while i < seg_atoms.len() {
                match seg_atoms[i] {
                    FusedAtom::Unitary1 { m2, .. } => {
                        let mut factors = vec![self.m2s[m2 as usize]];
                        let mut j = i + 1;
                        while let Some(&FusedAtom::Unitary1 { m2, .. }) = seg_atoms.get(j) {
                            factors.push(self.m2s[m2 as usize]);
                            j += 1;
                        }
                        let idx = m2s.len() as u32;
                        let m = if factors.len() > 1 {
                            let product = compose2(&factors);
                            composed2.push((idx, factors));
                            product
                        } else {
                            factors[0]
                        };
                        m2s.push(m);
                        atoms.push(FusedAtom::Unitary1 {
                            m2: idx,
                            class: classify2(&m),
                        });
                        i = j;
                    }
                    FusedAtom::Unitary2 { m4, swapped } => {
                        let mut run = vec![(m4, swapped)];
                        let mut j = i + 1;
                        while let Some(&FusedAtom::Unitary2 { m4, swapped }) = seg_atoms.get(j) {
                            run.push((m4, swapped));
                            j += 1;
                        }
                        let idx = m4s.len() as u32;
                        if run.len() > 1 {
                            let factors: Vec<M4> = run
                                .iter()
                                .map(|&(m, sw)| {
                                    let mat = self.m4s[m as usize];
                                    if sw {
                                        reorient4(&mat)
                                    } else {
                                        mat
                                    }
                                })
                                .collect();
                            m4s.push(compose4(&factors));
                            composed4.push((idx, factors));
                            atoms.push(FusedAtom::Unitary2 {
                                m4: idx,
                                swapped: false,
                            });
                        } else {
                            m4s.push(self.m4s[run[0].0 as usize]);
                            atoms.push(FusedAtom::Unitary2 {
                                m4: idx,
                                swapped: run[0].1,
                            });
                        }
                        i = j;
                    }
                    atom => {
                        atoms.push(atom);
                        i += 1;
                    }
                }
            }
            segments.push(Segment {
                support: seg.support,
                atoms: start..atoms.len(),
            });
        }
        let program = FusedProgram {
            n_qubits: self.n_qubits,
            segments,
            atoms,
            m2s,
            m4s,
            composed2,
            composed4,
        };
        debug_assert!(
            crate::verify::verify_program(&program).is_ok(),
            "precompose produced an invalid program: {}",
            crate::verify::verify_program(&program).unwrap_err()
        );
        program
    }
}

/// Row-major product `lhs · rhs` of two 2×2 complex matrices, each entry
/// accumulated in ascending `k` order — the verifier re-derives composed
/// products with this exact expression, so the order is part of the
/// contract.
pub fn matmul2(lhs: &M2, rhs: &M2) -> M2 {
    let mut out = [Complex64::ZERO; 4];
    for r in 0..2 {
        for c in 0..2 {
            let mut acc = Complex64::ZERO;
            for k in 0..2 {
                acc += lhs[r * 2 + k] * rhs[k * 2 + c];
            }
            out[r * 2 + c] = acc;
        }
    }
    out
}

/// Row-major product `lhs · rhs` of two 4×4 complex matrices (same
/// accumulation-order contract as [`matmul2`]).
pub fn matmul4(lhs: &M4, rhs: &M4) -> M4 {
    let mut out = [Complex64::ZERO; 16];
    for r in 0..4 {
        for c in 0..4 {
            let mut acc = Complex64::ZERO;
            for k in 0..4 {
                acc += lhs[r * 4 + k] * rhs[k * 4 + c];
            }
            out[r * 4 + c] = acc;
        }
    }
    out
}

/// Composes 2×2 factors given in **application order** (`factors[0]`
/// applied first), producing `f_{n-1} · … · f_1 · f_0` by left-multiplying
/// one factor at a time.
///
/// # Panics
///
/// Panics if `factors` is empty.
pub fn compose2(factors: &[M2]) -> M2 {
    factors
        .iter()
        .skip(1)
        .fold(factors[0], |acc, f| matmul2(f, &acc))
}

/// Composes 4×4 factors given in application order (see [`compose2`]).
///
/// # Panics
///
/// Panics if `factors` is empty.
pub fn compose4(factors: &[M4]) -> M4 {
    factors
        .iter()
        .skip(1)
        .fold(factors[0], |acc, f| matmul4(f, &acc))
}

/// Re-expresses a 4×4 matrix given in `(B, A)` qubit order in `(A, B)`
/// order by conjugating with the two-qubit SWAP permutation: entry
/// `(r, c)` moves to `(P[r], P[c])` with `P = [0, 2, 1, 3]`.
pub fn reorient4(m: &M4) -> M4 {
    const P: [usize; 4] = [0, 2, 1, 3];
    let mut out = [Complex64::ZERO; 16];
    for r in 0..4 {
        for c in 0..4 {
            out[r * 4 + c] = m[P[r] * 4 + P[c]];
        }
    }
    out
}

/// Incremental builder performing the greedy fusion grouping.
///
/// Operations pushed in program order are appended to the currently open
/// segment when their support equals the segment's (two-qubit pairs match
/// in either order); any support change flushes the segment and opens a
/// new one. Atoms are never reordered, so execution is bit-identical to
/// the unfused sequence.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    n_qubits: usize,
    segments: Vec<Segment>,
    atoms: Vec<FusedAtom>,
    m2s: Vec<M2>,
    m4s: Vec<M4>,
    open: Option<(Support, usize)>,
}

impl ProgramBuilder {
    /// Creates a builder for `n_qubits`.
    ///
    /// The cap matches the trajectory engine's
    /// [`crate::trajectory::MAX_TRAJECTORY_QUBITS`]: a program is just an
    /// instruction stream, so it can address registers far beyond what the
    /// dense density-matrix engine (capped at
    /// [`crate::density::MAX_DENSITY_QUBITS`]) can execute.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is 0 or greater than 24.
    pub fn new(n_qubits: usize) -> Self {
        assert!(
            (1..=crate::trajectory::MAX_TRAJECTORY_QUBITS).contains(&n_qubits),
            "unsupported qubit count"
        );
        ProgramBuilder {
            n_qubits,
            segments: Vec::new(),
            atoms: Vec::new(),
            m2s: Vec::new(),
            m4s: Vec::new(),
            open: None,
        }
    }

    fn flush(&mut self) {
        if let Some((support, start)) = self.open.take() {
            if start < self.atoms.len() {
                self.segments.push(Segment {
                    support,
                    atoms: start..self.atoms.len(),
                });
            }
        }
    }

    /// Ensures the open segment is exactly the one-qubit support `{q}`.
    ///
    /// Fusion only ever groups operations with the **same** support: a run
    /// executes block-by-block with the support's own triangle geometry,
    /// which keeps the fused result bit-identical to op-by-op execution.
    /// (Nesting a one-qubit op into a two-qubit segment would change which
    /// Hermitian mirror elements are derived versus computed, and with it
    /// the low-order bits.)
    fn align_one(&mut self, q: usize) {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        match self.open {
            Some((Support::One(a), _)) if a == q => {}
            _ => {
                self.flush();
                self.open = Some((Support::One(q), self.atoms.len()));
            }
        }
    }

    /// Ensures the open segment covers exactly the unordered pair
    /// `{x, y}`; returns whether `(x, y)` is swapped relative to the
    /// segment's support order.
    fn align_two(&mut self, x: usize, y: usize) -> bool {
        assert!(x < self.n_qubits && y < self.n_qubits, "qubit out of range");
        assert_ne!(x, y, "qubits must be distinct");
        match self.open {
            Some((Support::Two(a, b), _)) if (a, b) == (x, y) => false,
            Some((Support::Two(a, b), _)) if (a, b) == (y, x) => true,
            _ => {
                self.flush();
                self.open = Some((Support::Two(x, y), self.atoms.len()));
                false
            }
        }
    }

    /// Appends a prebound 2×2 unitary on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn unitary_1q(&mut self, q: usize, m: M2) {
        self.align_one(q);
        let class = classify2(&m);
        let m2 = self.m2s.len() as u32;
        self.m2s.push(m);
        self.atoms.push(FusedAtom::Unitary1 { m2, class });
    }

    /// Appends a one-qubit depolarising channel on `q` (`λ` clamped to
    /// `[0, 1]`; a resulting `λ = 0` is an exact no-op and is dropped).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn depolarize_1q(&mut self, q: usize, lambda: f64) {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let l = lambda.clamp(0.0, 1.0);
        if l == 0.0 {
            return;
        }
        self.align_one(q);
        self.atoms.push(FusedAtom::Depol1 { lambda: l });
    }

    /// Appends a CNOT.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or equal.
    pub fn cx(&mut self, control: usize, target: usize) {
        let swapped = self.align_two(control, target);
        self.atoms.push(FusedAtom::Cx {
            control: if swapped { Wire::B } else { Wire::A },
        });
    }

    /// Appends a prebound 4×4 unitary on the ordered pair
    /// `(first, second)`; `first` is the most significant local bit.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or equal.
    pub fn unitary_2q(&mut self, first: usize, second: usize, m: M4) {
        let swapped = self.align_two(first, second);
        let m4 = self.m4s.len() as u32;
        self.m4s.push(m);
        self.atoms.push(FusedAtom::Unitary2 { m4, swapped });
    }

    /// Appends a two-qubit depolarising channel (`λ` clamped; `λ = 0`
    /// dropped as an exact no-op).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or equal.
    pub fn depolarize_2q(&mut self, lambda: f64, first: usize, second: usize) {
        assert!(
            first < self.n_qubits && second < self.n_qubits,
            "qubit out of range"
        );
        assert_ne!(first, second, "qubits must be distinct");
        let l = lambda.clamp(0.0, 1.0);
        if l == 0.0 {
            return;
        }
        let swapped = self.align_two(first, second);
        self.atoms.push(FusedAtom::Depol2 { lambda: l, swapped });
    }

    /// Finalises the program.
    pub fn finish(mut self) -> FusedProgram {
        self.flush();
        let program = FusedProgram {
            n_qubits: self.n_qubits,
            segments: self.segments,
            atoms: self.atoms,
            m2s: self.m2s,
            m4s: self.m4s,
            composed2: Vec::new(),
            composed4: Vec::new(),
        };
        // Compile-boundary invariant check: every program leaving the
        // builder satisfies the full IR contract (debug/test builds only;
        // release builds rely on `verify_program` being run explicitly).
        debug_assert!(
            crate::verify::verify_program(&program).is_ok(),
            "builder produced an invalid program: {}",
            crate::verify::verify_program(&program).unwrap_err()
        );
        program
    }
}

/// Canonical-index map for an atom's own quartet order: identity when the
/// atom's qubit order matches the segment support, bit-swap otherwise.
#[inline]
fn quartet_map(swapped: bool) -> [usize; 4] {
    if swapped {
        [0, 2, 1, 3]
    } else {
        [0, 1, 2, 3]
    }
}

/// Applies a chain of one-qubit atoms to a 2×2 block in registers.
#[inline(always)]
fn chain_1q(mut blk: [Complex64; 4], atoms: &[FusedAtom], m2s: &[M2]) -> [Complex64; 4] {
    for atom in atoms {
        match *atom {
            FusedAtom::Unitary1 { m2, class } => {
                blk = kernels::conj2(blk, &m2s[m2 as usize], class);
            }
            FusedAtom::Depol1 { lambda } => blk = kernels::depol1(blk, lambda),
            _ => unreachable!("two-qubit atom in one-qubit segment"),
        }
    }
    blk
}

/// Single pass applying a run of one-qubit atoms on qubit `q` over the
/// upper block triangle of `ρ`, mirroring the lower half (Hermitian
/// symmetry; same walk and helpers as `quasim::density::kernels`).
fn run_1q_segment(data: &mut [Complex64], dim: usize, q: usize, atoms: &[FusedAtom], m2s: &[M2]) {
    let mask = 1usize << q;
    let half = dim >> 1;
    for rk in 0..half {
        let r0 = kernels::insert_zero_bit(rk, mask);
        let r1 = r0 | mask;
        let (base0, base1) = (r0 * dim, r1 * dim);
        // Diagonal block.
        let blk = chain_1q(kernels::load2(data, base0, base1, r0, r1), atoms, m2s);
        kernels::store2(data, base0, base1, r0, r1, blk);
        for ck in rk + 1..half {
            let c0 = kernels::insert_zero_bit(ck, mask);
            let c1 = c0 | mask;
            let blk = chain_1q(kernels::load2(data, base0, base1, c0, c1), atoms, m2s);
            kernels::store2(data, base0, base1, c0, c1, blk);
            kernels::store2_mirror(data, dim, r0, r1, c0, c1, blk);
        }
    }
}

/// Applies a chain of two-qubit atoms to a 4×4 block in registers.
#[inline(always)]
fn chain_2q(blk: &mut [Complex64; 16], atoms: &[FusedAtom], m4s: &[M4]) {
    for atom in atoms {
        match *atom {
            FusedAtom::Cx { control } => {
                kernels::cx_block(blk, control == Wire::A);
            }
            FusedAtom::Unitary2 { m4, swapped } => {
                kernels::conj4(blk, &m4s[m4 as usize], quartet_map(swapped));
            }
            FusedAtom::Depol2 { lambda, swapped } => {
                kernels::depol2(blk, lambda, quartet_map(swapped));
            }
            _ => unreachable!("one-qubit atom in two-qubit segment"),
        }
    }
}

/// Single pass applying a run of atoms supported on the qubit pair
/// `(a, b)` over the upper block triangle of `ρ`, mirroring the lower
/// half. `a` is the most significant local bit of the 4×4 blocks.
fn run_2q_segment(
    data: &mut [Complex64],
    dim: usize,
    a: usize,
    b: usize,
    atoms: &[FusedAtom],
    m4s: &[M4],
) {
    let ma = 1usize << a;
    let mb = 1usize << b;
    let (m_lo, m_hi) = if ma < mb { (ma, mb) } else { (mb, ma) };
    let quarter = dim >> 2;
    for rk in 0..quarter {
        let i = kernels::insert_zero_bit(kernels::insert_zero_bit(rk, m_lo), m_hi);
        let ridx = [i, i | mb, i | ma, i | ma | mb];
        let rows = ridx.map(|r| r * dim);
        for ck in rk..quarter {
            let j = kernels::insert_zero_bit(kernels::insert_zero_bit(ck, m_lo), m_hi);
            let cols = [j, j | mb, j | ma, j | ma | mb];
            let mut blk = kernels::load4(data, &rows, &cols);
            chain_2q(&mut blk, atoms, m4s);
            kernels::store4(data, &rows, &cols, &blk);
            if ck > rk {
                kernels::store4_mirror(data, dim, &ridx, &cols, &blk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::DensityMatrix;
    use crate::gate::{BoundGate, GateKind};

    fn assert_rho_bits_eq(a: &DensityMatrix, b: &DensityMatrix) {
        for i in 0..a.dim() {
            for j in 0..a.dim() {
                let (x, y) = (a.get(i, j), b.get(i, j));
                assert!(
                    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                    "ρ[{i},{j}] differs: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn builder_groups_consecutive_same_wire_ops() {
        let mut b = ProgramBuilder::new(3);
        b.unitary_1q(0, GateKind::H.matrix(0.0).to_2x2().unwrap());
        b.depolarize_1q(0, 0.1);
        b.unitary_1q(0, GateKind::Ry.matrix(0.4).to_2x2().unwrap());
        b.unitary_1q(1, GateKind::H.matrix(0.0).to_2x2().unwrap());
        let p = b.finish();
        assert_eq!(p.segments().len(), 2);
        assert_eq!(p.segments()[0].len(), 3);
        assert_eq!(p.segments()[0].support(), Support::One(0));
        assert_eq!(p.segments()[1].support(), Support::One(1));
    }

    #[test]
    fn builder_fuses_gate_with_its_channel() {
        let mut b = ProgramBuilder::new(3);
        b.unitary_1q(1, GateKind::H.matrix(0.0).to_2x2().unwrap());
        b.cx(0, 1);
        b.depolarize_2q(0.05, 0, 1); // fuses with the CX (same pair)
        b.cx(1, 0);
        b.depolarize_2q(0.05, 1, 0); // reversed order still fuses
        b.unitary_1q(0, GateKind::X.matrix(0.0).to_2x2().unwrap());
        let p = b.finish();
        assert_eq!(p.segments().len(), 3);
        assert_eq!(p.segments()[0].support(), Support::One(1));
        assert_eq!(p.segments()[1].support(), Support::Two(0, 1));
        assert_eq!(p.segments()[1].len(), 4);
        assert_eq!(p.segments()[2].support(), Support::One(0));
        assert_eq!(p.n_atoms(), 6);
    }

    #[test]
    fn zero_lambda_channels_are_dropped() {
        let mut b = ProgramBuilder::new(2);
        b.depolarize_1q(0, 0.0);
        b.depolarize_2q(-3.0, 0, 1); // clamps to 0
        let p = b.finish();
        assert_eq!(p.n_atoms(), 0);
        assert!(p.segments().is_empty());
    }

    #[test]
    fn fused_cry_decomposition_matches_unfused_bits() {
        // The native expansion of a noisy CRY: CX · dep2 · RY(−θ/2) · dep1 ·
        // CX · dep2 · RY(θ/2) · dep1 — one fused segment, bit-identical to
        // the DensityMatrix op-by-op path.
        let theta: f64 = 1.234;
        let prep = [
            BoundGate::one(GateKind::H, 0, 0.0),
            BoundGate::one(GateKind::Ry, 1, 0.8),
            BoundGate::one(GateKind::Rz, 2, -0.3),
        ];

        let mut reference = DensityMatrix::zero_state(3);
        for g in &prep {
            reference.apply_gate(g);
        }
        reference.apply_cx(0, 1);
        reference.apply_depolarizing_2q(0.04, 0, 1);
        reference.apply_unitary_1q(&GateKind::Ry.matrix(-theta / 2.0), 1);
        reference.apply_depolarizing_1q(0.01, 1);
        reference.apply_cx(0, 1);
        reference.apply_depolarizing_2q(0.04, 0, 1);
        reference.apply_unitary_1q(&GateKind::Ry.matrix(theta / 2.0), 1);
        reference.apply_depolarizing_1q(0.01, 1);

        let mut b = ProgramBuilder::new(3);
        for g in &prep {
            b.unitary_1q(g.qubits()[0], g.matrix().to_2x2().unwrap());
        }
        b.cx(0, 1);
        b.depolarize_2q(0.04, 0, 1);
        b.unitary_1q(1, GateKind::Ry.matrix(-theta / 2.0).to_2x2().unwrap());
        b.depolarize_1q(1, 0.01);
        b.cx(0, 1);
        b.depolarize_2q(0.04, 0, 1);
        b.unitary_1q(1, GateKind::Ry.matrix(theta / 2.0).to_2x2().unwrap());
        b.depolarize_1q(1, 0.01);
        let p = b.finish();
        // Each CX fuses with its following channel, each rotation with its
        // channel; the prep is three 1q segments.
        assert_eq!(p.segments().len(), 7);

        let mut fused = DensityMatrix::zero_state(3);
        fused.apply_fused(&p);
        assert_rho_bits_eq(&fused, &reference);
    }

    #[test]
    fn swapped_2q_atoms_match_unfused_bits() {
        let u = GateKind::Crz.matrix(0.9);
        let mut reference = DensityMatrix::zero_state(3);
        reference.apply_unitary_1q(&GateKind::H.matrix(0.0), 0);
        reference.apply_unitary_1q(&GateKind::H.matrix(0.0), 2);
        reference.apply_unitary_2q(&u, 0, 2);
        reference.apply_unitary_2q(&u, 2, 0);
        reference.apply_depolarizing_2q(0.07, 2, 0);

        let mut b = ProgramBuilder::new(3);
        b.unitary_1q(0, GateKind::H.matrix(0.0).to_2x2().unwrap());
        b.unitary_1q(2, GateKind::H.matrix(0.0).to_2x2().unwrap());
        b.unitary_2q(0, 2, u.to_4x4().unwrap());
        b.unitary_2q(2, 0, u.to_4x4().unwrap());
        b.depolarize_2q(0.07, 2, 0);
        let p = b.finish();
        // H(0) and H(2) are separate 1q runs; all three 2q ops share the
        // unordered pair {0, 2} and fuse, the reversed ones via `swapped`.
        assert_eq!(p.segments().len(), 3);

        let mut fused = DensityMatrix::zero_state(3);
        fused.apply_fused(&p);
        assert_rho_bits_eq(&fused, &reference);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_bad_qubit() {
        let mut b = ProgramBuilder::new(2);
        b.unitary_1q(5, [Complex64::ONE; 4]);
    }

    fn assert_m_bits_eq(a: &[Complex64], b: &[Complex64]) {
        for (x, y) in a.iter().zip(b) {
            assert!(
                x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                "matrix entries differ: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matmul_and_compose_follow_application_order() {
        let h = GateKind::H.matrix(0.0).to_2x2().unwrap();
        let rz = GateKind::Rz.matrix(0.7).to_2x2().unwrap();
        // "Apply H, then Rz" composes to the product Rz · H.
        assert_m_bits_eq(&compose2(&[h, rz]), &matmul2(&rz, &h));
        assert_m_bits_eq(&compose2(&[h]), &h);
        let crz = GateKind::Crz.matrix(0.9).to_4x4().unwrap();
        let cry = GateKind::Cry.matrix(0.4).to_4x4().unwrap();
        assert_m_bits_eq(&compose4(&[crz, cry]), &matmul4(&cry, &crz));
        // Reorientation is an involutive permutation of the entries.
        assert_m_bits_eq(&reorient4(&reorient4(&crz)), &crz);
    }

    #[test]
    fn precompose_collapses_runs_and_records_provenance() {
        let mut b = ProgramBuilder::new(2);
        b.unitary_1q(0, GateKind::H.matrix(0.0).to_2x2().unwrap());
        b.unitary_1q(0, GateKind::Rz.matrix(0.7).to_2x2().unwrap());
        b.unitary_1q(0, GateKind::Ry.matrix(-0.3).to_2x2().unwrap());
        b.depolarize_1q(0, 0.02);
        b.unitary_1q(0, GateKind::X.matrix(0.0).to_2x2().unwrap());
        b.unitary_2q(0, 1, GateKind::Crz.matrix(0.9).to_4x4().unwrap());
        b.unitary_2q(1, 0, GateKind::Cry.matrix(0.4).to_4x4().unwrap());
        b.depolarize_2q(0.05, 0, 1);
        let p = b.finish();
        assert!(!p.is_precomposed());

        let pc = p.precompose();
        assert!(pc.is_precomposed());
        assert_eq!(pc.segments().len(), p.segments().len());
        // q0 run of 3 → 1 composed atom; lone X and the channels survive.
        assert_eq!(pc.n_atoms(), 5);
        assert_eq!(pc.n_stochastic_atoms(), p.n_stochastic_atoms());
        assert_eq!(pc.composed2().len(), 1);
        assert_eq!(pc.composed2()[0].1.len(), 3);
        assert_eq!(pc.composed4().len(), 1);
        assert_eq!(pc.composed4()[0].1.len(), 2);
        // Products are re-derivable bit-exactly from the recorded factors.
        let (idx2, f2) = &pc.composed2()[0];
        assert_m_bits_eq(pc.m2(*idx2), &compose2(f2));
        let (idx4, f4) = &pc.composed4()[0];
        assert_m_bits_eq(pc.m4(*idx4), &compose4(f4));
        // The swapped factor was reoriented, so the composed atom is
        // expressed in the segment's own (A, B) order.
        let composed_atom = pc
            .atoms()
            .iter()
            .find(|a| matches!(a, FusedAtom::Unitary2 { .. }))
            .unwrap();
        assert!(matches!(
            composed_atom,
            FusedAtom::Unitary2 { swapped: false, .. }
        ));
        assert!(crate::verify::verify_program(&pc).is_ok());
    }

    #[test]
    fn precomposed_program_is_numerically_equivalent() {
        let mut b = ProgramBuilder::new(3);
        b.unitary_1q(0, GateKind::H.matrix(0.0).to_2x2().unwrap());
        b.unitary_1q(0, GateKind::Rz.matrix(0.7).to_2x2().unwrap());
        b.cx(0, 1);
        b.unitary_2q(0, 1, GateKind::Crz.matrix(0.9).to_4x4().unwrap());
        b.unitary_2q(1, 0, GateKind::Cry.matrix(0.4).to_4x4().unwrap());
        b.depolarize_2q(0.05, 0, 1);
        b.unitary_1q(2, GateKind::Ry.matrix(0.8).to_2x2().unwrap());
        b.unitary_1q(2, GateKind::Rz.matrix(-0.2).to_2x2().unwrap());
        let p = b.finish();
        let pc = p.precompose();

        let mut plain = DensityMatrix::zero_state(3);
        plain.apply_fused(&p);
        let mut pre = DensityMatrix::zero_state(3);
        pre.apply_fused(&pc);
        for i in 0..plain.dim() {
            for j in 0..plain.dim() {
                let (x, y) = (plain.get(i, j), pre.get(i, j));
                assert!(
                    (x.re - y.re).abs() < 1e-12 && (x.im - y.im).abs() < 1e-12,
                    "ρ[{i},{j}] diverged: {x} vs {y}"
                );
            }
        }
    }
}

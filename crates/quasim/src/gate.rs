//! Quantum gate definitions and their unitary matrices.
//!
//! [`GateKind`] enumerates the gate alphabet used throughout the workspace:
//! the fixed Cliffords/phases that appear after transpilation, the
//! parameterised rotations that carry QNN weights, and the controlled
//! rotations from the paper's VQC block (`4RY + 4CRY + ...`).

use crate::math::{CMatrix, Complex64, M2, M4};
use std::sync::OnceLock;

/// The gate alphabet.
///
/// Parameterised kinds (`Rx`, `Ry`, `Rz`, `Crx`, `Cry`, `Crz`, `Phase`)
/// take one rotation angle; the rest are fixed.
///
/// # Examples
///
/// ```
/// use quasim::gate::GateKind;
///
/// assert_eq!(GateKind::Cry.arity(), 2);
/// assert!(GateKind::Ry.is_parameterised());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = diag(1, i).
    S,
    /// T gate = diag(1, e^{iπ/4}).
    T,
    /// Square root of X (√X), a common hardware basis gate.
    Sx,
    /// Rotation about X by θ.
    Rx,
    /// Rotation about Y by θ.
    Ry,
    /// Rotation about Z by θ.
    Rz,
    /// Phase rotation diag(1, e^{iθ}).
    Phase,
    /// Controlled-X (CNOT).
    Cx,
    /// Controlled-Z.
    Cz,
    /// Controlled rotation about X.
    Crx,
    /// Controlled rotation about Y.
    Cry,
    /// Controlled rotation about Z.
    Crz,
    /// Swap of two qubits.
    Swap,
}

impl GateKind {
    /// Number of qubits the gate acts on (1 or 2).
    pub fn arity(self) -> usize {
        match self {
            GateKind::X
            | GateKind::Y
            | GateKind::Z
            | GateKind::H
            | GateKind::S
            | GateKind::T
            | GateKind::Sx
            | GateKind::Rx
            | GateKind::Ry
            | GateKind::Rz
            | GateKind::Phase => 1,
            GateKind::Cx
            | GateKind::Cz
            | GateKind::Crx
            | GateKind::Cry
            | GateKind::Crz
            | GateKind::Swap => 2,
        }
    }

    /// Whether the gate takes a rotation angle.
    pub fn is_parameterised(self) -> bool {
        matches!(
            self,
            GateKind::Rx
                | GateKind::Ry
                | GateKind::Rz
                | GateKind::Phase
                | GateKind::Crx
                | GateKind::Cry
                | GateKind::Crz
        )
    }

    /// Short lowercase mnemonic (e.g. `"cry"`), matching common assembly
    /// formats.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateKind::X => "x",
            GateKind::Y => "y",
            GateKind::Z => "z",
            GateKind::H => "h",
            GateKind::S => "s",
            GateKind::T => "t",
            GateKind::Sx => "sx",
            GateKind::Rx => "rx",
            GateKind::Ry => "ry",
            GateKind::Rz => "rz",
            GateKind::Phase => "p",
            GateKind::Cx => "cx",
            GateKind::Cz => "cz",
            GateKind::Crx => "crx",
            GateKind::Cry => "cry",
            GateKind::Crz => "crz",
            GateKind::Swap => "swap",
        }
    }

    /// The unitary matrix of the gate.
    ///
    /// For parameterised kinds, `theta` supplies the rotation angle; it is
    /// ignored for fixed gates. Two-qubit matrices use the convention that
    /// the **first** qubit is the control and occupies the *most significant*
    /// bit of the 2-bit index (row/col index = `control*2 + target`).
    pub fn matrix(self, theta: f64) -> CMatrix {
        match self.arity() {
            1 => CMatrix::from_slice(2, &self.entries_1q(theta).expect("one-qubit kind")),
            _ => CMatrix::from_slice(4, &self.entries_2q(theta).expect("two-qubit kind")),
        }
    }

    /// The 2×2 unitary entries of a one-qubit kind, computed without heap
    /// allocation; `None` for two-qubit kinds. Bit-identical to
    /// [`GateKind::matrix`] (which is built on top of this).
    pub fn entries_1q(self, theta: f64) -> Option<M2> {
        let c = Complex64::real((theta / 2.0).cos());
        let s = (theta / 2.0).sin();
        let isin = Complex64::new(0.0, -s);
        let zero = Complex64::ZERO;
        let one = Complex64::ONE;
        Some(match self {
            GateKind::X => [zero, one, one, zero],
            GateKind::Y => [zero, Complex64::new(0.0, -1.0), Complex64::I, zero],
            GateKind::Z => [one, zero, zero, Complex64::real(-1.0)],
            GateKind::H => {
                let h = 1.0 / 2.0_f64.sqrt();
                [
                    Complex64::real(h),
                    Complex64::real(h),
                    Complex64::real(h),
                    Complex64::real(-h),
                ]
            }
            GateKind::S => [one, zero, zero, Complex64::I],
            GateKind::T => [one, zero, zero, Complex64::cis(std::f64::consts::FRAC_PI_4)],
            GateKind::Sx => {
                let a = Complex64::new(0.5, 0.5);
                let b = Complex64::new(0.5, -0.5);
                [a, b, b, a]
            }
            GateKind::Rx => [c, isin, isin, c],
            GateKind::Ry => [c, Complex64::real(-s), Complex64::real(s), c],
            GateKind::Rz => [
                Complex64::cis(-theta / 2.0),
                zero,
                zero,
                Complex64::cis(theta / 2.0),
            ],
            GateKind::Phase => [one, zero, zero, Complex64::cis(theta)],
            _ => return None,
        })
    }

    /// The 4×4 unitary entries of a two-qubit kind, computed without heap
    /// allocation; `None` for one-qubit kinds. Bit-identical to
    /// [`GateKind::matrix`] (which is built on top of this).
    pub fn entries_2q(self, theta: f64) -> Option<M4> {
        let z = Complex64::ZERO;
        let o = Complex64::ONE;
        Some(match self {
            GateKind::Cx => [
                o, z, z, z, //
                z, o, z, z, //
                z, z, z, o, //
                z, z, o, z,
            ],
            GateKind::Cz => [
                o,
                z,
                z,
                z, //
                z,
                o,
                z,
                z, //
                z,
                z,
                o,
                z, //
                z,
                z,
                z,
                Complex64::real(-1.0),
            ],
            GateKind::Crx | GateKind::Cry | GateKind::Crz => {
                let base = match self {
                    GateKind::Crx => GateKind::Rx,
                    GateKind::Cry => GateKind::Ry,
                    _ => GateKind::Rz,
                }
                .entries_1q(theta)
                .expect("rotation kinds are one-qubit");
                let mut m = [z; 16];
                for i in 0..4 {
                    m[i * 4 + i] = o;
                }
                for i in 0..2 {
                    for j in 0..2 {
                        m[(2 + i) * 4 + (2 + j)] = base[i * 2 + j];
                    }
                }
                m
            }
            GateKind::Swap => [
                o, z, z, z, //
                z, z, o, z, //
                z, o, z, z, //
                z, z, z, o,
            ],
            _ => return None,
        })
    }

    /// Prebound 2×2 entries of the non-parameterised one-qubit kinds,
    /// computed **once per process** and cached. `None` for parameterised
    /// or two-qubit kinds.
    ///
    /// The fusion pass uses this so fixed gates (notably the `H` wraps of
    /// `CRX` decompositions) are bound once instead of re-derived for every
    /// sample's circuit.
    pub fn fixed_entries_1q(self) -> Option<&'static M2> {
        const KINDS: [GateKind; 7] = [
            GateKind::X,
            GateKind::Y,
            GateKind::Z,
            GateKind::H,
            GateKind::S,
            GateKind::T,
            GateKind::Sx,
        ];
        static CACHE: OnceLock<[M2; 7]> = OnceLock::new();
        let idx = KINDS.iter().position(|&k| k == self)?;
        let cache = CACHE.get_or_init(|| KINDS.map(|k| k.entries_1q(0.0).expect("fixed 1q kind")));
        Some(&cache[idx])
    }
}

impl std::fmt::Display for GateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A gate applied to specific qubits with a concrete angle.
///
/// This is the *bound* form consumed by the simulators; symbolic/trainable
/// parameters live in the `transpile` crate's circuit IR.
///
/// # Examples
///
/// ```
/// use quasim::gate::{BoundGate, GateKind};
///
/// let g = BoundGate::two(GateKind::Cry, 0, 1, 0.5);
/// assert_eq!(g.qubits(), &[0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BoundGate {
    kind: GateKind,
    qubits: Vec<usize>,
    theta: f64,
}

impl BoundGate {
    /// Creates a one-qubit bound gate.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a two-qubit gate.
    pub fn one(kind: GateKind, qubit: usize, theta: f64) -> Self {
        assert_eq!(kind.arity(), 1, "{kind} is not a one-qubit gate");
        BoundGate {
            kind,
            qubits: vec![qubit],
            theta,
        }
    }

    /// Creates a two-qubit bound gate. For controlled gates `a` is the
    /// control and `b` the target.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a one-qubit gate or if `a == b`.
    pub fn two(kind: GateKind, a: usize, b: usize, theta: f64) -> Self {
        assert_eq!(kind.arity(), 2, "{kind} is not a two-qubit gate");
        assert_ne!(a, b, "two-qubit gate requires distinct qubits");
        BoundGate {
            kind,
            qubits: vec![a, b],
            theta,
        }
    }

    /// The gate kind.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Target qubit indices (control first for controlled gates).
    pub fn qubits(&self) -> &[usize] {
        &self.qubits
    }

    /// The bound rotation angle (0 for fixed gates).
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The unitary matrix of this bound gate.
    pub fn matrix(&self) -> CMatrix {
        self.kind.matrix(self.theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const ALL: [GateKind; 17] = [
        GateKind::X,
        GateKind::Y,
        GateKind::Z,
        GateKind::H,
        GateKind::S,
        GateKind::T,
        GateKind::Sx,
        GateKind::Rx,
        GateKind::Ry,
        GateKind::Rz,
        GateKind::Phase,
        GateKind::Cx,
        GateKind::Cz,
        GateKind::Crx,
        GateKind::Cry,
        GateKind::Crz,
        GateKind::Swap,
    ];

    #[test]
    fn all_gates_are_unitary() {
        for kind in ALL {
            for &theta in &[0.0, 0.3, PI / 2.0, PI, 4.2] {
                assert!(
                    kind.matrix(theta).is_unitary(1e-12),
                    "{kind} not unitary at theta={theta}"
                );
            }
        }
    }

    #[test]
    fn rotation_at_zero_is_identity() {
        for kind in [GateKind::Rx, GateKind::Ry, GateKind::Rz, GateKind::Phase] {
            let m = kind.matrix(0.0);
            assert!(
                m.max_abs_diff(&CMatrix::identity(2)) < 1e-12,
                "{kind}(0) should be identity"
            );
        }
        for kind in [GateKind::Crx, GateKind::Cry, GateKind::Crz] {
            let m = kind.matrix(0.0);
            assert!(
                m.max_abs_diff(&CMatrix::identity(4)) < 1e-12,
                "{kind}(0) should be identity"
            );
        }
    }

    #[test]
    fn rx_pi_is_minus_i_x() {
        let rx = GateKind::Rx.matrix(PI);
        let minus_ix = GateKind::X.matrix(0.0).scaled(Complex64::new(0.0, -1.0));
        assert!(rx.max_abs_diff(&minus_ix) < 1e-12);
    }

    #[test]
    fn sx_squared_is_x() {
        let sx = GateKind::Sx.matrix(0.0);
        let x = GateKind::X.matrix(0.0);
        assert!(sx.matmul(&sx).max_abs_diff(&x) < 1e-12);
    }

    #[test]
    fn cnot_flips_target_when_control_set() {
        let cx = GateKind::Cx.matrix(0.0);
        // |10> -> |11>: column 2 should have a 1 in row 3.
        assert!(cx[(3, 2)].approx_eq(Complex64::ONE, 1e-12));
        assert!(cx[(2, 3)].approx_eq(Complex64::ONE, 1e-12));
        // |0x> untouched.
        assert!(cx[(0, 0)].approx_eq(Complex64::ONE, 1e-12));
        assert!(cx[(1, 1)].approx_eq(Complex64::ONE, 1e-12));
    }

    #[test]
    fn controlled_rotation_acts_only_on_control_one_block() {
        let cry = GateKind::Cry.matrix(0.7);
        assert!(cry[(0, 0)].approx_eq(Complex64::ONE, 1e-12));
        assert!(cry[(1, 1)].approx_eq(Complex64::ONE, 1e-12));
        assert!(cry[(0, 1)].approx_eq(Complex64::ZERO, 1e-12));
        let ry = GateKind::Ry.matrix(0.7);
        assert!(cry[(2, 2)].approx_eq(ry[(0, 0)], 1e-12));
        assert!(cry[(3, 2)].approx_eq(ry[(1, 0)], 1e-12));
    }

    #[test]
    fn arity_matches_matrix_dim() {
        for kind in ALL {
            let dim = kind.matrix(0.1).dim();
            assert_eq!(dim, 1 << kind.arity());
        }
    }

    #[test]
    #[should_panic(expected = "distinct qubits")]
    fn bound_two_qubit_gate_rejects_equal_qubits() {
        let _ = BoundGate::two(GateKind::Cx, 1, 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "not a one-qubit gate")]
    fn bound_one_rejects_two_qubit_kind() {
        let _ = BoundGate::one(GateKind::Cx, 0, 0.0);
    }
}

//! # quasim — quantum circuit simulation substrate
//!
//! Exact state-vector and density-matrix simulators for the QuCAD
//! reproduction (DAC 2023, arXiv:2304.04666). The crate provides:
//!
//! - [`math`]: complex scalars and small dense matrices (no external numeric
//!   crates);
//! - [`gate`]: the gate alphabet and unitaries, including the controlled
//!   rotations used by the paper's VQC block;
//! - [`statevector`]: noise-free pure-state simulation (the paper's
//!   "perfect environment" `Wp(θ)`);
//! - [`density`]: dense density-matrix simulation with Kraus noise channels
//!   (the noisy environment `Wn(θ)`), built on zero-allocation blocked
//!   kernels and a reusable [`density::SimWorkspace`];
//! - [`fused`]: fused density-matrix programs — runs of operations sharing
//!   a one- or two-qubit support executed in a single pass over `ρ`,
//!   bit-identical to op-by-op application;
//! - [`noise`]: depolarising / flip / damping channels and classical readout
//!   confusion, mirroring Qiskit Aer's calibration-driven device model;
//! - [`trajectory`]: Monte-Carlo wavefunction (quantum-trajectory)
//!   simulation — the same fused programs unraveled into stochastic jumps
//!   on a pure state at O(2^n) per trajectory, unlocking registers beyond
//!   the dense-`ρ` cap (e.g. the 16-qubit `ibm_guadalupe`);
//! - [`verify`]: static IR verification — every structural invariant of a
//!   compiled [`fused::FusedProgram`], its panel supergroup plan, and Kraus
//!   completeness, checked without executing a kernel, plus the seeded
//!   program mutator that proves the checks reject corrupted IR.
//!
//! # Examples
//!
//! Perfect vs. noisy evaluation of a tiny circuit:
//!
//! ```
//! use quasim::gate::{BoundGate, GateKind};
//! use quasim::statevector::run_circuit;
//! use quasim::density::DensityMatrix;
//! use quasim::noise::KrausChannel;
//!
//! let gates = [
//!     BoundGate::one(GateKind::Ry, 0, 1.0),
//!     BoundGate::two(GateKind::Cx, 0, 1, 0.0),
//! ];
//! let ideal = run_circuit(2, &gates);
//!
//! let mut noisy = DensityMatrix::zero_state(2);
//! for g in &gates {
//!     noisy.apply_gate(g);
//!     noisy.apply_channel(&KrausChannel::depolarizing_2q(0.02), &[0, 1]);
//! }
//! assert!(noisy.fidelity_with_pure(&ideal) < 1.0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod density;
pub mod fused;
pub mod gate;
pub mod math;
pub mod noise;
#[cfg(target_arch = "x86_64")]
pub(crate) mod panel_simd;
pub mod statevector;
pub mod trajectory;
pub mod verify;

pub use density::{DensityMatrix, SimWorkspace};
pub use fused::{FusedProgram, ProgramBuilder};
pub use gate::{BoundGate, GateKind};
pub use math::{CMatrix, Complex64};
pub use noise::{KrausChannel, ReadoutError};
pub use statevector::StateVector;
pub use trajectory::{TrajectoryEstimate, TrajectoryPanel, TrajectoryWorkspace};
pub use verify::{verify_channel, verify_program, verify_supergroup_plan, VerifyError};

//! Complex arithmetic and small dense complex matrices.
//!
//! The workspace deliberately avoids external numeric crates, so this module
//! provides the minimal linear algebra the simulators need: a [`Complex64`]
//! scalar and a row-major dense [`CMatrix`] used for gate unitaries and Kraus
//! operators. Register-sized objects (state vectors, density matrices) live in
//! their own modules and use specialised bit-indexed kernels instead of
//! general matrix products.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// # Examples
///
/// ```
/// use quasim::math::Complex64;
///
/// let i = Complex64::I;
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates `exp(i * phi)` on the unit circle.
    #[inline]
    pub fn cis(phi: f64) -> Self {
        Complex64 {
            re: phi.cos(),
            im: phi.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|^2`, cheaper than [`Complex64::abs`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Returns `true` when both parts are within `tol` of `other`.
    #[inline]
    pub fn approx_eq(self, other: Complex64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        Complex64 {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

/// Prebound row-major entries of a 2×2 complex matrix.
///
/// The inline fixed-size form the fused density-matrix kernels consume;
/// see [`CMatrix::to_2x2`].
pub type M2 = [Complex64; 4];

/// Prebound row-major entries of a 4×4 complex matrix.
///
/// See [`CMatrix::to_4x4`].
pub type M4 = [Complex64; 16];

/// A dense, row-major complex matrix.
///
/// Used for gate unitaries (2×2 and 4×4) and Kraus operators. Not intended
/// for register-sized objects; those use specialised kernels.
///
/// # Examples
///
/// ```
/// use quasim::math::CMatrix;
///
/// let x = CMatrix::from_real(2, &[0.0, 1.0, 1.0, 0.0]);
/// assert!(x.is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    dim: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates a `dim × dim` zero matrix.
    pub fn zeros(dim: usize) -> Self {
        CMatrix {
            dim,
            data: vec![Complex64::ZERO; dim * dim],
        }
    }

    /// Creates the `dim × dim` identity matrix.
    pub fn identity(dim: usize) -> Self {
        let mut m = CMatrix::zeros(dim);
        for i in 0..dim {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Creates a matrix from a row-major slice of complex entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries.len() != dim * dim`.
    pub fn from_slice(dim: usize, entries: &[Complex64]) -> Self {
        assert_eq!(entries.len(), dim * dim, "entry count must be dim^2");
        CMatrix {
            dim,
            data: entries.to_vec(),
        }
    }

    /// Creates a matrix from a row-major slice of real entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries.len() != dim * dim`.
    pub fn from_real(dim: usize, entries: &[f64]) -> Self {
        assert_eq!(entries.len(), dim * dim, "entry count must be dim^2");
        CMatrix {
            dim,
            data: entries.iter().map(|&re| Complex64::real(re)).collect(),
        }
    }

    /// Matrix dimension (the matrix is square).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row-major view of the entries.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// The entries as an inline 2×2 array, if the matrix is 2×2.
    pub fn to_2x2(&self) -> Option<M2> {
        if self.dim != 2 {
            return None;
        }
        let mut out = [Complex64::ZERO; 4];
        out.copy_from_slice(&self.data);
        Some(out)
    }

    /// The entries as an inline 4×4 array, if the matrix is 4×4.
    pub fn to_4x4(&self) -> Option<M4> {
        if self.dim != 4 {
            return None;
        }
        let mut out = [Complex64::ZERO; 16];
        out.copy_from_slice(&self.data);
        Some(out)
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn matmul(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.dim, rhs.dim, "matrix dimensions must match");
        let n = self.dim;
        let mut out = CMatrix::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let a = self[(i, k)];
                if a == Complex64::ZERO {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Conjugate transpose `A†`.
    pub fn dagger(&self) -> CMatrix {
        let n = self.dim;
        let mut out = CMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Kronecker product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &CMatrix) -> CMatrix {
        let (a, b) = (self.dim, rhs.dim);
        let n = a * b;
        let mut out = CMatrix::zeros(n);
        for i in 0..a {
            for j in 0..a {
                let s = self[(i, j)];
                if s == Complex64::ZERO {
                    continue;
                }
                for k in 0..b {
                    for l in 0..b {
                        out[(i * b + k, j * b + l)] = s * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Scales every entry by a complex factor.
    pub fn scaled(&self, s: Complex64) -> CMatrix {
        CMatrix {
            dim: self.dim,
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Entrywise sum.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.dim, rhs.dim, "matrix dimensions must match");
        CMatrix {
            dim: self.dim,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }

    /// Trace `Σ_i A[i,i]`.
    pub fn trace(&self) -> Complex64 {
        (0..self.dim)
            .map(|i| self[(i, i)])
            .fold(Complex64::ZERO, |a, b| a + b)
    }

    /// Checks `A† A = I` within tolerance `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        let prod = self.dagger().matmul(self);
        let id = CMatrix::identity(self.dim);
        prod.data
            .iter()
            .zip(id.data.iter())
            .all(|(&a, &b)| a.approx_eq(b, tol))
    }

    /// Maximum entrywise absolute difference from `other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn max_abs_diff(&self, other: &CMatrix) -> f64 {
        assert_eq!(self.dim, other.dim, "matrix dimensions must match");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        &self.data[i * self.dim + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        &mut self.data[i * self.dim + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn complex_field_axioms() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.25, 3.0);
        assert!(((a + b) - (b + a)).abs() < TOL);
        assert!(((a * b) - (b * a)).abs() < TOL);
        assert!((a * Complex64::ONE - a).abs() < TOL);
        assert!((a + (-a)).abs() < TOL);
        let recovered = (a / b) * b;
        assert!(recovered.approx_eq(a, 1e-12));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let phi = k as f64 * 0.41;
            assert!((Complex64::cis(phi).abs() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn conj_is_involution() {
        let z = Complex64::new(0.7, -0.3);
        assert_eq!(z.conj().conj(), z);
    }

    #[test]
    fn matmul_identity() {
        let x = CMatrix::from_real(2, &[0.0, 1.0, 1.0, 0.0]);
        let id = CMatrix::identity(2);
        assert_eq!(x.matmul(&id), x);
        assert_eq!(id.matmul(&x), x);
    }

    #[test]
    fn pauli_x_squares_to_identity() {
        let x = CMatrix::from_real(2, &[0.0, 1.0, 1.0, 0.0]);
        assert!(x.matmul(&x).max_abs_diff(&CMatrix::identity(2)) < TOL);
    }

    #[test]
    fn dagger_reverses_products() {
        let a = CMatrix::from_slice(
            2,
            &[
                Complex64::new(1.0, 1.0),
                Complex64::new(0.0, 2.0),
                Complex64::new(-1.0, 0.5),
                Complex64::new(0.3, 0.0),
            ],
        );
        let b = CMatrix::from_slice(
            2,
            &[
                Complex64::new(0.5, -1.0),
                Complex64::new(2.0, 0.0),
                Complex64::new(0.0, 1.0),
                Complex64::new(1.0, 1.0),
            ],
        );
        let lhs = a.matmul(&b).dagger();
        let rhs = b.dagger().matmul(&a.dagger());
        assert!(lhs.max_abs_diff(&rhs) < TOL);
    }

    #[test]
    fn kron_dimensions_and_values() {
        let id = CMatrix::identity(2);
        let x = CMatrix::from_real(2, &[0.0, 1.0, 1.0, 0.0]);
        let k = id.kron(&x);
        assert_eq!(k.dim(), 4);
        // Block structure: diag(X, X).
        assert_eq!(k[(0, 1)], Complex64::ONE);
        assert_eq!(k[(2, 3)], Complex64::ONE);
        assert_eq!(k[(0, 2)], Complex64::ZERO);
    }

    #[test]
    fn trace_of_identity_is_dim() {
        let id = CMatrix::identity(5);
        assert!((id.trace().re - 5.0).abs() < TOL);
        assert!(id.trace().im.abs() < TOL);
    }

    #[test]
    fn unitarity_check_accepts_rotation() {
        let phi: f64 = 0.37;
        let u = CMatrix::from_slice(
            2,
            &[
                Complex64::real(phi.cos()),
                Complex64::real(-phi.sin()),
                Complex64::real(phi.sin()),
                Complex64::real(phi.cos()),
            ],
        );
        assert!(u.is_unitary(1e-12));
    }

    #[test]
    fn unitarity_check_rejects_scaling() {
        let m = CMatrix::from_real(2, &[2.0, 0.0, 0.0, 2.0]);
        assert!(!m.is_unitary(1e-9));
    }

    #[test]
    #[should_panic(expected = "entry count")]
    fn from_real_wrong_len_panics() {
        let _ = CMatrix::from_real(2, &[1.0, 2.0, 3.0]);
    }
}

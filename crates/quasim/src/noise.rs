//! Quantum noise channels (Kraus form) and classical readout error.
//!
//! These implement the same device-noise model class used by Qiskit Aer's
//! basic backend noise models, which the paper relies on: a depolarising
//! channel after every gate whose strength is taken from the day's
//! calibration data, plus a classical readout confusion channel applied to
//! measurement outcomes.

use crate::math::{CMatrix, Complex64};

/// A completely-positive trace-preserving map in Kraus form.
///
/// # Examples
///
/// ```
/// use quasim::noise::KrausChannel;
///
/// let ch = KrausChannel::depolarizing_1q(0.01);
/// assert!(ch.is_trace_preserving(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KrausChannel {
    ops: Vec<CMatrix>,
    arity: usize,
}

impl KrausChannel {
    /// Builds a channel from explicit Kraus operators.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty, the operators are not all 2×2 or all 4×4,
    /// or the completeness relation `Σ K†K = I` fails beyond `1e-9`.
    pub fn from_kraus(ops: Vec<CMatrix>) -> Self {
        assert!(!ops.is_empty(), "channel needs at least one Kraus operator");
        let dim = ops[0].dim();
        assert!(
            dim == 2 || dim == 4,
            "only 1- and 2-qubit channels supported"
        );
        assert!(ops.iter().all(|k| k.dim() == dim), "mixed Kraus dimensions");
        let arity = if dim == 2 { 1 } else { 2 };
        let ch = KrausChannel { ops, arity };
        assert!(
            ch.is_trace_preserving(1e-9),
            "Kraus completeness relation violated"
        );
        ch
    }

    /// The identity (no-op) channel on `arity` qubits.
    pub fn identity(arity: usize) -> Self {
        let dim = 1usize << arity;
        KrausChannel {
            ops: vec![CMatrix::identity(dim)],
            arity,
        }
    }

    /// One-qubit depolarising channel
    /// `ρ → (1−λ)ρ + λ·I/2`, with `λ` clamped to `[0, 1]`.
    pub fn depolarizing_1q(lambda: f64) -> Self {
        let l = lambda.clamp(0.0, 1.0);
        let paulis = [
            CMatrix::identity(2),
            CMatrix::from_real(2, &[0.0, 1.0, 1.0, 0.0]),
            CMatrix::from_slice(
                2,
                &[
                    Complex64::ZERO,
                    Complex64::new(0.0, -1.0),
                    Complex64::I,
                    Complex64::ZERO,
                ],
            ),
            CMatrix::from_real(2, &[1.0, 0.0, 0.0, -1.0]),
        ];
        let mut ops = Vec::with_capacity(4);
        ops.push(paulis[0].scaled(Complex64::real((1.0 - 3.0 * l / 4.0).sqrt())));
        let w = Complex64::real((l / 4.0).sqrt());
        for p in &paulis[1..] {
            ops.push(p.scaled(w));
        }
        KrausChannel { ops, arity: 1 }
    }

    /// Two-qubit depolarising channel `ρ → (1−λ)ρ + λ·I/4`, with `λ` clamped
    /// to `[0, 1]`. Built from the 16 two-qubit Pauli products.
    pub fn depolarizing_2q(lambda: f64) -> Self {
        let l = lambda.clamp(0.0, 1.0);
        let paulis = [
            CMatrix::identity(2),
            CMatrix::from_real(2, &[0.0, 1.0, 1.0, 0.0]),
            CMatrix::from_slice(
                2,
                &[
                    Complex64::ZERO,
                    Complex64::new(0.0, -1.0),
                    Complex64::I,
                    Complex64::ZERO,
                ],
            ),
            CMatrix::from_real(2, &[1.0, 0.0, 0.0, -1.0]),
        ];
        let mut ops = Vec::with_capacity(16);
        let w_id = Complex64::real((1.0 - 15.0 * l / 16.0).sqrt());
        let w = Complex64::real((l / 16.0).sqrt());
        for (i, a) in paulis.iter().enumerate() {
            for (j, b) in paulis.iter().enumerate() {
                let weight = if i == 0 && j == 0 { w_id } else { w };
                ops.push(a.kron(b).scaled(weight));
            }
        }
        KrausChannel { ops, arity: 2 }
    }

    /// Bit-flip channel: applies X with probability `p` (clamped to `[0,1]`).
    pub fn bit_flip(p: f64) -> Self {
        let p = p.clamp(0.0, 1.0);
        KrausChannel {
            ops: vec![
                CMatrix::identity(2).scaled(Complex64::real((1.0 - p).sqrt())),
                CMatrix::from_real(2, &[0.0, 1.0, 1.0, 0.0]).scaled(Complex64::real(p.sqrt())),
            ],
            arity: 1,
        }
    }

    /// Phase-flip channel: applies Z with probability `p` (clamped to `[0,1]`).
    pub fn phase_flip(p: f64) -> Self {
        let p = p.clamp(0.0, 1.0);
        KrausChannel {
            ops: vec![
                CMatrix::identity(2).scaled(Complex64::real((1.0 - p).sqrt())),
                CMatrix::from_real(2, &[1.0, 0.0, 0.0, -1.0]).scaled(Complex64::real(p.sqrt())),
            ],
            arity: 1,
        }
    }

    /// Amplitude-damping channel with decay probability `γ` (clamped to
    /// `[0,1]`); models T1 relaxation toward `|0⟩`.
    pub fn amplitude_damping(gamma: f64) -> Self {
        let g = gamma.clamp(0.0, 1.0);
        let k0 = CMatrix::from_real(2, &[1.0, 0.0, 0.0, (1.0 - g).sqrt()]);
        let k1 = CMatrix::from_real(2, &[0.0, g.sqrt(), 0.0, 0.0]);
        KrausChannel {
            ops: vec![k0, k1],
            arity: 1,
        }
    }

    /// Number of qubits the channel acts on (1 or 2).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The Kraus operators.
    pub fn kraus_ops(&self) -> &[CMatrix] {
        &self.ops
    }

    /// Checks the completeness relation `Σ_k K_k† K_k = I` within `tol`.
    pub fn is_trace_preserving(&self, tol: f64) -> bool {
        let dim = self.ops[0].dim();
        let mut acc = CMatrix::zeros(dim);
        for k in &self.ops {
            acc = acc.add(&k.dagger().matmul(k));
        }
        acc.max_abs_diff(&CMatrix::identity(dim)) <= tol
    }
}

/// Per-qubit classical readout confusion.
///
/// `p01` is the probability of reading `1` when the true outcome is `0`,
/// `p10` of reading `0` when the true outcome is `1`.
///
/// # Examples
///
/// ```
/// use quasim::noise::ReadoutError;
///
/// let r = ReadoutError::symmetric(0.02);
/// // A perfect |1> is read as 1 with probability 0.98.
/// assert!((r.apply_to_prob_one(1.0) - 0.98).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadoutError {
    /// P(read 1 | true 0).
    pub p01: f64,
    /// P(read 0 | true 1).
    pub p10: f64,
}

impl ReadoutError {
    /// Creates a readout error with independent flip probabilities.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(p01: f64, p10: f64) -> Self {
        assert!((0.0..=1.0).contains(&p01), "p01 must be a probability");
        assert!((0.0..=1.0).contains(&p10), "p10 must be a probability");
        ReadoutError { p01, p10 }
    }

    /// Symmetric readout error: both flips with probability `p`.
    pub fn symmetric(p: f64) -> Self {
        ReadoutError::new(p, p)
    }

    /// The error-free readout.
    pub fn none() -> Self {
        ReadoutError { p01: 0.0, p10: 0.0 }
    }

    /// Pushes a true `P(1)` through the confusion channel.
    pub fn apply_to_prob_one(&self, p1: f64) -> f64 {
        (1.0 - p1) * self.p01 + p1 * (1.0 - self.p10)
    }

    /// Average assignment error `(p01 + p10) / 2`, the single "readout error"
    /// figure reported by IBM calibrations.
    pub fn mean_error(&self) -> f64 {
        0.5 * (self.p01 + self.p10)
    }
}

impl Default for ReadoutError {
    fn default() -> Self {
        ReadoutError::none()
    }
}

/// Applies per-qubit readout confusion to a full computational-basis
/// distribution in place.
///
/// # Panics
///
/// Panics if `probs.len()` is not `2^errors.len()`.
pub fn apply_readout_to_distribution(probs: &mut [f64], errors: &[ReadoutError]) {
    assert_eq!(
        probs.len(),
        1usize << errors.len(),
        "distribution length must be 2^n_qubits"
    );
    for (q, err) in errors.iter().enumerate() {
        let mask = 1usize << q;
        for i in 0..probs.len() {
            if i & mask == 0 {
                let j = i | mask;
                let p0 = probs[i];
                let p1 = probs[j];
                probs[i] = p0 * (1.0 - err.p01) + p1 * err.p10;
                probs[j] = p0 * err.p01 + p1 * (1.0 - err.p10);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtin_channels_trace_preserving() {
        for p in [0.0, 1e-4, 0.01, 0.3, 1.0] {
            assert!(KrausChannel::depolarizing_1q(p).is_trace_preserving(1e-10));
            assert!(KrausChannel::depolarizing_2q(p).is_trace_preserving(1e-10));
            assert!(KrausChannel::bit_flip(p).is_trace_preserving(1e-10));
            assert!(KrausChannel::phase_flip(p).is_trace_preserving(1e-10));
            assert!(KrausChannel::amplitude_damping(p).is_trace_preserving(1e-10));
        }
    }

    #[test]
    fn depolarizing_zero_is_identity_channel() {
        let ch = KrausChannel::depolarizing_1q(0.0);
        // All non-identity Kraus weights are zero.
        assert!(ch.kraus_ops()[0].max_abs_diff(&CMatrix::identity(2)) < 1e-12);
        for k in &ch.kraus_ops()[1..] {
            assert!(k.max_abs_diff(&CMatrix::zeros(2)) < 1e-12);
        }
    }

    #[test]
    fn lambda_is_clamped() {
        let ch = KrausChannel::depolarizing_1q(7.0);
        assert!(ch.is_trace_preserving(1e-10));
        let ch = KrausChannel::depolarizing_2q(-0.5);
        assert!(ch.is_trace_preserving(1e-10));
    }

    #[test]
    fn extreme_channel_parameters_stay_cptp() {
        // The λ ∈ {0, 1} endpoints are where the Kraus weights degenerate
        // (all mass on the identity, or none); completeness must hold
        // exactly at both.
        for l in [0.0, 1.0] {
            assert!(KrausChannel::depolarizing_1q(l).is_trace_preserving(1e-12));
            assert!(KrausChannel::depolarizing_2q(l).is_trace_preserving(1e-12));
        }
        assert!(KrausChannel::amplitude_damping(1.0).is_trace_preserving(1e-12));
        assert!(KrausChannel::bit_flip(0.5).is_trace_preserving(1e-12));
    }

    #[test]
    fn full_amplitude_damping_resets_to_ground() {
        // γ = 1: every state decays to |0⟩ exactly.
        let ch = KrausChannel::amplitude_damping(1.0);
        let mut rho = crate::density::DensityMatrix::zero_state(1);
        rho.apply_gate(&crate::gate::BoundGate::one(
            crate::gate::GateKind::X,
            0,
            0.0,
        ));
        rho.apply_channel(&ch, &[0]);
        assert!(rho.prob_one(0).abs() < 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12, "|0⟩⟨0| is pure");
    }

    #[test]
    fn half_bit_flip_fully_mixes_z() {
        // p = 1/2 erases all Z information: P(1) = 1/2 from any basis state.
        let ch = KrausChannel::bit_flip(0.5);
        let mut rho = crate::density::DensityMatrix::zero_state(1);
        rho.apply_channel(&ch, &[0]);
        assert!((rho.prob_one(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn full_depolarizing_reaches_maximally_mixed() {
        let mut rho = crate::density::DensityMatrix::zero_state(2);
        rho.apply_channel(&KrausChannel::depolarizing_1q(1.0), &[0]);
        rho.apply_channel(&KrausChannel::depolarizing_2q(1.0), &[0, 1]);
        let mixed = crate::density::DensityMatrix::maximally_mixed(2);
        for i in 0..4 {
            for j in 0..4 {
                assert!((rho.get(i, j) - mixed.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn readout_extremes_stay_in_unit_interval() {
        // Every corner of the (p01, p10, p1) cube must map into [0, 1].
        for p01 in [0.0, 1.0] {
            for p10 in [0.0, 1.0] {
                let r = ReadoutError::new(p01, p10);
                for p1 in [0.0, 1.0] {
                    let out = r.apply_to_prob_one(p1);
                    assert!(
                        (0.0..=1.0).contains(&out),
                        "readout ({p01},{p10}) mapped {p1} to {out}"
                    );
                }
            }
        }
        // Fully confusing readout flips deterministically.
        let flip = ReadoutError::new(1.0, 1.0);
        assert!((flip.apply_to_prob_one(0.0) - 1.0).abs() < 1e-12);
        assert!(flip.apply_to_prob_one(1.0).abs() < 1e-12);
    }

    #[test]
    fn readout_identity_when_no_error() {
        let r = ReadoutError::none();
        for p in [0.0, 0.25, 1.0] {
            assert!((r.apply_to_prob_one(p) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn readout_asymmetric() {
        let r = ReadoutError::new(0.1, 0.3);
        assert!((r.apply_to_prob_one(0.0) - 0.1).abs() < 1e-12);
        assert!((r.apply_to_prob_one(1.0) - 0.7).abs() < 1e-12);
        assert!((r.mean_error() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn distribution_readout_preserves_total_probability() {
        let mut probs = vec![0.1, 0.2, 0.3, 0.4];
        apply_readout_to_distribution(
            &mut probs,
            &[ReadoutError::new(0.05, 0.1), ReadoutError::symmetric(0.2)],
        );
        let total: f64 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distribution_readout_matches_marginal_formula() {
        // Pure |01> (qubit 0 = 1, qubit 1 = 0).
        let mut probs = vec![0.0, 1.0, 0.0, 0.0];
        let e0 = ReadoutError::new(0.02, 0.08);
        let e1 = ReadoutError::new(0.05, 0.03);
        apply_readout_to_distribution(&mut probs, &[e0, e1]);
        let p_q0_one = probs[1] + probs[3];
        let p_q1_one = probs[2] + probs[3];
        assert!((p_q0_one - e0.apply_to_prob_one(1.0)).abs() < 1e-12);
        assert!((p_q1_one - e1.apply_to_prob_one(0.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn readout_rejects_invalid_probability() {
        let _ = ReadoutError::new(1.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "completeness")]
    fn from_kraus_rejects_non_tp() {
        let _ = KrausChannel::from_kraus(vec![CMatrix::identity(2).scaled(Complex64::real(0.5))]);
    }
}

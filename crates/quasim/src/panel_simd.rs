//! Explicit AVX2 kernels for the trajectory panel's unitary passes.
//!
//! Each kernel is the 4-lane transcription of its scalar counterpart in
//! [`crate::trajectory`] — [`crate::trajectory::unitary1_inner`] and
//! [`crate::trajectory::unitary2_inner`] — under a strict bit-identity
//! contract: only `_mm256_mul_pd` / `_mm256_add_pd` / `_mm256_sub_pd`
//! (never FMA, never horizontal reductions), composed in the *exact
//! association order* of the scalar expressions. Lane `j` of every vector
//! operation therefore performs precisely the IEEE-754 operations the
//! scalar loop performs at element `j`, so the results are bit-equal —
//! the scalar kernels stay the oracle (asserted per panel width by the
//! `panel_props` proptests) and `QUCAD_FORCE_SCALAR=1` runs are
//! bit-identical to AVX2 runs.
//!
//! Remainder elements past the last full 4-lane chunk are handed to the
//! scalar kernels directly. The stochastic jump kernels are *not*
//! vectorised: they are sparse per-column walks (most columns take no
//! jump at calibration-scale λ), so they stay scalar on both dispatch
//! arms.
//!
//! The functions are safe `#[target_feature(enable = "avx2")]` functions:
//! callers outside an AVX2 context (the dispatch helpers in
//! `trajectory.rs`) must wrap the call in `unsafe` and guarantee the CPU
//! supports AVX2 — which [`crate::trajectory::KernelMode`] enforces by
//! construction.

use crate::fused::MatClass;
use crate::math::{M2, M4};
use crate::trajectory::{unitary1_inner, unitary2_inner, Quartet};
use core::arch::x86_64::{
    __m256d, _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_setzero_pd,
    _mm256_storeu_pd, _mm256_sub_pd,
};

/// `f64` lanes per AVX2 vector.
const LANES: usize = 4;

/// Vector-lane body of the Diagonal pair kernel: processes the full
/// 4-lane chunks of one pair with pre-broadcast matrix entries, returns
/// the element count covered (the caller hands the remainder to the
/// scalar kernel). Slices are truncated to their common length here, so
/// every load/store is bounds-guarded regardless of caller.
#[target_feature(enable = "avx2")]
#[inline]
#[allow(clippy::too_many_arguments)]
fn diag_lanes(
    d0re: __m256d,
    d0im: __m256d,
    d1re: __m256d,
    d1im: __m256d,
    r0: &mut [f64],
    i0: &mut [f64],
    r1: &mut [f64],
    i1: &mut [f64],
) -> usize {
    let len = r0.len().min(i0.len()).min(r1.len()).min(i1.len());
    let lanes = len - len % LANES;
    let mut j = 0usize;
    while j < lanes {
        // SAFETY: `j + LANES <= lanes <= len`, and `len` is the minimum
        // of all four slice lengths, so every load and store stays in
        // bounds.
        unsafe {
            let xr = _mm256_loadu_pd(r0.as_ptr().add(j));
            let xi = _mm256_loadu_pd(i0.as_ptr().add(j));
            // r0 = xr·d0.re − xi·d0.im ; i0 = xr·d0.im + xi·d0.re
            _mm256_storeu_pd(
                r0.as_mut_ptr().add(j),
                _mm256_sub_pd(_mm256_mul_pd(xr, d0re), _mm256_mul_pd(xi, d0im)),
            );
            _mm256_storeu_pd(
                i0.as_mut_ptr().add(j),
                _mm256_add_pd(_mm256_mul_pd(xr, d0im), _mm256_mul_pd(xi, d0re)),
            );
            let yr = _mm256_loadu_pd(r1.as_ptr().add(j));
            let yi = _mm256_loadu_pd(i1.as_ptr().add(j));
            _mm256_storeu_pd(
                r1.as_mut_ptr().add(j),
                _mm256_sub_pd(_mm256_mul_pd(yr, d1re), _mm256_mul_pd(yi, d1im)),
            );
            _mm256_storeu_pd(
                i1.as_mut_ptr().add(j),
                _mm256_add_pd(_mm256_mul_pd(yr, d1im), _mm256_mul_pd(yi, d1re)),
            );
        }
        j += LANES;
    }
    lanes
}

/// Vector-lane body of the Real pair kernel (see [`diag_lanes`] for the
/// contract): the planes transform independently, the 4-lane
/// transcription of the scalar kernel's Real branch.
#[target_feature(enable = "avx2")]
#[inline]
#[allow(clippy::too_many_arguments)]
fn real_lanes(
    m00: __m256d,
    m01: __m256d,
    m10: __m256d,
    m11: __m256d,
    r0: &mut [f64],
    i0: &mut [f64],
    r1: &mut [f64],
    i1: &mut [f64],
) -> usize {
    let len = r0.len().min(i0.len()).min(r1.len()).min(i1.len());
    let lanes = len - len % LANES;
    let mut j = 0usize;
    while j < lanes {
        // SAFETY: `j + LANES <= lanes <= len`, and `len` is the minimum
        // of all four slice lengths, so every load and store stays in
        // bounds.
        unsafe {
            let x0r = _mm256_loadu_pd(r0.as_ptr().add(j));
            let x0i = _mm256_loadu_pd(i0.as_ptr().add(j));
            let x1r = _mm256_loadu_pd(r1.as_ptr().add(j));
            let x1i = _mm256_loadu_pd(i1.as_ptr().add(j));
            // r0 = m00·x0r + m01·x1r ; i0 = m00·x0i + m01·x1i
            _mm256_storeu_pd(
                r0.as_mut_ptr().add(j),
                _mm256_add_pd(_mm256_mul_pd(m00, x0r), _mm256_mul_pd(m01, x1r)),
            );
            _mm256_storeu_pd(
                i0.as_mut_ptr().add(j),
                _mm256_add_pd(_mm256_mul_pd(m00, x0i), _mm256_mul_pd(m01, x1i)),
            );
            _mm256_storeu_pd(
                r1.as_mut_ptr().add(j),
                _mm256_add_pd(_mm256_mul_pd(m10, x0r), _mm256_mul_pd(m11, x1r)),
            );
            _mm256_storeu_pd(
                i1.as_mut_ptr().add(j),
                _mm256_add_pd(_mm256_mul_pd(m10, x0i), _mm256_mul_pd(m11, x1i)),
            );
        }
        j += LANES;
    }
    lanes
}

/// Pre-broadcast complex 2×2 entries for the general pair kernel.
struct M2Lanes {
    m00re: __m256d,
    m00im: __m256d,
    m01re: __m256d,
    m01im: __m256d,
    m10re: __m256d,
    m10im: __m256d,
    m11re: __m256d,
    m11im: __m256d,
}

#[target_feature(enable = "avx2")]
#[inline]
fn broadcast_m2(m: &M2) -> M2Lanes {
    M2Lanes {
        m00re: _mm256_set1_pd(m[0].re),
        m00im: _mm256_set1_pd(m[0].im),
        m01re: _mm256_set1_pd(m[1].re),
        m01im: _mm256_set1_pd(m[1].im),
        m10re: _mm256_set1_pd(m[2].re),
        m10im: _mm256_set1_pd(m[2].im),
        m11re: _mm256_set1_pd(m[3].re),
        m11im: _mm256_set1_pd(m[3].im),
    }
}

/// Vector-lane body of the general pair kernel (see [`diag_lanes`] for
/// the contract): full complex 2×2, exact scalar association order.
#[target_feature(enable = "avx2")]
#[inline]
fn general_lanes(
    e: &M2Lanes,
    r0: &mut [f64],
    i0: &mut [f64],
    r1: &mut [f64],
    i1: &mut [f64],
) -> usize {
    let len = r0.len().min(i0.len()).min(r1.len()).min(i1.len());
    let lanes = len - len % LANES;
    let mut j = 0usize;
    while j < lanes {
        // SAFETY: `j + LANES <= lanes <= len`, and `len` is the minimum
        // of all four slice lengths, so every load and store stays in
        // bounds.
        unsafe {
            let x0r = _mm256_loadu_pd(r0.as_ptr().add(j));
            let x0i = _mm256_loadu_pd(i0.as_ptr().add(j));
            let x1r = _mm256_loadu_pd(r1.as_ptr().add(j));
            let x1i = _mm256_loadu_pd(i1.as_ptr().add(j));
            // r0 = (m00.re·x0r − m00.im·x0i) + (m01.re·x1r − m01.im·x1i)
            _mm256_storeu_pd(
                r0.as_mut_ptr().add(j),
                _mm256_add_pd(
                    _mm256_sub_pd(_mm256_mul_pd(e.m00re, x0r), _mm256_mul_pd(e.m00im, x0i)),
                    _mm256_sub_pd(_mm256_mul_pd(e.m01re, x1r), _mm256_mul_pd(e.m01im, x1i)),
                ),
            );
            // i0 = (m00.re·x0i + m00.im·x0r) + (m01.re·x1i + m01.im·x1r)
            _mm256_storeu_pd(
                i0.as_mut_ptr().add(j),
                _mm256_add_pd(
                    _mm256_add_pd(_mm256_mul_pd(e.m00re, x0i), _mm256_mul_pd(e.m00im, x0r)),
                    _mm256_add_pd(_mm256_mul_pd(e.m01re, x1i), _mm256_mul_pd(e.m01im, x1r)),
                ),
            );
            _mm256_storeu_pd(
                r1.as_mut_ptr().add(j),
                _mm256_add_pd(
                    _mm256_sub_pd(_mm256_mul_pd(e.m10re, x0r), _mm256_mul_pd(e.m10im, x0i)),
                    _mm256_sub_pd(_mm256_mul_pd(e.m11re, x1r), _mm256_mul_pd(e.m11im, x1i)),
                ),
            );
            _mm256_storeu_pd(
                i1.as_mut_ptr().add(j),
                _mm256_add_pd(
                    _mm256_add_pd(_mm256_mul_pd(e.m10re, x0i), _mm256_mul_pd(e.m10im, x0r)),
                    _mm256_add_pd(_mm256_mul_pd(e.m11re, x1i), _mm256_mul_pd(e.m11im, x1r)),
                ),
            );
        }
        j += LANES;
    }
    lanes
}

/// AVX2 transcription of [`unitary1_inner`]: applies one 2×2 unitary to a
/// planar pair tile, bit-identical to the scalar kernel at every element.
#[target_feature(enable = "avx2")]
pub(crate) fn unitary1_avx2(
    m: &M2,
    class: MatClass,
    r0: &mut [f64],
    i0: &mut [f64],
    r1: &mut [f64],
    i1: &mut [f64],
) {
    let len = r0.len();
    let (i0, r1, i1) = (&mut i0[..len], &mut r1[..len], &mut i1[..len]);
    let lanes = match class {
        MatClass::Diagonal => {
            let (d0, d1) = (m[0], m[3]);
            diag_lanes(
                _mm256_set1_pd(d0.re),
                _mm256_set1_pd(d0.im),
                _mm256_set1_pd(d1.re),
                _mm256_set1_pd(d1.im),
                r0,
                i0,
                r1,
                i1,
            )
        }
        MatClass::Real => real_lanes(
            _mm256_set1_pd(m[0].re),
            _mm256_set1_pd(m[1].re),
            _mm256_set1_pd(m[2].re),
            _mm256_set1_pd(m[3].re),
            r0,
            i0,
            r1,
            i1,
        ),
        MatClass::General => general_lanes(&broadcast_m2(m), r0, i0, r1, i1),
    };
    if lanes < len {
        unitary1_inner(
            m,
            class,
            &mut r0[lanes..],
            &mut i0[lanes..],
            &mut r1[lanes..],
            &mut i1[lanes..],
        );
    }
}

/// Octet-level counterpart of [`unitary1_avx2`]: applies one 2×2 unitary
/// to all four strip pairs of the wire at strip mask `wm`, broadcasting
/// the matrix entries once for the whole octet instead of once per pair.
/// Each pair runs the exact same lane bodies (and scalar tails) as the
/// pair kernel, so the results are bit-identical to four pair calls —
/// this only amortises the call and broadcast overhead, which dominates
/// when low-wire supergroups make the strips short.
#[target_feature(enable = "avx2")]
pub(crate) fn unitary1_octet_avx2(
    m: &M2,
    class: MatClass,
    r: &mut [&mut [f64]; 8],
    i: &mut [&mut [f64]; 8],
    wm: usize,
) {
    match class {
        MatClass::Diagonal => {
            let (d0, d1) = (m[0], m[3]);
            let d0re = _mm256_set1_pd(d0.re);
            let d0im = _mm256_set1_pd(d0.im);
            let d1re = _mm256_set1_pd(d1.re);
            let d1im = _mm256_set1_pd(d1.im);
            for x in 0..8usize {
                if x & wm != 0 {
                    continue;
                }
                let [r0, r1] = r
                    .get_disjoint_mut([x, x | wm])
                    .expect("distinct octet strips");
                let [i0, i1] = i
                    .get_disjoint_mut([x, x | wm])
                    .expect("distinct octet strips");
                let lanes = diag_lanes(d0re, d0im, d1re, d1im, r0, i0, r1, i1);
                if lanes < r0.len() {
                    unitary1_inner(
                        m,
                        class,
                        &mut r0[lanes..],
                        &mut i0[lanes..],
                        &mut r1[lanes..],
                        &mut i1[lanes..],
                    );
                }
            }
        }
        MatClass::Real => {
            let m00 = _mm256_set1_pd(m[0].re);
            let m01 = _mm256_set1_pd(m[1].re);
            let m10 = _mm256_set1_pd(m[2].re);
            let m11 = _mm256_set1_pd(m[3].re);
            for x in 0..8usize {
                if x & wm != 0 {
                    continue;
                }
                let [r0, r1] = r
                    .get_disjoint_mut([x, x | wm])
                    .expect("distinct octet strips");
                let [i0, i1] = i
                    .get_disjoint_mut([x, x | wm])
                    .expect("distinct octet strips");
                let lanes = real_lanes(m00, m01, m10, m11, r0, i0, r1, i1);
                if lanes < r0.len() {
                    unitary1_inner(
                        m,
                        class,
                        &mut r0[lanes..],
                        &mut i0[lanes..],
                        &mut r1[lanes..],
                        &mut i1[lanes..],
                    );
                }
            }
        }
        MatClass::General => {
            let e = broadcast_m2(m);
            for x in 0..8usize {
                if x & wm != 0 {
                    continue;
                }
                let [r0, r1] = r
                    .get_disjoint_mut([x, x | wm])
                    .expect("distinct octet strips");
                let [i0, i1] = i
                    .get_disjoint_mut([x, x | wm])
                    .expect("distinct octet strips");
                let lanes = general_lanes(&e, r0, i0, r1, i1);
                if lanes < r0.len() {
                    unitary1_inner(
                        m,
                        class,
                        &mut r0[lanes..],
                        &mut i0[lanes..],
                        &mut r1[lanes..],
                        &mut i1[lanes..],
                    );
                }
            }
        }
    }
}

/// AVX2 transcription of [`unitary2_inner`]: applies one 4×4 unitary to a
/// quartet tile through the atom's orientation permutation, bit-identical
/// to the scalar kernel at every element (accumulators start at zero and
/// gather the columns in the same order).
#[target_feature(enable = "avx2")]
pub(crate) fn unitary2_avx2(m: &M4, swapped: bool, g: &mut Quartet<'_>) {
    let len = g.r[0].len();
    let map: [usize; 4] = if swapped { [0, 2, 1, 3] } else { [0, 1, 2, 3] };
    let mut ere = [_mm256_setzero_pd(); 16];
    let mut eim = [_mm256_setzero_pd(); 16];
    for ((er, ei), e) in ere.iter_mut().zip(eim.iter_mut()).zip(m.iter()) {
        *er = _mm256_set1_pd(e.re);
        *ei = _mm256_set1_pd(e.im);
    }
    let lanes = len - len % LANES;
    let mut j = 0usize;
    while j < lanes {
        let mut old_r = [_mm256_setzero_pd(); 4];
        let mut old_i = [_mm256_setzero_pd(); 4];
        for ((or_, oi), &c) in old_r.iter_mut().zip(old_i.iter_mut()).zip(map.iter()) {
            // SAFETY: `j + LANES <= lanes <= len`, and every quartet strip
            // has at least `g.r[0].len() == len` elements (they are built
            // equal-length by the tile walkers).
            unsafe {
                *or_ = _mm256_loadu_pd(g.r[c].as_ptr().add(j));
                *oi = _mm256_loadu_pd(g.i[c].as_ptr().add(j));
            }
        }
        for (r, &dst) in map.iter().enumerate() {
            let mut ar = _mm256_set1_pd(0.0);
            let mut ai = _mm256_set1_pd(0.0);
            for (c, (&or_, &oi)) in old_r.iter().zip(old_i.iter()).enumerate() {
                let er = ere[r * 4 + c];
                let ei = eim[r * 4 + c];
                // ar += e.re·or − e.im·oi ; ai += e.re·oi + e.im·or
                ar = _mm256_add_pd(
                    ar,
                    _mm256_sub_pd(_mm256_mul_pd(er, or_), _mm256_mul_pd(ei, oi)),
                );
                ai = _mm256_add_pd(
                    ai,
                    _mm256_add_pd(_mm256_mul_pd(er, oi), _mm256_mul_pd(ei, or_)),
                );
            }
            // SAFETY: same bounds argument as the loads above; the four
            // destination rows were fully gathered into `old_r`/`old_i`
            // before any store, exactly like the scalar kernel.
            unsafe {
                _mm256_storeu_pd(g.r[dst].as_mut_ptr().add(j), ar);
                _mm256_storeu_pd(g.i[dst].as_mut_ptr().add(j), ai);
            }
        }
        j += LANES;
    }
    if lanes < len {
        let r = g.r.each_mut().map(|s| &mut s[lanes..]);
        let i = g.i.each_mut().map(|s| &mut s[lanes..]);
        let mut tail = Quartet { r, i };
        unitary2_inner(m, swapped, &mut tail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::math::Complex64;
    use crate::trajectory::KernelMode;

    /// Deterministic pseudo-amplitudes (no RNG needed for a pure kernel
    /// identity check).
    fn fill(seed: u64, len: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                ((state >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn avx2_unitary1_matches_scalar_bits_at_ragged_lengths() {
        if !KernelMode::avx2_supported() {
            return;
        }
        let h = GateKind::H.entries_1q(0.0).unwrap();
        let rz = GateKind::Rz.entries_1q(0.7).unwrap();
        for (m, class) in [(&h, MatClass::Real), (&rz, MatClass::Diagonal)] {
            for len in [1usize, 3, 4, 7, 8, 13, 64, 65] {
                let base: Vec<Vec<f64>> = (0..4).map(|k| fill(41 + k, len)).collect();
                let mut scalar: Vec<Vec<f64>> = base.clone();
                let mut simd: Vec<Vec<f64>> = base;
                {
                    let [r0, i0, r1, i1] = &mut scalar[..] else {
                        unreachable!()
                    };
                    unitary1_inner(m, class, r0, i0, r1, i1);
                }
                {
                    let [r0, i0, r1, i1] = &mut simd[..] else {
                        unreachable!()
                    };
                    // SAFETY: guarded by `avx2_supported` above.
                    unsafe { unitary1_avx2(m, class, r0, i0, r1, i1) };
                }
                for (a, b) in scalar.iter().flatten().zip(simd.iter().flatten()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "len {len}");
                }
            }
        }
    }

    #[test]
    fn avx2_unitary2_matches_scalar_bits_at_ragged_lengths() {
        if !KernelMode::avx2_supported() {
            return;
        }
        let mut m = GateKind::Cry.entries_2q(0.9).unwrap();
        // Perturb into a fully dense matrix so every accumulator term is
        // exercised.
        for (k, e) in m.iter_mut().enumerate() {
            *e += Complex64::new(0.01 * (k as f64 + 1.0), -0.003 * (k as f64 + 2.0));
        }
        for swapped in [false, true] {
            for len in [1usize, 3, 4, 7, 8, 13, 64, 65] {
                let base: Vec<Vec<f64>> = (0..8).map(|k| fill(97 + k, len)).collect();
                let mut scalar: Vec<Vec<f64>> = base.clone();
                let mut simd: Vec<Vec<f64>> = base;
                {
                    let (r, i) = scalar.split_at_mut(4);
                    let [r0, r1, r2, r3] = r else { unreachable!() };
                    let [i0, i1, i2, i3] = i else { unreachable!() };
                    let mut g = Quartet {
                        r: [r0, r1, r2, r3],
                        i: [i0, i1, i2, i3],
                    };
                    unitary2_inner(&m, swapped, &mut g);
                }
                {
                    let (r, i) = simd.split_at_mut(4);
                    let [r0, r1, r2, r3] = r else { unreachable!() };
                    let [i0, i1, i2, i3] = i else { unreachable!() };
                    let mut g = Quartet {
                        r: [r0, r1, r2, r3],
                        i: [i0, i1, i2, i3],
                    };
                    // SAFETY: guarded by `avx2_supported` above.
                    unsafe { unitary2_avx2(&m, swapped, &mut g) };
                }
                for (a, b) in scalar.iter().flatten().zip(simd.iter().flatten()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "swapped {swapped} len {len}");
                }
            }
        }
    }
}

//! Exact (noise-free) state-vector simulation.
//!
//! Basis convention: for an `n`-qubit register, computational basis state
//! `|b⟩` is indexed by the integer `b` whose **bit `q` is the value of qubit
//! `q`** (qubit 0 = least significant bit). Two-qubit gates use the local
//! index `control*2 + target`, matching [`crate::gate::GateKind::matrix`].

use crate::gate::BoundGate;
#[cfg(test)]
use crate::gate::GateKind;
use crate::math::{CMatrix, Complex64};

/// A pure quantum state over `n` qubits.
///
/// # Examples
///
/// ```
/// use quasim::statevector::StateVector;
/// use quasim::gate::{BoundGate, GateKind};
///
/// let mut sv = StateVector::zero_state(2);
/// sv.apply(&BoundGate::one(GateKind::H, 0, 0.0));
/// sv.apply(&BoundGate::two(GateKind::Cx, 0, 1, 0.0));
/// // Bell state: P(qubit 1 = 1) = 1/2.
/// assert!((sv.prob_one(1) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// Creates `|0…0⟩` over `n_qubits`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits == 0` or `n_qubits > 24` (sizes beyond any use in
    /// this workspace).
    pub fn zero_state(n_qubits: usize) -> Self {
        assert!((1..=24).contains(&n_qubits), "unsupported qubit count");
        let mut amps = vec![Complex64::ZERO; 1 << n_qubits];
        amps[0] = Complex64::ONE;
        StateVector { n_qubits, amps }
    }

    /// Creates a state from explicit amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two ≥ 2 or if the vector is not
    /// normalised within `1e-9`.
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Self {
        let len = amps.len();
        assert!(
            len >= 2 && len.is_power_of_two(),
            "length must be a power of two"
        );
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!(
            (norm - 1.0).abs() < 1e-9,
            "state must be normalised (got {norm})"
        );
        StateVector {
            n_qubits: len.trailing_zeros() as usize,
            amps,
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Raw amplitudes (length `2^n`).
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Applies a bound gate in place.
    ///
    /// # Panics
    ///
    /// Panics if any qubit index is out of range.
    pub fn apply(&mut self, gate: &BoundGate) {
        match gate.kind().arity() {
            1 => self.apply_1q(&gate.matrix(), gate.qubits()[0]),
            _ => self.apply_2q(&gate.matrix(), gate.qubits()[0], gate.qubits()[1]),
        }
    }

    /// Applies a 2×2 unitary to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range or `u` is not 2×2.
    pub fn apply_1q(&mut self, u: &CMatrix, q: usize) {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        assert_eq!(u.dim(), 2, "expected a 2x2 matrix");
        let mask = 1usize << q;
        let (u00, u01, u10, u11) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
        let dim = self.amps.len();
        let mut i = 0usize;
        while i < dim {
            if i & mask == 0 {
                let j = i | mask;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = u00 * a0 + u01 * a1;
                self.amps[j] = u10 * a0 + u11 * a1;
            }
            i += 1;
        }
    }

    /// Applies a 4×4 unitary to qubits `(a, b)` where `a` maps to the most
    /// significant local bit (control position for controlled gates).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range, equal, or `u` is not 4×4.
    pub fn apply_2q(&mut self, u: &CMatrix, a: usize, b: usize) {
        assert!(a < self.n_qubits && b < self.n_qubits, "qubit out of range");
        assert_ne!(a, b, "qubits must be distinct");
        assert_eq!(u.dim(), 4, "expected a 4x4 matrix");
        let ma = 1usize << a;
        let mb = 1usize << b;
        let dim = self.amps.len();
        for i in 0..dim {
            if i & ma == 0 && i & mb == 0 {
                let idx = [i, i | mb, i | ma, i | ma | mb];
                let old = [
                    self.amps[idx[0]],
                    self.amps[idx[1]],
                    self.amps[idx[2]],
                    self.amps[idx[3]],
                ];
                for r in 0..4 {
                    let mut acc = Complex64::ZERO;
                    for c in 0..4 {
                        acc += u[(r, c)] * old[c];
                    }
                    self.amps[idx[r]] = acc;
                }
            }
        }
    }

    /// Applies a whole sequence of gates.
    pub fn run<'a, I: IntoIterator<Item = &'a BoundGate>>(&mut self, gates: I) {
        for g in gates {
            self.apply(g);
        }
    }

    /// Probability of measuring qubit `q` as `1`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn prob_one(&self, q: usize) -> f64 {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let mask = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Expectation value `⟨Z_q⟩ = P(0) − P(1)`.
    pub fn expect_z(&self, q: usize) -> f64 {
        1.0 - 2.0 * self.prob_one(q)
    }

    /// Full computational-basis probability distribution.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Squared norm (should always be 1 up to rounding).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if qubit counts differ.
    pub fn inner(&self, other: &StateVector) -> Complex64 {
        assert_eq!(self.n_qubits, other.n_qubits, "qubit counts must match");
        self.amps
            .iter()
            .zip(other.amps.iter())
            .map(|(&a, &b)| a.conj() * b)
            .fold(Complex64::ZERO, |acc, z| acc + z)
    }

    /// Fidelity `|⟨self|other⟩|²` with another pure state.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner(other).norm_sqr()
    }
}

/// Runs `gates` on `|0…0⟩` and returns the final state.
///
/// # Examples
///
/// ```
/// use quasim::statevector::run_circuit;
/// use quasim::gate::{BoundGate, GateKind};
///
/// let sv = run_circuit(2, &[BoundGate::one(GateKind::X, 0, 0.0)]);
/// assert!((sv.prob_one(0) - 1.0).abs() < 1e-12);
/// ```
pub fn run_circuit(n_qubits: usize, gates: &[BoundGate]) -> StateVector {
    let mut sv = StateVector::zero_state(n_qubits);
    sv.run(gates);
    sv
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn g1(kind: GateKind, q: usize, t: f64) -> BoundGate {
        BoundGate::one(kind, q, t)
    }

    #[test]
    fn zero_state_probabilities() {
        let sv = StateVector::zero_state(3);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
        for q in 0..3 {
            assert!(sv.prob_one(q).abs() < 1e-12);
            assert!((sv.expect_z(q) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn x_flips_qubit() {
        let sv = run_circuit(2, &[g1(GateKind::X, 1, 0.0)]);
        assert!((sv.prob_one(1) - 1.0).abs() < 1e-12);
        assert!(sv.prob_one(0).abs() < 1e-12);
    }

    #[test]
    fn ry_rotates_bloch_vector() {
        let theta = 1.1;
        let sv = run_circuit(1, &[g1(GateKind::Ry, 0, theta)]);
        assert!((sv.expect_z(0) - theta.cos()).abs() < 1e-12);
    }

    #[test]
    fn bell_state_correlations() {
        let sv = run_circuit(
            2,
            &[
                g1(GateKind::H, 0, 0.0),
                BoundGate::two(GateKind::Cx, 0, 1, 0.0),
            ],
        );
        let probs = sv.probabilities();
        assert!((probs[0] - 0.5).abs() < 1e-12); // |00>
        assert!((probs[3] - 0.5).abs() < 1e-12); // |11>
        assert!(probs[1].abs() < 1e-12);
        assert!(probs[2].abs() < 1e-12);
    }

    #[test]
    fn cnot_control_ordering_matters() {
        // X on qubit 1, then CX with control=1, target=0 → both set.
        let sv = run_circuit(
            2,
            &[
                g1(GateKind::X, 1, 0.0),
                BoundGate::two(GateKind::Cx, 1, 0, 0.0),
            ],
        );
        assert!((sv.prob_one(0) - 1.0).abs() < 1e-12);
        assert!((sv.prob_one(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cry_only_rotates_when_control_set() {
        let theta = 0.8;
        let idle = run_circuit(2, &[BoundGate::two(GateKind::Cry, 0, 1, theta)]);
        assert!(idle.prob_one(1).abs() < 1e-12);

        let active = run_circuit(
            2,
            &[
                g1(GateKind::X, 0, 0.0),
                BoundGate::two(GateKind::Cry, 0, 1, theta),
            ],
        );
        assert!((active.expect_z(1) - theta.cos()).abs() < 1e-12);
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let sv = run_circuit(
            2,
            &[
                g1(GateKind::X, 0, 0.0),
                BoundGate::two(GateKind::Swap, 0, 1, 0.0),
            ],
        );
        assert!(sv.prob_one(0).abs() < 1e-12);
        assert!((sv.prob_one(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn norm_preserved_over_long_circuit() {
        let mut sv = StateVector::zero_state(4);
        let gates = [
            g1(GateKind::H, 0, 0.0),
            g1(GateKind::Rx, 1, 0.3),
            BoundGate::two(GateKind::Cry, 0, 2, 1.2),
            g1(GateKind::Rz, 3, 2.2),
            BoundGate::two(GateKind::Cx, 2, 3, 0.0),
            g1(GateKind::T, 0, 0.0),
            BoundGate::two(GateKind::Crz, 3, 1, 0.4),
        ];
        sv.run(&gates);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let a = run_circuit(2, &[g1(GateKind::Ry, 0, 0.4), g1(GateKind::Rz, 1, 1.0)]);
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rz_changes_phase_not_populations() {
        let sv0 = run_circuit(1, &[g1(GateKind::H, 0, 0.0)]);
        let sv1 = run_circuit(1, &[g1(GateKind::H, 0, 0.0), g1(GateKind::Rz, 0, PI / 3.0)]);
        assert!((sv0.prob_one(0) - sv1.prob_one(0)).abs() < 1e-12);
        assert!(sv0.fidelity(&sv1) < 1.0 - 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prob_one_checks_range() {
        let sv = StateVector::zero_state(2);
        let _ = sv.prob_one(5);
    }

    #[test]
    #[should_panic(expected = "normalised")]
    fn from_amplitudes_rejects_unnormalised() {
        let _ = StateVector::from_amplitudes(vec![Complex64::ONE, Complex64::ONE]);
    }
}

//! Monte-Carlo wavefunction (quantum-trajectory) simulation.
//!
//! The density-matrix engine in [`crate::density`] is exact but costs
//! O(4^n) per operation, which caps it at [`crate::density::MAX_DENSITY_QUBITS`]
//! qubits. This module trades exactness for reach: it *unravels* each noise
//! channel into stochastic jumps on a pure [`StateVector`]-style register,
//! so one **trajectory** costs O(2^n) per operation and the channel average
//! is recovered by averaging many independently-seeded trajectories. That
//! unlocks 14–16-qubit devices (e.g. `ibm_guadalupe`) that no dense `ρ`
//! can touch.
//!
//! # Unraveling
//!
//! The calibration-driven device model is built from depolarising channels,
//! which are *mixed-unitary*: `ρ → Σ_k p_k U_k ρ U_k†` with state-independent
//! probabilities (`I` with `1−3λ/4`, each Pauli with `λ/4`; the 16
//! two-qubit Pauli products analogously). A trajectory samples one `U_k`
//! per channel application and applies it — no renormalisation needed, the
//! sampled operator is unitary. The expectation over trajectories equals
//! the exact channel average, so per-qubit `P(1)` estimates are unbiased
//! with variance ≤ 1/4 per trajectory.
//!
//! General (non-mixed-unitary) CPTP channels, e.g. amplitude damping, are
//! supported through [`TrajectoryWorkspace::apply_channel_stochastic`]: jump
//! probabilities `p_k = ⟨ψ|K_k†K_k|ψ⟩` are computed from the state and the
//! chosen branch is renormalised.
//!
//! # Program reuse
//!
//! Trajectories execute the same compiled [`FusedProgram`]s as the density
//! engine (built once per evaluation by `transpile::fuse`), reusing its
//! prebound matrices and [`MatClass`] classification — diagonal atoms
//! (`RZ`, phases) skip the amplitude-pair gather entirely. Atoms are walked
//! in program order, so a trajectory with no stochastic atom is exactly the
//! noise-free state-vector run.
//!
//! # Determinism
//!
//! All randomness comes from the caller-seeded RNG passed in; a fixed seed
//! replays the identical jump record, which is what the cross-backend
//! consistency harness and the thread-invariance guarantees of
//! `qnn::executor::parallel` rely on.
//!
//! # Examples
//!
//! ```
//! use quasim::fused::ProgramBuilder;
//! use quasim::gate::GateKind;
//! use quasim::trajectory::{estimate_prob_one, TrajectoryWorkspace};
//!
//! let mut b = ProgramBuilder::new(2);
//! b.unitary_1q(0, GateKind::H.entries_1q(0.0).unwrap());
//! b.cx(0, 1);
//! b.depolarize_1q(1, 0.1);
//! let program = b.finish();
//!
//! let mut ws = TrajectoryWorkspace::new();
//! let est = estimate_prob_one(&mut ws, &program, &[1], 200, 7);
//! // Bell pair + weak depolarising: P(1) stays near 1/2.
//! assert!((est.p_one[0] - 0.5).abs() < 0.15);
//! ```

use crate::density::kernels::insert_zero_bit;
use crate::fused::{FusedAtom, FusedProgram, MatClass, Support, Wire};
use crate::math::{Complex64, M2, M4};
use crate::noise::KrausChannel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Largest register the trajectory engine accepts (matches
/// [`crate::statevector::StateVector`]'s cap).
pub const MAX_TRAJECTORY_QUBITS: usize = 24;

/// Applies a 2×2 matrix (not necessarily unitary) to qubit `q` in place.
///
/// All kernels here enumerate only the coupled index sets via
/// [`insert_zero_bit`] (the same bit-twiddling the density kernels use):
/// no per-index masking branch, which matters at 2^16 amplitudes per op.
fn m2_on(amps: &mut [Complex64], q: usize, m: &M2, class: MatClass) {
    let mask = 1usize << q;
    let half = amps.len() >> 1;
    if class == MatClass::Diagonal {
        // RZ / phase family: pure per-amplitude scaling, no pair gather.
        let (d0, d1) = (m[0], m[3]);
        for k in 0..half {
            let i = insert_zero_bit(k, mask);
            let j = i | mask;
            amps[i] *= d0;
            amps[j] *= d1;
        }
        return;
    }
    let (m00, m01, m10, m11) = (m[0], m[1], m[2], m[3]);
    for k in 0..half {
        let i = insert_zero_bit(k, mask);
        let j = i | mask;
        let a0 = amps[i];
        let a1 = amps[j];
        amps[i] = m00 * a0 + m01 * a1;
        amps[j] = m10 * a0 + m11 * a1;
    }
}

/// Applies a 4×4 matrix to the ordered qubit pair `(hi, lo)` in place;
/// `hi` is the most significant local bit, matching
/// [`crate::gate::GateKind::matrix`].
fn m4_on(amps: &mut [Complex64], hi: usize, lo: usize, m: &M4) {
    let mh = 1usize << hi;
    let ml = 1usize << lo;
    let (m_small, m_big) = if mh < ml { (mh, ml) } else { (ml, mh) };
    let quarter = amps.len() >> 2;
    for k in 0..quarter {
        let i = insert_zero_bit(insert_zero_bit(k, m_small), m_big);
        let idx = [i, i | ml, i | mh, i | mh | ml];
        let old = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
        for r in 0..4 {
            let mut acc = Complex64::ZERO;
            for (c, &o) in old.iter().enumerate() {
                acc += m[r * 4 + c] * o;
            }
            amps[idx[r]] = acc;
        }
    }
}

/// Applies CNOT as an index permutation.
fn cx_on(amps: &mut [Complex64], control: usize, target: usize) {
    let cm = 1usize << control;
    let tm = 1usize << target;
    let (m_small, m_big) = if cm < tm { (cm, tm) } else { (tm, cm) };
    let quarter = amps.len() >> 2;
    for k in 0..quarter {
        let i = insert_zero_bit(insert_zero_bit(k, m_small), m_big) | cm;
        amps.swap(i, i | tm);
    }
}

/// Applies a Pauli (`1 = X`, `2 = Y`, `3 = Z`) to qubit `q` in place.
fn pauli_on(amps: &mut [Complex64], q: usize, pauli: usize) {
    let mask = 1usize << q;
    let half = amps.len() >> 1;
    match pauli {
        1 => {
            for k in 0..half {
                let i = insert_zero_bit(k, mask);
                amps.swap(i, i | mask);
            }
        }
        2 => {
            for k in 0..half {
                let i = insert_zero_bit(k, mask);
                let j = i | mask;
                let a0 = amps[i];
                let a1 = amps[j];
                // Y = [[0, −i], [i, 0]].
                amps[i] = Complex64::new(a1.im, -a1.re);
                amps[j] = Complex64::new(-a0.im, a0.re);
            }
        }
        3 => {
            for k in 0..half {
                let j = insert_zero_bit(k, mask) | mask;
                let a = amps[j];
                amps[j] = Complex64::new(-a.re, -a.im);
            }
        }
        _ => unreachable!("pauli index must be 1..=3"),
    }
}

/// A reusable pure-state register for trajectory simulation.
///
/// Owns the amplitude storage (plus a scratch buffer for generic Kraus
/// unraveling), so a worker thread can run thousands of trajectories with
/// one allocation: [`TrajectoryWorkspace::reset_zero`] re-initialises in
/// place and [`TrajectoryWorkspace::run_stochastic`] executes a fused
/// program with stochastic jumps.
#[derive(Debug, Clone, Default)]
pub struct TrajectoryWorkspace {
    n_qubits: usize,
    amps: Vec<Complex64>,
    scratch: Vec<Complex64>,
}

impl TrajectoryWorkspace {
    /// Creates an empty workspace (no storage until the first reset).
    pub fn new() -> Self {
        TrajectoryWorkspace::default()
    }

    /// Re-initialises the state to `|0…0⟩` over `n_qubits`, reusing the
    /// buffer when large enough.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is 0 or greater than
    /// [`MAX_TRAJECTORY_QUBITS`].
    pub fn reset_zero(&mut self, n_qubits: usize) {
        assert!(
            (1..=MAX_TRAJECTORY_QUBITS).contains(&n_qubits),
            "unsupported qubit count"
        );
        self.n_qubits = n_qubits;
        self.amps.clear();
        self.amps.resize(1usize << n_qubits, Complex64::ZERO);
        self.amps[0] = Complex64::ONE;
    }

    /// Number of qubits of the current state (0 before the first reset).
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Raw amplitudes (length `2^n`).
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Probability of measuring qubit `q` as `1`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn prob_one(&self, q: usize) -> f64 {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let mask = 1usize << q;
        (0..self.amps.len() >> 1)
            .map(|k| self.amps[insert_zero_bit(k, mask) | mask].norm_sqr())
            .sum()
    }

    /// Squared norm (1 up to rounding for mixed-unitary unravelings).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Executes one trajectory of a fused program: unitary atoms apply
    /// exactly, depolarising atoms sample one Pauli jump each from `rng`.
    ///
    /// A program with no stochastic atom is deterministic and identical to
    /// the noise-free state-vector run.
    ///
    /// # Panics
    ///
    /// Panics if the program's qubit count differs from the workspace's
    /// current register (reset first).
    pub fn run_stochastic(&mut self, program: &FusedProgram, rng: &mut StdRng) {
        assert_eq!(
            program.n_qubits(),
            self.n_qubits,
            "program/workspace qubit count mismatch"
        );
        for seg in program.segments() {
            match seg.support() {
                Support::One(q) => {
                    for atom in program.atoms_in(seg) {
                        match *atom {
                            FusedAtom::Unitary1 { m2, class } => {
                                m2_on(&mut self.amps, q, program.m2(m2), class);
                            }
                            FusedAtom::Depol1 { lambda } => self.jump_depol1(q, lambda, rng),
                            _ => unreachable!("two-qubit atom in one-qubit segment"),
                        }
                    }
                }
                Support::Two(a, b) => {
                    for atom in program.atoms_in(seg) {
                        match *atom {
                            FusedAtom::Cx { control } => {
                                let (c, t) = if control == Wire::A { (a, b) } else { (b, a) };
                                cx_on(&mut self.amps, c, t);
                            }
                            FusedAtom::Unitary2 { m4, swapped } => {
                                let (hi, lo) = if swapped { (b, a) } else { (a, b) };
                                m4_on(&mut self.amps, hi, lo, program.m4(m4));
                            }
                            FusedAtom::Depol2 { lambda, swapped } => {
                                let (first, second) = if swapped { (b, a) } else { (a, b) };
                                self.jump_depol2(first, second, lambda, rng);
                            }
                            _ => unreachable!("one-qubit atom in two-qubit segment"),
                        }
                    }
                }
            }
        }
    }

    /// One-qubit depolarising jump: identity with probability `1 − 3λ/4`,
    /// otherwise a uniformly chosen Pauli.
    fn jump_depol1(&mut self, q: usize, lambda: f64, rng: &mut StdRng) {
        let l = lambda.clamp(0.0, 1.0);
        let u: f64 = rng.gen();
        let w_id = 1.0 - 3.0 * l / 4.0;
        if u < w_id {
            return;
        }
        // Map the residual mass onto the three Paulis; the clamp guards the
        // u ≈ 1 rounding edge.
        let k = (((u - w_id) / (l / 4.0)) as usize).min(2) + 1;
        pauli_on(&mut self.amps, q, k);
    }

    /// Two-qubit depolarising jump: `I⊗I` with probability `1 − 15λ/16`,
    /// otherwise one of the 15 non-identity Pauli products.
    fn jump_depol2(&mut self, first: usize, second: usize, lambda: f64, rng: &mut StdRng) {
        let l = lambda.clamp(0.0, 1.0);
        let u: f64 = rng.gen();
        let w_id = 1.0 - 15.0 * l / 16.0;
        if u < w_id {
            return;
        }
        let k = (((u - w_id) / (l / 16.0)) as usize).min(14) + 1;
        let (pa, pb) = (k >> 2, k & 3);
        if pa != 0 {
            pauli_on(&mut self.amps, first, pa);
        }
        if pb != 0 {
            pauli_on(&mut self.amps, second, pb);
        }
    }

    /// Stochastically unravels a general CPTP channel: computes the jump
    /// probabilities `p_k = ⟨ψ|K_k†K_k|ψ⟩`, samples a branch, applies its
    /// Kraus operator, and renormalises. Returns the chosen branch index.
    ///
    /// This is the path for channels that are *not* mixed-unitary (e.g.
    /// [`KrausChannel::amplitude_damping`]); depolarising noise inside
    /// fused programs goes through the cheaper Pauli-jump sampling.
    ///
    /// # Panics
    ///
    /// Panics if `qubits.len() != channel.arity()` or an index is invalid.
    pub fn apply_channel_stochastic(
        &mut self,
        channel: &KrausChannel,
        qubits: &[usize],
        rng: &mut StdRng,
    ) -> usize {
        assert_eq!(
            qubits.len(),
            channel.arity(),
            "channel arity does not match qubit count"
        );
        for &q in qubits {
            assert!(q < self.n_qubits, "qubit {q} out of range");
        }
        if channel.arity() == 2 {
            assert_ne!(qubits[0], qubits[1], "qubits must be distinct");
        }
        // Applies Kraus operator `k` to the current state into `scratch`
        // and returns its branch probability ⟨ψ|K†K|ψ⟩.
        let apply_branch = |scratch: &mut Vec<Complex64>, amps: &[Complex64], k: usize| -> f64 {
            scratch.clear();
            scratch.extend_from_slice(amps);
            let kraus = &channel.kraus_ops()[k];
            match channel.arity() {
                1 => {
                    let m = kraus.to_2x2().expect("one-qubit Kraus operator");
                    m2_on(scratch, qubits[0], &m, crate::fused::classify2(&m));
                }
                _ => {
                    let m = kraus.to_4x4().expect("two-qubit Kraus operator");
                    m4_on(scratch, qubits[0], qubits[1], &m);
                }
            }
            scratch.iter().map(|a| a.norm_sqr()).sum()
        };
        let u: f64 = rng.gen();
        let mut cum = 0.0;
        let mut chosen: Option<(usize, f64)> = None;
        let mut in_scratch: Option<usize> = None;
        for k in 0..channel.kraus_ops().len() {
            let p = apply_branch(&mut self.scratch, &self.amps, k);
            in_scratch = Some(k);
            if p <= 0.0 {
                continue;
            }
            cum += p;
            chosen = Some((k, p));
            if u < cum {
                break;
            }
        }
        let (k, p) = chosen.expect("CPTP channel must have a positive-probability branch");
        // Rounding in the cumulative sum can run the loop off the end with
        // a later (possibly zero-probability) branch still in scratch;
        // re-apply the branch that was actually selected.
        if in_scratch != Some(k) {
            apply_branch(&mut self.scratch, &self.amps, k);
        }
        let inv = Complex64::real(1.0 / p.sqrt());
        for (a, s) in self.amps.iter_mut().zip(self.scratch.iter()) {
            *a = *s * inv;
        }
        k
    }
}

/// Per-qubit `P(1)` estimate from a batch of trajectories, with the
/// standard error the cross-backend consistency harness derives its
/// confidence bound from.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryEstimate {
    /// Qubits the estimate covers, in request order.
    pub qubits: Vec<usize>,
    /// Mean `P(1)` per qubit (unbiased estimate of the exact channel
    /// average).
    pub p_one: Vec<f64>,
    /// Standard error of each mean (`√(s² / N)` with the sample variance
    /// `s²`; 0 when the program is deterministic).
    pub std_err: Vec<f64>,
    /// Number of trajectories averaged (1 for deterministic programs).
    pub n_trajectories: u32,
}

impl TrajectoryEstimate {
    /// `P(1)` of a covered qubit.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not one of the estimated qubits.
    pub fn p_one_of(&self, q: usize) -> f64 {
        let idx = self
            .qubits
            .iter()
            .position(|&x| x == q)
            .unwrap_or_else(|| panic!("qubit {q} not covered by this estimate"));
        self.p_one[idx]
    }

    /// `⟨Z⟩ = 1 − 2·P(1)` per covered qubit.
    pub fn z_scores(&self) -> Vec<f64> {
        self.p_one.iter().map(|p| 1.0 - 2.0 * p).collect()
    }

    /// Standard error of each Z score (`2 ×` the `P(1)` standard error).
    pub fn z_std_err(&self) -> Vec<f64> {
        self.std_err.iter().map(|s| 2.0 * s).collect()
    }
}

/// Averages `n_trajectories` seeded trajectories of `program` and returns
/// per-qubit `P(1)` estimates with standard errors.
///
/// Deterministic: the whole batch draws from one `StdRng` seeded with
/// `seed`, so identical `(program, qubits, n_trajectories, seed)` inputs
/// return identical bits on any thread. Programs with no stochastic atom
/// short-circuit to a single exact trajectory.
///
/// # Panics
///
/// Panics if `n_trajectories == 0` or a qubit is out of range.
pub fn estimate_prob_one(
    ws: &mut TrajectoryWorkspace,
    program: &FusedProgram,
    qubits: &[usize],
    n_trajectories: u32,
    seed: u64,
) -> TrajectoryEstimate {
    assert!(n_trajectories > 0, "need at least one trajectory");
    let n = if program.is_deterministic() {
        1
    } else {
        n_trajectories
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum = vec![0.0f64; qubits.len()];
    let mut sum_sq = vec![0.0f64; qubits.len()];
    for _ in 0..n {
        ws.reset_zero(program.n_qubits());
        ws.run_stochastic(program, &mut rng);
        for (i, &q) in qubits.iter().enumerate() {
            let p = ws.prob_one(q);
            sum[i] += p;
            sum_sq[i] += p * p;
        }
    }
    let nf = n as f64;
    let p_one: Vec<f64> = sum.iter().map(|s| s / nf).collect();
    let std_err: Vec<f64> = sum_sq
        .iter()
        .zip(p_one.iter())
        .map(|(&sq, &m)| {
            if n < 2 {
                0.0
            } else {
                let var = ((sq - nf * m * m) / (nf - 1.0)).max(0.0);
                (var / nf).sqrt()
            }
        })
        .collect();
    TrajectoryEstimate {
        qubits: qubits.to_vec(),
        p_one,
        std_err,
        n_trajectories: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::DensityMatrix;
    use crate::fused::ProgramBuilder;
    use crate::gate::{BoundGate, GateKind};
    use crate::statevector::run_circuit;

    #[test]
    fn deterministic_program_matches_statevector_bits() {
        let gates = [
            BoundGate::one(GateKind::H, 0, 0.0),
            BoundGate::one(GateKind::Ry, 1, 0.7),
            BoundGate::two(GateKind::Cx, 0, 2, 0.0),
            BoundGate::one(GateKind::Rz, 2, -0.4),
            BoundGate::two(GateKind::Crz, 2, 1, 1.1),
        ];
        let reference = run_circuit(3, &gates);

        let mut b = ProgramBuilder::new(3);
        b.unitary_1q(0, GateKind::H.entries_1q(0.0).unwrap());
        b.unitary_1q(1, GateKind::Ry.entries_1q(0.7).unwrap());
        b.cx(0, 2);
        b.unitary_1q(2, GateKind::Rz.entries_1q(-0.4).unwrap());
        b.unitary_2q(2, 1, GateKind::Crz.entries_2q(1.1).unwrap());
        let program = b.finish();
        assert!(program.is_deterministic());

        let mut ws = TrajectoryWorkspace::new();
        let est = estimate_prob_one(&mut ws, &program, &[0, 1, 2], 500, 3);
        // Deterministic programs short-circuit to one exact pass.
        assert_eq!(est.n_trajectories, 1);
        for (q, (p, se)) in est.p_one.iter().zip(est.std_err.iter()).enumerate() {
            assert_eq!(p.to_bits(), reference.prob_one(q).to_bits());
            assert_eq!(*se, 0.0);
        }
    }

    #[test]
    fn estimate_is_seed_deterministic() {
        // Asymmetric rotation so Pauli jumps genuinely move the marginals
        // (on a Bell pair every Pauli jump leaves P(1) at 1/2).
        let mut b = ProgramBuilder::new(2);
        b.unitary_1q(0, GateKind::Ry.entries_1q(0.7).unwrap());
        b.depolarize_1q(0, 0.2);
        b.cx(0, 1);
        b.depolarize_2q(0.1, 0, 1);
        let program = b.finish();
        let mut ws = TrajectoryWorkspace::new();
        let a = estimate_prob_one(&mut ws, &program, &[0, 1], 64, 42);
        let b2 = estimate_prob_one(&mut ws, &program, &[0, 1], 64, 42);
        assert_eq!(a, b2);
        let c = estimate_prob_one(&mut ws, &program, &[0, 1], 64, 43);
        assert_ne!(a.p_one, c.p_one);
    }

    #[test]
    fn depolarising_average_converges_to_density_matrix() {
        // X then strong depolarising on qubit 0: exact P(1) from ρ.
        let lambda = 0.6;
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&BoundGate::one(GateKind::X, 0, 0.0));
        rho.apply_depolarizing_1q(lambda, 0);
        rho.apply_cx(0, 1);
        rho.apply_depolarizing_2q(0.3, 0, 1);
        let exact = [rho.prob_one(0), rho.prob_one(1)];

        let mut b = ProgramBuilder::new(2);
        b.unitary_1q(0, GateKind::X.entries_1q(0.0).unwrap());
        b.depolarize_1q(0, lambda);
        b.cx(0, 1);
        b.depolarize_2q(0.3, 0, 1);
        let program = b.finish();
        let mut ws = TrajectoryWorkspace::new();
        let est = estimate_prob_one(&mut ws, &program, &[0, 1], 4000, 11);
        for (i, &e) in exact.iter().enumerate() {
            let bound = 6.0 * est.std_err[i] + 1e-9;
            assert!(
                (est.p_one[i] - e).abs() <= bound,
                "qubit {i}: {} vs exact {e} (bound {bound})",
                est.p_one[i]
            );
        }
    }

    #[test]
    fn trajectories_preserve_norm() {
        let mut b = ProgramBuilder::new(3);
        b.unitary_1q(0, GateKind::H.entries_1q(0.0).unwrap());
        b.depolarize_1q(0, 0.9);
        b.cx(0, 1);
        b.depolarize_2q(0.8, 0, 1);
        b.unitary_2q(1, 2, GateKind::Cry.entries_2q(0.8).unwrap());
        let program = b.finish();
        let mut ws = TrajectoryWorkspace::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            ws.reset_zero(3);
            ws.run_stochastic(&program, &mut rng);
            assert!((ws.norm_sqr() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn amplitude_damping_unravels_to_ground_state() {
        // γ = 1 damping always jumps |1⟩ → |0⟩, whichever branch fires.
        let ch = KrausChannel::amplitude_damping(1.0);
        let mut ws = TrajectoryWorkspace::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            ws.reset_zero(1);
            m2_on(
                &mut ws.amps,
                0,
                &GateKind::X.entries_1q(0.0).unwrap(),
                MatClass::Real,
            );
            ws.apply_channel_stochastic(&ch, &[0], &mut rng);
            assert!(ws.prob_one(0) < 1e-12);
            assert!((ws.norm_sqr() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn generic_kraus_unraveling_matches_channel_average() {
        // |+⟩ through amplitude damping: exact ρ vs trajectory average.
        let gamma = 0.35;
        let ch = KrausChannel::amplitude_damping(gamma);
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&BoundGate::one(GateKind::H, 0, 0.0));
        rho.apply_channel(&ch, &[0]);
        let exact = rho.prob_one(0);

        let mut ws = TrajectoryWorkspace::new();
        let mut rng = StdRng::seed_from_u64(17);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            ws.reset_zero(1);
            m2_on(
                &mut ws.amps,
                0,
                GateKind::H.fixed_entries_1q().unwrap(),
                MatClass::Real,
            );
            ws.apply_channel_stochastic(&ch, &[0], &mut rng);
            sum += ws.prob_one(0);
        }
        let mean = sum / n as f64;
        assert!(
            (mean - exact).abs() < 0.01,
            "trajectory mean {mean} vs exact {exact}"
        );
    }

    #[test]
    #[should_panic(expected = "unsupported qubit count")]
    fn workspace_rejects_oversized_register() {
        let mut ws = TrajectoryWorkspace::new();
        ws.reset_zero(MAX_TRAJECTORY_QUBITS + 1);
    }

    #[test]
    #[should_panic(expected = "at least one trajectory")]
    fn estimate_rejects_zero_trajectories() {
        let mut b = ProgramBuilder::new(1);
        b.depolarize_1q(0, 0.1);
        let program = b.finish();
        let mut ws = TrajectoryWorkspace::new();
        let _ = estimate_prob_one(&mut ws, &program, &[0], 0, 0);
    }
}

//! Monte-Carlo wavefunction (quantum-trajectory) simulation.
//!
//! The density-matrix engine in [`crate::density`] is exact but costs
//! O(4^n) per operation, which caps it at [`crate::density::MAX_DENSITY_QUBITS`]
//! qubits. This module trades exactness for reach: it *unravels* each noise
//! channel into stochastic jumps on a pure [`StateVector`]-style register,
//! so one **trajectory** costs O(2^n) per operation and the channel average
//! is recovered by averaging many independently-seeded trajectories. That
//! unlocks 14–16-qubit devices (e.g. `ibm_guadalupe`) that no dense `ρ`
//! can touch.
//!
//! # Unraveling
//!
//! The calibration-driven device model is built from depolarising channels,
//! which are *mixed-unitary*: `ρ → Σ_k p_k U_k ρ U_k†` with state-independent
//! probabilities (`I` with `1−3λ/4`, each Pauli with `λ/4`; the 16
//! two-qubit Pauli products analogously). A trajectory samples one `U_k`
//! per channel application and applies it — no renormalisation needed, the
//! sampled operator is unitary. The expectation over trajectories equals
//! the exact channel average, so per-qubit `P(1)` estimates are unbiased
//! with variance ≤ 1/4 per trajectory.
//!
//! General (non-mixed-unitary) CPTP channels, e.g. amplitude damping, are
//! supported through [`TrajectoryWorkspace::apply_channel_stochastic`]: jump
//! probabilities `p_k = ⟨ψ|K_k†K_k|ψ⟩` are computed from the state and the
//! chosen branch is renormalised.
//!
//! # Program reuse
//!
//! Trajectories execute the same compiled [`FusedProgram`]s as the density
//! engine (built once per evaluation by `transpile::fuse`), reusing its
//! prebound matrices and [`MatClass`] classification — diagonal atoms
//! (`RZ`, phases) skip the amplitude-pair gather entirely. Atoms are walked
//! in program order, so a trajectory with no stochastic atom is exactly the
//! noise-free state-vector run.
//!
//! # Batched panels
//!
//! [`TrajectoryPanel`] executes `B` trajectories at once on one contiguous
//! `2^n × B` amplitude panel: every fused atom is applied a single time
//! across all columns, amortising matrix classification, segment dispatch,
//! and index arithmetic `B`-fold while turning the inner loops into
//! straight-line sweeps over adjacent memory. Stochastic jumps stay
//! per-column (each column pre-draws its own uniforms), so
//! [`estimate_prob_one_panel`] is **bit-identical** to
//! [`estimate_prob_one`] at every panel width — the width
//! (`QUCAD_TRAJ_BATCH`, default [`auto_panel_width`]) is purely a
//! performance knob.
//!
//! # Determinism
//!
//! All randomness comes from the caller-seeded RNG passed in; a fixed seed
//! replays the identical jump record, which is what the cross-backend
//! consistency harness and the thread-invariance guarantees of
//! `qnn::executor::parallel` rely on. The panel engine consumes the same
//! stream in the same trajectory-major order, so seeds mean the same
//! thing on both engines.
//!
//! # Examples
//!
//! ```
//! use quasim::fused::ProgramBuilder;
//! use quasim::gate::GateKind;
//! use quasim::trajectory::{estimate_prob_one, TrajectoryWorkspace};
//!
//! let mut b = ProgramBuilder::new(2);
//! b.unitary_1q(0, GateKind::H.entries_1q(0.0).unwrap());
//! b.cx(0, 1);
//! b.depolarize_1q(1, 0.1);
//! let program = b.finish();
//!
//! let mut ws = TrajectoryWorkspace::new();
//! let est = estimate_prob_one(&mut ws, &program, &[1], 200, 7);
//! // Bell pair + weak depolarising: P(1) stays near 1/2.
//! assert!((est.p_one[0] - 0.5).abs() < 0.15);
//! ```

use crate::density::kernels::insert_zero_bit;
use crate::fused::{FusedAtom, FusedProgram, MatClass, Segment, Support, Wire};
use crate::math::{Complex64, M2, M4};
use crate::noise::KrausChannel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Largest register the trajectory engine accepts (matches
/// [`crate::statevector::StateVector`]'s cap).
pub const MAX_TRAJECTORY_QUBITS: usize = 24;

/// Applies a 2×2 matrix (not necessarily unitary) to qubit `q` in place.
///
/// All kernels here enumerate only the coupled index sets via
/// [`insert_zero_bit`] (the same bit-twiddling the density kernels use):
/// no per-index masking branch, which matters at 2^16 amplitudes per op.
fn m2_on(amps: &mut [Complex64], q: usize, m: &M2, class: MatClass) {
    let mask = 1usize << q;
    let half = amps.len() >> 1;
    if class == MatClass::Diagonal {
        // RZ / phase family: pure per-amplitude scaling, no pair gather.
        let (d0, d1) = (m[0], m[3]);
        for k in 0..half {
            let i = insert_zero_bit(k, mask);
            let j = i | mask;
            amps[i] *= d0;
            amps[j] *= d1;
        }
        return;
    }
    if class == MatClass::Real {
        // RY / H / Pauli family: every entry has exactly zero imaginary
        // part (`classify2`), so the real and imaginary planes transform
        // independently — half the arithmetic of the general path. The
        // panel kernels' Real branch uses these same expressions, keeping
        // the two engines bit-identical.
        let (m00, m01, m10, m11) = (m[0].re, m[1].re, m[2].re, m[3].re);
        for k in 0..half {
            let i = insert_zero_bit(k, mask);
            let j = i | mask;
            let a0 = amps[i];
            let a1 = amps[j];
            amps[i] = Complex64::new(m00 * a0.re + m01 * a1.re, m00 * a0.im + m01 * a1.im);
            amps[j] = Complex64::new(m10 * a0.re + m11 * a1.re, m10 * a0.im + m11 * a1.im);
        }
        return;
    }
    let (m00, m01, m10, m11) = (m[0], m[1], m[2], m[3]);
    for k in 0..half {
        let i = insert_zero_bit(k, mask);
        let j = i | mask;
        let a0 = amps[i];
        let a1 = amps[j];
        amps[i] = m00 * a0 + m01 * a1;
        amps[j] = m10 * a0 + m11 * a1;
    }
}

/// Applies a 4×4 matrix to the ordered qubit pair `(hi, lo)` in place;
/// `hi` is the most significant local bit, matching
/// [`crate::gate::GateKind::matrix`].
fn m4_on(amps: &mut [Complex64], hi: usize, lo: usize, m: &M4) {
    let mh = 1usize << hi;
    let ml = 1usize << lo;
    let (m_small, m_big) = if mh < ml { (mh, ml) } else { (ml, mh) };
    let quarter = amps.len() >> 2;
    for k in 0..quarter {
        let i = insert_zero_bit(insert_zero_bit(k, m_small), m_big);
        let idx = [i, i | ml, i | mh, i | mh | ml];
        let old = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
        for r in 0..4 {
            let mut acc = Complex64::ZERO;
            for (c, &o) in old.iter().enumerate() {
                acc += m[r * 4 + c] * o;
            }
            amps[idx[r]] = acc;
        }
    }
}

/// Applies CNOT as an index permutation.
fn cx_on(amps: &mut [Complex64], control: usize, target: usize) {
    let cm = 1usize << control;
    let tm = 1usize << target;
    let (m_small, m_big) = if cm < tm { (cm, tm) } else { (tm, cm) };
    let quarter = amps.len() >> 2;
    for k in 0..quarter {
        let i = insert_zero_bit(insert_zero_bit(k, m_small), m_big) | cm;
        amps.swap(i, i | tm);
    }
}

/// Applies a Pauli (`1 = X`, `2 = Y`, `3 = Z`) to qubit `q` in place.
fn pauli_on(amps: &mut [Complex64], q: usize, pauli: usize) {
    let mask = 1usize << q;
    let half = amps.len() >> 1;
    match pauli {
        1 => {
            for k in 0..half {
                let i = insert_zero_bit(k, mask);
                amps.swap(i, i | mask);
            }
        }
        2 => {
            for k in 0..half {
                let i = insert_zero_bit(k, mask);
                let j = i | mask;
                let a0 = amps[i];
                let a1 = amps[j];
                // Y = [[0, −i], [i, 0]].
                amps[i] = Complex64::new(a1.im, -a1.re);
                amps[j] = Complex64::new(-a0.im, a0.re);
            }
        }
        3 => {
            for k in 0..half {
                let j = insert_zero_bit(k, mask) | mask;
                let a = amps[j];
                amps[j] = Complex64::new(-a.re, -a.im);
            }
        }
        _ => unreachable!("pauli index must be 1..=3"),
    }
}

/// Maps one uniform draw to a one-qubit depolarising branch: `0` is the
/// identity (probability `1 − 3λ/4`), `1..=3` the Paulis (λ/4 each).
///
/// Shared by the per-trajectory and panel engines so the two can never
/// disagree on a branch for the same `(λ, u)` pair — the foundation of
/// their bit-identity contract.
#[inline]
fn depol1_branch(lambda: f64, u: f64) -> usize {
    let l = lambda.clamp(0.0, 1.0);
    let w_id = 1.0 - 3.0 * l / 4.0;
    if u < w_id {
        return 0;
    }
    // Map the residual mass onto the three Paulis; the clamp guards the
    // u ≈ 1 rounding edge.
    (((u - w_id) / (l / 4.0)) as usize).min(2) + 1
}

/// Maps one uniform draw to a two-qubit depolarising branch: `0` is `I⊗I`
/// (probability `1 − 15λ/16`), `1..=15` index the non-identity Pauli
/// products as `(k >> 2, k & 3)`.
#[inline]
fn depol2_branch(lambda: f64, u: f64) -> usize {
    let l = lambda.clamp(0.0, 1.0);
    let w_id = 1.0 - 15.0 * l / 16.0;
    if u < w_id {
        return 0;
    }
    (((u - w_id) / (l / 16.0)) as usize).min(14) + 1
}

/// A reusable pure-state register for trajectory simulation.
///
/// Owns the amplitude storage (plus a scratch buffer for generic Kraus
/// unraveling), so a worker thread can run thousands of trajectories with
/// one allocation: [`TrajectoryWorkspace::reset_zero`] re-initialises in
/// place and [`TrajectoryWorkspace::run_stochastic`] executes a fused
/// program with stochastic jumps.
#[derive(Debug, Clone, Default)]
pub struct TrajectoryWorkspace {
    n_qubits: usize,
    amps: Vec<Complex64>,
    scratch: Vec<Complex64>,
}

impl TrajectoryWorkspace {
    /// Creates an empty workspace (no storage until the first reset).
    pub fn new() -> Self {
        TrajectoryWorkspace::default()
    }

    /// Re-initialises the state to `|0…0⟩` over `n_qubits`, reusing the
    /// buffer when large enough.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is 0 or greater than
    /// [`MAX_TRAJECTORY_QUBITS`].
    pub fn reset_zero(&mut self, n_qubits: usize) {
        assert!(
            (1..=MAX_TRAJECTORY_QUBITS).contains(&n_qubits),
            "unsupported qubit count"
        );
        self.n_qubits = n_qubits;
        self.amps.clear();
        self.amps.resize(1usize << n_qubits, Complex64::ZERO);
        self.amps[0] = Complex64::ONE;
    }

    /// Number of qubits of the current state (0 before the first reset).
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Raw amplitudes (length `2^n`).
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Probability of measuring qubit `q` as `1`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn prob_one(&self, q: usize) -> f64 {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let mask = 1usize << q;
        (0..self.amps.len() >> 1)
            .map(|k| self.amps[insert_zero_bit(k, mask) | mask].norm_sqr())
            .sum()
    }

    /// `P(1)` of **every** qubit in one pass over the amplitudes.
    ///
    /// [`TrajectoryWorkspace::prob_one`] walks the full vector once *per
    /// qubit*; estimating all marginals that way costs `n` memory sweeps.
    /// This accumulates every qubit's probability in a single sweep — for
    /// each amplitude the squared norm is added to the accumulator of each
    /// set bit — and is **bit-identical** per qubit to `prob_one`: both
    /// visit the set-bit indices in increasing order, so the `f64` addition
    /// sequence is the same.
    pub fn probs_one_all(&self) -> Vec<f64> {
        let mut acc = vec![0.0f64; self.n_qubits];
        for (i, a) in self.amps.iter().enumerate() {
            let n = a.norm_sqr();
            let mut bits = i;
            while bits != 0 {
                acc[bits.trailing_zeros() as usize] += n;
                bits &= bits - 1;
            }
        }
        acc
    }

    /// Squared norm (1 up to rounding for mixed-unitary unravelings).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Executes one trajectory of a fused program: unitary atoms apply
    /// exactly, depolarising atoms sample one Pauli jump each from `rng`.
    ///
    /// A program with no stochastic atom is deterministic and identical to
    /// the noise-free state-vector run.
    ///
    /// # Panics
    ///
    /// Panics if the program's qubit count differs from the workspace's
    /// current register (reset first).
    pub fn run_stochastic(&mut self, program: &FusedProgram, rng: &mut StdRng) {
        assert_eq!(
            program.n_qubits(),
            self.n_qubits,
            "program/workspace qubit count mismatch"
        );
        for seg in program.segments() {
            match seg.support() {
                Support::One(q) => {
                    for atom in program.atoms_in(seg) {
                        match *atom {
                            FusedAtom::Unitary1 { m2, class } => {
                                m2_on(&mut self.amps, q, program.m2(m2), class);
                            }
                            FusedAtom::Depol1 { lambda } => self.jump_depol1(q, lambda, rng),
                            _ => unreachable!("two-qubit atom in one-qubit segment"),
                        }
                    }
                }
                Support::Two(a, b) => {
                    for atom in program.atoms_in(seg) {
                        match *atom {
                            FusedAtom::Cx { control } => {
                                let (c, t) = if control == Wire::A { (a, b) } else { (b, a) };
                                cx_on(&mut self.amps, c, t);
                            }
                            FusedAtom::Unitary2 { m4, swapped } => {
                                let (hi, lo) = if swapped { (b, a) } else { (a, b) };
                                m4_on(&mut self.amps, hi, lo, program.m4(m4));
                            }
                            FusedAtom::Depol2 { lambda, swapped } => {
                                let (first, second) = if swapped { (b, a) } else { (a, b) };
                                self.jump_depol2(first, second, lambda, rng);
                            }
                            _ => unreachable!("one-qubit atom in two-qubit segment"),
                        }
                    }
                }
            }
        }
    }

    /// One-qubit depolarising jump: identity with probability `1 − 3λ/4`,
    /// otherwise a uniformly chosen Pauli.
    fn jump_depol1(&mut self, q: usize, lambda: f64, rng: &mut StdRng) {
        match depol1_branch(lambda, rng.gen()) {
            0 => {}
            k => pauli_on(&mut self.amps, q, k),
        }
    }

    /// Two-qubit depolarising jump: `I⊗I` with probability `1 − 15λ/16`,
    /// otherwise one of the 15 non-identity Pauli products.
    fn jump_depol2(&mut self, first: usize, second: usize, lambda: f64, rng: &mut StdRng) {
        let k = depol2_branch(lambda, rng.gen());
        let (pa, pb) = (k >> 2, k & 3);
        if pa != 0 {
            pauli_on(&mut self.amps, first, pa);
        }
        if pb != 0 {
            pauli_on(&mut self.amps, second, pb);
        }
    }

    /// Stochastically unravels a general CPTP channel: computes the jump
    /// probabilities `p_k = ⟨ψ|K_k†K_k|ψ⟩`, samples a branch, applies its
    /// Kraus operator, and renormalises. Returns the chosen branch index.
    ///
    /// This is the path for channels that are *not* mixed-unitary (e.g.
    /// [`KrausChannel::amplitude_damping`]); depolarising noise inside
    /// fused programs goes through the cheaper Pauli-jump sampling.
    ///
    /// # Panics
    ///
    /// Panics if `qubits.len() != channel.arity()` or an index is invalid.
    pub fn apply_channel_stochastic(
        &mut self,
        channel: &KrausChannel,
        qubits: &[usize],
        rng: &mut StdRng,
    ) -> usize {
        assert_eq!(
            qubits.len(),
            channel.arity(),
            "channel arity does not match qubit count"
        );
        for &q in qubits {
            assert!(q < self.n_qubits, "qubit {q} out of range");
        }
        if channel.arity() == 2 {
            assert_ne!(qubits[0], qubits[1], "qubits must be distinct");
        }
        // Applies Kraus operator `k` to the current state into `scratch`
        // and returns its branch probability ⟨ψ|K†K|ψ⟩.
        let apply_branch = |scratch: &mut Vec<Complex64>, amps: &[Complex64], k: usize| -> f64 {
            scratch.clear();
            scratch.extend_from_slice(amps);
            let kraus = &channel.kraus_ops()[k];
            match channel.arity() {
                1 => {
                    let m = kraus.to_2x2().expect("one-qubit Kraus operator");
                    m2_on(scratch, qubits[0], &m, crate::fused::classify2(&m));
                }
                _ => {
                    let m = kraus.to_4x4().expect("two-qubit Kraus operator");
                    m4_on(scratch, qubits[0], qubits[1], &m);
                }
            }
            scratch.iter().map(|a| a.norm_sqr()).sum()
        };
        let u: f64 = rng.gen();
        let mut cum = 0.0;
        let mut chosen: Option<(usize, f64)> = None;
        let mut in_scratch: Option<usize> = None;
        for k in 0..channel.kraus_ops().len() {
            let p = apply_branch(&mut self.scratch, &self.amps, k);
            in_scratch = Some(k);
            if p <= 0.0 {
                continue;
            }
            cum += p;
            chosen = Some((k, p));
            if u < cum {
                break;
            }
        }
        let (k, p) = chosen.expect("CPTP channel must have a positive-probability branch");
        // Rounding in the cumulative sum can run the loop off the end with
        // a later (possibly zero-probability) branch still in scratch;
        // re-apply the branch that was actually selected.
        if in_scratch != Some(k) {
            apply_branch(&mut self.scratch, &self.amps, k);
        }
        let inv = Complex64::real(1.0 / p.sqrt());
        for (a, s) in self.amps.iter_mut().zip(self.scratch.iter()) {
            *a = *s * inv;
        }
        k
    }
}

/// Hard cap on the panel width (columns per [`TrajectoryPanel`] chunk),
/// bounding panel storage at `2^n × 4096` amplitudes.
pub const MAX_PANEL_WIDTH: usize = 4096;

/// Columns the auto width never drops below: the tiled passes touch a
/// fixed working-set strip (a handful of `TILE_ELEMS`-sized strips per
/// plane) regardless of the register size, and the explicit-SIMD kernels
/// want at least one full 4-lane AVX2 vector of adjacent columns.
pub const MIN_AUTO_PANEL_WIDTH: usize = 4;

/// Default panel width for an `n_qubits` register: as wide as possible
/// (more columns amortise pass dispatch and index arithmetic and give the
/// kernels longer contiguous inner loops) while the whole panel stays
/// within an ~8 MiB streaming budget, capped at 16 columns — measured on
/// the `fig10_guadalupe` scenario and the criterion panel benches, wider
/// panels only add last-level-cache pressure without throughput.
///
/// The budget is a *streaming* heuristic, not a residency requirement:
/// the tiled passes only ever hold a cache-sized strip of the panel, so
/// a register too wide for the budget still wants enough columns to fill
/// the SIMD lanes and amortise dispatch. The width therefore never drops
/// below [`MIN_AUTO_PANEL_WIDTH`] — registers of 18+ qubits stream the
/// panel through cache either way, and starving them of columns used to
/// silently degenerate the panel engine to per-trajectory execution
/// (width 1 at ≥ 20 qubits). Use [`auto_panel_width_is_clamped`] to
/// detect the clamped regime (the perf harness reports it).
pub fn auto_panel_width(n_qubits: usize) -> usize {
    const PANEL_BYTES_BUDGET: usize = 8 << 20;
    let bytes_per_column = (2 * std::mem::size_of::<f64>()) << n_qubits;
    (PANEL_BYTES_BUDGET / bytes_per_column).clamp(MIN_AUTO_PANEL_WIDTH, 16)
}

/// Whether [`auto_panel_width`] was held at the [`MIN_AUTO_PANEL_WIDTH`]
/// floor for this register (the streaming budget alone would have chosen
/// fewer columns). Diagnostic only — the width stays a pure performance
/// knob either way.
pub fn auto_panel_width_is_clamped(n_qubits: usize) -> bool {
    const PANEL_BYTES_BUDGET: usize = 8 << 20;
    let bytes_per_column = (2 * std::mem::size_of::<f64>()) << n_qubits;
    PANEL_BYTES_BUDGET / bytes_per_column < MIN_AUTO_PANEL_WIDTH
}

/// Resolves the panel width for a run: the `QUCAD_TRAJ_BATCH` environment
/// variable when set (a positive integer, clamped to [`MAX_PANEL_WIDTH`]),
/// otherwise [`auto_panel_width`]; never wider than the trajectory budget.
///
/// The width is a pure performance knob: results are bit-identical for
/// every value (see [`estimate_prob_one_panel`]).
///
/// # Panics
///
/// Panics if `QUCAD_TRAJ_BATCH` is set to anything but a positive integer
/// — including empty or whitespace-only values — so CI matrix typos fail
/// loudly.
pub fn panel_width_from_env(n_qubits: usize, n_trajectories: u32) -> usize {
    // qucad-lint: allow(env-read) — audited entry point: trajectory panel width
    let raw = std::env::var("QUCAD_TRAJ_BATCH").ok();
    panel_width_from_value(raw.as_deref(), n_qubits, n_trajectories)
}

/// Pure resolution core of [`panel_width_from_env`] (`value` is the raw
/// variable when set): kept side-effect-free so the panic contract can be
/// tested without racing on process-global environment state.
fn panel_width_from_value(value: Option<&str>, n_qubits: usize, n_trajectories: u32) -> usize {
    let width = match value {
        // A set variable must parse — empty and whitespace-only values are
        // typos too, not requests for the auto width.
        Some(v) => crate::config::parse_positive("QUCAD_TRAJ_BATCH", v).min(MAX_PANEL_WIDTH),
        None => auto_panel_width(n_qubits),
    };
    width.min((n_trajectories.max(1)) as usize)
}

/// Which implementation the panel's pair/quartet/octet unitary kernels
/// dispatch to. Both arms compute the identical IEEE-754 result for every
/// element: the AVX2 kernels (see `panel_simd`) use only 4-lane multiply,
/// add, and subtract — never FMA — in the exact association order of the
/// scalar expressions, so lane `j` of the vector loop performs the very
/// operations the scalar loop performs at index `j`. The scalar kernels
/// are therefore the bit-identity *oracle* for the SIMD ones (asserted by
/// the `panel_props` proptests), not a fallback with looser semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Portable scalar kernels (the bit-identity oracle; always
    /// available).
    Scalar,
    /// Explicit 4-lane AVX2 kernels (x86_64 hosts with AVX2 only; jumps
    /// and strip swaps stay scalar — they are sparse column walks).
    Avx2,
}

impl KernelMode {
    /// Runtime-detected default: [`KernelMode::Avx2`] when the host CPU
    /// supports it, unless `QUCAD_FORCE_SCALAR` is set to anything but
    /// `0` or whitespace (the escape hatch CI uses to pin the scalar
    /// oracle leg). Detected once per process.
    pub fn detect() -> KernelMode {
        static MODE: std::sync::OnceLock<KernelMode> = std::sync::OnceLock::new();
        *MODE.get_or_init(|| {
            // audited entry point: forces the scalar bit-identity oracle
            // qucad-lint: allow(env-read) — kernels (QUCAD_FORCE_SCALAR)
            let forced = std::env::var("QUCAD_FORCE_SCALAR").is_ok_and(|v| {
                let v = v.trim();
                !v.is_empty() && v != "0"
            });
            if !forced && KernelMode::avx2_supported() {
                return KernelMode::Avx2;
            }
            KernelMode::Scalar
        })
    }

    /// Whether this host can run the AVX2 kernels. The result is what
    /// makes constructing [`KernelMode::Avx2`] sound: every site that
    /// produces the variant checks it first, so dispatch may call the
    /// `#[target_feature(enable = "avx2")]` kernels without re-testing.
    pub fn avx2_supported() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }
}

/// Union-support cap of a panel supergroup: consecutive fused segments are
/// grouped for single-pass execution only while their combined support
/// stays within this many qubits (the tiled kernels walk pair, quartet, or
/// octet strips, nothing wider).
pub const SUPERGROUP_CAP: usize = 3;

/// One panel supergroup: a maximal run of consecutive fused segments whose
/// union support fits within [`SUPERGROUP_CAP`] qubits. `u` is the first
/// support qubit seen (the group's wire `A`), `v` the second if any, `w`
/// the third — a whole entangling layer plus its noise interleave and the
/// neighbouring single-qubit decomposition segments becomes one octet
/// pass.
///
/// The plan is a pure function of the program's segment list; it is what
/// [`TrajectoryPanel::run_stochastic`] executes one tiled panel pass per
/// entry, and what [`crate::verify::verify_program`] re-derives to check
/// the supergroup invariants statically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Supergroup {
    /// Segment index range of the group (into `program.segments()`).
    pub segments: std::ops::Range<usize>,
    /// The group's first support qubit (wire `A` of the tiled pass).
    pub u: usize,
    /// The group's second support qubit (wire `B`), if the union support
    /// spans two qubits.
    pub v: Option<usize>,
    /// The group's third support qubit (wire `C`), if the union support
    /// spans three qubits (never set while `v` is `None`).
    pub w: Option<usize>,
}

/// Streaming iterator over a program's supergroup plan (no allocation;
/// [`supergroup_plan`] collects it).
#[derive(Debug, Clone)]
pub struct Supergroups<'a> {
    program: &'a FusedProgram,
    next: usize,
}

/// Support qubits of a segment as the planner's `(first, second)` pair.
#[inline]
fn support_qubits(seg: &Segment) -> (usize, Option<usize>) {
    match seg.support() {
        Support::One(q) => (q, None),
        Support::Two(a, b) => (a, Some(b)),
    }
}

impl Iterator for Supergroups<'_> {
    type Item = Supergroup;

    fn next(&mut self) -> Option<Supergroup> {
        let segs = self.program.segments();
        if self.next >= segs.len() {
            return None;
        }
        // Greedily extend the supergroup while the union support stays
        // within three qubits (first-seen order fixes the group's
        // (u, v, w) wire basis).
        let start = self.next;
        let (u, mut v) = support_qubits(&segs[start]);
        let mut w = None;
        let mut end = start + 1;
        while end < segs.len() {
            let (a, bq) = support_qubits(&segs[end]);
            let mut nv = v;
            let mut nw = w;
            let mut fits = true;
            for q in [Some(a), bq].into_iter().flatten() {
                if q == u || nv == Some(q) || nw == Some(q) {
                    continue;
                }
                if nv.is_none() {
                    nv = Some(q);
                } else if nw.is_none() {
                    nw = Some(q);
                } else {
                    fits = false;
                    break;
                }
            }
            if !fits {
                break;
            }
            v = nv;
            w = nw;
            end += 1;
        }
        self.next = end;
        Some(Supergroup {
            segments: start..end,
            u,
            v,
            w,
        })
    }
}

/// The supergroup plan of a program as a streaming iterator — the exact
/// grouping [`TrajectoryPanel::run_stochastic`] executes.
pub fn supergroups(program: &FusedProgram) -> Supergroups<'_> {
    Supergroups { program, next: 0 }
}

/// Collects [`supergroups`] into a vector (for inspection and the static
/// verifier; the execution path iterates without allocating).
pub fn supergroup_plan(program: &FusedProgram) -> Vec<Supergroup> {
    supergroups(program).collect()
}

/// Complex amplitudes per tile row of the segment-fused panel sweeps:
/// small enough that a one-qubit tile (2 amplitude rows × 2 planes) or a
/// two-qubit tile (4 rows × 2 planes) stays L1-resident while a whole
/// segment's atom chain runs over it.
const TILE_ELEMS: usize = 512;

/// One Pauli application to a planar amplitude pair `((re, im), (re, im))`,
/// by value (`0` is the identity) — exactly the scalar expressions of
/// [`pauli_on`], shared by the panel sweeps so jump arithmetic can never
/// drift from the per-trajectory engine.
#[inline(always)]
fn pauli_vals(p: usize, x0: (f64, f64), x1: (f64, f64)) -> ((f64, f64), (f64, f64)) {
    match p {
        1 => (x1, x0),
        // Y = [[0, −i], [i, 0]].
        2 => ((x1.1, -x1.0), (-x0.1, x0.0)),
        3 => (x0, (-x1.0, -x1.1)),
        _ => (x0, x1),
    }
}

/// One precompiled pass of a one-qubit segment chain over a pair tile.
enum Pass1q<'a> {
    /// Panel-wide 2×2 unitary.
    Unitary(&'a M2, MatClass),
    /// Per-column Pauli jumps (the pre-sampled branch row).
    Jump(&'a [u8]),
    /// Stochastic atom whose branch row is all-identity (exact no-op).
    Skip,
}

/// Applies one 2×2 unitary to a planar pair tile (`r0/i0` = lower pair
/// row, `r1/i1` = upper; all slices the same length, starts aligned to a
/// column-`b` boundary).
///
/// Expression-for-expression [`m2_on`] with the complex products and sums
/// expanded over the split real/imaginary planes in the exact `Complex64`
/// operator order, so every column stays bit-identical to a standalone
/// trajectory while the inner loops are branch-free contiguous `f64`
/// sweeps that vectorise.
#[inline(always)]
pub(crate) fn unitary1_inner(
    m: &M2,
    class: MatClass,
    r0: &mut [f64],
    i0: &mut [f64],
    r1: &mut [f64],
    i1: &mut [f64],
) {
    let len = r0.len();
    let (i0, r1, i1) = (&mut i0[..len], &mut r1[..len], &mut i1[..len]);
    if class == MatClass::Diagonal {
        let (d0, d1) = (m[0], m[3]);
        for j in 0..len {
            let (xr, xi) = (r0[j], i0[j]);
            r0[j] = xr * d0.re - xi * d0.im;
            i0[j] = xr * d0.im + xi * d0.re;
            let (yr, yi) = (r1[j], i1[j]);
            r1[j] = yr * d1.re - yi * d1.im;
            i1[j] = yr * d1.im + yi * d1.re;
        }
    } else if class == MatClass::Real {
        // RY / H / Pauli family: exactly-zero imaginary entries
        // (`classify2`), so the imaginary products vanish structurally —
        // drop them instead of multiplying by zero. Same expressions as
        // the `m2_on` Real path, so every column stays bit-identical to
        // its standalone trajectory.
        let (m00, m01, m10, m11) = (m[0].re, m[1].re, m[2].re, m[3].re);
        for j in 0..len {
            let (x0r, x0i) = (r0[j], i0[j]);
            let (x1r, x1i) = (r1[j], i1[j]);
            r0[j] = m00 * x0r + m01 * x1r;
            i0[j] = m00 * x0i + m01 * x1i;
            r1[j] = m10 * x0r + m11 * x1r;
            i1[j] = m10 * x0i + m11 * x1i;
        }
    } else {
        let (m00, m01, m10, m11) = (m[0], m[1], m[2], m[3]);
        for j in 0..len {
            let (x0r, x0i) = (r0[j], i0[j]);
            let (x1r, x1i) = (r1[j], i1[j]);
            r0[j] = (m00.re * x0r - m00.im * x0i) + (m01.re * x1r - m01.im * x1i);
            i0[j] = (m00.re * x0i + m00.im * x0r) + (m01.re * x1i + m01.im * x1r);
            r1[j] = (m10.re * x0r - m10.im * x0i) + (m11.re * x1r - m11.im * x1i);
            i1[j] = (m10.re * x0i + m10.im * x0r) + (m11.re * x1i + m11.im * x1r);
        }
    }
}

/// Applies one row of per-column Pauli jumps to a planar pair tile (same
/// formulas as [`pauli_on`] via [`pauli_vals`]).
#[inline(always)]
fn jump1_inner(
    row: &[u8],
    b: usize,
    r0: &mut [f64],
    i0: &mut [f64],
    r1: &mut [f64],
    i1: &mut [f64],
) {
    let len = r0.len();
    let (i0, r1, i1) = (&mut i0[..len], &mut r1[..len], &mut i1[..len]);
    // Walk jumping columns only (element `j` belongs to column `j % b`, so
    // a column's amplitudes sit at stride `b`); with calibration-scale λ
    // most atoms jump in no or few columns per chunk.
    for (c, &code) in row.iter().enumerate() {
        let p = code as usize;
        if p == 0 {
            continue;
        }
        let mut j = c;
        while j < len {
            let (n0, n1) = pauli_vals(p, (r0[j], i0[j]), (r1[j], i1[j]));
            r0[j] = n0.0;
            i0[j] = n0.1;
            r1[j] = n1.0;
            i1[j] = n1.1;
            j += b;
        }
    }
}

/// Applies a one-qubit atom chain to one planar pair tile.
#[inline(always)]
fn chain_1q_tile(
    kernel: KernelMode,
    passes: &[Pass1q],
    r0: &mut [f64],
    i0: &mut [f64],
    r1: &mut [f64],
    i1: &mut [f64],
    b: usize,
) {
    for pass in passes {
        match *pass {
            Pass1q::Unitary(m, class) => apply_unitary1(kernel, m, class, r0, i0, r1, i1),
            Pass1q::Jump(row) => jump1_inner(row, b, r0, i0, r1, i1),
            Pass1q::Skip => {}
        }
    }
}

/// Executes a one-qubit pass chain over the whole panel in a **single
/// tiled pass**: each cache-sized pair tile is loaded once, the full
/// chain runs over it, and it is stored back — one panel memory pass per
/// chain (a whole supergroup of fused segments) instead of one per atom,
/// with contiguous inner loops (pair rows for qubit `q` are `2^q · b`
/// element runs, no per-pair bit-twiddling).
fn run_pair_pass(
    kernel: KernelMode,
    re: &mut [f64],
    im: &mut [f64],
    b: usize,
    q: usize,
    passes: &[Pass1q],
) {
    let pair = (1usize << q) * b;
    let total = re.len();
    debug_assert_eq!(total, im.len(), "re/im planes differ in length");
    debug_assert!(
        b > 0 && total.is_multiple_of(2 * pair),
        "pair stride for qubit {q} does not tile the {total}-element panel \
         (qubit out of range or corrupt panel shape)"
    );
    let tile = b * (TILE_ELEMS / b).max(1);
    if pair >= tile {
        // Wide pair runs: tile within each pair region, whole chain per
        // tile.
        let mut base = 0usize;
        while base < total {
            let mut ts = base;
            while ts < base + pair {
                let len = tile.min(base + pair - ts);
                let (rl, rh) = re.split_at_mut(ts + pair);
                let (il, ih) = im.split_at_mut(ts + pair);
                chain_1q_tile(
                    kernel,
                    passes,
                    &mut rl[ts..ts + len],
                    &mut il[ts..ts + len],
                    &mut rh[..len],
                    &mut ih[..len],
                    b,
                );
                ts += len;
            }
            base += 2 * pair;
        }
    } else {
        // Narrow pair runs (low qubits): fuse at window granularity —
        // each cache-sized window of whole 2·pair blocks hosts the chain,
        // one pass dispatch per window.
        let window = (2 * pair) * ((2 * TILE_ELEMS) / (2 * pair)).max(1);
        let mut start = 0usize;
        while start < total {
            let wlen = window.min(total - start);
            let rw = &mut re[start..start + wlen];
            let iw = &mut im[start..start + wlen];
            for pass in passes {
                match *pass {
                    Pass1q::Unitary(m, class) => {
                        for (rb, ib) in rw
                            .chunks_exact_mut(2 * pair)
                            .zip(iw.chunks_exact_mut(2 * pair))
                        {
                            let (r0, r1) = rb.split_at_mut(pair);
                            let (i0, i1) = ib.split_at_mut(pair);
                            apply_unitary1(kernel, m, class, r0, i0, r1, i1);
                        }
                    }
                    Pass1q::Jump(row) => {
                        for (rb, ib) in rw
                            .chunks_exact_mut(2 * pair)
                            .zip(iw.chunks_exact_mut(2 * pair))
                        {
                            let (r0, r1) = rb.split_at_mut(pair);
                            let (i0, i1) = ib.split_at_mut(pair);
                            jump1_inner(row, b, r0, i0, r1, i1);
                        }
                    }
                    Pass1q::Skip => {}
                }
            }
            start += wlen;
        }
    }
}

/// One precompiled pass of a two-qubit segment chain over a quartet tile
/// (quartet order `[00, 01, 10, 11]` in the segment's `(A, B)` wire basis
/// with wire `A` the most significant bit).
enum Pass2q<'a> {
    /// CNOT with control on wire A: swap the `10` and `11` strips.
    SwapA,
    /// CNOT with control on wire B: swap the `01` and `11` strips.
    SwapB,
    /// 4×4 unitary; `swapped` atoms read/write the quartet through the
    /// `[0, 2, 1, 3]` orientation permutation (as in `quasim::fused`).
    Unitary(&'a M4, bool),
    /// Per-column Pauli⊗Pauli jumps: branch row plus whether the atom's
    /// `(first, second)` qubit order is `(B, A)`.
    Jump(&'a [u8], bool),
    /// 2×2 unitary on one wire of the quartet (`on_b` selects wire B) —
    /// how supergroups execute single-qubit segments whose qubit is part
    /// of the group's two-qubit support without an extra panel pass.
    Unitary1(&'a M2, MatClass, bool),
    /// Per-column one-qubit Pauli jumps on one wire of the quartet.
    Jump1(&'a [u8], bool),
    /// Stochastic atom with an all-identity branch row.
    Skip,
}

/// Planar quartet tile: the four strips of both planes, in quartet order.
pub(crate) struct Quartet<'a> {
    pub(crate) r: [&'a mut [f64]; 4],
    pub(crate) i: [&'a mut [f64]; 4],
}

/// Applies one 4×4 unitary to a quartet tile, reading the quartet in the
/// atom's own orientation order — expression-for-expression [`m4_on`]
/// (accumulator starts at zero, `acc += m[r·4+c] · old[c]` in column
/// order).
#[inline(always)]
pub(crate) fn unitary2_inner(m: &M4, swapped: bool, g: &mut Quartet<'_>) {
    let len = g.r[0].len();
    let map: [usize; 4] = if swapped { [0, 2, 1, 3] } else { [0, 1, 2, 3] };
    for j in 0..len {
        let old = [
            (g.r[map[0]][j], g.i[map[0]][j]),
            (g.r[map[1]][j], g.i[map[1]][j]),
            (g.r[map[2]][j], g.i[map[2]][j]),
            (g.r[map[3]][j], g.i[map[3]][j]),
        ];
        for r in 0..4 {
            let mut ar = 0.0f64;
            let mut ai = 0.0f64;
            for (c, &(or_, oi)) in old.iter().enumerate() {
                let e = m[r * 4 + c];
                ar += e.re * or_ - e.im * oi;
                ai += e.re * oi + e.im * or_;
            }
            g.r[map[r]][j] = ar;
            g.i[map[r]][j] = ai;
        }
    }
}

/// Dispatches one 2×2 unitary pair application to the selected kernel
/// (both arms are bit-identical; see [`KernelMode`]).
#[inline(always)]
fn apply_unitary1(
    kernel: KernelMode,
    m: &M2,
    class: MatClass,
    r0: &mut [f64],
    i0: &mut [f64],
    r1: &mut [f64],
    i1: &mut [f64],
) {
    match kernel {
        KernelMode::Scalar => unitary1_inner(m, class, r0, i0, r1, i1),
        KernelMode::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Avx2` is only constructed after `avx2_supported()`
            // returned true (`detect` / `set_kernel_mode`), so the avx2
            // target feature is available on this CPU.
            unsafe {
                crate::panel_simd::unitary1_avx2(m, class, r0, i0, r1, i1);
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("KernelMode::Avx2 cannot be constructed off x86_64");
        }
    }
}

/// Dispatches one 4×4 unitary quartet application to the selected kernel
/// (both arms are bit-identical; see [`KernelMode`]).
#[inline(always)]
fn apply_unitary2(kernel: KernelMode, m: &M4, swapped: bool, g: &mut Quartet<'_>) {
    match kernel {
        KernelMode::Scalar => unitary2_inner(m, swapped, g),
        KernelMode::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Avx2` is only constructed after `avx2_supported()`
            // returned true (`detect` / `set_kernel_mode`), so the avx2
            // target feature is available on this CPU.
            unsafe {
                crate::panel_simd::unitary2_avx2(m, swapped, g);
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("KernelMode::Avx2 cannot be constructed off x86_64");
        }
    }
}

/// Applies one row of per-column Pauli⊗Pauli jumps to a quartet tile: the
/// branch's first Pauli acts along the atom's first wire, then the second
/// — each as two in-register pair applications with [`pauli_on`]'s exact
/// formulas.
#[inline(always)]
fn jump2_inner(row: &[u8], b: usize, swapped: bool, g: &mut Quartet<'_>) {
    // Wire-axis pair index sets: a Pauli on wire A couples (00,10) and
    // (01,11); on wire B it couples (00,01) and (10,11).
    const AXIS_A: [(usize, usize); 2] = [(0, 2), (1, 3)];
    const AXIS_B: [(usize, usize); 2] = [(0, 1), (2, 3)];
    let (first_axis, second_axis) = if swapped {
        (AXIS_B, AXIS_A)
    } else {
        (AXIS_A, AXIS_B)
    };
    let len = g.r[0].len();
    // Walk jumping columns only (see `jump1_inner`).
    for (c, &code) in row.iter().enumerate() {
        let k = code as usize;
        if k == 0 {
            continue;
        }
        let (pa, pb) = (k >> 2, k & 3);
        let mut j = c;
        while j < len {
            if pa != 0 {
                for (x, y) in first_axis {
                    let (n0, n1) = pauli_vals(pa, (g.r[x][j], g.i[x][j]), (g.r[y][j], g.i[y][j]));
                    g.r[x][j] = n0.0;
                    g.i[x][j] = n0.1;
                    g.r[y][j] = n1.0;
                    g.i[y][j] = n1.1;
                }
            }
            if pb != 0 {
                for (x, y) in second_axis {
                    let (n0, n1) = pauli_vals(pb, (g.r[x][j], g.i[x][j]), (g.r[y][j], g.i[y][j]));
                    g.r[x][j] = n0.0;
                    g.i[x][j] = n0.1;
                    g.r[y][j] = n1.0;
                    g.i[y][j] = n1.1;
                }
            }
            j += b;
        }
    }
}

/// Restores the physical strip layout after a chain ran with
/// reference-permuted CNOTs: strip `q` of `r`/`i` holds tile index `q`'s
/// amplitudes but currently lives at physical slot `slot[q]`; cycle-walk
/// the permutation with block swaps until every slot holds its own index
/// again. An identity permutation — every back-to-back CNOT pair on the
/// same wires, i.e. every controlled-rotation template — costs zero data
/// movement.
#[inline(always)]
fn materialize_strips<const N: usize>(
    r: &mut [&mut [f64]; N],
    i: &mut [&mut [f64]; N],
    slot: &mut [usize; N],
) {
    for q in 0..N {
        while slot[q] != q {
            let p = slot
                .iter()
                .position(|&s| s == q)
                .expect("slot table is a permutation");
            let [rq, rp] = r.get_disjoint_mut([q, p]).expect("distinct strips");
            rq.swap_with_slice(rp);
            let [iq, ip] = i.get_disjoint_mut([q, p]).expect("distinct strips");
            iq.swap_with_slice(ip);
            r.swap(q, p);
            i.swap(q, p);
            slot.swap(q, p);
        }
    }
}

/// Applies a two-qubit atom chain to one quartet tile. CNOTs permute the
/// strip *references* (amplitudes keep their values, only their labels
/// move — `O(1)` per tile); the net permutation is materialised into the
/// physical layout once at the end of the chain by
/// [`materialize_strips`], so the final panel contents are bit-identical
/// to eagerly swapped strips.
#[inline(always)]
fn chain_2q_tile(kernel: KernelMode, passes: &[Pass2q], g: &mut Quartet<'_>, b: usize) {
    // `g.r[q]`/`g.i[q]` always hold quartet index `q`'s amplitudes;
    // `slot[q]` tracks the physical strip they currently occupy.
    let mut slot = [0usize, 1, 2, 3];
    for pass in passes {
        match *pass {
            Pass2q::SwapA => {
                g.r.swap(2, 3);
                g.i.swap(2, 3);
                slot.swap(2, 3);
            }
            Pass2q::SwapB => {
                g.r.swap(1, 3);
                g.i.swap(1, 3);
                slot.swap(1, 3);
            }
            Pass2q::Unitary(m, swapped) => apply_unitary2(kernel, m, swapped, g),
            Pass2q::Jump(row, swapped) => jump2_inner(row, b, swapped, g),
            Pass2q::Unitary1(m, class, on_b) => {
                // A 1q op on one wire couples the two wire-axis pairs;
                // apply the exact pair kernel to each in turn.
                for (x, y) in wire_axis(on_b) {
                    let (r0, i0, r1, i1) = quartet_pair(g, x, y);
                    apply_unitary1(kernel, m, class, r0, i0, r1, i1);
                }
            }
            Pass2q::Jump1(row, on_b) => {
                for (x, y) in wire_axis(on_b) {
                    let (r0, i0, r1, i1) = quartet_pair(g, x, y);
                    jump1_inner(row, b, r0, i0, r1, i1);
                }
            }
            Pass2q::Skip => {}
        }
    }
    materialize_strips(&mut g.r, &mut g.i, &mut slot);
}

/// Wire-axis pair index sets in quartet order: a one-qubit op on wire A
/// couples (00,10) and (01,11); on wire B it couples (00,01) and (10,11).
#[inline(always)]
fn wire_axis(on_b: bool) -> [(usize, usize); 2] {
    if on_b {
        [(0, 1), (2, 3)]
    } else {
        [(0, 2), (1, 3)]
    }
}

/// Borrows one wire-axis pair (`x < y`) of a quartet as the four planar
/// slices the pair kernels take.
#[inline(always)]
fn quartet_pair<'q>(
    g: &'q mut Quartet<'_>,
    x: usize,
    y: usize,
) -> (&'q mut [f64], &'q mut [f64], &'q mut [f64], &'q mut [f64]) {
    let (rl, rh) = g.r.split_at_mut(y);
    let (il, ih) = g.i.split_at_mut(y);
    (&mut *rl[x], &mut *il[x], &mut *rh[0], &mut *ih[0])
}

/// Splits four disjoint equal-length strips out of one plane, given
/// strictly increasing element starts.
fn strips4(plane: &mut [f64], starts: [usize; 4], len: usize) -> [&mut [f64]; 4] {
    debug_assert!(
        len > 0
            && starts[0] + len <= starts[1]
            && starts[1] + len <= starts[2]
            && starts[2] + len <= starts[3]
            && starts[3] + len <= plane.len(),
        "quartet strips at {starts:?} (len {len}) overlap or escape the \
         {}-element plane",
        plane.len()
    );
    let (p01, p23) = plane.split_at_mut(starts[2]);
    let (p0, p1) = p01.split_at_mut(starts[1]);
    let (p2, p3) = p23.split_at_mut(starts[3] - starts[2]);
    [
        &mut p0[starts[0]..starts[0] + len],
        &mut p1[..len],
        &mut p2[..len],
        &mut p3[..len],
    ]
}

/// Reorders four sorted-offset strips (per plane) into quartet order.
#[inline(always)]
fn to_quartet<'a>(
    sorted_re: [&'a mut [f64]; 4],
    sorted_im: [&'a mut [f64]; 4],
    v_is_small: bool,
) -> Quartet<'a> {
    let [r0, ra, rb, r3] = sorted_re;
    let [i0, ia, ib, i3] = sorted_im;
    if v_is_small {
        // Strip at the small offset is the v-set (quartet index 1) strip.
        Quartet {
            r: [r0, ra, rb, r3],
            i: [i0, ia, ib, i3],
        }
    } else {
        Quartet {
            r: [r0, rb, ra, r3],
            i: [i0, ib, ia, i3],
        }
    }
}

/// Executes a two-qubit pass chain over the whole panel in a single tiled
/// pass — the two-qubit counterpart of [`run_pair_pass`]: each quartet
/// tile (four strips in the supergroup's `(A, B)` wire basis) hosts the
/// whole chain in cache.
fn run_quartet_pass(
    kernel: KernelMode,
    re: &mut [f64],
    im: &mut [f64],
    b: usize,
    u: usize,
    v: usize,
    passes: &[Pass2q],
) {
    let mu = (1usize << u) * b;
    let mv = (1usize << v) * b;
    let (ms, mb) = if mu < mv { (mu, mv) } else { (mv, mu) };
    let v_is_small = mv < mu;
    let total = re.len();
    debug_assert_eq!(total, im.len(), "re/im planes differ in length");
    debug_assert_ne!(
        mu, mv,
        "supergroup wires ({u}, {v}) alias the same panel stride"
    );
    debug_assert!(
        b > 0 && total.is_multiple_of(2 * mb) && mb.is_multiple_of(2 * ms),
        "wire strides for ({u}, {v}) do not tile the {total}-element panel \
         (wire out of range or corrupt panel shape)"
    );
    let tile = b * (TILE_ELEMS / b).max(1);
    if ms >= tile {
        let mut bh = 0usize;
        while bh < total {
            let mut bl = bh;
            while bl < bh + mb {
                let mut ts = bl;
                while ts < bl + ms {
                    let len = tile.min(bl + ms - ts);
                    let starts = [ts, ts + ms, ts + mb, ts + mb + ms];
                    let sr = strips4(re, starts, len);
                    let si = strips4(im, starts, len);
                    let mut g = to_quartet(sr, si, v_is_small);
                    chain_2q_tile(kernel, passes, &mut g, b);
                    ts += len;
                }
                bl += 2 * ms;
            }
            bh += 2 * mb;
        }
    } else {
        // Narrow small-axis runs: walk each big block's low/high halves in
        // lockstep; every 2·ms sub-block pair forms one quartet tile.
        let mut bh = 0usize;
        while bh < total {
            let (rl_all, rh_all) = re.split_at_mut(bh + mb);
            let (il_all, ih_all) = im.split_at_mut(bh + mb);
            let rl = &mut rl_all[bh..];
            let il = &mut il_all[bh..];
            let rh = &mut rh_all[..mb];
            let ih = &mut ih_all[..mb];
            for (((rlb, rhb), ilb), ihb) in rl
                .chunks_exact_mut(2 * ms)
                .zip(rh.chunks_exact_mut(2 * ms))
                .zip(il.chunks_exact_mut(2 * ms))
                .zip(ih.chunks_exact_mut(2 * ms))
            {
                let (sr0, sr1) = rlb.split_at_mut(ms);
                let (sr2, sr3) = rhb.split_at_mut(ms);
                let (si0, si1) = ilb.split_at_mut(ms);
                let (si2, si3) = ihb.split_at_mut(ms);
                let mut g = to_quartet([sr0, sr1, sr2, sr3], [si0, si1, si2, si3], v_is_small);
                chain_2q_tile(kernel, passes, &mut g, b);
            }
            bh += 2 * mb;
        }
    }
}

/// One precompiled pass of a three-qubit supergroup chain over an octet
/// tile. Strip indices are three-bit numbers in the group's `(A, B, C)`
/// wire basis — wire `A` (`u`) is strip bit 2, wire `B` (`v`) bit 1, wire
/// `C` (`w`) bit 0. Two-qubit atoms carry the strip bits of their own
/// segment's `(A, B)` wires, so the quartet each one sees is assembled in
/// the segment's wire order and the atom's `swapped` flag applies
/// unchanged (exactly as in the per-trajectory engine).
enum Pass3q<'a> {
    /// 2×2 unitary on the wire at the given strip bit.
    Unitary1(&'a M2, MatClass, usize),
    /// Per-column one-qubit Pauli jumps on the wire at the given strip
    /// bit.
    Jump1(&'a [u8], usize),
    /// CNOT: swap the target-bit strip pair inside every control-set
    /// octant (`(control bit, target bit)`).
    Swap(usize, usize),
    /// 4×4 unitary on the wires at strip bits `(a, b)` of the atom's
    /// segment; the `bool` is the atom's own orientation flag.
    Unitary2(&'a M4, bool, usize, usize),
    /// Per-column Pauli⊗Pauli jumps on the wires at strip bits `(a, b)`.
    Jump2(&'a [u8], bool, usize, usize),
    /// Stochastic atom with an all-identity branch row.
    Skip,
}

/// Planar octet tile: the eight strips of both planes, indexed by the
/// three-bit strip number in the group's `(A, B, C)` wire basis.
struct Octet<'a> {
    r: [&'a mut [f64]; 8],
    i: [&'a mut [f64]; 8],
}

/// Splits eight disjoint equal-length strips out of one plane (starts in
/// strip-index order, not necessarily increasing).
///
/// # Panics
///
/// Panics if the strips overlap or escape the plane.
fn strips8(plane: &mut [f64], starts: [usize; 8], len: usize) -> [&mut [f64]; 8] {
    plane
        .get_disjoint_mut(starts.map(|s| s..s + len))
        .expect("octet strips overlap or escape the plane")
}

/// Borrows one strip pair (`x != y`) of an octet as the four planar slices
/// the pair kernels take.
#[inline(always)]
fn octet_pair<'q>(
    o: &'q mut Octet<'_>,
    x: usize,
    y: usize,
) -> (&'q mut [f64], &'q mut [f64], &'q mut [f64], &'q mut [f64]) {
    let [r0, r1] = o.r.get_disjoint_mut([x, y]).expect("distinct octet strips");
    let [i0, i1] = o.i.get_disjoint_mut([x, y]).expect("distinct octet strips");
    (&mut **r0, &mut **i0, &mut **r1, &mut **i1)
}

/// Borrows four distinct octet strips as a quartet tile, in the given
/// quartet order.
#[inline(always)]
fn octet_quartet<'q>(o: &'q mut Octet<'_>, idx: [usize; 4]) -> Quartet<'q> {
    let [r0, r1, r2, r3] = o.r.get_disjoint_mut(idx).expect("distinct octet strips");
    let [i0, i1, i2, i3] = o.i.get_disjoint_mut(idx).expect("distinct octet strips");
    Quartet {
        r: [&mut **r0, &mut **r1, &mut **r2, &mut **r3],
        i: [&mut **i0, &mut **i1, &mut **i2, &mut **i3],
    }
}

/// Applies a three-qubit supergroup chain to one octet tile: one-qubit
/// atoms run the exact pair kernels over the four strip pairs of their
/// wire, two-qubit atoms run the exact quartet kernels over the two
/// quartets spanned by their wires, CNOTs permute the strip references
/// (materialised once at chain end, see [`materialize_strips`]).
#[inline(always)]
fn chain_3q_tile(kernel: KernelMode, passes: &[Pass3q], o: &mut Octet<'_>, b: usize) {
    // `o.r[x]`/`o.i[x]` always hold octet index `x`'s amplitudes;
    // `slot[x]` tracks the physical strip they currently occupy.
    let mut slot = [0usize, 1, 2, 3, 4, 5, 6, 7];
    for pass in passes {
        match *pass {
            Pass3q::Unitary1(m, class, wb) => {
                let wm = 1usize << wb;
                match kernel {
                    KernelMode::Scalar => {
                        for x in 0..8usize {
                            if x & wm != 0 {
                                continue;
                            }
                            let (r0, i0, r1, i1) = octet_pair(o, x, x | wm);
                            unitary1_inner(m, class, r0, i0, r1, i1);
                        }
                    }
                    KernelMode::Avx2 => {
                        #[cfg(target_arch = "x86_64")]
                        // SAFETY: `Avx2` is only constructed after
                        // `avx2_supported()` returned true, so the avx2
                        // target feature is available on this CPU.
                        unsafe {
                            crate::panel_simd::unitary1_octet_avx2(
                                m, class, &mut o.r, &mut o.i, wm,
                            );
                        }
                        #[cfg(not(target_arch = "x86_64"))]
                        unreachable!("KernelMode::Avx2 cannot be constructed off x86_64");
                    }
                }
            }
            Pass3q::Jump1(row, wb) => {
                let wm = 1usize << wb;
                for x in 0..8usize {
                    if x & wm != 0 {
                        continue;
                    }
                    let (r0, i0, r1, i1) = octet_pair(o, x, x | wm);
                    jump1_inner(row, b, r0, i0, r1, i1);
                }
            }
            Pass3q::Swap(cb, tb) => {
                let cm = 1usize << cb;
                let tm = 1usize << tb;
                for x in 0..8usize {
                    if x & cm == 0 || x & tm != 0 {
                        continue;
                    }
                    o.r.swap(x, x | tm);
                    o.i.swap(x, x | tm);
                    slot.swap(x, x | tm);
                }
            }
            Pass3q::Unitary2(m, swapped, ab, bb) => {
                let am = 1usize << ab;
                let bm = 1usize << bb;
                // The strip bit outside the atom's wires is free; one
                // quartet per value of it, in the segment's (A, B) order
                // (wire A as the quartet's most significant bit).
                let fm = 7usize ^ am ^ bm;
                for f in [0, fm] {
                    let mut g = octet_quartet(o, [f, f | bm, f | am, f | am | bm]);
                    apply_unitary2(kernel, m, swapped, &mut g);
                }
            }
            Pass3q::Jump2(row, swapped, ab, bb) => {
                let am = 1usize << ab;
                let bm = 1usize << bb;
                let fm = 7usize ^ am ^ bm;
                for f in [0, fm] {
                    let mut g = octet_quartet(o, [f, f | bm, f | am, f | am | bm]);
                    jump2_inner(row, b, swapped, &mut g);
                }
            }
            Pass3q::Skip => {}
        }
    }
    materialize_strips(&mut o.r, &mut o.i, &mut slot);
}

/// Executes a three-qubit pass chain over the whole panel in a single
/// tiled pass — the octet counterpart of [`run_quartet_pass`]: each octet
/// tile (eight strips in the supergroup's `(A, B, C)` wire basis) hosts
/// the whole chain in cache, so a full entangling layer plus its noise
/// interleave costs one panel memory pass.
#[allow(clippy::too_many_arguments)]
fn run_octet_pass(
    kernel: KernelMode,
    re: &mut [f64],
    im: &mut [f64],
    b: usize,
    u: usize,
    v: usize,
    w: usize,
    passes: &[Pass3q],
) {
    let su = (1usize << u) * b;
    let sv = (1usize << v) * b;
    let sw = (1usize << w) * b;
    let total = re.len();
    debug_assert_eq!(total, im.len(), "re/im planes differ in length");
    let mut sorted = [su, sv, sw];
    sorted.sort_unstable();
    let [s0, s1, s2] = sorted;
    debug_assert!(
        b > 0
            && s0 < s1
            && s1 < s2
            && total.is_multiple_of(2 * s2)
            && s2.is_multiple_of(2 * s1)
            && s1.is_multiple_of(2 * s0),
        "wire strides for ({u}, {v}, {w}) do not tile the {total}-element \
         panel (wire out of range, aliased wires, or corrupt panel shape)"
    );
    let tile = b * (TILE_ELEMS / b).max(1);
    if s0 <= GATHER_STRIP_MAX {
        // Low-wire groups: the natural octet strips are only `s0` elements
        // long (as short as `b` when the lowest wire is qubit 0), so
        // per-octet chain dispatch and vector remainders would dominate
        // the actual arithmetic. Gather many short octets into one
        // contiguous scratch octet and run the chain there instead.
        run_octet_gathered(kernel, re, im, b, u, v, w, passes);
        return;
    }
    let len_cap = tile.min(s0);
    // Walk the panel as nested half-blocks of the three sorted strides:
    // each tile start `ts` owns the octet at `ts + {0,su} + {0,sv} +
    // {0,sw}`, and the loop bounds keep every combination disjoint and
    // panel-covering (each stride divides the next, as asserted above).
    let mut b2 = 0usize;
    while b2 < total {
        let mut b1 = b2;
        while b1 < b2 + s2 {
            let mut b0 = b1;
            while b0 < b1 + s1 {
                let mut ts = b0;
                while ts < b0 + s0 {
                    let len = len_cap.min(b0 + s0 - ts);
                    let mut starts = [0usize; 8];
                    for (lidx, start) in starts.iter_mut().enumerate() {
                        *start = ts
                            + if lidx & 4 != 0 { su } else { 0 }
                            + if lidx & 2 != 0 { sv } else { 0 }
                            + if lidx & 1 != 0 { sw } else { 0 };
                    }
                    let mut o = Octet {
                        r: strips8(re, starts, len),
                        i: strips8(im, starts, len),
                    };
                    chain_3q_tile(kernel, passes, &mut o, b);
                    ts += len;
                }
                b0 += 2 * s0;
            }
            b1 += 2 * s1;
        }
        b2 += 2 * s2;
    }
}

/// Longest natural strip (in elements) the gathered octet path takes
/// over: above this the direct per-octet walk already amortises its
/// dispatch cost over enough elements that the gather/scatter's two extra
/// panel traversals would be a net loss (measured crossover on the
/// guadalupe workload); at or below it the chain dispatch per tiny octet
/// dominates the copies.
const GATHER_STRIP_MAX: usize = 4;

/// Small-stride variant of [`run_octet_pass`]: gathers `runs_cap` short
/// octets (strip runs of `s0` elements each) into one contiguous scratch
/// octet, runs the whole chain there, and scatters the strips back.
///
/// Concatenation is exact: every panel kernel is elementwise across strip
/// positions (pair/quartet kernels combine equal positions of different
/// strips, jump kernels map position `j` to column `j % b`), and each
/// gathered run starts at a multiple of `s0` — itself a multiple of the
/// column count `b` — so every element sees bit-for-bit the arithmetic it
/// would see in its natural octet, just batched behind one chain dispatch
/// instead of hundreds.
#[allow(clippy::too_many_arguments)]
fn run_octet_gathered(
    kernel: KernelMode,
    re: &mut [f64],
    im: &mut [f64],
    b: usize,
    u: usize,
    v: usize,
    w: usize,
    passes: &[Pass3q],
) {
    let su = (1usize << u) * b;
    let sv = (1usize << v) * b;
    let sw = (1usize << w) * b;
    let total = re.len();
    let mut sorted = [su, sv, sw];
    sorted.sort_unstable();
    let [s0, s1, s2] = sorted;
    let tile = b * (TILE_ELEMS / b).max(1);
    let runs_cap = (tile / s0).max(1);
    let cap = runs_cap * s0;
    // Octet-index → panel offset of that strip within a tile base.
    let offs: [usize; 8] = std::array::from_fn(|lidx| {
        (if lidx & 4 != 0 { su } else { 0 })
            + (if lidx & 2 != 0 { sv } else { 0 })
            + (if lidx & 1 != 0 { sw } else { 0 })
    });
    let mut sr = vec![0.0f64; 8 * cap];
    let mut si = vec![0.0f64; 8 * cap];
    let mut bases: Vec<usize> = Vec::with_capacity(runs_cap);
    // Same panel walk as `run_octet_pass` (each base owns one octet of
    // `s0`-element strips), buffering bases until a scratch fill.
    let mut b2 = 0usize;
    while b2 < total {
        let mut b1 = b2;
        while b1 < b2 + s2 {
            let mut b0 = b1;
            while b0 < b1 + s1 {
                bases.push(b0);
                if bases.len() == runs_cap {
                    flush_gathered(
                        kernel, passes, re, im, &bases, offs, s0, cap, &mut sr, &mut si, b,
                    );
                    bases.clear();
                }
                b0 += 2 * s0;
            }
            b1 += 2 * s1;
        }
        b2 += 2 * s2;
    }
    flush_gathered(
        kernel, passes, re, im, &bases, offs, s0, cap, &mut sr, &mut si, b,
    );
}

/// Gather → chain → scatter for one scratch fill of [`run_octet_gathered`].
#[allow(clippy::too_many_arguments)]
fn flush_gathered(
    kernel: KernelMode,
    passes: &[Pass3q],
    re: &mut [f64],
    im: &mut [f64],
    bases: &[usize],
    offs: [usize; 8],
    s0: usize,
    cap: usize,
    sr: &mut [f64],
    si: &mut [f64],
    b: usize,
) {
    if bases.is_empty() {
        return;
    }
    let run_len = bases.len() * s0;
    for (lidx, &off) in offs.iter().enumerate() {
        for (k, &ts) in bases.iter().enumerate() {
            let dst = lidx * cap + k * s0;
            sr[dst..dst + s0].copy_from_slice(&re[ts + off..ts + off + s0]);
            si[dst..dst + s0].copy_from_slice(&im[ts + off..ts + off + s0]);
        }
    }
    let starts: [usize; 8] = std::array::from_fn(|lidx| lidx * cap);
    let mut o = Octet {
        r: strips8(sr, starts, run_len),
        i: strips8(si, starts, run_len),
    };
    chain_3q_tile(kernel, passes, &mut o, b);
    for (lidx, &off) in offs.iter().enumerate() {
        for (k, &ts) in bases.iter().enumerate() {
            let src = lidx * cap + k * s0;
            re[ts + off..ts + off + s0].copy_from_slice(&sr[src..src + s0]);
            im[ts + off..ts + off + s0].copy_from_slice(&si[src..src + s0]);
        }
    }
}

/// A batched trajectory register: `B` trajectories stored as one
/// contiguous `2^n × B` amplitude panel in structure-of-arrays form — a
/// real plane and an imaginary plane, each with a register index's `B`
/// column values adjacent.
///
/// The per-trajectory engine ([`TrajectoryWorkspace`]) pays the full
/// per-op cost — matrix classification, segment dispatch, bit-twiddled
/// index enumeration, and one full state sweep per atom — once *per
/// trajectory*. The panel executes each fused **segment** in a single
/// tiled pass across all `B` columns: atoms are precompiled into a pass
/// chain, each cache-resident tile hosts the whole chain before moving
/// on, and the split real/imaginary planes make the inner loops
/// branch-free contiguous `f64` sweeps that auto-vectorise. Stochastic
/// jumps stay per-trajectory — each column consumes its own pre-drawn
/// uniforms and receives its own Pauli jumps — so every column is
/// **bit-identical** to the trajectory the workspace engine would produce
/// from the same draw sequence.
///
/// Use [`estimate_prob_one_panel`] for the batched counterpart of
/// [`estimate_prob_one`]; the panel width is a pure performance knob
/// (override with `QUCAD_TRAJ_BATCH`, see [`panel_width_from_env`]).
#[derive(Debug, Clone)]
pub struct TrajectoryPanel {
    n_qubits: usize,
    batch: usize,
    re: Vec<f64>,
    im: Vec<f64>,
    norms: Vec<f64>,
    uniforms: Vec<f64>,
    branch_rows: Vec<u8>,
    branch_any: Vec<bool>,
    kernel: KernelMode,
}

impl Default for TrajectoryPanel {
    fn default() -> Self {
        TrajectoryPanel {
            n_qubits: 0,
            batch: 0,
            re: Vec::new(),
            im: Vec::new(),
            norms: Vec::new(),
            uniforms: Vec::new(),
            branch_rows: Vec::new(),
            branch_any: Vec::new(),
            kernel: KernelMode::detect(),
        }
    }
}

impl TrajectoryPanel {
    /// Creates an empty panel (no storage until the first reset), with
    /// the kernel dispatch at [`KernelMode::detect`].
    pub fn new() -> Self {
        TrajectoryPanel::default()
    }

    /// The kernel implementation this panel's unitary passes dispatch to.
    pub fn kernel_mode(&self) -> KernelMode {
        self.kernel
    }

    /// Overrides the kernel dispatch — how the bit-identity proptests pin
    /// the scalar oracle against the AVX2 kernels on the same host.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is [`KernelMode::Avx2`] on a host without AVX2
    /// (constructing the variant without support would make the dispatch
    /// helpers' SAFETY argument unsound).
    pub fn set_kernel_mode(&mut self, mode: KernelMode) {
        assert!(
            mode == KernelMode::Scalar || KernelMode::avx2_supported(),
            "AVX2 kernels requested on a host without AVX2"
        );
        self.kernel = mode;
    }

    /// Re-initialises every column to `|0…0⟩` over `n_qubits`, reusing the
    /// buffers when large enough.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is 0 or greater than [`MAX_TRAJECTORY_QUBITS`],
    /// or `batch` is 0 or greater than [`MAX_PANEL_WIDTH`].
    pub fn reset_zero(&mut self, n_qubits: usize, batch: usize) {
        assert!(
            (1..=MAX_TRAJECTORY_QUBITS).contains(&n_qubits),
            "unsupported qubit count"
        );
        assert!(
            (1..=MAX_PANEL_WIDTH).contains(&batch),
            "unsupported panel width"
        );
        self.n_qubits = n_qubits;
        self.batch = batch;
        let total = (1usize << n_qubits) * batch;
        self.re.clear();
        self.re.resize(total, 0.0);
        self.im.clear();
        self.im.resize(total, 0.0);
        self.re[..batch].fill(1.0);
    }

    /// Number of qubits of the current panel (0 before the first reset).
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of trajectory columns (0 before the first reset).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The amplitudes of one trajectory column (length `2^n`).
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn column(&self, col: usize) -> Vec<Complex64> {
        assert!(col < self.batch, "column {col} out of range");
        debug_assert_eq!(
            self.re.len(),
            (1usize << self.n_qubits) * self.batch,
            "panel plane length disagrees with 2^n x batch"
        );
        (0..1usize << self.n_qubits)
            .map(|i| Complex64::new(self.re[i * self.batch + col], self.im[i * self.batch + col]))
            .collect()
    }

    /// Executes one fused program across all columns, one tiled panel pass
    /// per **supergroup** — a maximal run of consecutive fused segments
    /// whose union support fits within [`SUPERGROUP_CAP`] qubits (a whole
    /// entangling layer plus its noise interleave and the single-qubit
    /// segments of its decomposition neighbours, e.g. the full
    /// `CX·dep₂·RY·dep₁·CX·dep₂·RY·dep₁` body of a noisy controlled
    /// rotation). Unitary atoms are applied panel-wide,
    /// stochastic atoms consume one pre-drawn uniform per column
    /// (`uniforms[c * n_stoch + s]` for column `c`, stochastic atom `s`)
    /// and apply their jump column-wise inside the same pass.
    ///
    /// Atoms are never reordered — every amplitude sees the identical
    /// per-column expression sequence of atom-by-atom execution, grouping
    /// only changes which memory pass hosts the arithmetic — and passing
    /// the uniforms in trajectory-major order makes each column replay
    /// exactly the draw sequence the per-trajectory engine hands one
    /// trajectory. Together that is how [`estimate_prob_one_panel`] stays
    /// bit-identical to [`estimate_prob_one`].
    ///
    /// # Panics
    ///
    /// Panics if the program's qubit count differs from the panel's or
    /// `uniforms.len() != batch * program.n_stochastic_atoms()`.
    pub fn run_stochastic(&mut self, program: &FusedProgram, uniforms: &[f64]) {
        assert_eq!(
            program.n_qubits(),
            self.n_qubits,
            "program/panel qubit count mismatch"
        );
        let n_stoch = program.n_stochastic_atoms();
        assert_eq!(
            uniforms.len(),
            self.batch * n_stoch,
            "need one uniform per stochastic atom per column"
        );
        let b = self.batch;
        let kernel = self.kernel;
        let mut s = 0usize;
        let mut rows = std::mem::take(&mut self.branch_rows);
        let mut any = std::mem::take(&mut self.branch_any);
        let segs = program.segments();
        for group in supergroups(program) {
            let (u, v, w) = (group.u, group.v, group.w);
            let group_segs = &segs[group.segments];
            // Pre-sample the group's jump branches: branch `k` of
            // stochastic atom `j` for column `c` is a pure function of the
            // column's pre-drawn uniform, so sampling them up front (one
            // row per stochastic atom) consumes exactly the per-trajectory
            // engine's draw sequence.
            rows.clear();
            any.clear();
            for seg in group_segs {
                for atom in program.atoms_in(seg) {
                    let lambda = match *atom {
                        FusedAtom::Depol1 { lambda } => lambda,
                        FusedAtom::Depol2 { lambda, .. } => lambda,
                        _ => continue,
                    };
                    let two_qubit = matches!(atom, FusedAtom::Depol2 { .. });
                    let mut any_jump = false;
                    for c in 0..b {
                        let uni = uniforms[c * n_stoch + s];
                        let k = if two_qubit {
                            depol2_branch(lambda, uni)
                        } else {
                            depol1_branch(lambda, uni)
                        } as u8;
                        any_jump |= k != 0;
                        rows.push(k);
                    }
                    any.push(any_jump);
                    s += 1;
                }
            }
            match (v, w) {
                (None, _) => {
                    // Single-qubit group: cheaper pair tiles.
                    let mut passes: Vec<Pass1q> = Vec::new();
                    let mut jump = 0usize;
                    for seg in group_segs {
                        for atom in program.atoms_in(seg) {
                            match *atom {
                                FusedAtom::Unitary1 { m2, class } => {
                                    passes.push(Pass1q::Unitary(program.m2(m2), class));
                                }
                                FusedAtom::Depol1 { .. } => {
                                    passes.push(if any[jump] {
                                        Pass1q::Jump(&rows[jump * b..(jump + 1) * b])
                                    } else {
                                        Pass1q::Skip
                                    });
                                    jump += 1;
                                }
                                _ => unreachable!("two-qubit atom in one-qubit group"),
                            }
                        }
                    }
                    run_pair_pass(kernel, &mut self.re, &mut self.im, b, u, &passes);
                }
                (Some(v), None) => {
                    let mut passes: Vec<Pass2q> = Vec::new();
                    let mut jump = 0usize;
                    for seg in group_segs {
                        // Orientation of this segment inside the group's
                        // (u, v) wire basis.
                        let flip = match seg.support() {
                            Support::One(_) => false,
                            Support::Two(a, _) => a != u,
                        };
                        let on_b = match seg.support() {
                            Support::One(q) => q == v,
                            Support::Two(..) => false,
                        };
                        for atom in program.atoms_in(seg) {
                            match *atom {
                                FusedAtom::Unitary1 { m2, class } => {
                                    passes.push(Pass2q::Unitary1(program.m2(m2), class, on_b));
                                }
                                FusedAtom::Depol1 { .. } => {
                                    passes.push(if any[jump] {
                                        Pass2q::Jump1(&rows[jump * b..(jump + 1) * b], on_b)
                                    } else {
                                        Pass2q::Skip
                                    });
                                    jump += 1;
                                }
                                FusedAtom::Cx { control } => {
                                    passes.push(if (control == Wire::A) != flip {
                                        Pass2q::SwapA
                                    } else {
                                        Pass2q::SwapB
                                    });
                                }
                                FusedAtom::Unitary2 { m4, swapped } => {
                                    passes.push(Pass2q::Unitary(program.m4(m4), swapped != flip));
                                }
                                FusedAtom::Depol2 { swapped, .. } => {
                                    passes.push(if any[jump] {
                                        Pass2q::Jump(
                                            &rows[jump * b..(jump + 1) * b],
                                            swapped != flip,
                                        )
                                    } else {
                                        Pass2q::Skip
                                    });
                                    jump += 1;
                                }
                            }
                        }
                    }
                    run_quartet_pass(kernel, &mut self.re, &mut self.im, b, u, v, &passes);
                }
                (Some(v), Some(w)) => {
                    // Three-qubit group: octet tiles in the group's
                    // (u, v, w) wire basis (strip bits 2, 1, 0).
                    let bit_of = |q: usize| {
                        if q == u {
                            2usize
                        } else if q == v {
                            1
                        } else {
                            debug_assert_eq!(q, w, "segment qubit outside the group's wire basis");
                            0
                        }
                    };
                    let mut passes: Vec<Pass3q> = Vec::new();
                    let mut jump = 0usize;
                    for seg in group_segs {
                        match seg.support() {
                            Support::One(q) => {
                                let wb = bit_of(q);
                                for atom in program.atoms_in(seg) {
                                    match *atom {
                                        FusedAtom::Unitary1 { m2, class } => {
                                            passes.push(Pass3q::Unitary1(
                                                program.m2(m2),
                                                class,
                                                wb,
                                            ));
                                        }
                                        FusedAtom::Depol1 { .. } => {
                                            passes.push(if any[jump] {
                                                Pass3q::Jump1(&rows[jump * b..(jump + 1) * b], wb)
                                            } else {
                                                Pass3q::Skip
                                            });
                                            jump += 1;
                                        }
                                        _ => unreachable!("two-qubit atom in one-qubit segment"),
                                    }
                                }
                            }
                            Support::Two(a, bq) => {
                                let ab = bit_of(a);
                                let bb = bit_of(bq);
                                for atom in program.atoms_in(seg) {
                                    match *atom {
                                        FusedAtom::Cx { control } => {
                                            let (cb, tb) = if control == Wire::A {
                                                (ab, bb)
                                            } else {
                                                (bb, ab)
                                            };
                                            passes.push(Pass3q::Swap(cb, tb));
                                        }
                                        FusedAtom::Unitary2 { m4, swapped } => {
                                            passes.push(Pass3q::Unitary2(
                                                program.m4(m4),
                                                swapped,
                                                ab,
                                                bb,
                                            ));
                                        }
                                        FusedAtom::Depol2 { swapped, .. } => {
                                            passes.push(if any[jump] {
                                                Pass3q::Jump2(
                                                    &rows[jump * b..(jump + 1) * b],
                                                    swapped,
                                                    ab,
                                                    bb,
                                                )
                                            } else {
                                                Pass3q::Skip
                                            });
                                            jump += 1;
                                        }
                                        _ => unreachable!("one-qubit atom in two-qubit segment"),
                                    }
                                }
                            }
                        }
                    }
                    run_octet_pass(kernel, &mut self.re, &mut self.im, b, u, v, w, &passes);
                }
            }
        }
        // Uniform-consumption invariant: the panel pass must drain exactly
        // the per-trajectory draw budget, or column replay is not
        // bit-identical to the workspace engine.
        debug_assert_eq!(
            s, n_stoch,
            "panel pass consumed {s} of {n_stoch} stochastic draws"
        );
        self.branch_rows = rows;
        self.branch_any = any;
    }

    /// `P(1)` of every qubit of every column in one pass over the panel:
    /// `out[q * batch + c]` is column `c`'s marginal on qubit `q`.
    ///
    /// Per `(qubit, column)` pair the `f64` additions happen in increasing
    /// register-index order — the same sequence as
    /// [`TrajectoryWorkspace::probs_one_all`] (and `prob_one`) — so the
    /// sums are bit-identical to the per-trajectory engine's.
    pub fn probs_one_all(&mut self) -> Vec<f64> {
        let TrajectoryPanel {
            n_qubits,
            batch,
            ref re,
            ref im,
            ref mut norms,
            ..
        } = *self;
        let mut out = vec![0.0f64; n_qubits * batch];
        norms.clear();
        norms.resize(batch, 0.0);
        for (i, (rrow, irow)) in re
            .chunks_exact(batch)
            .zip(im.chunks_exact(batch))
            .enumerate()
        {
            if i == 0 {
                continue;
            }
            for ((n, &r), &m) in norms.iter_mut().zip(rrow.iter()).zip(irow.iter()) {
                *n = r * r + m * m;
            }
            let mut bits = i;
            while bits != 0 {
                let q = bits.trailing_zeros() as usize;
                let dst = &mut out[q * batch..(q + 1) * batch];
                for (d, &n) in dst.iter_mut().zip(norms.iter()) {
                    *d += n;
                }
                bits &= bits - 1;
            }
        }
        out
    }
}

/// Batched counterpart of [`estimate_prob_one`]: averages `n_trajectories`
/// seeded trajectories executed as [`TrajectoryPanel`] chunks of at most
/// `panel_width` columns.
///
/// **Bit-identical** to [`estimate_prob_one`] for every `(seed,
/// n_trajectories)` and every `panel_width`: the jump uniforms are
/// pre-drawn from the same single `StdRng` in trajectory-major order (so
/// trajectory `t` consumes exactly the draws it would consume in the
/// sequential engine no matter how trajectories are chunked into panels),
/// each column's amplitude arithmetic matches the workspace kernels
/// expression for expression, and the `P(1)` accumulation visits
/// trajectories in the same order.
///
/// # Panics
///
/// Panics if `n_trajectories == 0`, `panel_width == 0`, or a qubit is out
/// of range.
pub fn estimate_prob_one_panel(
    panel: &mut TrajectoryPanel,
    program: &FusedProgram,
    qubits: &[usize],
    n_trajectories: u32,
    seed: u64,
    panel_width: usize,
) -> TrajectoryEstimate {
    assert!(n_trajectories > 0, "need at least one trajectory");
    assert!(panel_width > 0, "panel width must be positive");
    for &q in qubits {
        assert!(q < program.n_qubits(), "qubit {q} out of range");
    }
    let n = if program.is_deterministic() {
        1
    } else {
        n_trajectories
    };
    let n_stoch = program.n_stochastic_atoms();
    let width = panel_width.min(MAX_PANEL_WIDTH);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum = vec![0.0f64; qubits.len()];
    let mut sum_sq = vec![0.0f64; qubits.len()];
    let mut remaining = n as usize;
    while remaining > 0 {
        let b = width.min(remaining);
        // Pre-draw this chunk's jump uniforms in trajectory-major order;
        // the buffer lives on the panel so steady-state chunks allocate
        // nothing.
        let mut uniforms = std::mem::take(&mut panel.uniforms);
        uniforms.clear();
        uniforms.extend((0..b * n_stoch).map(|_| rng.gen::<f64>()));
        panel.reset_zero(program.n_qubits(), b);
        panel.run_stochastic(program, &uniforms);
        panel.uniforms = uniforms;
        let probs = panel.probs_one_all();
        for c in 0..b {
            for (i, &q) in qubits.iter().enumerate() {
                let p = probs[q * b + c];
                sum[i] += p;
                sum_sq[i] += p * p;
            }
        }
        remaining -= b;
    }
    finish_estimate(qubits, sum, sum_sq, n)
}

/// Multi-probe counterpart of [`estimate_prob_one_panel`]: evaluates one
/// compiled program under several independent trajectory streams (one
/// `seed` per probe) while sharing a single [`TrajectoryPanel`] across all
/// of them.
///
/// This is the trajectory half of the batched gradient engine in
/// `qnn::executor`: shift/SPSA probes that bind to the **same** compiled
/// program (bitwise-equal parameter vectors under one snapshot) differ
/// only in their noise streams, so their trajectories can ride the same
/// panel sweeps. Probe `p`'s trajectories occupy the global column range
/// `p·N .. (p+1)·N`; a chunk of up to `panel_width` columns may therefore
/// span probe boundaries, which fills the panel where per-probe chunking
/// would run partial tail chunks.
///
/// **Bit-identity**: element `p` of the result equals
/// `estimate_prob_one_panel(panel, program, qubits, n_trajectories,
/// seeds[p], panel_width)` exactly, for every width. Each probe's uniforms
/// are drawn from its own `StdRng` in trajectory-major order (a column
/// consumes exactly the draws its trajectory would consume standalone),
/// each column's amplitude arithmetic is independent of its neighbours,
/// and each probe's `P(1)` accumulation visits its trajectories in
/// increasing trajectory order regardless of where chunk boundaries fall.
/// Deterministic programs short-circuit to one exact pass shared by every
/// probe — the single-probe entry never consumes a uniform there, so its
/// result is seed-independent and the sharing is exact.
///
/// # Panics
///
/// As [`estimate_prob_one_panel`].
pub fn estimate_prob_one_panel_multi(
    panel: &mut TrajectoryPanel,
    program: &FusedProgram,
    qubits: &[usize],
    n_trajectories: u32,
    seeds: &[u64],
    panel_width: usize,
) -> Vec<TrajectoryEstimate> {
    assert!(n_trajectories > 0, "need at least one trajectory");
    assert!(panel_width > 0, "panel width must be positive");
    for &q in qubits {
        assert!(q < program.n_qubits(), "qubit {q} out of range");
    }
    if seeds.is_empty() {
        return Vec::new();
    }
    if program.is_deterministic() {
        let est = estimate_prob_one_panel(
            panel,
            program,
            qubits,
            n_trajectories,
            seeds[0],
            panel_width,
        );
        return vec![est; seeds.len()];
    }
    let n = n_trajectories as usize;
    let n_stoch = program.n_stochastic_atoms();
    let width = panel_width.min(MAX_PANEL_WIDTH);
    let mut rngs: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
    let nq = qubits.len();
    let mut sum = vec![0.0f64; seeds.len() * nq];
    let mut sum_sq = vec![0.0f64; seeds.len() * nq];
    let total = seeds.len() * n;
    let mut owners: Vec<usize> = Vec::with_capacity(width);
    let mut start = 0usize;
    while start < total {
        let b = width.min(total - start);
        let mut uniforms = std::mem::take(&mut panel.uniforms);
        uniforms.clear();
        owners.clear();
        for c in 0..b {
            // Column `start + c` is trajectory `(start + c) % n` of probe
            // `(start + c) / n`; its uniforms come from that probe's RNG,
            // which is thereby consumed in trajectory-major order.
            let p = (start + c) / n;
            owners.push(p);
            uniforms.extend((0..n_stoch).map(|_| rngs[p].gen::<f64>()));
        }
        panel.reset_zero(program.n_qubits(), b);
        panel.run_stochastic(program, &uniforms);
        panel.uniforms = uniforms;
        let probs = panel.probs_one_all();
        for (c, &p) in owners.iter().enumerate() {
            for (i, &q) in qubits.iter().enumerate() {
                let v = probs[q * b + c];
                sum[p * nq + i] += v;
                sum_sq[p * nq + i] += v * v;
            }
        }
        start += b;
    }
    (0..seeds.len())
        .map(|p| {
            finish_estimate(
                qubits,
                sum[p * nq..(p + 1) * nq].to_vec(),
                sum_sq[p * nq..(p + 1) * nq].to_vec(),
                n_trajectories,
            )
        })
        .collect()
}

/// Per-qubit `P(1)` estimate from a batch of trajectories, with the
/// standard error the cross-backend consistency harness derives its
/// confidence bound from.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryEstimate {
    /// Qubits the estimate covers, in request order.
    pub qubits: Vec<usize>,
    /// Mean `P(1)` per qubit (unbiased estimate of the exact channel
    /// average).
    pub p_one: Vec<f64>,
    /// Standard error of each mean (`√(s² / N)` with the sample variance
    /// `s²`; 0 when the program is deterministic).
    pub std_err: Vec<f64>,
    /// Number of trajectories averaged (1 for deterministic programs).
    pub n_trajectories: u32,
}

impl TrajectoryEstimate {
    /// `P(1)` of a covered qubit.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not one of the estimated qubits.
    pub fn p_one_of(&self, q: usize) -> f64 {
        let idx = self
            .qubits
            .iter()
            .position(|&x| x == q)
            .unwrap_or_else(|| panic!("qubit {q} not covered by this estimate"));
        self.p_one[idx]
    }

    /// `⟨Z⟩ = 1 − 2·P(1)` per covered qubit.
    pub fn z_scores(&self) -> Vec<f64> {
        self.p_one.iter().map(|p| 1.0 - 2.0 * p).collect()
    }

    /// Standard error of each Z score (`2 ×` the `P(1)` standard error).
    pub fn z_std_err(&self) -> Vec<f64> {
        self.std_err.iter().map(|s| 2.0 * s).collect()
    }
}

/// Averages `n_trajectories` seeded trajectories of `program` and returns
/// per-qubit `P(1)` estimates with standard errors.
///
/// Deterministic: the whole batch draws from one `StdRng` seeded with
/// `seed`, so identical `(program, qubits, n_trajectories, seed)` inputs
/// return identical bits on any thread. Programs with no stochastic atom
/// short-circuit to a single exact trajectory.
///
/// # Panics
///
/// Panics if `n_trajectories == 0` or a qubit is out of range.
pub fn estimate_prob_one(
    ws: &mut TrajectoryWorkspace,
    program: &FusedProgram,
    qubits: &[usize],
    n_trajectories: u32,
    seed: u64,
) -> TrajectoryEstimate {
    assert!(n_trajectories > 0, "need at least one trajectory");
    for &q in qubits {
        assert!(q < program.n_qubits(), "qubit {q} out of range");
    }
    let n = if program.is_deterministic() {
        1
    } else {
        n_trajectories
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum = vec![0.0f64; qubits.len()];
    let mut sum_sq = vec![0.0f64; qubits.len()];
    for _ in 0..n {
        ws.reset_zero(program.n_qubits());
        ws.run_stochastic(program, &mut rng);
        // One sweep for all marginals (bit-identical to per-qubit
        // `prob_one`, see `probs_one_all`).
        let probs = ws.probs_one_all();
        for (i, &q) in qubits.iter().enumerate() {
            let p = probs[q];
            sum[i] += p;
            sum_sq[i] += p * p;
        }
    }
    finish_estimate(qubits, sum, sum_sq, n)
}

/// Folds trajectory-ordered `P(1)` sums into the final estimate (shared by
/// the per-trajectory and panel paths so the statistics can never drift).
fn finish_estimate(
    qubits: &[usize],
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
    n: u32,
) -> TrajectoryEstimate {
    let nf = n as f64;
    let p_one: Vec<f64> = sum.iter().map(|s| s / nf).collect();
    let std_err: Vec<f64> = sum_sq
        .iter()
        .zip(p_one.iter())
        .map(|(&sq, &m)| {
            if n < 2 {
                0.0
            } else {
                let var = ((sq - nf * m * m) / (nf - 1.0)).max(0.0);
                (var / nf).sqrt()
            }
        })
        .collect();
    TrajectoryEstimate {
        qubits: qubits.to_vec(),
        p_one,
        std_err,
        n_trajectories: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::DensityMatrix;
    use crate::fused::ProgramBuilder;
    use crate::gate::{BoundGate, GateKind};
    use crate::statevector::run_circuit;

    #[test]
    fn deterministic_program_matches_statevector_bits() {
        let gates = [
            BoundGate::one(GateKind::H, 0, 0.0),
            BoundGate::one(GateKind::Ry, 1, 0.7),
            BoundGate::two(GateKind::Cx, 0, 2, 0.0),
            BoundGate::one(GateKind::Rz, 2, -0.4),
            BoundGate::two(GateKind::Crz, 2, 1, 1.1),
        ];
        let reference = run_circuit(3, &gates);

        let mut b = ProgramBuilder::new(3);
        b.unitary_1q(0, GateKind::H.entries_1q(0.0).unwrap());
        b.unitary_1q(1, GateKind::Ry.entries_1q(0.7).unwrap());
        b.cx(0, 2);
        b.unitary_1q(2, GateKind::Rz.entries_1q(-0.4).unwrap());
        b.unitary_2q(2, 1, GateKind::Crz.entries_2q(1.1).unwrap());
        let program = b.finish();
        assert!(program.is_deterministic());

        let mut ws = TrajectoryWorkspace::new();
        let est = estimate_prob_one(&mut ws, &program, &[0, 1, 2], 500, 3);
        // Deterministic programs short-circuit to one exact pass.
        assert_eq!(est.n_trajectories, 1);
        for (q, (p, se)) in est.p_one.iter().zip(est.std_err.iter()).enumerate() {
            assert_eq!(p.to_bits(), reference.prob_one(q).to_bits());
            assert_eq!(*se, 0.0);
        }
    }

    #[test]
    fn estimate_is_seed_deterministic() {
        // Asymmetric rotation so Pauli jumps genuinely move the marginals
        // (on a Bell pair every Pauli jump leaves P(1) at 1/2).
        let mut b = ProgramBuilder::new(2);
        b.unitary_1q(0, GateKind::Ry.entries_1q(0.7).unwrap());
        b.depolarize_1q(0, 0.2);
        b.cx(0, 1);
        b.depolarize_2q(0.1, 0, 1);
        let program = b.finish();
        let mut ws = TrajectoryWorkspace::new();
        let a = estimate_prob_one(&mut ws, &program, &[0, 1], 64, 42);
        let b2 = estimate_prob_one(&mut ws, &program, &[0, 1], 64, 42);
        assert_eq!(a, b2);
        let c = estimate_prob_one(&mut ws, &program, &[0, 1], 64, 43);
        assert_ne!(a.p_one, c.p_one);
    }

    #[test]
    fn depolarising_average_converges_to_density_matrix() {
        // X then strong depolarising on qubit 0: exact P(1) from ρ.
        let lambda = 0.6;
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&BoundGate::one(GateKind::X, 0, 0.0));
        rho.apply_depolarizing_1q(lambda, 0);
        rho.apply_cx(0, 1);
        rho.apply_depolarizing_2q(0.3, 0, 1);
        let exact = [rho.prob_one(0), rho.prob_one(1)];

        let mut b = ProgramBuilder::new(2);
        b.unitary_1q(0, GateKind::X.entries_1q(0.0).unwrap());
        b.depolarize_1q(0, lambda);
        b.cx(0, 1);
        b.depolarize_2q(0.3, 0, 1);
        let program = b.finish();
        let mut ws = TrajectoryWorkspace::new();
        let est = estimate_prob_one(&mut ws, &program, &[0, 1], 4000, 11);
        for (i, &e) in exact.iter().enumerate() {
            let bound = 6.0 * est.std_err[i] + 1e-9;
            assert!(
                (est.p_one[i] - e).abs() <= bound,
                "qubit {i}: {} vs exact {e} (bound {bound})",
                est.p_one[i]
            );
        }
    }

    #[test]
    fn trajectories_preserve_norm() {
        let mut b = ProgramBuilder::new(3);
        b.unitary_1q(0, GateKind::H.entries_1q(0.0).unwrap());
        b.depolarize_1q(0, 0.9);
        b.cx(0, 1);
        b.depolarize_2q(0.8, 0, 1);
        b.unitary_2q(1, 2, GateKind::Cry.entries_2q(0.8).unwrap());
        let program = b.finish();
        let mut ws = TrajectoryWorkspace::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            ws.reset_zero(3);
            ws.run_stochastic(&program, &mut rng);
            assert!((ws.norm_sqr() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn amplitude_damping_unravels_to_ground_state() {
        // γ = 1 damping always jumps |1⟩ → |0⟩, whichever branch fires.
        let ch = KrausChannel::amplitude_damping(1.0);
        let mut ws = TrajectoryWorkspace::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            ws.reset_zero(1);
            m2_on(
                &mut ws.amps,
                0,
                &GateKind::X.entries_1q(0.0).unwrap(),
                MatClass::Real,
            );
            ws.apply_channel_stochastic(&ch, &[0], &mut rng);
            assert!(ws.prob_one(0) < 1e-12);
            assert!((ws.norm_sqr() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn generic_kraus_unraveling_matches_channel_average() {
        // |+⟩ through amplitude damping: exact ρ vs trajectory average.
        let gamma = 0.35;
        let ch = KrausChannel::amplitude_damping(gamma);
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&BoundGate::one(GateKind::H, 0, 0.0));
        rho.apply_channel(&ch, &[0]);
        let exact = rho.prob_one(0);

        let mut ws = TrajectoryWorkspace::new();
        let mut rng = StdRng::seed_from_u64(17);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            ws.reset_zero(1);
            m2_on(
                &mut ws.amps,
                0,
                GateKind::H.fixed_entries_1q().unwrap(),
                MatClass::Real,
            );
            ws.apply_channel_stochastic(&ch, &[0], &mut rng);
            sum += ws.prob_one(0);
        }
        let mean = sum / n as f64;
        assert!(
            (mean - exact).abs() < 0.01,
            "trajectory mean {mean} vs exact {exact}"
        );
    }

    fn noisy_test_program() -> FusedProgram {
        let mut b = ProgramBuilder::new(3);
        b.unitary_1q(0, GateKind::Ry.entries_1q(0.7).unwrap());
        b.depolarize_1q(0, 0.3);
        b.cx(0, 1);
        b.depolarize_2q(0.2, 0, 1);
        b.unitary_1q(2, GateKind::Rz.entries_1q(-0.4).unwrap());
        b.unitary_2q(1, 2, GateKind::Cry.entries_2q(0.8).unwrap());
        b.depolarize_2q(0.15, 2, 1);
        b.finish()
    }

    #[test]
    fn probs_one_all_matches_per_qubit_prob_one_bits() {
        let program = noisy_test_program();
        let mut ws = TrajectoryWorkspace::new();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            ws.reset_zero(3);
            ws.run_stochastic(&program, &mut rng);
            let all = ws.probs_one_all();
            for (q, p) in all.iter().enumerate() {
                assert_eq!(p.to_bits(), ws.prob_one(q).to_bits());
            }
        }
    }

    #[test]
    fn supergroup_planner_joins_three_qubit_support() {
        let program = noisy_test_program();
        // Ry(0)·dep₁(0) / CX(0,1)·dep₂(0,1) / Rz(2) / Cry(1,2)·dep₂(2,1)
        // spans exactly {0, 1, 2}: one octet group covers the program,
        // wires in first-seen order.
        let plan = supergroup_plan(&program);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].segments, 0..program.segments().len());
        assert_eq!((plan[0].u, plan[0].v, plan[0].w), (0, Some(1), Some(2)));
    }

    #[test]
    fn supergroup_planner_splits_on_fourth_wire() {
        let mut b = ProgramBuilder::new(4);
        b.cx(0, 1);
        b.depolarize_2q(0.1, 0, 1);
        b.unitary_1q(2, GateKind::Ry.entries_1q(0.3).unwrap());
        b.cx(2, 3);
        let program = b.finish();
        let plan = supergroup_plan(&program);
        // {0,1,2} fits the cap; segment on (2,3) brings qubit 3 and must
        // open a new group.
        assert_eq!(plan.len(), 2);
        assert_eq!((plan[0].u, plan[0].v, plan[0].w), (0, Some(1), Some(2)));
        assert_eq!((plan[1].u, plan[1].v, plan[1].w), (2, Some(3), None));
    }

    #[test]
    fn scalar_and_avx2_kernels_are_bit_identical() {
        if !KernelMode::avx2_supported() {
            return;
        }
        let program = noisy_test_program();
        let n_stoch = program.n_stochastic_atoms();
        // Width 7: exercises the SIMD kernels' scalar remainder tail.
        let batch = 7usize;
        let mut rng = StdRng::seed_from_u64(21);
        let uniforms: Vec<f64> = (0..batch * n_stoch).map(|_| rng.gen()).collect();
        let mut scalar = TrajectoryPanel::new();
        scalar.set_kernel_mode(KernelMode::Scalar);
        scalar.reset_zero(3, batch);
        scalar.run_stochastic(&program, &uniforms);
        let mut simd = TrajectoryPanel::new();
        simd.set_kernel_mode(KernelMode::Avx2);
        simd.reset_zero(3, batch);
        simd.run_stochastic(&program, &uniforms);
        for c in 0..batch {
            for (i, (a, b)) in scalar
                .column(c)
                .iter()
                .zip(simd.column(c).iter())
                .enumerate()
            {
                assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "column {c} amplitude {i}: scalar {a} vs avx2 {b}"
                );
            }
        }
    }

    #[test]
    fn panel_estimate_is_bit_identical_to_per_trajectory_engine() {
        let program = noisy_test_program();
        let mut ws = TrajectoryWorkspace::new();
        let reference = estimate_prob_one(&mut ws, &program, &[0, 1, 2], 96, 33);
        let mut panel = TrajectoryPanel::new();
        for width in [1usize, 2, 7, 32, 96, 128] {
            let got = estimate_prob_one_panel(&mut panel, &program, &[0, 1, 2], 96, 33, width);
            assert_eq!(got.n_trajectories, reference.n_trajectories);
            for i in 0..3 {
                assert_eq!(
                    got.p_one[i].to_bits(),
                    reference.p_one[i].to_bits(),
                    "width {width} qubit {i} p_one"
                );
                assert_eq!(
                    got.std_err[i].to_bits(),
                    reference.std_err[i].to_bits(),
                    "width {width} qubit {i} std_err"
                );
            }
        }
    }

    #[test]
    fn panel_columns_replay_individual_trajectories_bitwise() {
        let program = noisy_test_program();
        let n_stoch = program.n_stochastic_atoms();
        assert_eq!(n_stoch, 3);
        let batch = 5usize;
        let mut rng = StdRng::seed_from_u64(77);
        let uniforms: Vec<f64> = (0..batch * n_stoch).map(|_| rng.gen()).collect();

        let mut panel = TrajectoryPanel::new();
        panel.reset_zero(3, batch);
        panel.run_stochastic(&program, &uniforms);

        // Per-trajectory engine replaying the same draw sequence: one fresh
        // run per column, consuming that column's uniforms in order.
        let mut replay_rng = StdRng::seed_from_u64(77);
        let mut ws = TrajectoryWorkspace::new();
        for c in 0..batch {
            ws.reset_zero(3);
            ws.run_stochastic(&program, &mut replay_rng);
            let col = panel.column(c);
            for (i, (a, b)) in col.iter().zip(ws.amplitudes().iter()).enumerate() {
                assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "column {c} amplitude {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn multi_probe_panel_matches_per_probe_panel_bitwise() {
        let program = noisy_test_program();
        let seeds = [11u64, 12, 13, 14, 15];
        let mut panel = TrajectoryPanel::new();
        // Widths that divide the per-probe count, exceed it (chunks span
        // probe boundaries), and leave ragged tails.
        for width in [1usize, 5, 7, 24, 64, 200] {
            let got =
                estimate_prob_one_panel_multi(&mut panel, &program, &[0, 1, 2], 24, &seeds, width);
            assert_eq!(got.len(), seeds.len());
            for (p, &seed) in seeds.iter().enumerate() {
                let mut solo = TrajectoryPanel::new();
                let want =
                    estimate_prob_one_panel(&mut solo, &program, &[0, 1, 2], 24, seed, width);
                assert_eq!(got[p].n_trajectories, want.n_trajectories);
                for i in 0..3 {
                    assert_eq!(
                        got[p].p_one[i].to_bits(),
                        want.p_one[i].to_bits(),
                        "width {width} probe {p} qubit {i} p_one"
                    );
                    assert_eq!(
                        got[p].std_err[i].to_bits(),
                        want.std_err[i].to_bits(),
                        "width {width} probe {p} qubit {i} std_err"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_probe_panel_shares_deterministic_pass() {
        let mut b = ProgramBuilder::new(2);
        b.unitary_1q(0, GateKind::H.entries_1q(0.0).unwrap());
        b.cx(0, 1);
        let program = b.finish();
        let mut panel = TrajectoryPanel::new();
        let ests = estimate_prob_one_panel_multi(&mut panel, &program, &[0, 1], 64, &[3, 9], 16);
        assert_eq!(ests.len(), 2);
        for est in &ests {
            assert_eq!(est.n_trajectories, 1);
            let want = estimate_prob_one_panel(&mut panel, &program, &[0, 1], 64, 999, 16);
            for i in 0..2 {
                assert_eq!(est.p_one[i].to_bits(), want.p_one[i].to_bits());
            }
        }
        assert!(estimate_prob_one_panel_multi(&mut panel, &program, &[0], 8, &[], 4).is_empty());
    }

    #[test]
    fn deterministic_program_short_circuits_on_panel_too() {
        let mut b = ProgramBuilder::new(2);
        b.unitary_1q(0, GateKind::H.entries_1q(0.0).unwrap());
        b.cx(0, 1);
        let program = b.finish();
        let mut panel = TrajectoryPanel::new();
        let est = estimate_prob_one_panel(&mut panel, &program, &[0, 1], 500, 1, 64);
        assert_eq!(est.n_trajectories, 1);
        assert!(est.std_err.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn auto_panel_width_shrinks_with_register_size() {
        assert_eq!(auto_panel_width(4), 16);
        assert_eq!(auto_panel_width(16), 8);
        assert_eq!(auto_panel_width(20), MIN_AUTO_PANEL_WIDTH);
        assert!(auto_panel_width(MAX_TRAJECTORY_QUBITS) >= MIN_AUTO_PANEL_WIDTH);
    }

    #[test]
    fn auto_panel_width_keeps_simd_fill_on_wide_registers() {
        // Pinned width per register size across the trajectory engine's
        // whole range: the 8 MiB streaming budget picks the width down to
        // 17 qubits, the SIMD-lane floor holds from 18 on (wide registers
        // must not degenerate to per-trajectory execution).
        for n in 4..=MAX_TRAJECTORY_QUBITS {
            let expect = match n {
                4..=15 => 16,
                16 => 8,
                17 => 4,
                _ => MIN_AUTO_PANEL_WIDTH,
            };
            assert_eq!(auto_panel_width(n), expect, "auto width at {n} qubits");
            assert_eq!(
                auto_panel_width_is_clamped(n),
                n >= 18,
                "clamp detection at {n} qubits"
            );
        }
        assert!(auto_panel_width(20) >= 4);
    }

    #[test]
    fn panel_width_value_resolution() {
        // Explicit values parse (clamped to the trajectory count)...
        assert_eq!(panel_width_from_value(Some("12"), 16, 256), 12);
        assert_eq!(panel_width_from_value(Some(" 7 "), 16, 256), 7);
        assert_eq!(panel_width_from_value(Some("12"), 16, 5), 5);
        // ...an unset variable resolves to the auto width...
        assert_eq!(panel_width_from_value(None, 16, 256), auto_panel_width(16));
        // ...and the hard cap holds.
        assert_eq!(
            panel_width_from_value(Some("999999"), 4, u32::MAX),
            MAX_PANEL_WIDTH
        );
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn panel_width_rejects_whitespace_value() {
        let _ = panel_width_from_value(Some("   "), 16, 256);
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn panel_width_rejects_empty_value() {
        let _ = panel_width_from_value(Some(""), 16, 256);
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn panel_width_rejects_zero_value() {
        let _ = panel_width_from_value(Some("0"), 16, 256);
    }

    #[test]
    #[should_panic(expected = "unsupported panel width")]
    fn panel_rejects_zero_width() {
        let mut panel = TrajectoryPanel::new();
        panel.reset_zero(2, 0);
    }

    #[test]
    #[should_panic(expected = "unsupported qubit count")]
    fn workspace_rejects_oversized_register() {
        let mut ws = TrajectoryWorkspace::new();
        ws.reset_zero(MAX_TRAJECTORY_QUBITS + 1);
    }

    #[test]
    #[should_panic(expected = "at least one trajectory")]
    fn estimate_rejects_zero_trajectories() {
        let mut b = ProgramBuilder::new(1);
        b.depolarize_1q(0, 0.1);
        let program = b.finish();
        let mut ws = TrajectoryWorkspace::new();
        let _ = estimate_prob_one(&mut ws, &program, &[0], 0, 0);
    }
}

//! Static IR verification for fused programs and supergroup plans.
//!
//! Everything the reproduction promises — bit-identity across backends,
//! threads, panel widths, and cache warmth — rests on the compiled
//! [`FusedProgram`] IR honouring a set of structural invariants that are
//! otherwise enforced only by the builder's construction discipline. This
//! module checks them **statically**, without executing a single kernel:
//!
//! - the register size is within the trajectory engine's cap;
//! - segments partition the atom table contiguously, in order, with no
//!   empty, overlapping, or dangling ranges;
//! - every support qubit is in-bounds and pair supports are collision-free;
//! - every atom's arity matches its segment's support
//!   (2^|support|-dimensional matrices only);
//! - matrix table indices are in-bounds and no table entry is orphaned;
//! - every [`MatClass`] claim is re-derived from the actual matrix
//!   (the kernels pick conjugation paths from the claim, so a wrong claim
//!   silently corrupts amplitudes);
//! - every prebound matrix is unitary within [`VERIFY_TOL`];
//! - every precomposed matrix (see
//!   [`FusedProgram::precompose`]) equals the composition of its recorded
//!   factors **bit-exactly** — the composition expression is part of the
//!   IR contract;
//! - every stochastic atom's `λ` is finite and in `(0, 1]`;
//! - the panel supergroup plan covers all segments contiguously and every
//!   group's union support fits the `(u, v, w)` wire basis within
//!   [`SUPERGROUP_CAP`](crate::trajectory::SUPERGROUP_CAP).
//!
//! [`verify_program`] is wired as a `debug_assert!` at the
//! [`ProgramBuilder`](crate::fused::ProgramBuilder) compile boundary and is
//! available standalone for release-mode sweeps (see the `verify_sweep`
//! binary in `qucad_bench`). [`verify_channel`] does the same for Kraus
//! completeness. The [`mutate`] module is the verifier's own proof: a
//! seeded program mutator with a catalogue of corruption classes, each of
//! which must be rejected.

use crate::fused::{classify2, compose2, compose4, FusedAtom, FusedProgram, MatClass, Support};
use crate::math::CMatrix;
use crate::noise::KrausChannel;
use crate::trajectory::{supergroup_plan, Supergroup, MAX_TRAJECTORY_QUBITS, SUPERGROUP_CAP};

/// Numeric tolerance of the matrix-shaped checks (unitarity, Kraus
/// completeness): prebound matrices are exact gate unitaries, so anything
/// beyond a few ulps of accumulated rounding is corruption, not noise.
pub const VERIFY_TOL: f64 = 1e-12;

/// A violated IR invariant, carrying enough position information to find
/// the offending entity.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The program's register size is outside `1..=MAX_TRAJECTORY_QUBITS`.
    RegisterSize {
        /// Declared register size.
        n_qubits: usize,
    },
    /// A segment's atom range is empty (the builder never emits these).
    EmptySegment {
        /// Segment index.
        segment: usize,
    },
    /// A segment's atom range does not start where the previous one ended
    /// (gap or overlap in the partition of the atom table).
    SegmentCoverage {
        /// Segment index.
        segment: usize,
        /// Where the segment had to start.
        expected_start: usize,
        /// Where it actually starts.
        found_start: usize,
    },
    /// The segments do not cover the full atom table.
    DanglingAtoms {
        /// Atoms covered by segments.
        covered: usize,
        /// Atoms in the program.
        total: usize,
    },
    /// A support qubit is outside the register.
    SupportOutOfRange {
        /// Segment index.
        segment: usize,
        /// The out-of-range qubit.
        qubit: usize,
    },
    /// A two-qubit support names the same qubit twice.
    SupportCollision {
        /// Segment index.
        segment: usize,
        /// The colliding qubit.
        qubit: usize,
    },
    /// An atom's arity does not match its segment's support (its matrix
    /// dimension would not be `2^|support|`).
    AtomArity {
        /// Segment index.
        segment: usize,
        /// Atom index into the program's atom table.
        atom: usize,
    },
    /// A matrix table index is out of bounds.
    MatrixIndex {
        /// Atom index into the program's atom table.
        atom: usize,
        /// The out-of-range table index.
        index: usize,
        /// Length of the addressed table.
        table_len: usize,
    },
    /// A matrix table entry is referenced by no atom.
    OrphanMatrix {
        /// Which table (`"m2"` or `"m4"`).
        table: &'static str,
        /// The orphaned entry's index.
        index: usize,
    },
    /// A [`MatClass`] claim disagrees with the classification re-derived
    /// from the actual matrix entries.
    ClassClaim {
        /// Atom index into the program's atom table.
        atom: usize,
        /// The atom's claimed class.
        claimed: MatClass,
        /// The class derived from the matrix.
        derived: MatClass,
    },
    /// A prebound matrix is not unitary within [`VERIFY_TOL`].
    NonUnitary {
        /// Which table (`"m2"` or `"m4"`).
        table: &'static str,
        /// The entry's index.
        index: usize,
    },
    /// A precomposed table entry is malformed: its index is out of range,
    /// it records fewer than two factors, or it does not equal the
    /// bit-exact composition of its recorded factors.
    ComposeMismatch {
        /// Which table (`"m2"` or `"m4"`).
        table: &'static str,
        /// The composed entry's table index.
        index: usize,
    },
    /// A stochastic atom's strength is not finite or outside `(0, 1]`.
    Lambda {
        /// Atom index into the program's atom table.
        atom: usize,
        /// The offending strength.
        lambda: f64,
    },
    /// A supergroup's segment range does not start where the previous one
    /// ended.
    PlanCoverage {
        /// Group index in the plan.
        group: usize,
        /// Where the group had to start.
        expected_start: usize,
        /// Where it actually starts.
        found_start: usize,
    },
    /// The plan does not cover the full segment list.
    PlanDangling {
        /// Segments covered by the plan.
        covered: usize,
        /// Segments in the program.
        total: usize,
    },
    /// A group's `(u, v, w)` wire basis is malformed (out of range,
    /// colliding, or a later wire set while an earlier one is empty) —
    /// the union support would exceed the supergroup cap.
    PlanWires {
        /// Group index in the plan.
        group: usize,
    },
    /// A segment's support is not contained in its group's `(u, v, w)`
    /// wire basis.
    PlanSupport {
        /// Group index in the plan.
        group: usize,
        /// The escaping segment's index.
        segment: usize,
    },
    /// A channel's Kraus operators fail the completeness relation
    /// `Σ K†K = I` within [`VERIFY_TOL`].
    ChannelIncomplete {
        /// Arity of the channel (1 or 2 qubits).
        arity: usize,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            VerifyError::RegisterSize { n_qubits } => write!(
                f,
                "register size {n_qubits} outside 1..={MAX_TRAJECTORY_QUBITS}"
            ),
            VerifyError::EmptySegment { segment } => {
                write!(f, "segment {segment} has an empty atom range")
            }
            VerifyError::SegmentCoverage {
                segment,
                expected_start,
                found_start,
            } => write!(
                f,
                "segment {segment} starts at atom {found_start}, expected {expected_start} \
                 (gap or overlap)"
            ),
            VerifyError::DanglingAtoms { covered, total } => {
                write!(f, "segments cover {covered} of {total} atoms")
            }
            VerifyError::SupportOutOfRange { segment, qubit } => {
                write!(f, "segment {segment} supports out-of-range qubit {qubit}")
            }
            VerifyError::SupportCollision { segment, qubit } => write!(
                f,
                "segment {segment} names qubit {qubit} twice in a pair support"
            ),
            VerifyError::AtomArity { segment, atom } => write!(
                f,
                "atom {atom} has the wrong arity for segment {segment}'s support"
            ),
            VerifyError::MatrixIndex {
                atom,
                index,
                table_len,
            } => write!(
                f,
                "atom {atom} references matrix {index} of a {table_len}-entry table"
            ),
            VerifyError::OrphanMatrix { table, index } => {
                write!(f, "{table} table entry {index} is referenced by no atom")
            }
            VerifyError::ClassClaim {
                atom,
                claimed,
                derived,
            } => write!(
                f,
                "atom {atom} claims class {claimed:?} but the matrix derives {derived:?}"
            ),
            VerifyError::NonUnitary { table, index } => write!(
                f,
                "{table} table entry {index} is not unitary within {VERIFY_TOL:e}"
            ),
            VerifyError::ComposeMismatch { table, index } => write!(
                f,
                "composed {table} table entry {index} does not equal the bit-exact \
                 composition of its recorded factors"
            ),
            VerifyError::Lambda { atom, lambda } => write!(
                f,
                "atom {atom} has depolarising strength {lambda} outside (0, 1]"
            ),
            VerifyError::PlanCoverage {
                group,
                expected_start,
                found_start,
            } => write!(
                f,
                "supergroup {group} starts at segment {found_start}, expected {expected_start}"
            ),
            VerifyError::PlanDangling { covered, total } => {
                write!(f, "supergroup plan covers {covered} of {total} segments")
            }
            VerifyError::PlanWires { group } => write!(
                f,
                "supergroup {group} has a malformed (u, v, w) wire basis \
                 (union support exceeds the {SUPERGROUP_CAP}-qubit cap)"
            ),
            VerifyError::PlanSupport { group, segment } => write!(
                f,
                "segment {segment} escapes supergroup {group}'s (u, v, w) wire basis"
            ),
            VerifyError::ChannelIncomplete { arity } => write!(
                f,
                "{arity}-qubit channel fails Kraus completeness within {VERIFY_TOL:e}"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Statically checks every IR invariant of a compiled program; `Ok(())`
/// means the program is structurally sound for all execution engines
/// (dense `ρ`, workspace trajectories, tiled panels).
///
/// Runs no kernel and allocates only two reference bitmaps; cost is linear
/// in the program size plus one `4×4` unitarity product per prebound
/// matrix.
///
/// # Examples
///
/// ```
/// use quasim::gate::GateKind;
/// use quasim::fused::ProgramBuilder;
/// use quasim::verify::verify_program;
///
/// let mut b = ProgramBuilder::new(2);
/// b.unitary_1q(0, GateKind::H.matrix(0.0).to_2x2().unwrap());
/// b.cx(0, 1);
/// b.depolarize_2q(0.05, 0, 1);
/// let program = b.finish();
/// assert!(verify_program(&program).is_ok());
/// ```
pub fn verify_program(program: &FusedProgram) -> Result<(), VerifyError> {
    if !(1..=MAX_TRAJECTORY_QUBITS).contains(&program.n_qubits) {
        return Err(VerifyError::RegisterSize {
            n_qubits: program.n_qubits,
        });
    }

    // Segments must partition the atom table contiguously, in order.
    let mut cursor = 0usize;
    for (si, seg) in program.segments.iter().enumerate() {
        let range = seg.atom_range();
        if range.is_empty() {
            return Err(VerifyError::EmptySegment { segment: si });
        }
        if range.start != cursor {
            return Err(VerifyError::SegmentCoverage {
                segment: si,
                expected_start: cursor,
                found_start: range.start,
            });
        }
        cursor = range.end;
        verify_support(si, seg.support(), program.n_qubits)?;
        for (ai, atom) in (range.start..).zip(&program.atoms[range]) {
            verify_atom(si, ai, seg.support(), atom, program)?;
        }
    }
    if cursor != program.atoms.len() {
        return Err(VerifyError::DanglingAtoms {
            covered: cursor,
            total: program.atoms.len(),
        });
    }

    // No orphaned matrix table entries (every entry is owned by exactly
    // the atom that prebound it; plain bitmaps, no hashing).
    let mut m2_used = vec![false; program.m2s.len()];
    let mut m4_used = vec![false; program.m4s.len()];
    for atom in &program.atoms {
        match *atom {
            FusedAtom::Unitary1 { m2, .. } => m2_used[m2 as usize] = true,
            FusedAtom::Unitary2 { m4, .. } => m4_used[m4 as usize] = true,
            _ => {}
        }
    }
    if let Some(index) = m2_used.iter().position(|&u| !u) {
        return Err(VerifyError::OrphanMatrix { table: "m2", index });
    }
    if let Some(index) = m4_used.iter().position(|&u| !u) {
        return Err(VerifyError::OrphanMatrix { table: "m4", index });
    }

    // Every prebound matrix is a unitary (the kernels conjugate with it
    // assuming `U† = U⁻¹`).
    for (index, m) in program.m2s.iter().enumerate() {
        if !CMatrix::from_slice(2, m).is_unitary(VERIFY_TOL) {
            return Err(VerifyError::NonUnitary { table: "m2", index });
        }
    }
    for (index, m) in program.m4s.iter().enumerate() {
        if !CMatrix::from_slice(4, m).is_unitary(VERIFY_TOL) {
            return Err(VerifyError::NonUnitary { table: "m4", index });
        }
    }

    // Precomposed products must be re-derivable bit-exactly from their
    // recorded factor provenance.
    verify_composed(program)?;

    // The panel engine's supergroup plan must satisfy its own invariants
    // for any structurally sound program.
    verify_supergroup_plan(program, &supergroup_plan(program))
}

/// Bit-exact slice equality on complex matrices (the composition check is
/// exact by contract, so no tolerance).
fn m_bits_eq(a: &[crate::math::Complex64], b: &[crate::math::Complex64]) -> bool {
    a.iter()
        .zip(b)
        .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
}

/// Checks the precompose provenance tables: indices in range, at least two
/// factors per product (a one-factor "product" is never emitted), and each
/// stored matrix equal to [`compose2`]/[`compose4`] of its factors.
fn verify_composed(program: &FusedProgram) -> Result<(), VerifyError> {
    for (idx, factors) in program.composed2() {
        let index = *idx as usize;
        if index >= program.n_m2s()
            || factors.len() < 2
            || !m_bits_eq(program.m2(*idx), &compose2(factors))
        {
            return Err(VerifyError::ComposeMismatch { table: "m2", index });
        }
    }
    for (idx, factors) in program.composed4() {
        let index = *idx as usize;
        if index >= program.n_m4s()
            || factors.len() < 2
            || !m_bits_eq(program.m4(*idx), &compose4(factors))
        {
            return Err(VerifyError::ComposeMismatch { table: "m4", index });
        }
    }
    Ok(())
}

/// Checks one segment support against the register.
fn verify_support(segment: usize, support: Support, n_qubits: usize) -> Result<(), VerifyError> {
    match support {
        Support::One(q) => {
            if q >= n_qubits {
                return Err(VerifyError::SupportOutOfRange { segment, qubit: q });
            }
        }
        Support::Two(a, b) => {
            for q in [a, b] {
                if q >= n_qubits {
                    return Err(VerifyError::SupportOutOfRange { segment, qubit: q });
                }
            }
            if a == b {
                return Err(VerifyError::SupportCollision { segment, qubit: a });
            }
        }
    }
    Ok(())
}

/// Checks one atom against its segment's support and the matrix tables.
fn verify_atom(
    segment: usize,
    atom_idx: usize,
    support: Support,
    atom: &FusedAtom,
    program: &FusedProgram,
) -> Result<(), VerifyError> {
    let one_qubit = matches!(support, Support::One(_));
    match *atom {
        FusedAtom::Unitary1 { m2, class } => {
            if !one_qubit {
                return Err(VerifyError::AtomArity {
                    segment,
                    atom: atom_idx,
                });
            }
            let index = m2 as usize;
            if index >= program.m2s.len() {
                return Err(VerifyError::MatrixIndex {
                    atom: atom_idx,
                    index,
                    table_len: program.m2s.len(),
                });
            }
            let derived = classify2(&program.m2s[index]);
            if derived != class {
                return Err(VerifyError::ClassClaim {
                    atom: atom_idx,
                    claimed: class,
                    derived,
                });
            }
        }
        FusedAtom::Depol1 { lambda } => {
            if !one_qubit {
                return Err(VerifyError::AtomArity {
                    segment,
                    atom: atom_idx,
                });
            }
            verify_lambda(atom_idx, lambda)?;
        }
        FusedAtom::Cx { .. } => {
            if one_qubit {
                return Err(VerifyError::AtomArity {
                    segment,
                    atom: atom_idx,
                });
            }
        }
        FusedAtom::Unitary2 { m4, .. } => {
            if one_qubit {
                return Err(VerifyError::AtomArity {
                    segment,
                    atom: atom_idx,
                });
            }
            let index = m4 as usize;
            if index >= program.m4s.len() {
                return Err(VerifyError::MatrixIndex {
                    atom: atom_idx,
                    index,
                    table_len: program.m4s.len(),
                });
            }
        }
        FusedAtom::Depol2 { lambda, .. } => {
            if one_qubit {
                return Err(VerifyError::AtomArity {
                    segment,
                    atom: atom_idx,
                });
            }
            verify_lambda(atom_idx, lambda)?;
        }
    }
    Ok(())
}

/// Checks a depolarising strength: finite, in `(0, 1]` (zero-strength
/// channels are exact no-ops and the builder drops them).
fn verify_lambda(atom: usize, lambda: f64) -> Result<(), VerifyError> {
    if !lambda.is_finite() || lambda <= 0.0 || lambda > 1.0 {
        return Err(VerifyError::Lambda { atom, lambda });
    }
    Ok(())
}

/// Statically checks a panel supergroup plan against its program: groups
/// partition the segment list contiguously and in order, every group's
/// `(u, v, w)` wire basis is in-range, collision-free, and filled in
/// order (so the union support respects the [`SUPERGROUP_CAP`] cap), and
/// every member segment's support is contained in that basis.
///
/// [`verify_program`] runs this on the re-derived
/// [`supergroup_plan`](crate::trajectory::supergroup_plan); calling it
/// directly validates externally constructed plans.
pub fn verify_supergroup_plan(
    program: &FusedProgram,
    plan: &[Supergroup],
) -> Result<(), VerifyError> {
    let segs = program.segments();
    let mut cursor = 0usize;
    for (gi, group) in plan.iter().enumerate() {
        if group.segments.start != cursor || group.segments.is_empty() {
            return Err(VerifyError::PlanCoverage {
                group: gi,
                expected_start: cursor,
                found_start: group.segments.start,
            });
        }
        cursor = group.segments.end;
        if cursor > segs.len() {
            return Err(VerifyError::PlanDangling {
                covered: cursor,
                total: segs.len(),
            });
        }
        let in_basis = |q: usize| q == group.u || group.v == Some(q) || group.w == Some(q);
        let wires_bad = group.u >= program.n_qubits()
            || group.v == Some(group.u)
            || group.v.is_some_and(|v| v >= program.n_qubits())
            || group.w.is_some_and(|w| {
                group.v.is_none() || w == group.u || group.v == Some(w) || w >= program.n_qubits()
            });
        if wires_bad {
            return Err(VerifyError::PlanWires { group: gi });
        }
        for (si, seg) in (group.segments.start..).zip(&segs[group.segments.clone()]) {
            let contained = match seg.support() {
                Support::One(q) => in_basis(q),
                Support::Two(a, b) => in_basis(a) && in_basis(b),
            };
            if !contained {
                return Err(VerifyError::PlanSupport {
                    group: gi,
                    segment: si,
                });
            }
        }
    }
    if cursor != segs.len() {
        return Err(VerifyError::PlanDangling {
            covered: cursor,
            total: segs.len(),
        });
    }
    Ok(())
}

/// Statically checks a Kraus channel's completeness relation
/// `Σ_k K_k† K_k = I` within [`VERIFY_TOL`] (the constructor enforces a
/// looser `1e-9`; the verifier holds the library's own channels to the
/// exact-arithmetic standard).
pub fn verify_channel(channel: &KrausChannel) -> Result<(), VerifyError> {
    if channel.is_trace_preserving(VERIFY_TOL) {
        Ok(())
    } else {
        Err(VerifyError::ChannelIncomplete {
            arity: channel.arity(),
        })
    }
}

pub mod mutate {
    //! Seeded program mutator: the verifier's negative test-bed.
    //!
    //! Each [`Corruption`] class breaks exactly one IR invariant of a valid
    //! [`FusedProgram`]; [`corrupt`] applies it at a seed-chosen position
    //! and returns the damaged program (or `None` when the program has no
    //! site for that class — e.g. no two-qubit segment to collide). The
    //! self-test in this crate and the release-mode `verify_sweep` binary
    //! assert that [`verify_program`](super::verify_program) rejects every
    //! produced mutant — if a new invariant is added without a rejection
    //! path, the matching corruption class fails loudly.

    use super::*;
    use crate::fused::Segment;
    use crate::math::Complex64;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// One class of IR corruption (exactly one invariant broken per class).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Corruption {
        /// Push a segment's support qubit past the register.
        QubitOutOfRange,
        /// Collapse a pair support onto one qubit.
        PairCollision,
        /// Point a unitary atom past its matrix table.
        MatrixIndexOutOfRange,
        /// Flip a [`MatClass`] claim away from the derived class.
        WrongClassClaim,
        /// Scale a prebound matrix entry so it is no longer unitary
        /// (precomposed product entries are skipped — scaling those would
        /// also break the composition invariant, and each class must break
        /// exactly one).
        NonUnitaryMatrix,
        /// Scale one recorded precompose factor so the stored product no
        /// longer equals the factors' bit-exact composition (the product
        /// entry itself stays unitary, so only that invariant breaks).
        ComposedFactorMismatch,
        /// Raise a depolarising strength above 1.
        LambdaTooLarge,
        /// Zero a depolarising strength (builder-dropped no-op).
        LambdaNonPositive,
        /// Move a one-qubit atom into a two-qubit segment.
        AtomArityMismatch,
        /// Insert a zero-length segment.
        EmptySegment,
        /// Shrink a segment so the partition has a hole.
        SegmentGap,
        /// Grow a segment into its successor's range.
        SegmentOverlap,
        /// Drop the final segment, leaving atoms uncovered.
        DanglingAtoms,
        /// Append a matrix no atom references.
        OrphanMatrix,
        /// Declare a register beyond the trajectory cap.
        RegisterOverflow,
    }

    /// Every corruption class, for exhaustive self-tests.
    pub const ALL: [Corruption; 15] = [
        Corruption::QubitOutOfRange,
        Corruption::PairCollision,
        Corruption::MatrixIndexOutOfRange,
        Corruption::WrongClassClaim,
        Corruption::NonUnitaryMatrix,
        Corruption::ComposedFactorMismatch,
        Corruption::LambdaTooLarge,
        Corruption::LambdaNonPositive,
        Corruption::AtomArityMismatch,
        Corruption::EmptySegment,
        Corruption::SegmentGap,
        Corruption::SegmentOverlap,
        Corruption::DanglingAtoms,
        Corruption::OrphanMatrix,
        Corruption::RegisterOverflow,
    ];

    /// Seed-chosen index into a non-empty candidate list.
    fn pick<R: Rng>(rng: &mut R, len: usize) -> usize {
        rng.gen_range(0..len)
    }

    /// Seed-chosen element of a candidate list (`None` when empty).
    fn choose<R: Rng>(rng: &mut R, list: &[usize]) -> Option<usize> {
        if list.is_empty() {
            None
        } else {
            Some(list[rng.gen_range(0..list.len())])
        }
    }

    /// Indices of segments matching a support predicate.
    fn segments_where(p: &FusedProgram, f: impl Fn(Support) -> bool) -> Vec<usize> {
        p.segments()
            .iter()
            .enumerate()
            .filter(|(_, s)| f(s.support()))
            .map(|(i, _)| i)
            .collect()
    }

    /// Atom indices matching a predicate.
    fn atoms_where(p: &FusedProgram, f: impl Fn(&FusedAtom) -> bool) -> Vec<usize> {
        p.atoms()
            .iter()
            .enumerate()
            .filter(|(_, a)| f(a))
            .map(|(i, _)| i)
            .collect()
    }

    /// Applies `class` to a copy of `program` at a position chosen by
    /// `seed`; returns `None` when the program offers no site for the
    /// class. The returned program violates exactly the targeted
    /// invariant and must be rejected by
    /// [`verify_program`](super::verify_program).
    pub fn corrupt(program: &FusedProgram, class: Corruption, seed: u64) -> Option<FusedProgram> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = program.clone();
        match class {
            Corruption::QubitOutOfRange => {
                if p.segments.is_empty() {
                    return None;
                }
                let si = pick(&mut rng, p.segments.len());
                let seg = &mut p.segments[si];
                seg.support = match seg.support {
                    Support::One(_) => Support::One(p.n_qubits),
                    Support::Two(_, b) => Support::Two(p.n_qubits, b),
                };
            }
            Corruption::PairCollision => {
                let twos = segments_where(&p, |s| matches!(s, Support::Two(..)));
                let si = choose(&mut rng, &twos)?;
                if let Support::Two(a, _) = p.segments[si].support {
                    p.segments[si].support = Support::Two(a, a);
                }
            }
            Corruption::MatrixIndexOutOfRange => {
                let unis = atoms_where(&p, |a| {
                    matches!(a, FusedAtom::Unitary1 { .. } | FusedAtom::Unitary2 { .. })
                });
                let ai = choose(&mut rng, &unis)?;
                match &mut p.atoms[ai] {
                    FusedAtom::Unitary1 { m2, .. } => *m2 = p.m2s.len() as u32,
                    FusedAtom::Unitary2 { m4, .. } => *m4 = p.m4s.len() as u32,
                    _ => unreachable!(),
                }
            }
            Corruption::WrongClassClaim => {
                let unis = atoms_where(&p, |a| matches!(a, FusedAtom::Unitary1 { .. }));
                let ai = choose(&mut rng, &unis)?;
                if let FusedAtom::Unitary1 { m2, class } = &mut p.atoms[ai] {
                    let derived = classify2(&p.m2s[*m2 as usize]);
                    *class = match derived {
                        MatClass::General => MatClass::Diagonal,
                        MatClass::Real => MatClass::Diagonal,
                        MatClass::Diagonal => MatClass::Real,
                    };
                }
            }
            Corruption::NonUnitaryMatrix => {
                // Composed product entries are excluded: scaling one would
                // break the composition invariant as well as unitarity.
                let composed2: Vec<usize> =
                    p.composed2().iter().map(|(i, _)| *i as usize).collect();
                let composed4: Vec<usize> =
                    p.composed4().iter().map(|(i, _)| *i as usize).collect();
                let m2_sites: Vec<usize> = (0..p.m2s.len())
                    .filter(|i| !composed2.contains(i))
                    .collect();
                let m4_sites: Vec<usize> = (0..p.m4s.len())
                    .filter(|i| !composed4.contains(i))
                    .collect();
                let total = m2_sites.len() + m4_sites.len();
                if total == 0 {
                    return None;
                }
                let i = pick(&mut rng, total);
                let scale = Complex64::real(3.0);
                if i < m2_sites.len() {
                    for z in &mut p.m2s[m2_sites[i]] {
                        *z *= scale;
                    }
                } else {
                    for z in &mut p.m4s[m4_sites[i - m2_sites.len()]] {
                        *z *= scale;
                    }
                }
            }
            Corruption::ComposedFactorMismatch => {
                let total = p.composed2.len() + p.composed4.len();
                if total == 0 {
                    return None;
                }
                let i = pick(&mut rng, total);
                let scale = Complex64::real(3.0);
                if i < p.composed2.len() {
                    let factors = &mut p.composed2[i].1;
                    let fi = pick(&mut rng, factors.len());
                    for z in &mut factors[fi] {
                        *z *= scale;
                    }
                } else {
                    let factors = &mut p.composed4[i - p.composed2.len()].1;
                    let fi = pick(&mut rng, factors.len());
                    for z in &mut factors[fi] {
                        *z *= scale;
                    }
                }
            }
            Corruption::LambdaTooLarge | Corruption::LambdaNonPositive => {
                let bad = if class == Corruption::LambdaTooLarge {
                    1.5
                } else {
                    0.0
                };
                let deps = atoms_where(&p, |a| {
                    matches!(a, FusedAtom::Depol1 { .. } | FusedAtom::Depol2 { .. })
                });
                let ai = choose(&mut rng, &deps)?;
                match &mut p.atoms[ai] {
                    FusedAtom::Depol1 { lambda } => *lambda = bad,
                    FusedAtom::Depol2 { lambda, .. } => *lambda = bad,
                    _ => unreachable!(),
                }
            }
            Corruption::AtomArityMismatch => {
                let twos = segments_where(&p, |s| matches!(s, Support::Two(..)));
                let si = choose(&mut rng, &twos)?;
                let ai = p.segments[si].atom_range().start;
                p.atoms[ai] = FusedAtom::Depol1 { lambda: 0.5 };
            }
            Corruption::EmptySegment => {
                let si = pick(&mut rng, p.segments.len() + 1);
                let at = if si < p.segments.len() {
                    p.segments[si].atom_range().start
                } else {
                    p.atoms.len()
                };
                p.segments.insert(
                    si,
                    Segment {
                        support: Support::One(0),
                        atoms: at..at,
                    },
                );
            }
            Corruption::SegmentGap => {
                let wide = p
                    .segments
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.atom_range().len() >= 2)
                    .map(|(i, _)| i)
                    .collect::<Vec<_>>();
                let si = choose(&mut rng, &wide)?;
                p.segments[si].atoms.end -= 1;
            }
            Corruption::SegmentOverlap => {
                if p.segments.len() < 2 {
                    return None;
                }
                let si = pick(&mut rng, p.segments.len() - 1);
                p.segments[si].atoms.end += 1;
            }
            Corruption::DanglingAtoms => {
                p.segments.pop()?;
            }
            Corruption::OrphanMatrix => {
                if rng.gen_bool(0.5) {
                    let id = [
                        Complex64::ONE,
                        Complex64::ZERO,
                        Complex64::ZERO,
                        Complex64::ONE,
                    ];
                    p.m2s.push(id);
                } else {
                    let mut id = [Complex64::ZERO; 16];
                    for d in 0..4 {
                        id[d * 4 + d] = Complex64::ONE;
                    }
                    p.m4s.push(id);
                }
            }
            Corruption::RegisterOverflow => {
                p.n_qubits = MAX_TRAJECTORY_QUBITS + 1 + pick(&mut rng, 4);
            }
        }
        Some(p)
    }

    /// One class of supergroup-plan corruption (exactly one plan invariant
    /// broken per class), targeting
    /// [`verify_supergroup_plan`](super::verify_supergroup_plan) with
    /// externally damaged plans the way [`Corruption`] targets programs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum PlanCorruption {
        /// Merge two adjacent groups whose union support exceeds the
        /// [`SUPERGROUP_CAP`] cap, keeping the first group's wire basis —
        /// a member segment escapes the basis.
        MergeBeyondCap,
        /// Collide the third wire onto the first — a malformed basis.
        ThirdWireCollision,
        /// Drop the final group, leaving segments uncovered.
        Truncate,
    }

    /// Every plan corruption class, for exhaustive self-tests.
    pub const PLAN_ALL: [PlanCorruption; 3] = [
        PlanCorruption::MergeBeyondCap,
        PlanCorruption::ThirdWireCollision,
        PlanCorruption::Truncate,
    ];

    /// Applies `class` to the program's own derived supergroup plan at a
    /// seed-chosen position; returns `None` when the plan offers no site
    /// (e.g. a single-group plan cannot be merged or truncated into a
    /// still-covering-but-wrong shape).
    pub fn corrupt_plan(
        program: &FusedProgram,
        class: PlanCorruption,
        seed: u64,
    ) -> Option<Vec<Supergroup>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = supergroup_plan(program);
        match class {
            PlanCorruption::MergeBeyondCap => {
                let wires = |g: &Supergroup| {
                    let mut w = vec![g.u];
                    w.extend(g.v);
                    w.extend(g.w);
                    w
                };
                let candidates: Vec<usize> = (0..plan.len().saturating_sub(1))
                    .filter(|&i| {
                        let mut union = wires(&plan[i]);
                        for q in wires(&plan[i + 1]) {
                            if !union.contains(&q) {
                                union.push(q);
                            }
                        }
                        union.len() > SUPERGROUP_CAP
                    })
                    .collect();
                let i = choose(&mut rng, &candidates)?;
                plan[i].segments = plan[i].segments.start..plan[i + 1].segments.end;
                plan.remove(i + 1);
            }
            PlanCorruption::ThirdWireCollision => {
                if plan.is_empty() {
                    return None;
                }
                let i = pick(&mut rng, plan.len());
                plan[i].w = Some(plan[i].u);
            }
            PlanCorruption::Truncate => {
                plan.pop()?;
            }
        }
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fused::ProgramBuilder;
    use crate::gate::GateKind;
    use crate::trajectory::supergroups;

    /// A program exercising every atom kind, both support arities, and
    /// both matrix tables — a site for all corruption classes.
    fn rich_program() -> FusedProgram {
        let mut b = ProgramBuilder::new(3);
        b.unitary_1q(0, GateKind::H.matrix(0.0).to_2x2().unwrap());
        b.unitary_1q(0, GateKind::Rz.matrix(0.7).to_2x2().unwrap());
        b.depolarize_1q(0, 0.01);
        b.cx(0, 1);
        b.depolarize_2q(0.04, 0, 1);
        b.unitary_2q(1, 2, GateKind::Crz.matrix(0.9).to_4x4().unwrap());
        b.depolarize_2q(0.02, 2, 1);
        b.unitary_1q(2, GateKind::Ry.matrix(0.4).to_2x2().unwrap());
        b.depolarize_1q(2, 0.03);
        b.finish()
    }

    #[test]
    fn accepts_valid_programs() {
        let p = rich_program();
        assert_eq!(verify_program(&p), Ok(()));
        // The empty program is valid too.
        let empty = ProgramBuilder::new(2).finish();
        assert_eq!(verify_program(&empty), Ok(()));
    }

    #[test]
    fn accepts_derived_supergroup_plans() {
        let p = rich_program();
        let plan = supergroup_plan(&p);
        assert!(!plan.is_empty());
        assert_eq!(verify_supergroup_plan(&p, &plan), Ok(()));
        // The streaming iterator and the collected plan agree.
        assert_eq!(supergroups(&p).collect::<Vec<_>>(), plan);
    }

    #[test]
    fn rejects_tampered_supergroup_plans() {
        let p = rich_program();
        let mut plan = supergroup_plan(&p);
        // Shift the first group's basis off its segments' support.
        plan[0].u = p.n_qubits() - 1;
        plan[0].v = None;
        plan[0].w = None;
        assert!(matches!(
            verify_supergroup_plan(&p, &plan),
            Err(VerifyError::PlanSupport { .. })
        ));
        let mut truncated = supergroup_plan(&p);
        truncated.pop();
        assert!(matches!(
            verify_supergroup_plan(&p, &truncated),
            Err(VerifyError::PlanDangling { .. })
        ));
    }

    /// The rich program's precomposable cousin: runs of consecutive
    /// unitaries on both arities, collapsed by `precompose`, so the
    /// composed-provenance corruption classes have sites in the corpus.
    fn precomposed_program() -> FusedProgram {
        let mut b = ProgramBuilder::new(3);
        b.unitary_1q(0, GateKind::H.matrix(0.0).to_2x2().unwrap());
        b.unitary_1q(0, GateKind::Rz.matrix(0.7).to_2x2().unwrap());
        b.depolarize_1q(0, 0.01);
        b.cx(0, 1);
        b.unitary_2q(0, 1, GateKind::Crz.matrix(0.9).to_4x4().unwrap());
        b.unitary_2q(1, 0, GateKind::Cry.matrix(0.4).to_4x4().unwrap());
        b.depolarize_2q(0.04, 0, 1);
        b.unitary_1q(2, GateKind::Ry.matrix(0.4).to_2x2().unwrap());
        b.depolarize_1q(2, 0.03);
        let p = b.finish().precompose();
        assert!(!p.composed2().is_empty() && !p.composed4().is_empty());
        p
    }

    #[test]
    fn accepts_precomposed_programs() {
        assert_eq!(verify_program(&precomposed_program()), Ok(()));
    }

    #[test]
    fn rejects_tampered_composed_products() {
        let mut p = precomposed_program();
        // Recompose the product from the factors but drop a factor: the
        // stored matrix no longer matches the provenance.
        p.composed2[0].1.pop();
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::ComposeMismatch { table: "m2", .. })
        ));
    }

    #[test]
    fn every_corruption_class_is_rejected() {
        // Corpus: a plain program (sites for every structural class) and a
        // precomposed one (sites for the provenance classes).
        let corpus = [rich_program(), precomposed_program()];
        assert!(mutate::ALL.len() >= 10, "need at least 10 mutation classes");
        for &class in &mutate::ALL {
            let mut sites = 0usize;
            for p in &corpus {
                for seed in 0..8u64 {
                    let Some(mutant) = mutate::corrupt(p, class, seed) else {
                        continue;
                    };
                    sites += 1;
                    let verdict = verify_program(&mutant);
                    assert!(
                        verdict.is_err(),
                        "{class:?} (seed {seed}) survived verification"
                    );
                }
            }
            assert!(sites > 0, "{class:?} found no site in the corpus");
        }
    }

    /// A 5-qubit program whose derived plan has two supergroups with
    /// disjoint wire bases — sites for every plan corruption class.
    fn wide_program() -> FusedProgram {
        let mut b = ProgramBuilder::new(5);
        b.cx(0, 1);
        b.depolarize_2q(0.04, 0, 1);
        b.unitary_1q(2, GateKind::Ry.matrix(0.4).to_2x2().unwrap());
        b.cx(3, 4);
        b.depolarize_2q(0.04, 3, 4);
        b.finish()
    }

    #[test]
    fn every_plan_corruption_class_is_rejected() {
        let p = wide_program();
        assert!(
            supergroup_plan(&p).len() >= 2,
            "wide program must span at least two supergroups"
        );
        for &class in &mutate::PLAN_ALL {
            for seed in 0..8u64 {
                let plan = mutate::corrupt_plan(&p, class, seed)
                    .unwrap_or_else(|| panic!("{class:?} found no site in the wide program"));
                assert!(
                    verify_supergroup_plan(&p, &plan).is_err(),
                    "{class:?} (seed {seed}) survived plan verification"
                );
            }
        }
    }

    #[test]
    fn corruption_sites_are_seed_stable() {
        let p = rich_program();
        for &class in &mutate::ALL {
            let a = mutate::corrupt(&p, class, 42);
            let b = mutate::corrupt(&p, class, 42);
            assert_eq!(a, b, "{class:?} is not deterministic per seed");
        }
    }

    #[test]
    fn library_channels_are_complete() {
        for ch in [
            KrausChannel::depolarizing_1q(0.03),
            KrausChannel::depolarizing_2q(0.08),
            KrausChannel::bit_flip(0.02),
            KrausChannel::phase_flip(0.05),
            KrausChannel::amplitude_damping(0.1),
        ] {
            assert_eq!(verify_channel(&ch), Ok(()));
        }
    }
}

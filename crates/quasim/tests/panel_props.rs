//! Property tests of the batched trajectory panel: for arbitrary fused
//! programs, seeds, budgets, and panel widths, [`TrajectoryPanel`]
//! execution must be **bit-identical** to the per-trajectory engine —
//! estimate means and standard errors, and every individual column's
//! amplitudes.

use proptest::prelude::*;
use quasim::fused::{FusedProgram, ProgramBuilder};
use quasim::gate::GateKind;
use quasim::trajectory::{
    estimate_prob_one, estimate_prob_one_panel, KernelMode, TrajectoryPanel, TrajectoryWorkspace,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_QUBITS: usize = 4;

#[derive(Debug, Clone)]
enum AtomSpec {
    Gate1(u8, usize, f64),
    Gate2(u8, usize, usize, f64),
    Cx(usize, usize),
    Noise1(usize, f64),
    Noise2(usize, usize, f64),
}

fn arb_atom(n: usize) -> impl Strategy<Value = AtomSpec> {
    (
        0usize..5,
        0u8..6,
        0usize..n,
        0usize..n,
        -7.0f64..7.0,
        0.0f64..0.6,
    )
        .prop_filter_map(
            "distinct qubits for two-qubit atoms",
            move |(class, kind, a, b, theta, lambda)| match class {
                0 => Some(AtomSpec::Gate1(kind, a, theta)),
                1 if a != b => Some(AtomSpec::Gate2(kind, a, b, theta)),
                2 if a != b => Some(AtomSpec::Cx(a, b)),
                3 => Some(AtomSpec::Noise1(a, lambda)),
                4 if a != b => Some(AtomSpec::Noise2(a, b, lambda)),
                _ => None,
            },
        )
}

fn build_program(specs: &[AtomSpec]) -> FusedProgram {
    let g1 = [
        GateKind::H,
        GateKind::X,
        GateKind::Ry,
        GateKind::Rx,
        GateKind::Rz,
        GateKind::Phase,
    ];
    let g2 = [
        GateKind::Cry,
        GateKind::Crx,
        GateKind::Crz,
        GateKind::Cz,
        GateKind::Swap,
        GateKind::Cry,
    ];
    let mut b = ProgramBuilder::new(N_QUBITS);
    for spec in specs {
        match *spec {
            AtomSpec::Gate1(k, q, theta) => {
                let kind = g1[k as usize % g1.len()];
                b.unitary_1q(q, kind.entries_1q(theta).expect("1q entries"));
            }
            AtomSpec::Gate2(k, x, y, theta) => {
                let kind = g2[k as usize % g2.len()];
                b.unitary_2q(x, y, kind.entries_2q(theta).expect("2q entries"));
            }
            AtomSpec::Cx(c, t) => b.cx(c, t),
            AtomSpec::Noise1(q, lambda) => b.depolarize_1q(q, lambda),
            AtomSpec::Noise2(x, y, lambda) => b.depolarize_2q(lambda, x, y),
        }
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The panel estimate equals the per-trajectory estimate bit for bit
    /// at every width, including widths that split the budget into uneven
    /// chunks and widths larger than the budget.
    #[test]
    fn panel_estimate_bit_identical_at_every_width(
        specs in proptest::collection::vec(arb_atom(N_QUBITS), 1..30),
        seed in any::<u64>(),
        n_traj in 1u32..40,
        width in 1usize..48,
    ) {
        let program = build_program(&specs);
        let qubits: Vec<usize> = (0..N_QUBITS).collect();
        let mut ws = TrajectoryWorkspace::new();
        let reference = estimate_prob_one(&mut ws, &program, &qubits, n_traj, seed);
        let mut panel = TrajectoryPanel::new();
        let got = estimate_prob_one_panel(&mut panel, &program, &qubits, n_traj, seed, width);
        prop_assert_eq!(got.n_trajectories, reference.n_trajectories);
        for q in 0..N_QUBITS {
            prop_assert!(
                got.p_one[q].to_bits() == reference.p_one[q].to_bits(),
                "width {} qubit {} p_one: {} vs {}",
                width, q, got.p_one[q], reference.p_one[q]
            );
            prop_assert!(
                got.std_err[q].to_bits() == reference.std_err[q].to_bits(),
                "width {} qubit {} std_err: {} vs {}",
                width, q, got.std_err[q], reference.std_err[q]
            );
        }
    }

    /// Every panel column's final amplitudes equal the per-trajectory
    /// engine replaying the same draw sequence — the panel really is B
    /// independent trajectories, not an approximation of them.
    #[test]
    fn panel_columns_bit_identical_to_sequential_runs(
        specs in proptest::collection::vec(arb_atom(N_QUBITS), 1..25),
        seed in any::<u64>(),
        batch in 1usize..12,
    ) {
        let program = build_program(&specs);
        let n_stoch = program.n_stochastic_atoms();
        let mut rng = StdRng::seed_from_u64(seed);
        let uniforms: Vec<f64> = (0..batch * n_stoch).map(|_| rng.gen()).collect();

        let mut panel = TrajectoryPanel::new();
        panel.reset_zero(N_QUBITS, batch);
        panel.run_stochastic(&program, &uniforms);

        let mut replay = StdRng::seed_from_u64(seed);
        let mut ws = TrajectoryWorkspace::new();
        for c in 0..batch {
            ws.reset_zero(N_QUBITS);
            ws.run_stochastic(&program, &mut replay);
            let col = panel.column(c);
            for (i, (a, b)) in col.iter().zip(ws.amplitudes().iter()).enumerate() {
                prop_assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "column {} amplitude {}: {} vs {}", c, i, a, b
                );
            }
        }
    }

    /// Wide registers exercise the wide-tile sweep regimes (`pair ≥ tile`
    /// / `ms ≥ tile`) that 4-qubit programs never reach: on a 12-qubit
    /// register every qubit from 6 up runs the tiled wide path (pair runs
    /// of `2^q · b ≥ 512` elements), so this pins the panel's bit-identity
    /// on the code paths the 16-qubit guadalupe workload uses.
    #[test]
    fn wide_register_panel_bit_identical(
        seed in any::<u64>(),
        width in prop_oneof![Just(1usize), Just(3), Just(8)],
    ) {
        const N: usize = 12;
        let mut b = ProgramBuilder::new(N);
        for q in 0..N {
            b.unitary_1q(q, GateKind::Ry.entries_1q(0.2 + 0.1 * q as f64).unwrap());
            b.depolarize_1q(q, 0.05);
        }
        for q in [0usize, 5, 10] {
            b.cx(q, q + 1);
            b.depolarize_2q(0.08, q, q + 1);
            b.unitary_1q(q + 1, GateKind::Rz.entries_1q(-0.3).unwrap());
        }
        b.unitary_2q(11, 2, GateKind::Cry.entries_2q(0.9).unwrap());
        let program = b.finish();
        let qubits: Vec<usize> = (0..N).collect();
        let mut ws = TrajectoryWorkspace::new();
        let reference = estimate_prob_one(&mut ws, &program, &qubits, 8, seed);
        let mut panel = TrajectoryPanel::new();
        let got = estimate_prob_one_panel(&mut panel, &program, &qubits, 8, seed, width);
        for q in 0..N {
            prop_assert!(
                got.p_one[q].to_bits() == reference.p_one[q].to_bits(),
                "width {} qubit {}: {} vs {}",
                width, q, got.p_one[q], reference.p_one[q]
            );
        }
    }

    /// The AVX2 kernels are a bit-exact drop-in for the scalar oracle: on
    /// hosts with AVX2, running the same program over the same draw
    /// sequence under both dispatch modes yields bitwise-equal panels at
    /// every width (the intrinsics use only mul/add/sub in the scalar
    /// association order, so this holds exactly, not approximately).
    #[test]
    fn scalar_and_avx2_panels_bit_identical(
        specs in proptest::collection::vec(arb_atom(N_QUBITS), 1..25),
        seed in any::<u64>(),
        batch in 1usize..12,
    ) {
        if KernelMode::avx2_supported() {
            let program = build_program(&specs);
            let n_stoch = program.n_stochastic_atoms();
            let mut rng = StdRng::seed_from_u64(seed);
            let uniforms: Vec<f64> = (0..batch * n_stoch).map(|_| rng.gen()).collect();

            let mut scalar = TrajectoryPanel::new();
            scalar.set_kernel_mode(KernelMode::Scalar);
            scalar.reset_zero(N_QUBITS, batch);
            scalar.run_stochastic(&program, &uniforms);

            let mut avx2 = TrajectoryPanel::new();
            avx2.set_kernel_mode(KernelMode::Avx2);
            avx2.reset_zero(N_QUBITS, batch);
            avx2.run_stochastic(&program, &uniforms);

            for c in 0..batch {
                let (s, v) = (scalar.column(c), avx2.column(c));
                for (i, (a, b)) in s.iter().zip(v.iter()).enumerate() {
                    prop_assert!(
                        a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                        "column {} amplitude {}: scalar {} vs avx2 {}", c, i, a, b
                    );
                }
            }
        }
    }

    /// Ragged final chunks: the widths the audit singled out — 1 (fully
    /// sequential), 3 (never divides a power-of-two budget), 16 (the auto
    /// cap), and `n_traj + 1` (one chunk wider than the budget) — all
    /// reproduce the per-trajectory estimate bit for bit, including the
    /// short remainder chunk's draw-stream alignment.
    #[test]
    fn ragged_final_chunks_bit_identical(
        specs in proptest::collection::vec(arb_atom(N_QUBITS), 1..25),
        seed in any::<u64>(),
        n_traj in 1u32..40,
    ) {
        let program = build_program(&specs);
        let qubits: Vec<usize> = (0..N_QUBITS).collect();
        let mut ws = TrajectoryWorkspace::new();
        let reference = estimate_prob_one(&mut ws, &program, &qubits, n_traj, seed);
        for width in [1usize, 3, 16, n_traj as usize + 1] {
            let mut panel = TrajectoryPanel::new();
            let got = estimate_prob_one_panel(&mut panel, &program, &qubits, n_traj, seed, width);
            prop_assert_eq!(got.n_trajectories, reference.n_trajectories);
            for q in 0..N_QUBITS {
                prop_assert!(
                    got.p_one[q].to_bits() == reference.p_one[q].to_bits(),
                    "width {} qubit {} p_one: {} vs {}",
                    width, q, got.p_one[q], reference.p_one[q]
                );
                prop_assert!(
                    got.std_err[q].to_bits() == reference.std_err[q].to_bits(),
                    "width {} qubit {} std_err: {} vs {}",
                    width, q, got.std_err[q], reference.std_err[q]
                );
            }
        }
    }

    /// The single-sweep all-qubit marginal accumulator matches the
    /// per-qubit walk bit for bit on arbitrary reachable states.
    #[test]
    fn probs_one_all_matches_prob_one(
        specs in proptest::collection::vec(arb_atom(N_QUBITS), 1..25),
        seed in any::<u64>(),
    ) {
        let program = build_program(&specs);
        let mut ws = TrajectoryWorkspace::new();
        let mut rng = StdRng::seed_from_u64(seed);
        ws.reset_zero(N_QUBITS);
        ws.run_stochastic(&program, &mut rng);
        let all = ws.probs_one_all();
        for (q, p) in all.iter().enumerate() {
            prop_assert!(p.to_bits() == ws.prob_one(q).to_bits());
        }
    }
}

//! Property-based tests of the simulator invariants.
//!
//! Random circuits and channel strengths must preserve the physics: state
//! norms, density-matrix trace/Hermiticity/positivity proxies, channel
//! monotonicity, and agreement between the pure and mixed simulators.

use proptest::prelude::*;
use quasim::density::DensityMatrix;
use quasim::gate::{BoundGate, GateKind};
use quasim::noise::{apply_readout_to_distribution, KrausChannel, ReadoutError};
use quasim::statevector::StateVector;

const N_QUBITS: usize = 3;

fn arb_gate() -> impl Strategy<Value = BoundGate> {
    let one_q = (0usize..N_QUBITS, -7.0f64..7.0, 0usize..6).prop_map(|(q, theta, k)| {
        let kind = [
            GateKind::H,
            GateKind::X,
            GateKind::Rx,
            GateKind::Ry,
            GateKind::Rz,
            GateKind::S,
        ][k];
        BoundGate::one(kind, q, theta)
    });
    let two_q = (0usize..N_QUBITS, 0usize..N_QUBITS, -7.0f64..7.0, 0usize..4).prop_filter_map(
        "distinct qubits",
        |(a, b, theta, k)| {
            if a == b {
                return None;
            }
            let kind = [GateKind::Cx, GateKind::Cry, GateKind::Crz, GateKind::Swap][k];
            Some(BoundGate::two(kind, a, b, theta))
        },
    );
    prop_oneof![one_q, two_q]
}

fn arb_circuit() -> impl Strategy<Value = Vec<BoundGate>> {
    proptest::collection::vec(arb_gate(), 0..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pure-state evolution preserves the norm.
    #[test]
    fn statevector_norm_preserved(gates in arb_circuit()) {
        let mut sv = StateVector::zero_state(N_QUBITS);
        sv.run(&gates);
        prop_assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// Pure and density simulations agree on all marginals for unitary
    /// circuits.
    #[test]
    fn density_matches_statevector(gates in arb_circuit()) {
        let mut sv = StateVector::zero_state(N_QUBITS);
        sv.run(&gates);
        let mut rho = DensityMatrix::zero_state(N_QUBITS);
        for g in &gates {
            rho.apply_gate(g);
        }
        for q in 0..N_QUBITS {
            prop_assert!((sv.prob_one(q) - rho.prob_one(q)).abs() < 1e-8);
        }
        prop_assert!((rho.purity() - 1.0).abs() < 1e-8);
    }

    /// Channels keep ρ a valid state: unit trace, Hermitian, purity ≤ 1,
    /// non-negative probabilities.
    #[test]
    fn channels_preserve_state_validity(
        gates in arb_circuit(),
        lambda in 0.0f64..0.6,
        q in 0usize..N_QUBITS,
    ) {
        let mut rho = DensityMatrix::zero_state(N_QUBITS);
        for g in &gates {
            rho.apply_gate(g);
        }
        rho.apply_depolarizing_1q(lambda, q);
        rho.apply_depolarizing_2q(lambda, q, (q + 1) % N_QUBITS);
        rho.apply_channel(&KrausChannel::amplitude_damping(lambda), &[q]);
        prop_assert!((rho.trace() - 1.0).abs() < 1e-8);
        prop_assert!(rho.hermiticity_error() < 1e-8);
        prop_assert!(rho.purity() <= 1.0 + 1e-9);
        for p in rho.probabilities() {
            prop_assert!(p >= -1e-10);
        }
    }

    /// More depolarising noise never increases fidelity with the ideal
    /// state.
    #[test]
    fn depolarizing_monotone_in_strength(
        gates in arb_circuit(),
        l1 in 0.0f64..0.3,
        dl in 0.0f64..0.3,
    ) {
        let mut sv = StateVector::zero_state(N_QUBITS);
        sv.run(&gates);
        let fid = |lambda: f64| {
            let mut rho = DensityMatrix::zero_state(N_QUBITS);
            for g in &gates {
                rho.apply_gate(g);
                rho.apply_depolarizing_1q(lambda, g.qubits()[0]);
            }
            rho.fidelity_with_pure(&sv)
        };
        prop_assert!(fid(l1 + dl) <= fid(l1) + 1e-9);
    }

    /// The closed-form depolarising channels match their Kraus forms.
    #[test]
    fn fast_channels_match_kraus(
        gates in arb_circuit(),
        lambda in 0.0f64..1.0,
        q in 0usize..N_QUBITS,
    ) {
        let mut a = DensityMatrix::zero_state(N_QUBITS);
        let mut b = DensityMatrix::zero_state(N_QUBITS);
        for g in &gates {
            a.apply_gate(g);
            b.apply_gate(g);
        }
        let r = (q + 1) % N_QUBITS;
        a.apply_channel(&KrausChannel::depolarizing_1q(lambda), &[q]);
        a.apply_channel(&KrausChannel::depolarizing_2q(lambda), &[q, r]);
        b.apply_depolarizing_1q(lambda, q);
        b.apply_depolarizing_2q(lambda, q, r);
        for i in 0..(1 << N_QUBITS) {
            for j in 0..(1 << N_QUBITS) {
                prop_assert!((a.get(i, j) - b.get(i, j)).abs() < 1e-10);
            }
        }
    }

    /// Readout confusion keeps distributions normalised and is the identity
    /// at zero error.
    #[test]
    fn readout_keeps_distribution_normalised(
        probs in proptest::collection::vec(0.0f64..1.0, 1 << N_QUBITS),
        p01 in 0.0f64..0.5,
        p10 in 0.0f64..0.5,
    ) {
        let total: f64 = probs.iter().sum();
        prop_assume!(total > 1e-9);
        let mut dist: Vec<f64> = probs.iter().map(|p| p / total).collect();
        let errors = vec![ReadoutError::new(p01, p10); N_QUBITS];
        apply_readout_to_distribution(&mut dist, &errors);
        let after: f64 = dist.iter().sum();
        prop_assert!((after - 1.0).abs() < 1e-9);
        for p in dist {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&p));
        }
    }
}

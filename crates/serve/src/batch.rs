//! The request queue and cross-client structure batcher.
//!
//! Concurrently pending [`Request::Eval`](crate::codec::Request) calls
//! are grouped by `(day, StructureKey)` — across clients — so each group
//! rides one `evaluate_probes`-style batched pass through the shared
//! program cache: the serving-path payoff of the structure-of-arrays
//! panel design. Grouping is *by construction*: a batch is assembled only
//! from queue entries whose group key equals the head entry's, so a batch
//! can never mix structures (asserted again by the interleaving
//! proptests).
//!
//! Ordering contract: batches preserve queue order within a group, and
//! results are bit-identical to evaluating each request alone (the
//! `evaluate_probes` per-probe seeding contract), so *which* requests get
//! batched together is pure scheduling — invisible in the responses.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use transpile::template::StructureKey;

/// Group identity of one pending evaluation: requests batch together iff
/// they share the calibration day **and** the circuit structure.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupKey {
    /// Calibration day index.
    pub day: u32,
    /// Parameter-structure key of the fully bound circuit.
    pub key: StructureKey,
}

/// One admitted evaluation waiting for a worker.
#[derive(Debug)]
pub struct PendingEval<T> {
    /// Echoed on the response.
    pub request_id: u64,
    /// Tenant id (cross-client batch accounting).
    pub client_id: u64,
    /// Shot-noise stream id.
    pub stream: u64,
    /// Input features.
    pub features: Vec<f64>,
    /// Model weights.
    pub weights: Vec<f64>,
    /// Batch-grouping identity.
    pub group: GroupKey,
    /// Caller context carried through the queue (the TCP server threads
    /// a response writer; in-process harnesses thread an index).
    pub ctx: T,
}

struct QueueState<T> {
    queue: VecDeque<PendingEval<T>>,
    closed: bool,
}

/// Bounded MPMC queue of pending evaluations with structure-grouped
/// batch removal.
pub struct BatchQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    max_batch: usize,
}

impl<T> BatchQueue<T> {
    /// A queue admitting at most `capacity` pending evaluations and
    /// forming batches of at most `max_batch`.
    ///
    /// # Panics
    ///
    /// Panics if either bound is zero.
    pub fn new(capacity: usize, max_batch: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(max_batch > 0, "max batch size must be positive");
        BatchQueue {
            state: Mutex::new(QueueState {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            max_batch,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Admits one evaluation, blocking while the queue is full. Returns
    /// the evaluation back as `Err` if the queue has been closed (the
    /// caller owes the client an error response).
    pub fn push(&self, pending: PendingEval<T>) -> Result<(), PendingEval<T>> {
        let mut state = self.lock();
        while state.queue.len() >= self.capacity && !state.closed {
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if state.closed {
            return Err(pending);
        }
        state.queue.push_back(pending);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Removes the next batch: the head entry plus every other pending
    /// entry sharing its [`GroupKey`], in queue order, up to the batch
    /// cap. Blocks while the queue is empty; returns `None` once the
    /// queue is closed **and** drained (workers exit on `None`).
    pub fn next_batch(&self) -> Option<Vec<PendingEval<T>>> {
        let mut state = self.lock();
        while state.queue.is_empty() && !state.closed {
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        let first = state.queue.pop_front()?;
        let mut batch = Vec::with_capacity(self.max_batch.min(state.queue.len() + 1));
        let mut rest = VecDeque::with_capacity(state.queue.len());
        batch.push(first);
        while let Some(p) = state.queue.pop_front() {
            if batch.len() < self.max_batch && p.group == batch[0].group {
                batch.push(p);
            } else {
                rest.push_back(p);
            }
        }
        state.queue = rest;
        drop(state);
        self.not_full.notify_all();
        Some(batch)
    }

    /// Closes the queue: pending entries still drain through
    /// [`Self::next_batch`], new pushes are refused, and every blocked
    /// thread wakes.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of evaluations currently pending.
    pub fn len(&self) -> usize {
        self.lock().queue.len()
    }

    /// Whether no evaluations are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(day: u32, tag: u8) -> GroupKey {
        // Real structure keys from a 2-parameter circuit: `tag`'s low
        // bits pick which rotations sit on the identity class, so
        // distinct tags (0..4) give distinct keys. The queue only ever
        // compares them for equality.
        use transpile::circuit::{Circuit, Param};
        use transpile::expand::ANGLE_TOL;
        use transpile::template::structure_key;
        let mut c = Circuit::new(1);
        c.rx(0, Param::Idx(0)).ry(0, Param::Idx(1));
        let theta = [
            if tag & 1 == 0 { 0.0 } else { 0.9 },
            if tag & 2 == 0 { 0.0 } else { 0.9 },
        ];
        GroupKey {
            day,
            key: structure_key(&c, &theta, ANGLE_TOL),
        }
    }

    fn pending(id: u64, group: GroupKey) -> PendingEval<()> {
        PendingEval {
            request_id: id,
            client_id: id % 3,
            stream: id,
            features: vec![],
            weights: vec![],
            group,
            ctx: (),
        }
    }

    #[test]
    fn batches_group_by_key_in_arrival_order() {
        let q: BatchQueue<()> = BatchQueue::new(16, 8);
        for (id, g) in [
            (0, key(0, 1)),
            (1, key(0, 2)),
            (2, key(0, 1)),
            (3, key(1, 1)), // same structure, different day: separate batch
            (4, key(0, 2)),
        ] {
            q.push(pending(id, g)).expect("open");
        }
        let ids = |b: &[PendingEval<()>]| b.iter().map(|p| p.request_id).collect::<Vec<_>>();
        let b1 = q.next_batch().expect("batch");
        assert_eq!(ids(&b1), vec![0, 2]);
        let b2 = q.next_batch().expect("batch");
        assert_eq!(ids(&b2), vec![1, 4]);
        let b3 = q.next_batch().expect("batch");
        assert_eq!(ids(&b3), vec![3]);
        assert!(q.is_empty());
    }

    #[test]
    fn max_batch_caps_group_size() {
        let q: BatchQueue<()> = BatchQueue::new(16, 2);
        for id in 0..5 {
            q.push(pending(id, key(0, 1))).expect("open");
        }
        assert_eq!(q.next_batch().expect("batch").len(), 2);
        assert_eq!(q.next_batch().expect("batch").len(), 2);
        assert_eq!(q.next_batch().expect("batch").len(), 1);
    }

    #[test]
    fn closed_queue_drains_then_ends() {
        let q: BatchQueue<()> = BatchQueue::new(4, 4);
        q.push(pending(1, key(0, 1))).expect("open");
        q.close();
        assert!(q.push(pending(2, key(0, 1))).is_err(), "closed refuses");
        assert_eq!(q.next_batch().expect("drain").len(), 1);
        assert!(q.next_batch().is_none(), "drained + closed ends workers");
    }

    #[test]
    fn full_queue_blocks_until_a_batch_is_taken() {
        use std::sync::Arc;
        let q: Arc<BatchQueue<()>> = Arc::new(BatchQueue::new(1, 4));
        q.push(pending(1, key(0, 1))).expect("open");
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(pending(2, key(0, 2))).is_ok());
        // The queue is at capacity; the push above parks until this drain.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.next_batch().expect("batch")[0].request_id, 1);
        assert!(pusher.join().expect("join"), "parked push completed");
        assert_eq!(q.next_batch().expect("batch")[0].request_id, 2);
    }
}

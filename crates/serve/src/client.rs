//! Blocking client for `qucad-serve` (used by the load generator, the
//! integration tests, and the perf harness).

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};

use crate::codec::{
    decode_response, encode_request, read_frame, write_frame, Request, Response, ServeStats,
};

/// One connection to a server.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient { stream })
    }

    /// Sends one request without waiting for its response (pipelining).
    ///
    /// # Errors
    ///
    /// Returns the write error.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        write_frame(&mut self.stream, &encode_request(request))
    }

    /// Receives the next response, in server completion order (match a
    /// pipelined stream back up by `request_id`).
    ///
    /// # Errors
    ///
    /// Fails on a closed connection or an undecodable frame.
    pub fn recv(&mut self) -> io::Result<Response> {
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        decode_response(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Sends one request and waits for one response (no pipelining).
    ///
    /// # Errors
    ///
    /// Propagates [`Self::send`] / [`Self::recv`] errors.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        self.send(request)?;
        self.recv()
    }

    /// Pipelines a set of eval requests and collects every response,
    /// keyed by `request_id`. Server completion order is arbitrary
    /// (batches finish per structure group); the map restores it.
    ///
    /// # Errors
    ///
    /// Fails on transport errors; an in-band [`Response::Error`] is
    /// returned in the map, not raised.
    pub fn eval_all(&mut self, requests: &[Request]) -> io::Result<HashMap<u64, Response>> {
        for r in requests {
            debug_assert!(
                matches!(r, Request::Eval { .. }),
                "eval_all takes Eval requests"
            );
            self.send(r)?;
        }
        let mut responses = HashMap::with_capacity(requests.len());
        for _ in 0..requests.len() {
            let resp = self.recv()?;
            let id = match &resp {
                Response::Scores { request_id, .. }
                | Response::MatchResult { request_id, .. }
                | Response::StatsReport { request_id, .. }
                | Response::Error { request_id, .. }
                | Response::ShuttingDown { request_id } => *request_id,
            };
            responses.insert(id, resp);
        }
        Ok(responses)
    }

    /// Fetches the server's counters.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response type.
    pub fn stats(&mut self, request_id: u64) -> io::Result<ServeStats> {
        match self.call(&Request::Stats { request_id })? {
            Response::StatsReport { stats, .. } => Ok(stats),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected StatsReport, got {other:?}"),
            )),
        }
    }

    /// Asks the server to shut down cleanly; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unexpected response type.
    pub fn shutdown(&mut self, request_id: u64) -> io::Result<()> {
        match self.call(&Request::Shutdown { request_id })? {
            Response::ShuttingDown { .. } => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected ShuttingDown, got {other:?}"),
            )),
        }
    }
}

//! Hand-rolled length-prefixed binary wire format of `qucad-serve`.
//!
//! The build environment has no crates.io access, so the protocol is a
//! small fixed codec rather than serde: every message travels as one
//! *frame* — a little-endian `u32` payload length followed by the payload
//! — and every payload starts with a one-byte message tag. All integers
//! are little-endian; every `f64` is transported as its IEEE-754 bit
//! pattern (`to_bits`/`from_bits`), so values — including NaNs and
//! signed zeros — round-trip **bit-exactly**. That is what lets the
//! server promise responses bit-identical to a direct in-process
//! [`qnn::executor::NoisyExecutor`] call: the wire cannot perturb a
//! single ULP.
//!
//! The codec is deliberately version-naive (one tag byte, no feature
//! negotiation): client and server ship from the same tree.

use std::io::{self, Read, Write};

/// Hard cap on a frame's payload size. An eval request is a handful of
/// f64 vectors (well under a kilobyte); anything near this cap is a
/// corrupt or hostile length prefix and is rejected before allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// A decoding failure (the sending side can only produce valid frames,
/// so any of these indicates a corrupt stream or a version skew).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Payload ended before the announced field boundary.
    Truncated,
    /// Unknown message or outcome tag.
    UnknownTag(u8),
    /// Announced frame length exceeds [`MAX_FRAME_BYTES`].
    Oversize(usize),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Payload had bytes left over after the message was fully decoded.
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated mid-field"),
            CodecError::UnknownTag(t) => write!(f, "unknown message tag 0x{t:02x}"),
            CodecError::Oversize(n) => {
                write!(
                    f,
                    "frame of {n} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
                )
            }
            CodecError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate one circuit under one calibration day: the serving-path
    /// analogue of [`qnn::executor::NoisyExecutor::z_scores_seeded`].
    Eval {
        /// Client-chosen id echoed on the response (responses may return
        /// out of submission order — batches complete per structure).
        request_id: u64,
        /// Tenant id; used for cross-client batch accounting only (the
        /// result depends on the request body alone).
        client_id: u64,
        /// Calibration day index into the server's scenario history.
        day: u32,
        /// Shot-noise stream id (same contract as `z_scores_seeded`).
        stream: u64,
        /// Input feature vector.
        features: Vec<f64>,
        /// Model weight vector.
        weights: Vec<f64>,
    },
    /// Match a calibration feature vector against the model repository.
    MatchModel {
        /// Client-chosen id echoed on the response.
        request_id: u64,
        /// Calibration features to match.
        features: Vec<f64>,
    },
    /// Fetch serving counters.
    Stats {
        /// Client-chosen id echoed on the response.
        request_id: u64,
    },
    /// Ask the server to drain pending work and exit cleanly.
    Shutdown {
        /// Client-chosen id echoed on the response.
        request_id: u64,
    },
}

/// Repository match outcome on the wire (mirrors
/// [`qucad::repository::MatchOutcome`]).
#[derive(Debug, Clone, PartialEq)]
pub enum WireMatchOutcome {
    /// Entry `index` matched within threshold.
    Hit {
        /// Matched entry index.
        index: u32,
        /// Weighted L1 distance to the matched centroid.
        distance: f64,
    },
    /// No entry close enough.
    Miss {
        /// Distance to the nearest entry (infinite when empty).
        nearest_distance: f64,
    },
    /// Nearest entry's cluster is below the accuracy requirement.
    Invalid {
        /// Matched (invalid) entry index.
        index: u32,
        /// Its predicted (cluster-mean) accuracy.
        predicted_accuracy: f64,
    },
}

/// Serving counters reported by [`Response::StatsReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Eval requests admitted to the batch queue.
    pub requests: u64,
    /// Batched evaluation passes executed.
    pub batches: u64,
    /// Batches that grouped requests from more than one client.
    pub cross_client_batches: u64,
    /// Largest batch executed.
    pub peak_batch: u32,
    /// Program-cache hits across all workers (shared cache).
    pub cache_hits: u64,
    /// Program-cache misses across all workers (shared cache).
    pub cache_misses: u64,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Per-class z-scores of one [`Request::Eval`].
    Scores {
        /// Echo of the request id.
        request_id: u64,
        /// Per-class `⟨Z⟩` scores, bit-identical to the direct path.
        z: Vec<f64>,
    },
    /// Outcome of one [`Request::MatchModel`].
    MatchResult {
        /// Echo of the request id.
        request_id: u64,
        /// The repository's decision.
        outcome: WireMatchOutcome,
    },
    /// Counters for one [`Request::Stats`].
    StatsReport {
        /// Echo of the request id.
        request_id: u64,
        /// Serving counters at the time of the request.
        stats: ServeStats,
    },
    /// The request was rejected (validation failure or shutdown race).
    Error {
        /// Echo of the request id.
        request_id: u64,
        /// Human-readable reason.
        message: String,
    },
    /// Acknowledgement of [`Request::Shutdown`].
    ShuttingDown {
        /// Echo of the request id.
        request_id: u64,
    },
}

// --- primitive encoders -------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_f64s(buf: &mut Vec<u8>, vs: &[f64]) {
    put_u32(
        buf,
        u32::try_from(vs.len()).expect("vector length exceeds u32"),
    );
    for &v in vs {
        put_f64(buf, v);
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(
        buf,
        u32::try_from(s.len()).expect("string length exceeds u32"),
    );
    buf.extend_from_slice(s.as_bytes());
}

// --- primitive decoders -------------------------------------------------

/// Cursor over a frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn f64s(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.u32()? as usize;
        // The length is attacker-controlled until checked against the
        // bytes actually present; never pre-allocate from it blindly.
        if n.checked_mul(8)
            .is_none_or(|bytes| bytes > self.buf.len() - self.pos)
        {
            return Err(CodecError::Truncated);
        }
        (0..n).map(|_| self.f64()).collect()
    }

    fn string(&mut self) -> Result<String, CodecError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    fn finish(&self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.buf.len() - self.pos))
        }
    }
}

// --- message codec ------------------------------------------------------

const TAG_EVAL: u8 = 0x01;
const TAG_MATCH: u8 = 0x02;
const TAG_STATS: u8 = 0x03;
const TAG_SHUTDOWN: u8 = 0x04;
const TAG_SCORES: u8 = 0x81;
const TAG_MATCH_RESULT: u8 = 0x82;
const TAG_STATS_REPORT: u8 = 0x83;
const TAG_ERROR: u8 = 0x84;
const TAG_SHUTTING_DOWN: u8 = 0x85;

const OUTCOME_HIT: u8 = 0;
const OUTCOME_MISS: u8 = 1;
const OUTCOME_INVALID: u8 = 2;

/// Encodes a request into a frame payload (no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match req {
        Request::Eval {
            request_id,
            client_id,
            day,
            stream,
            features,
            weights,
        } => {
            buf.push(TAG_EVAL);
            put_u64(&mut buf, *request_id);
            put_u64(&mut buf, *client_id);
            put_u32(&mut buf, *day);
            put_u64(&mut buf, *stream);
            put_f64s(&mut buf, features);
            put_f64s(&mut buf, weights);
        }
        Request::MatchModel {
            request_id,
            features,
        } => {
            buf.push(TAG_MATCH);
            put_u64(&mut buf, *request_id);
            put_f64s(&mut buf, features);
        }
        Request::Stats { request_id } => {
            buf.push(TAG_STATS);
            put_u64(&mut buf, *request_id);
        }
        Request::Shutdown { request_id } => {
            buf.push(TAG_SHUTDOWN);
            put_u64(&mut buf, *request_id);
        }
    }
    buf
}

/// Decodes a request frame payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, CodecError> {
    let mut c = Cursor::new(payload);
    let req = match c.u8()? {
        TAG_EVAL => Request::Eval {
            request_id: c.u64()?,
            client_id: c.u64()?,
            day: c.u32()?,
            stream: c.u64()?,
            features: c.f64s()?,
            weights: c.f64s()?,
        },
        TAG_MATCH => Request::MatchModel {
            request_id: c.u64()?,
            features: c.f64s()?,
        },
        TAG_STATS => Request::Stats {
            request_id: c.u64()?,
        },
        TAG_SHUTDOWN => Request::Shutdown {
            request_id: c.u64()?,
        },
        t => return Err(CodecError::UnknownTag(t)),
    };
    c.finish()?;
    Ok(req)
}

/// Encodes a response into a frame payload (no length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match resp {
        Response::Scores { request_id, z } => {
            buf.push(TAG_SCORES);
            put_u64(&mut buf, *request_id);
            put_f64s(&mut buf, z);
        }
        Response::MatchResult {
            request_id,
            outcome,
        } => {
            buf.push(TAG_MATCH_RESULT);
            put_u64(&mut buf, *request_id);
            match outcome {
                WireMatchOutcome::Hit { index, distance } => {
                    buf.push(OUTCOME_HIT);
                    put_u32(&mut buf, *index);
                    put_f64(&mut buf, *distance);
                }
                WireMatchOutcome::Miss { nearest_distance } => {
                    buf.push(OUTCOME_MISS);
                    put_f64(&mut buf, *nearest_distance);
                }
                WireMatchOutcome::Invalid {
                    index,
                    predicted_accuracy,
                } => {
                    buf.push(OUTCOME_INVALID);
                    put_u32(&mut buf, *index);
                    put_f64(&mut buf, *predicted_accuracy);
                }
            }
        }
        Response::StatsReport { request_id, stats } => {
            buf.push(TAG_STATS_REPORT);
            put_u64(&mut buf, *request_id);
            put_u64(&mut buf, stats.requests);
            put_u64(&mut buf, stats.batches);
            put_u64(&mut buf, stats.cross_client_batches);
            put_u32(&mut buf, stats.peak_batch);
            put_u64(&mut buf, stats.cache_hits);
            put_u64(&mut buf, stats.cache_misses);
        }
        Response::Error {
            request_id,
            message,
        } => {
            buf.push(TAG_ERROR);
            put_u64(&mut buf, *request_id);
            put_str(&mut buf, message);
        }
        Response::ShuttingDown { request_id } => {
            buf.push(TAG_SHUTTING_DOWN);
            put_u64(&mut buf, *request_id);
        }
    }
    buf
}

/// Decodes a response frame payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, CodecError> {
    let mut c = Cursor::new(payload);
    let resp = match c.u8()? {
        TAG_SCORES => Response::Scores {
            request_id: c.u64()?,
            z: c.f64s()?,
        },
        TAG_MATCH_RESULT => {
            let request_id = c.u64()?;
            let outcome = match c.u8()? {
                OUTCOME_HIT => WireMatchOutcome::Hit {
                    index: c.u32()?,
                    distance: c.f64()?,
                },
                OUTCOME_MISS => WireMatchOutcome::Miss {
                    nearest_distance: c.f64()?,
                },
                OUTCOME_INVALID => WireMatchOutcome::Invalid {
                    index: c.u32()?,
                    predicted_accuracy: c.f64()?,
                },
                t => return Err(CodecError::UnknownTag(t)),
            };
            Response::MatchResult {
                request_id,
                outcome,
            }
        }
        TAG_STATS_REPORT => Response::StatsReport {
            request_id: c.u64()?,
            stats: ServeStats {
                requests: c.u64()?,
                batches: c.u64()?,
                cross_client_batches: c.u64()?,
                peak_batch: c.u32()?,
                cache_hits: c.u64()?,
                cache_misses: c.u64()?,
            },
        },
        TAG_ERROR => Response::Error {
            request_id: c.u64()?,
            message: c.string()?,
        },
        TAG_SHUTTING_DOWN => Response::ShuttingDown {
            request_id: c.u64()?,
        },
        t => return Err(CodecError::UnknownTag(t)),
    };
    c.finish()?;
    Ok(resp)
}

// --- framing ------------------------------------------------------------

/// Writes one frame (length prefix + payload) to `w`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_BYTES`] — only this module's
/// encoders produce payloads, so an oversize one is a programming error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    assert!(
        payload.len() <= MAX_FRAME_BYTES,
        "outgoing frame of {} bytes exceeds the cap",
        payload.len()
    );
    let len = u32::try_from(payload.len()).expect("frame cap fits u32");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame from `r`. Returns `Ok(None)` on clean EOF (connection
/// closed between frames); EOF mid-frame is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_buf[n..])?,
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            CodecError::Oversize(len).to_string(),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_over_a_buffer() {
        let req = Request::Eval {
            request_id: 7,
            client_id: 3,
            day: 2,
            stream: 99,
            features: vec![0.25, -0.0, f64::NAN],
            weights: vec![1.5; 10],
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_request(&req)).expect("write");
        let mut cursor = io::Cursor::new(wire);
        let payload = read_frame(&mut cursor).expect("read").expect("frame");
        let got = decode_request(&payload).expect("decode");
        // NaN != NaN under PartialEq on the payload struct, so compare the
        // bit patterns field by field.
        match (&got, &req) {
            (
                Request::Eval {
                    features: got_f,
                    weights: got_w,
                    ..
                },
                Request::Eval {
                    features: want_f,
                    weights: want_w,
                    ..
                },
            ) => {
                for (a, b) in got_f.iter().zip(want_f.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                assert_eq!(got_w, want_w);
            }
            _ => panic!("wrong variant"),
        }
        assert!(read_frame(&mut cursor).expect("eof").is_none());
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let payload = encode_request(&Request::Stats { request_id: 1 });
        assert_eq!(
            decode_request(&payload[..payload.len() - 1]),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_request(&Request::Stats { request_id: 1 });
        payload.push(0);
        assert_eq!(decode_request(&payload), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert_eq!(decode_request(&[0x7f]), Err(CodecError::UnknownTag(0x7f)));
        assert_eq!(decode_response(&[0x01]), Err(CodecError::UnknownTag(0x01)));
    }

    #[test]
    fn oversize_frame_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut io::Cursor::new(wire)).expect_err("oversize");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn lying_vector_length_is_rejected() {
        // A frame announcing 2^28 f64s backed by no bytes must fail fast,
        // not allocate.
        let mut payload = vec![TAG_MATCH];
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&(1u32 << 28).to_le_bytes());
        assert_eq!(decode_request(&payload), Err(CodecError::Truncated));
    }
}

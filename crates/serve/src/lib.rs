//! `qucad-serve`: the multi-tenant online-manager service.
//!
//! The paper's online manager is a per-day loop inside one process; this
//! crate is its production shape — a long-running TCP server owning the
//! warm state the batch path already built:
//!
//! - one shared [`qnn::executor::ProgramCacheHandle`] of routed
//!   templates, warmed by **every** worker and therefore every client;
//! - the [`qucad::repository::ModelRepository`], matched concurrently
//!   from per-connection reader threads;
//! - per-worker `SimWorkspace`/`TrajectoryPanel` buffers (each worker
//!   owns one executor clone).
//!
//! Concurrently pending requests are grouped by `(day, StructureKey)` —
//! **across clients** — and each group rides one `evaluate_probes`
//! batched pass, so cross-user batching is the serving payoff of the
//! structure-of-arrays panel design.
//!
//! The bit-identity contract: a served z-score vector equals a direct
//! in-process [`qnn::executor::NoisyExecutor::z_scores_seeded`] call for
//! the same `(day, stream, backend, panel width)`, bit for bit,
//! regardless of how requests interleave or batch (pinned by the
//! interleaving proptests in `tests/serve_props.rs` and the TCP
//! integration test).
//!
//! See `src/main.rs` for the binary, [`codec`] for the wire format,
//! [`batch`] for the queue/batcher, [`scenario`] for the deterministic
//! warm-state recipe shared with clients, and [`server`]/[`client`] for
//! the two endpoints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod client;
pub mod codec;
pub mod scenario;
pub mod server;

//! The `qucad-serve` binary: bind, print the address, serve until a
//! `Shutdown` request arrives.
//!
//! Flags (all `--flag=value`) override the `QUCAD_SERVE_*` environment
//! knobs, which override the defaults:
//!
//! - `--port` / `QUCAD_SERVE_PORT` — TCP port on 127.0.0.1 (`0` =
//!   ephemeral; combine with `--port-file` so drivers learn the bound
//!   address). Default `7877`.
//! - `--max-batch` / `QUCAD_SERVE_MAX_BATCH` — largest structure-grouped
//!   batch. Default `16`.
//! - `--queue-depth` / `QUCAD_SERVE_QUEUE_DEPTH` — pending-eval bound.
//!   Default `256`.
//! - `--workers` — worker threads (default: `QUCAD_THREADS` or the
//!   machine parallelism, like every other batch path).
//! - `--device`, `--days`, `--seed` — the scenario recipe; clients must
//!   use the same values to verify bit-identity.
//! - `--port-file` — write the bound `ip:port` to this path once
//!   listening (the CI handshake).

use qnn::executor::parallel;
use qucad_serve::scenario::ServeScenario;
use qucad_serve::server::{serve, ServerConfig};

fn parse_flag<'a>(arg: &'a str, name: &str) -> Option<&'a str> {
    arg.strip_prefix("--")?
        .strip_prefix(name)?
        .strip_prefix('=')
}

fn main() {
    // Environment defaults (flags below override). Each knob parses
    // through the shared strict helpers: a set-but-garbage value panics
    // instead of silently demoting to a default.
    // qucad-lint: allow(env-read) — audited entry point: serve listen port
    let mut port = std::env::var("QUCAD_SERVE_PORT")
        .map_or(7877, |v| quasim::config::parse_port("QUCAD_SERVE_PORT", &v));
    // qucad-lint: allow(env-read) — audited entry point: serve batch cap
    let mut max_batch = std::env::var("QUCAD_SERVE_MAX_BATCH").map_or(16, |v| {
        quasim::config::parse_positive("QUCAD_SERVE_MAX_BATCH", &v)
    });
    // qucad-lint: allow(env-read) — audited entry point: serve queue depth
    let mut queue_depth = std::env::var("QUCAD_SERVE_QUEUE_DEPTH").map_or(256, |v| {
        quasim::config::parse_positive("QUCAD_SERVE_QUEUE_DEPTH", &v)
    });
    let mut workers = parallel::worker_threads();
    let mut device = "belem".to_string();
    let mut days = 8usize;
    let mut seed = 7u64;
    let mut port_file: Option<String> = None;

    for arg in std::env::args().skip(1) {
        if let Some(v) = parse_flag(&arg, "port") {
            port = quasim::config::parse_port("--port", v);
        } else if let Some(v) = parse_flag(&arg, "max-batch") {
            max_batch = quasim::config::parse_positive("--max-batch", v);
        } else if let Some(v) = parse_flag(&arg, "queue-depth") {
            queue_depth = quasim::config::parse_positive("--queue-depth", v);
        } else if let Some(v) = parse_flag(&arg, "workers") {
            workers = quasim::config::parse_positive("--workers", v);
        } else if let Some(v) = parse_flag(&arg, "device") {
            device = v.to_string();
        } else if let Some(v) = parse_flag(&arg, "days") {
            days = quasim::config::parse_positive("--days", v);
        } else if let Some(v) = parse_flag(&arg, "seed") {
            seed = v
                .parse()
                .unwrap_or_else(|_| panic!("--seed must be an integer, got '{v}'"));
        } else if let Some(v) = parse_flag(&arg, "port-file") {
            port_file = Some(v.to_string());
        } else {
            panic!("unknown argument '{arg}'");
        }
    }

    let scenario = ServeScenario::build(&device, days, seed);
    let config = ServerConfig {
        port,
        workers,
        max_batch,
        queue_depth,
    };
    let handle = serve(scenario, config).expect("bind qucad-serve listener");
    println!(
        "qucad-serve listening on {} (device={device}, days={days}, seed={seed}, \
         workers={workers}, max_batch={max_batch}, queue_depth={queue_depth})",
        handle.addr()
    );
    if let Some(path) = port_file {
        // Write via a temp file + rename so pollers never read a partial
        // address.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, handle.addr().to_string()).expect("write port file");
        std::fs::rename(&tmp, &path).expect("publish port file");
    }
    handle.join();
    println!("qucad-serve exited cleanly");
}

//! The serving scenario: the warm state one `qucad-serve` process owns.
//!
//! A scenario is **fully determined by `(device, days, seed)`** plus the
//! process environment (`QUCAD_BACKEND`, `QUCAD_TRAJ_BATCH`): model,
//! topology, calibration history, noise options, and the model
//! repository are all derived deterministically. That is the protocol's
//! bit-identity anchor — a client (or the `qucad_load` verifier) builds
//! the *same* scenario locally and checks every served z-score against a
//! direct [`NoisyExecutor`] call, bit for bit.

use calibration::history::{FluctuatingHistory, HistoryConfig};
use calibration::snapshot::CalibrationSnapshot;
use calibration::topology::Topology;
use qnn::executor::{NoiseOptions, NoisyExecutor, ProgramCacheHandle, SimBackend};
use qnn::model::VqcModel;
use qucad::repository::{ModelRepository, RepositoryEntry};
use transpile::expand::ANGLE_TOL;
use transpile::template::structure_key;

use crate::batch::GroupKey;

/// Trajectories per evaluation when the trajectory backend is selected.
const TRAJECTORIES: u32 = 64;

/// Calibration-to-depolarising scale (the bench default).
const NOISE_SCALE: f64 = 3.0;

/// Measurement shots per evaluation.
const SHOTS: u64 = 1024;

/// The deterministic warm state of one serving process.
#[derive(Debug, Clone)]
pub struct ServeScenario {
    /// Device name this scenario was built for.
    pub device: String,
    /// The device topology.
    pub topology: Topology,
    /// The model every tenant evaluates (structure varies per request
    /// through its bound parameters).
    pub model: VqcModel,
    /// Calibration snapshots; a request's `day` indexes this history.
    pub snapshots: Vec<CalibrationSnapshot>,
    /// The shared model repository served by `MatchModel` requests.
    pub repository: ModelRepository,
    /// Noise options of every evaluation (backend comes from
    /// `QUCAD_BACKEND`, so the CI matrix drives both engines).
    pub options: NoiseOptions,
}

impl ServeScenario {
    /// Builds the scenario for `device` (`"belem"` or `"jakarta"`) with
    /// `days` calibration days drawn from the device's fluctuation model
    /// at `seed`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown device name or `days == 0`.
    pub fn build(device: &str, days: usize, seed: u64) -> Self {
        assert!(days > 0, "scenario needs at least one calibration day");
        let (topology, config) = match device {
            "belem" => (Topology::ibm_belem(), HistoryConfig::belem_like(days, seed)),
            "jakarta" => (
                Topology::ibm_jakarta(),
                HistoryConfig::jakarta_like(days, seed),
            ),
            other => panic!("unknown serve device '{other}' (expected belem or jakarta)"),
        };
        let model = VqcModel::paper_model(4, 3, 4, 1);
        // offline_days = 0: the whole history is online-addressable by
        // request day; the repository below stands in for the offline
        // constructor's output.
        let history = FluctuatingHistory::generate(&topology, &config, 0);
        let snapshots = history.online().to_vec();
        let repository = Self::build_repository(&model, &snapshots);
        let options = NoiseOptions {
            scale: NOISE_SCALE,
            backend: SimBackend::from_env(),
            trajectories: TRAJECTORIES,
            ..NoiseOptions::with_shots(SHOTS, seed)
        };
        ServeScenario {
            device: device.to_string(),
            topology,
            model,
            snapshots,
            repository,
            options,
        }
    }

    /// A small deterministic repository: one entry per early calibration
    /// day, centred on that day's feature vector. The threshold is the
    /// mean pairwise centroid distance, so nearby queries hit and distant
    /// ones miss — enough structure for the match path to exercise all
    /// three outcomes.
    fn build_repository(model: &VqcModel, snapshots: &[CalibrationSnapshot]) -> ModelRepository {
        let n_entries = snapshots.len().min(3);
        let centroids: Vec<Vec<f64>> = snapshots[..n_entries]
            .iter()
            .map(CalibrationSnapshot::feature_vector)
            .collect();
        let dim = centroids[0].len();
        let weights = vec![1.0; dim];
        let mut pair_sum = 0.0;
        let mut pairs = 0u32;
        for i in 0..centroids.len() {
            for j in (i + 1)..centroids.len() {
                pair_sum += qucad::cluster::weighted_l1(&weights, &centroids[i], &centroids[j]);
                pairs += 1;
            }
        }
        let threshold = if pairs == 0 {
            1.0
        } else {
            pair_sum / f64::from(pairs)
        };
        let mut repo = ModelRepository::new(weights, threshold, Some(0.5));
        for (d, centroid) in centroids.into_iter().enumerate() {
            repo.push(RepositoryEntry {
                centroid,
                weights: (0..model.n_weights())
                    .map(|w| 0.05 * (d + 1) as f64 + 0.01 * w as f64)
                    .collect(),
                // One deliberately invalid cluster so Guidance 2 is
                // reachable over the wire.
                mean_accuracy: Some(if d == 1 { 0.4 } else { 0.9 }),
                origin_day: d,
            });
        }
        repo
    }

    /// Number of input features per request.
    pub fn n_features(&self) -> usize {
        4
    }

    /// A fresh executor on this scenario sharing `cache` (one per
    /// serving worker; clients build one with a private cache for
    /// verification).
    pub fn executor(&self, cache: ProgramCacheHandle) -> NoisyExecutor {
        NoisyExecutor::with_shared_cache(&self.model, &self.topology, self.options, cache)
    }

    /// The batch-group identity of a request: its calibration day plus
    /// the structure key of the fully bound circuit.
    pub fn group_key(&self, day: u32, features: &[f64], weights: &[f64]) -> GroupKey {
        let full = self.model.full_params(features, weights);
        GroupKey {
            day,
            key: structure_key(self.model.circuit(), &full, ANGLE_TOL),
        }
    }

    /// Validates an eval request body against this scenario. The error
    /// string goes back to the client verbatim.
    pub fn validate_eval(&self, day: u32, features: &[f64], weights: &[f64]) -> Result<(), String> {
        if day as usize >= self.snapshots.len() {
            return Err(format!(
                "day {day} out of range (scenario has {} days)",
                self.snapshots.len()
            ));
        }
        if features.len() != self.n_features() {
            return Err(format!(
                "expected {} features, got {}",
                self.n_features(),
                features.len()
            ));
        }
        if weights.len() != self.model.n_weights() {
            return Err(format!(
                "expected {} weights, got {}",
                self.model.n_weights(),
                weights.len()
            ));
        }
        if !features.iter().chain(weights.iter()).all(|v| v.is_finite()) {
            return Err("features and weights must be finite".to_string());
        }
        Ok(())
    }

    /// Validates a match request body (the repository rejects non-finite
    /// features by contract; the server maps that onto an error response
    /// instead of a worker panic).
    pub fn validate_match(&self, features: &[f64]) -> Result<(), String> {
        if features.len() != self.repository.distance_weights().len() {
            return Err(format!(
                "expected {} calibration features, got {}",
                self.repository.distance_weights().len(),
                features.len()
            ));
        }
        if !features.iter().all(|v| v.is_finite()) {
            return Err("calibration features must be finite".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_deterministic_for_fixed_inputs() {
        let a = ServeScenario::build("belem", 4, 11);
        let b = ServeScenario::build("belem", 4, 11);
        assert_eq!(a.snapshots.len(), 4);
        for (x, y) in a.snapshots.iter().zip(b.snapshots.iter()) {
            assert_eq!(x.feature_vector(), y.feature_vector());
        }
        assert_eq!(a.repository, b.repository);
    }

    #[test]
    fn validation_rejects_malformed_requests() {
        let s = ServeScenario::build("belem", 2, 5);
        let w = vec![0.1; s.model.n_weights()];
        assert!(s.validate_eval(0, &[0.1; 4], &w).is_ok());
        assert!(s.validate_eval(2, &[0.1; 4], &w).is_err(), "day range");
        assert!(s.validate_eval(0, &[0.1; 3], &w).is_err(), "feature dim");
        assert!(
            s.validate_eval(0, &[0.1; 4], &w[1..]).is_err(),
            "weight dim"
        );
        let mut bad = w.clone();
        bad[0] = f64::NAN;
        assert!(s.validate_eval(0, &[0.1; 4], &bad).is_err(), "NaN weight");
        assert!(
            s.validate_eval(0, &[f64::INFINITY; 4], &w).is_err(),
            "inf feature"
        );
    }

    #[test]
    fn group_keys_split_by_day_and_structure() {
        let s = ServeScenario::build("belem", 2, 5);
        let generic = vec![0.9; s.model.n_weights()];
        let mut compressed = generic.clone();
        compressed[0] = 0.0;
        let f = [0.2; 4];
        assert_eq!(s.group_key(0, &f, &generic), s.group_key(0, &f, &generic));
        assert_ne!(s.group_key(0, &f, &generic), s.group_key(1, &f, &generic));
        assert_ne!(
            s.group_key(0, &f, &generic),
            s.group_key(0, &f, &compressed)
        );
    }
}

//! The long-running `qucad-serve` server.
//!
//! Thread architecture (std only — no async runtime is available):
//!
//! - one **acceptor** thread polls a non-blocking listener, spawning one
//!   reader thread per connection;
//! - per-connection **reader** threads decode frames, answer
//!   `MatchModel`/`Stats` inline (repository matching is a concurrent
//!   `&self` read), and admit `Eval` requests to the shared
//!   [`BatchQueue`];
//! - N **worker** threads each own a [`NoisyExecutor`] clone on one
//!   shared [`ProgramCacheHandle`] — one warm template cache across all
//!   workers and therefore across all clients — and drain the queue one
//!   structure-grouped batch at a time through `evaluate_probes`.
//!
//! Responses carry the client's `request_id` and may return out of
//! submission order (batches complete per structure); each connection's
//! writes go through a mutex so concurrently completing workers never
//! interleave frames.
//!
//! Shutdown: a `Shutdown` request (or [`ServerHandle::shutdown`]) flips
//! one flag; the acceptor stops accepting, the queue closes and drains,
//! workers exit on the drained queue, readers exit on their next read
//! timeout, and [`ServerHandle::join`] returns — so "the process exited
//! cleanly" is an assertable CI condition.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use qnn::executor::{NoisyExecutor, ProbeBatch, ProgramCacheHandle};
use qucad::repository::MatchOutcome;

use crate::batch::{BatchQueue, PendingEval};
use crate::codec::{
    decode_request, encode_response, write_frame, Request, Response, ServeStats, WireMatchOutcome,
};
use crate::scenario::ServeScenario;

/// Acceptor poll interval while idle (no wall-clock reads — just a
/// bounded sleep between non-blocking accept attempts).
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Per-connection read timeout: bounds how long a reader thread stays
/// parked before it rechecks the shutdown flag.
const READ_TIMEOUT: Duration = Duration::from_millis(25);

/// Tuning knobs of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP port to bind on 127.0.0.1 (`0` = OS-assigned ephemeral port;
    /// read the bound address from [`ServerHandle::addr`]).
    pub port: u16,
    /// Worker threads draining the batch queue.
    pub workers: usize,
    /// Largest batch one worker evaluates in one pass.
    pub max_batch: usize,
    /// Bound on concurrently pending evaluations (admission control:
    /// readers park when the queue is full).
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 0,
            workers: 2,
            max_batch: 16,
            queue_depth: 256,
        }
    }
}

/// Mutable serving counters (everything except the cache counters, which
/// live behind the shared [`ProgramCacheHandle`]).
#[derive(Debug, Default)]
struct Counters {
    requests: u64,
    batches: u64,
    cross_client_batches: u64,
    peak_batch: u32,
}

/// A connection's write half, shared by its reader thread and every
/// worker completing one of its requests.
type Writer = Arc<Mutex<TcpStream>>;

/// State shared by every thread of one server.
struct Shared {
    scenario: ServeScenario,
    queue: BatchQueue<Writer>,
    counters: Mutex<Counters>,
    cache: ProgramCacheHandle,
    shutdown: AtomicBool,
}

impl Shared {
    fn stats(&self) -> ServeStats {
        let c = self
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let cache = self.cache.stats();
        ServeStats {
            requests: c.requests,
            batches: c.batches,
            cross_client_batches: c.cross_client_batches,
            peak_batch: c.peak_batch,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
        }
    }
}

/// A running server: its bound address plus the join handle of its
/// acceptor thread (which in turn joins workers and readers).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<Shared>,
    acceptor: thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The bound listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown without a client round-trip (the in-process
    /// harness path; remote clients send [`Request::Shutdown`]).
    pub fn shutdown(&self) {
        self.shutdown.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the server to exit (acceptor joined ⇒ workers and
    /// readers joined ⇒ every pending request was answered).
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked.
    pub fn join(self) {
        self.acceptor.join().expect("server acceptor panicked");
    }
}

/// Starts a server for `scenario` on `127.0.0.1:{config.port}`.
///
/// # Errors
///
/// Returns the bind error if the port is unavailable.
pub fn serve(scenario: ServeScenario, config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", config.port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let cache = ProgramCacheHandle::new();
    let shared = Arc::new(Shared {
        queue: BatchQueue::new(config.queue_depth, config.max_batch),
        counters: Mutex::new(Counters::default()),
        cache: cache.clone(),
        scenario,
        shutdown: AtomicBool::new(false),
    });

    let workers: Vec<_> = (0..config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            let exec = shared.scenario.executor(cache.clone());
            thread::Builder::new()
                .name(format!("qucad-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared, &exec))
                .expect("spawn worker")
        })
        .collect();

    let shared_for_acceptor = Arc::clone(&shared);
    let acceptor = thread::Builder::new()
        .name("qucad-serve-acceptor".to_string())
        .spawn(move || accept_loop(&listener, &shared_for_acceptor, workers))
        .expect("spawn acceptor");

    Ok(ServerHandle {
        addr,
        shutdown: shared,
        acceptor,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, workers: Vec<thread::JoinHandle<()>>) {
    let mut readers = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                readers.push(
                    thread::Builder::new()
                        .name("qucad-serve-conn".to_string())
                        .spawn(move || connection_loop(stream, &shared))
                        .expect("spawn connection reader"),
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            // A failed accept (e.g. a connection reset mid-handshake)
            // affects that connection only; keep serving.
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
    // Shutdown: stop admitting, drain what's queued, then join everyone.
    shared.queue.close();
    for w in workers {
        w.join().expect("serve worker panicked");
    }
    for r in readers {
        r.join().expect("serve reader panicked");
    }
}

/// Outcome of one attempted frame read on a connection.
enum FrameRead {
    Frame(Vec<u8>),
    /// Clean close or fatal stream error: drop the connection.
    Closed,
    /// Shutdown observed while idle between frames.
    ShuttingDown,
}

/// Reads one frame, tolerating read timeouts (rechecking the shutdown
/// flag between them). Partial header/payload reads keep accumulating
/// across timeouts so a slow client cannot desync the stream.
fn read_frame_or_shutdown(stream: &mut TcpStream, shared: &Shared) -> FrameRead {
    let mut header = [0u8; 4];
    match read_exact_resumable(stream, &mut header, shared, true) {
        ExactRead::Done => {}
        ExactRead::Closed => return FrameRead::Closed,
        ExactRead::ShuttingDown => return FrameRead::ShuttingDown,
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > crate::codec::MAX_FRAME_BYTES {
        return FrameRead::Closed;
    }
    let mut payload = vec![0u8; len];
    match read_exact_resumable(stream, &mut payload, shared, false) {
        ExactRead::Done => FrameRead::Frame(payload),
        // Mid-frame shutdown or EOF: the frame can never complete.
        ExactRead::Closed | ExactRead::ShuttingDown => FrameRead::Closed,
    }
}

enum ExactRead {
    Done,
    Closed,
    ShuttingDown,
}

fn read_exact_resumable(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
    idle_boundary: bool,
) -> ExactRead {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return ExactRead::Closed,
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Only bail at a frame boundary with nothing read: a
                // half-received frame still completes during shutdown.
                if shared.shutdown.load(Ordering::SeqCst) && idle_boundary && filled == 0 {
                    return ExactRead::ShuttingDown;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ExactRead::Closed,
        }
    }
    ExactRead::Done
}

fn respond(writer: &Writer, resp: &Response) {
    let mut stream = writer
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // A dead connection fails every later write too; the reader notices
    // on its side and drops the connection, so ignore the error here.
    let _ = write_frame(&mut *stream, &encode_response(resp));
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer: Writer = Arc::new(Mutex::new(write_half));
    let mut read_half = stream;
    loop {
        let payload = match read_frame_or_shutdown(&mut read_half, shared) {
            FrameRead::Frame(p) => p,
            FrameRead::Closed | FrameRead::ShuttingDown => return,
        };
        let request = match decode_request(&payload) {
            Ok(r) => r,
            // An undecodable frame leaves the stream position valid (the
            // frame boundary held) but the session unusable: report on a
            // best-effort id and drop the connection.
            Err(e) => {
                respond(
                    &writer,
                    &Response::Error {
                        request_id: 0,
                        message: format!("bad request frame: {e}"),
                    },
                );
                return;
            }
        };
        match request {
            Request::Eval {
                request_id,
                client_id,
                day,
                stream,
                features,
                weights,
            } => {
                if let Err(message) = shared.scenario.validate_eval(day, &features, &weights) {
                    respond(
                        &writer,
                        &Response::Error {
                            request_id,
                            message,
                        },
                    );
                    continue;
                }
                let group = shared.scenario.group_key(day, &features, &weights);
                let pending = PendingEval {
                    request_id,
                    client_id,
                    stream,
                    features,
                    weights,
                    group,
                    ctx: Arc::clone(&writer),
                };
                if shared.queue.push(pending).is_err() {
                    respond(
                        &writer,
                        &Response::Error {
                            request_id,
                            message: "server is shutting down".to_string(),
                        },
                    );
                } else {
                    let mut c = shared
                        .counters
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    c.requests += 1;
                }
            }
            Request::MatchModel {
                request_id,
                features,
            } => {
                let resp = match shared.scenario.validate_match(&features) {
                    Err(message) => Response::Error {
                        request_id,
                        message,
                    },
                    Ok(()) => {
                        // Concurrent read of the shared repository: pure
                        // `&self`, many readers race freely.
                        let outcome = match shared.scenario.repository.match_features(&features) {
                            MatchOutcome::Hit { index, distance } => WireMatchOutcome::Hit {
                                index: u32::try_from(index).expect("repository fits u32"),
                                distance,
                            },
                            MatchOutcome::Miss { nearest_distance } => {
                                WireMatchOutcome::Miss { nearest_distance }
                            }
                            MatchOutcome::Invalid {
                                index,
                                predicted_accuracy,
                            } => WireMatchOutcome::Invalid {
                                index: u32::try_from(index).expect("repository fits u32"),
                                predicted_accuracy,
                            },
                        };
                        Response::MatchResult {
                            request_id,
                            outcome,
                        }
                    }
                };
                respond(&writer, &resp);
            }
            Request::Stats { request_id } => {
                respond(
                    &writer,
                    &Response::StatsReport {
                        request_id,
                        stats: shared.stats(),
                    },
                );
            }
            Request::Shutdown { request_id } => {
                respond(&writer, &Response::ShuttingDown { request_id });
                shared.shutdown.store(true, Ordering::SeqCst);
                return;
            }
        }
    }
}

fn worker_loop(shared: &Shared, exec: &NoisyExecutor) {
    while let Some(batch) = shared.queue.next_batch() {
        let day = batch[0].group.day as usize;
        let snapshot = &shared.scenario.snapshots[day];
        let mut probes = ProbeBatch::with_capacity(batch.len());
        for p in &batch {
            probes.push(&p.features, &p.weights, p.stream);
        }
        // One structure group per batch by construction, so this is one
        // compile-or-hit plus per-probe rebinds; threads=1 because the
        // workers themselves are the fan-out.
        let results = exec.evaluate_probes(snapshot, &probes, 1);
        debug_assert_eq!(results.len(), batch.len());
        {
            let mut c = shared
                .counters
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            c.batches += 1;
            c.peak_batch = c
                .peak_batch
                .max(u32::try_from(batch.len()).expect("batch fits u32"));
            let first_client = batch[0].client_id;
            if batch.iter().any(|p| p.client_id != first_client) {
                c.cross_client_batches += 1;
            }
        }
        for (p, z) in batch.iter().zip(results) {
            respond(
                &p.ctx,
                &Response::Scores {
                    request_id: p.request_id,
                    z,
                },
            );
        }
    }
}

//! Property tests of the serving path.
//!
//! 1. **Interleaving bit-identity** (the tentpole contract): N clients ×
//!    random arrival orders × random batch caps × both backends, driven
//!    through the real queue/batcher and multi-worker shared-cache
//!    executors — every response must equal a direct single-process
//!    `z_scores_seeded` call bit for bit, and no batch may ever mix
//!    `(day, StructureKey)` groups.
//! 2. **Codec round-trips**: every f64 — NaN and −0.0 included — crosses
//!    the wire bit-exactly.

use proptest::prelude::*;
use qnn::executor::{ProgramCacheHandle, SimBackend};
use qucad_serve::batch::{BatchQueue, PendingEval};
use qucad_serve::codec::{
    decode_request, decode_response, encode_request, encode_response, Request, Response,
    ServeStats, WireMatchOutcome,
};
use qucad_serve::scenario::ServeScenario;

/// One logical client request in the generated workload.
#[derive(Debug, Clone)]
struct Workload {
    client: u64,
    day: u32,
    palette: usize,
    stream: u64,
    /// Arrival-order priority (the "random interleaving" knob: requests
    /// are pushed in priority order, so clients interleave arbitrarily).
    priority: u32,
}

fn arb_workload(days: u32) -> impl Strategy<Value = Vec<Workload>> {
    proptest::collection::vec(
        (0u64..3, 0u32..days, 0usize..3, 0u64..1_000_000, 0u32..1000),
        4..12,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(client, day, palette, stream, priority)| Workload {
                client,
                day,
                palette,
                stream,
                priority,
            })
            .collect()
    })
}

/// The request palette: weight pattern `p` zeroes the first `3 p`
/// weights (three distinct structure keys), features vary per client
/// (same structure, different values — they must still batch together
/// and come back bit-exact).
fn palette_weights(n: usize, p: usize) -> Vec<f64> {
    (0..n).map(|j| if j < 3 * p { 0.0 } else { 0.9 }).collect()
}

fn client_features(client: u64) -> Vec<f64> {
    vec![
        0.3 + 0.1 * client as f64,
        0.8,
        1.4 - 0.05 * client as f64,
        2.1,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The full in-process serving pipeline — queue, structure batcher,
    /// two shared-cache workers — against the direct path.
    #[test]
    fn interleaved_batched_serving_is_bit_identical_to_direct(
        workload in arb_workload(2),
        max_batch in prop_oneof![Just(1usize), Just(2), Just(8)],
        eager_drain in any::<bool>(),
        backend_pick in any::<bool>(),
    ) {
        let mut scenario = ServeScenario::build("belem", 2, 11);
        scenario.options.backend = if backend_pick {
            SimBackend::Trajectory
        } else {
            SimBackend::Density
        };
        scenario.options.trajectories = 16;

        let mut ordered = workload.clone();
        ordered.sort_by_key(|w| w.priority);

        // Two workers on one shared cache, used alternately per batch —
        // the multi-worker serving shape without thread scheduling noise.
        let shared = ProgramCacheHandle::new();
        let workers = [
            scenario.executor(shared.clone()),
            scenario.executor(shared.clone()),
        ];

        let queue: BatchQueue<usize> = BatchQueue::new(64, max_batch);
        let mut responses: Vec<Option<Vec<f64>>> = vec![None; ordered.len()];
        let drain = |queue: &BatchQueue<usize>,
                         responses: &mut Vec<Option<Vec<f64>>>,
                         batch_no: &mut usize| {
            while !queue.is_empty() {
                let batch = queue.next_batch().expect("open queue");
                // Batch purity: one (day, structure) group per batch.
                for p in &batch {
                    prop_assert!(p.group == batch[0].group, "batch crossed group keys");
                }
                prop_assert!(batch.len() <= max_batch);
                let exec = &workers[*batch_no % workers.len()];
                *batch_no += 1;
                let snap = &scenario.snapshots[batch[0].group.day as usize];
                let mut probes = qnn::executor::ProbeBatch::with_capacity(batch.len());
                for p in &batch {
                    probes.push(&p.features, &p.weights, p.stream);
                }
                let z = exec.evaluate_probes(snap, &probes, 1);
                for (p, z) in batch.iter().zip(z) {
                    responses[p.ctx] = Some(z);
                }
            }
            Ok(())
        };

        let mut batch_no = 0usize;
        for (slot, w) in ordered.iter().enumerate() {
            let features = client_features(w.client);
            let weights = palette_weights(scenario.model.n_weights(), w.palette);
            let group = scenario.group_key(w.day, &features, &weights);
            queue
                .push(PendingEval {
                    request_id: slot as u64,
                    client_id: w.client,
                    stream: w.stream,
                    features,
                    weights,
                    group,
                    ctx: slot,
                })
                .expect("open queue");
            // Eager mode drains after every push (max batch pressure 1);
            // lazy mode lets the whole workload pool up first (max
            // cross-client grouping). Real serving sits in between.
            if eager_drain {
                drain(&queue, &mut responses, &mut batch_no)?;
            }
        }
        drain(&queue, &mut responses, &mut batch_no)?;

        // Direct path: a fresh private-cache executor per request.
        for (slot, w) in ordered.iter().enumerate() {
            let direct = scenario.executor(ProgramCacheHandle::new());
            let features = client_features(w.client);
            let weights = palette_weights(scenario.model.n_weights(), w.palette);
            let want = direct.z_scores_seeded(
                &features,
                &weights,
                &scenario.snapshots[w.day as usize],
                w.stream,
            );
            let got = responses[slot].as_ref().expect("response delivered");
            prop_assert_eq!(got.len(), want.len());
            for (a, b) in got.iter().zip(want.iter()) {
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "slot {} {} vs {} (backend={:?}, max_batch={})",
                    slot, a, b, scenario.options.backend, max_batch
                );
            }
        }
    }

    /// Requests round-trip the codec bit-exactly, NaN payloads included.
    #[test]
    fn request_codec_roundtrips_bit_exactly(
        request_id in any::<u64>(),
        client_id in any::<u64>(),
        day in any::<u32>(),
        stream in any::<u64>(),
        features in arb_f64_vec(6),
        weights in arb_f64_vec(12),
    ) {
        let req = Request::Eval {
            request_id, client_id, day, stream,
            features: features.clone(),
            weights: weights.clone(),
        };
        let got = decode_request(&encode_request(&req)).expect("roundtrip");
        let Request::Eval { features: gf, weights: gw, request_id: gid, .. } = got else {
            panic!("wrong variant");
        };
        prop_assert_eq!(gid, request_id);
        for (a, b) in gf.iter().zip(features.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in gw.iter().zip(weights.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Responses round-trip the codec bit-exactly.
    #[test]
    fn response_codec_roundtrips_bit_exactly(
        request_id in any::<u64>(),
        z in arb_f64_vec(5),
        nearest in arb_f64(),
        message_pick in 0usize..3,
    ) {
        let message = ["", "bad day", "weights must be finite"][message_pick].to_string();
        for resp in [
            Response::Scores { request_id, z: z.clone() },
            Response::MatchResult {
                request_id,
                outcome: WireMatchOutcome::Miss { nearest_distance: nearest },
            },
            Response::StatsReport {
                request_id,
                stats: ServeStats {
                    requests: 10, batches: 4, cross_client_batches: 2,
                    peak_batch: 3, cache_hits: 8, cache_misses: 2,
                },
            },
            Response::Error { request_id, message: message.clone() },
            Response::ShuttingDown { request_id },
        ] {
            let got = decode_response(&encode_response(&resp)).expect("roundtrip");
            match (&got, &resp) {
                (Response::Scores { z: a, .. }, Response::Scores { z: b, .. }) => {
                    for (x, y) in a.iter().zip(b.iter()) {
                        prop_assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
                (
                    Response::MatchResult { outcome: WireMatchOutcome::Miss { nearest_distance: a }, .. },
                    Response::MatchResult { outcome: WireMatchOutcome::Miss { nearest_distance: b }, .. },
                ) => prop_assert_eq!(a.to_bits(), b.to_bits()),
                _ => prop_assert_eq!(&got, &resp),
            }
        }
    }
}

/// f64 values including the awkward ones (NaN, infinities, −0.0).
fn arb_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(-0.0),
        Just(0.0),
        -1e300f64..1e300,
    ]
}

fn arb_f64_vec(max: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(arb_f64(), 0..max)
}

//! End-to-end test of `qucad-serve` over real TCP: several concurrent
//! pipelined clients, bit-identity against the direct in-process path,
//! the repository match outcomes, validation errors, counters, and a
//! clean shutdown join.

use std::net::SocketAddr;
use std::sync::Arc;

use qnn::executor::ProgramCacheHandle;
use qucad_serve::client::ServeClient;
use qucad_serve::codec::{Request, Response, WireMatchOutcome};
use qucad_serve::scenario::ServeScenario;
use qucad_serve::server::{serve, ServerConfig};

const DEVICE: &str = "belem";
const DAYS: usize = 2;
const SEED: u64 = 7;

fn start_server() -> (qucad_serve::server::ServerHandle, SocketAddr) {
    let scenario = ServeScenario::build(DEVICE, DAYS, SEED);
    let handle = serve(
        scenario,
        ServerConfig {
            port: 0,
            workers: 2,
            max_batch: 8,
            queue_depth: 64,
        },
    )
    .expect("bind ephemeral port");
    let addr = handle.addr();
    (handle, addr)
}

/// Weight pattern `p` zeroes a prefix: three distinct structure keys
/// shared across clients, so concurrent load actually forms
/// cross-client batches.
fn palette_weights(n: usize, p: usize) -> Vec<f64> {
    (0..n).map(|j| if j < 3 * p { 0.0 } else { 0.9 }).collect()
}

#[test]
fn concurrent_clients_get_bit_identical_scores_and_server_shuts_down_cleanly() {
    let (handle, addr) = start_server();
    let scenario = Arc::new(ServeScenario::build(DEVICE, DAYS, SEED));

    const CLIENTS: u64 = 3;
    const REQUESTS_PER_CLIENT: u64 = 8;

    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for client_id in 0..CLIENTS {
            let scenario = Arc::clone(&scenario);
            joins.push(scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                let requests: Vec<Request> = (0..REQUESTS_PER_CLIENT)
                    .map(|i| Request::Eval {
                        request_id: client_id * 1000 + i,
                        client_id,
                        day: (i % DAYS as u64) as u32,
                        stream: 17 * client_id + i,
                        features: vec![0.3 + 0.1 * client_id as f64, 0.8, 1.4, 2.1],
                        weights: palette_weights(scenario.model.n_weights(), (i % 3) as usize),
                    })
                    .collect();
                // Pipelined burst: all requests in flight at once, so the
                // server sees concurrent same-structure work to batch.
                let responses = client.eval_all(&requests).expect("eval burst");
                assert_eq!(responses.len(), requests.len(), "every request answered");

                let direct = scenario.executor(ProgramCacheHandle::new());
                for req in &requests {
                    let Request::Eval {
                        request_id,
                        day,
                        stream,
                        features,
                        weights,
                        ..
                    } = req
                    else {
                        unreachable!()
                    };
                    let want = direct.z_scores_seeded(
                        features,
                        weights,
                        &scenario.snapshots[*day as usize],
                        *stream,
                    );
                    match responses.get(request_id) {
                        Some(Response::Scores { z, .. }) => {
                            assert_eq!(z.len(), want.len());
                            for (a, b) in z.iter().zip(want.iter()) {
                                assert_eq!(
                                    a.to_bits(),
                                    b.to_bits(),
                                    "served {a} != direct {b} (request {request_id})"
                                );
                            }
                        }
                        other => panic!("request {request_id}: unexpected {other:?}"),
                    }
                }
            }));
        }
        for j in joins {
            j.join().expect("client thread");
        }
    });

    // Counters after the load: every admitted request was batched, the
    // shared cache absorbed the repeats (3 structures × 2 days ⇒ at most
    // 6 distinct compilations across 24 requests).
    let mut client = ServeClient::connect(addr).expect("connect for stats");
    let stats = client.stats(9000).expect("stats");
    assert_eq!(stats.requests, CLIENTS * REQUESTS_PER_CLIENT);
    assert!(stats.batches >= 1 && stats.batches <= stats.requests);
    assert!(u64::from(stats.peak_batch) <= stats.requests);
    // One structure lookup per batched pass (all probes in a batch share
    // the structure by construction), so the cache counters sum to the
    // batch count, not the request count.
    assert_eq!(stats.cache_hits + stats.cache_misses, stats.batches);
    assert!(
        stats.cache_misses <= 6,
        "at most one miss per (day, structure): {stats:?}"
    );

    client.shutdown(9001).expect("shutdown ack");
    // Clean exit is part of the contract: acceptor joins workers and
    // readers, so join() returning proves nothing leaked or deadlocked.
    handle.join();
}

#[test]
fn match_requests_cover_all_outcomes_and_reject_non_finite() {
    let (handle, addr) = start_server();
    let scenario = ServeScenario::build(DEVICE, DAYS, SEED);
    let dim = scenario.repository.distance_weights().len();
    let mut client = ServeClient::connect(addr).expect("connect");

    // Day-0 centroid → exact hit on entry 0.
    let hit = client
        .call(&Request::MatchModel {
            request_id: 1,
            features: scenario.snapshots[0].feature_vector(),
        })
        .expect("match");
    match hit {
        Response::MatchResult {
            outcome: WireMatchOutcome::Hit { index, distance },
            ..
        } => {
            assert_eq!(index, 0);
            assert_eq!(distance, 0.0);
        }
        other => panic!("expected Hit, got {other:?}"),
    }

    // Day-1 centroid → its entry is the deliberately invalid cluster.
    let invalid = client
        .call(&Request::MatchModel {
            request_id: 2,
            features: scenario.snapshots[1].feature_vector(),
        })
        .expect("match");
    match invalid {
        Response::MatchResult {
            outcome:
                WireMatchOutcome::Invalid {
                    index,
                    predicted_accuracy,
                },
            ..
        } => {
            assert_eq!(index, 1);
            assert_eq!(predicted_accuracy, 0.4);
        }
        other => panic!("expected Invalid, got {other:?}"),
    }

    // Far-away query → miss with a finite nearest distance.
    let miss = client
        .call(&Request::MatchModel {
            request_id: 3,
            features: vec![1e6; dim],
        })
        .expect("match");
    match miss {
        Response::MatchResult {
            outcome: WireMatchOutcome::Miss { nearest_distance },
            ..
        } => assert!(nearest_distance.is_finite() && nearest_distance > 0.0),
        other => panic!("expected Miss, got {other:?}"),
    }

    // Non-finite features come back as an in-band error (the wire carries
    // NaN bit-exactly; the *server* refuses it), not a dropped connection.
    for bad in [f64::NAN, f64::INFINITY] {
        let resp = client
            .call(&Request::MatchModel {
                request_id: 4,
                features: vec![bad; dim],
            })
            .expect("transport survives");
        match resp {
            Response::Error { message, .. } => {
                assert!(message.contains("finite"), "unexpected message: {message}");
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }

    // Wrong dimensionality is also an in-band error.
    let resp = client
        .call(&Request::MatchModel {
            request_id: 5,
            features: vec![0.5; dim + 1],
        })
        .expect("transport survives");
    assert!(matches!(resp, Response::Error { .. }));

    client.shutdown(6).expect("shutdown ack");
    handle.join();
}

#[test]
fn invalid_eval_requests_get_in_band_errors() {
    let (handle, addr) = start_server();
    let scenario = ServeScenario::build(DEVICE, DAYS, SEED);
    let n_weights = scenario.model.n_weights();
    let mut client = ServeClient::connect(addr).expect("connect");

    let cases: Vec<(Request, &str)> = vec![
        (
            Request::Eval {
                request_id: 1,
                client_id: 0,
                day: DAYS as u32, // one past the end
                stream: 0,
                features: vec![0.1; 4],
                weights: vec![0.9; n_weights],
            },
            "out of range",
        ),
        (
            Request::Eval {
                request_id: 2,
                client_id: 0,
                day: 0,
                stream: 0,
                features: vec![0.1; 3],
                weights: vec![0.9; n_weights],
            },
            "features",
        ),
        (
            Request::Eval {
                request_id: 3,
                client_id: 0,
                day: 0,
                stream: 0,
                features: vec![f64::NAN, 0.1, 0.2, 0.3],
                weights: vec![0.9; n_weights],
            },
            "finite",
        ),
    ];
    for (req, needle) in cases {
        match client.call(&req).expect("transport survives") {
            Response::Error { message, .. } => {
                assert!(message.contains(needle), "'{message}' lacks '{needle}'");
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }

    // The connection is still healthy after in-band errors: a valid
    // request on the same stream succeeds.
    let ok = client
        .call(&Request::Eval {
            request_id: 4,
            client_id: 0,
            day: 0,
            stream: 5,
            features: vec![0.1, 0.2, 0.3, 0.4],
            weights: vec![0.9; n_weights],
        })
        .expect("valid request after errors");
    assert!(matches!(ok, Response::Scores { .. }));

    client.shutdown(5).expect("shutdown ack");
    handle.join();
}

#[test]
fn server_side_shutdown_unblocks_idle_connections() {
    let (handle, addr) = start_server();
    // An idle connected client must not prevent a clean join: readers
    // notice the flag at their next read timeout and exit.
    let _idle = ServeClient::connect(addr).expect("connect idle client");
    handle.shutdown();
    handle.join();
}

//! Parameterised logical circuit IR.
//!
//! A [`Circuit`] is a time-ordered list of [`Op`]s over *logical* qubits.
//! Rotation angles are either trainable parameters (indices into an external
//! `θ` vector, the QNN weights) or fixed constants (e.g. data-encoding
//! angles). Binding a parameter vector produces the [`BoundGate`] sequence
//! the simulators consume.

use quasim::gate::{BoundGate, GateKind};

/// A rotation angle: trainable parameter or fixed constant.
///
/// # Examples
///
/// ```
/// use transpile::circuit::Param;
///
/// assert_eq!(Param::Idx(3).resolve(&[0.0, 0.0, 0.0, 1.5]), 1.5);
/// assert_eq!(Param::Fixed(0.25).resolve(&[]), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Param {
    /// Index into the trainable parameter vector `θ`.
    Idx(usize),
    /// A fixed angle (data encoding, calibration pulses, …).
    Fixed(f64),
}

impl Param {
    /// Resolves the angle against a parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if a parameter index is out of range.
    pub fn resolve(&self, theta: &[f64]) -> f64 {
        match *self {
            Param::Idx(i) => {
                assert!(i < theta.len(), "parameter index {i} out of range");
                theta[i]
            }
            Param::Fixed(v) => v,
        }
    }

    /// The trainable index, if any.
    pub fn idx(&self) -> Option<usize> {
        match *self {
            Param::Idx(i) => Some(i),
            Param::Fixed(_) => None,
        }
    }
}

/// One gate application in a circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// Gate kind.
    pub kind: GateKind,
    /// Qubit operands (control first for controlled gates).
    pub qubits: Vec<usize>,
    /// Rotation angle for parameterised kinds, `None` for fixed gates.
    pub param: Option<Param>,
}

impl Op {
    /// Binds this op against a parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if a parameter index is out of range.
    pub fn bind(&self, theta: &[f64]) -> BoundGate {
        let angle = self.param.map_or(0.0, |p| p.resolve(theta));
        match self.qubits.as_slice() {
            [q] => BoundGate::one(self.kind, *q, angle),
            [a, b] => BoundGate::two(self.kind, *a, *b, angle),
            _ => unreachable!("ops always have 1 or 2 qubits"),
        }
    }
}

/// A parameterised quantum circuit over logical qubits.
///
/// # Examples
///
/// ```
/// use transpile::circuit::{Circuit, Param};
///
/// let mut c = Circuit::new(2);
/// c.ry(0, Param::Idx(0));
/// c.cry(0, 1, Param::Idx(1));
/// assert_eq!(c.n_params(), 2);
/// let bound = c.bind(&[0.5, 1.0]);
/// assert_eq!(bound.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    ops: Vec<Op>,
    n_params: usize,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits` logical qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits == 0`.
    pub fn new(n_qubits: usize) -> Self {
        assert!(n_qubits > 0, "circuit needs at least one qubit");
        Circuit {
            n_qubits,
            ops: Vec::new(),
            n_params: 0,
        }
    }

    /// Number of logical qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Time-ordered operations.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of distinct trainable parameters referenced
    /// (`1 + max index`, 0 if none).
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends a raw op.
    ///
    /// # Panics
    ///
    /// Panics if operand count mismatches the gate arity, qubits are out of
    /// range or duplicated, or a parameter is supplied for a fixed gate
    /// (or missing for a parameterised one).
    pub fn push(&mut self, op: Op) {
        assert_eq!(op.qubits.len(), op.kind.arity(), "operand count mismatch");
        for &q in &op.qubits {
            assert!(q < self.n_qubits, "qubit {q} out of range");
        }
        if op.qubits.len() == 2 {
            assert_ne!(op.qubits[0], op.qubits[1], "duplicate operand qubits");
        }
        assert_eq!(
            op.param.is_some(),
            op.kind.is_parameterised(),
            "parameter presence must match gate kind {}",
            op.kind
        );
        if let Some(Param::Idx(i)) = op.param {
            self.n_params = self.n_params.max(i + 1);
        }
        self.ops.push(op);
    }

    /// Appends an `RX(θ)` on `q`.
    pub fn rx(&mut self, q: usize, p: Param) -> &mut Self {
        self.push(Op {
            kind: GateKind::Rx,
            qubits: vec![q],
            param: Some(p),
        });
        self
    }

    /// Appends an `RY(θ)` on `q`.
    pub fn ry(&mut self, q: usize, p: Param) -> &mut Self {
        self.push(Op {
            kind: GateKind::Ry,
            qubits: vec![q],
            param: Some(p),
        });
        self
    }

    /// Appends an `RZ(θ)` on `q`.
    pub fn rz(&mut self, q: usize, p: Param) -> &mut Self {
        self.push(Op {
            kind: GateKind::Rz,
            qubits: vec![q],
            param: Some(p),
        });
        self
    }

    /// Appends a Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Op {
            kind: GateKind::H,
            qubits: vec![q],
            param: None,
        });
        self
    }

    /// Appends a Pauli-X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Op {
            kind: GateKind::X,
            qubits: vec![q],
            param: None,
        });
        self
    }

    /// Appends a CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Op {
            kind: GateKind::Cx,
            qubits: vec![c, t],
            param: None,
        });
        self
    }

    /// Appends a controlled `RX(θ)`.
    pub fn crx(&mut self, c: usize, t: usize, p: Param) -> &mut Self {
        self.push(Op {
            kind: GateKind::Crx,
            qubits: vec![c, t],
            param: Some(p),
        });
        self
    }

    /// Appends a controlled `RY(θ)`.
    pub fn cry(&mut self, c: usize, t: usize, p: Param) -> &mut Self {
        self.push(Op {
            kind: GateKind::Cry,
            qubits: vec![c, t],
            param: Some(p),
        });
        self
    }

    /// Appends a controlled `RZ(θ)`.
    pub fn crz(&mut self, c: usize, t: usize, p: Param) -> &mut Self {
        self.push(Op {
            kind: GateKind::Crz,
            qubits: vec![c, t],
            param: Some(p),
        });
        self
    }

    /// Binds every op against `theta`, producing simulator-ready gates.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is shorter than [`Circuit::n_params`].
    pub fn bind(&self, theta: &[f64]) -> Vec<BoundGate> {
        assert!(
            theta.len() >= self.n_params,
            "need {} parameters, got {}",
            self.n_params,
            theta.len()
        );
        self.ops.iter().map(|op| op.bind(theta)).collect()
    }

    /// Returns a copy with every parameterised gate whose bound angle makes
    /// it the identity (within `tol`) removed: `0 mod 2π` for plain
    /// rotations (at `2π` the `−I` is a global phase), `0 mod 4π` for
    /// controlled rotations (at `2π` the control promotes the target's
    /// `−I` to a physical controlled phase, so the gate must stay).
    ///
    /// This mirrors what a production transpiler does before routing: a
    /// `CRY(0)` never reaches the device, so neither do the SWAPs that
    /// routing would have inserted for it — the main physical-length win of
    /// parameter compression.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is shorter than [`Circuit::n_params`].
    pub fn simplified(&self, theta: &[f64], tol: f64) -> Circuit {
        assert!(
            theta.len() >= self.n_params,
            "need {} parameters, got {}",
            self.n_params,
            theta.len()
        );
        let ops = self
            .ops
            .iter()
            .filter(|op| match op.param {
                Some(p) => !angle_is_identity(op.kind, p.resolve(theta), tol),
                None => true,
            })
            .cloned()
            .collect();
        Circuit {
            n_qubits: self.n_qubits,
            ops,
            n_params: self.n_params,
        }
    }

    /// Indices of ops that reference trainable parameter `i`.
    pub fn ops_for_param(&self, i: usize) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.param.and_then(|p| p.idx()) == Some(i))
            .map(|(k, _)| k)
            .collect()
    }
}

/// Whether a parameterised gate of `kind` bound at `angle` is the identity
/// within `tol`.
///
/// Plain rotations have period 2π (at `2π` the unitary is `−I`, an
/// unobservable global phase); controlled rotations have period 4π — at
/// `2π` the control promotes the target's `−I` to a *physical* controlled
/// phase (`CR(2π) = diag(1, 1, −1, −1)`), so only multiples of 4π vanish.
///
/// This is the single identity-angle rule shared by [`Circuit::simplified`]
/// and `transpile::expand`, so the pre-routing drop pass and the
/// native-gate expansion can never disagree about which gates exist.
pub fn angle_is_identity(kind: GateKind, angle: f64, tol: f64) -> bool {
    let period = std::f64::consts::TAU * kind.arity() as f64;
    let mut a = angle % period;
    if a < 0.0 {
        a += period;
    }
    a < tol || (period - a) < tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_param_count() {
        let mut c = Circuit::new(3);
        c.ry(0, Param::Idx(0))
            .cry(0, 1, Param::Idx(4))
            .rx(2, Param::Fixed(0.3));
        assert_eq!(c.n_params(), 5);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn bind_resolves_params_and_constants() {
        let mut c = Circuit::new(2);
        c.ry(0, Param::Idx(1)).rx(1, Param::Fixed(0.25));
        let bound = c.bind(&[9.0, 0.5]);
        assert_eq!(bound[0].theta(), 0.5);
        assert_eq!(bound[1].theta(), 0.25);
    }

    #[test]
    fn ops_for_param_finds_shared_params() {
        let mut c = Circuit::new(2);
        c.ry(0, Param::Idx(0))
            .ry(1, Param::Idx(0))
            .rz(0, Param::Idx(1));
        assert_eq!(c.ops_for_param(0), vec![0, 1]);
        assert_eq!(c.ops_for_param(1), vec![2]);
        assert!(c.ops_for_param(7).is_empty());
    }

    #[test]
    fn fixed_gates_have_no_param() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        assert_eq!(c.n_params(), 0);
        let bound = c.bind(&[]);
        assert_eq!(bound.len(), 2);
    }

    #[test]
    fn simplified_drops_identity_gates() {
        let mut c = Circuit::new(3);
        c.ry(0, Param::Idx(0))
            .cry(0, 1, Param::Idx(1))
            .crz(1, 2, Param::Idx(2))
            .h(2)
            .rx(1, Param::Fixed(0.0));
        let s = c.simplified(&[0.0, 1.2, 2.0 * std::f64::consts::TAU, 9.9], 1e-9);
        // RY(0), CRZ(4π) and fixed RX(0) vanish; CRY(1.2) and H stay.
        assert_eq!(s.len(), 2);
        assert_eq!(s.ops()[0].kind, quasim::gate::GateKind::Cry);
        assert_eq!(s.ops()[1].kind, quasim::gate::GateKind::H);
        // Parameter space is unchanged (indices still valid).
        assert_eq!(s.n_params(), c.n_params());
    }

    #[test]
    fn simplified_keeps_controlled_rotation_at_two_pi() {
        // CRZ(2π) = diag(1, 1, −1, −1): the control turns the target's −I
        // global phase into a physical controlled phase, so it must not be
        // simplified away (controlled rotations have period 4π).
        let mut c = Circuit::new(2);
        c.crz(0, 1, Param::Idx(0)).ry(0, Param::Idx(1));
        let s = c.simplified(&[std::f64::consts::TAU, std::f64::consts::TAU], 1e-9);
        assert_eq!(s.len(), 1);
        assert_eq!(s.ops()[0].kind, quasim::gate::GateKind::Crz);
    }

    #[test]
    fn simplified_negative_angles_wrap() {
        let mut c = Circuit::new(1);
        c.ry(0, Param::Idx(0));
        assert!(c.simplified(&[-std::f64::consts::TAU], 1e-9).is_empty());
        assert_eq!(c.simplified(&[-0.3], 1e-9).len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_bad_qubit() {
        let mut c = Circuit::new(2);
        c.ry(5, Param::Idx(0));
    }

    #[test]
    #[should_panic(expected = "need 2 parameters")]
    fn bind_rejects_short_theta() {
        let mut c = Circuit::new(1);
        c.ry(0, Param::Idx(1));
        let _ = c.bind(&[0.1]);
    }

    #[test]
    #[should_panic(expected = "duplicate operand")]
    fn push_rejects_duplicate_qubits() {
        let mut c = Circuit::new(2);
        c.cx(1, 1);
    }
}

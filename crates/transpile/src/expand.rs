//! Native-gate expansion with pulse-cost accounting.
//!
//! This is where the paper's central mechanism lives: parameters sitting
//! exactly on a *compression level* produce **shorter physical circuits**
//! (Motivation 1 / Fig. 3). Concretely, after binding angles:
//!
//! - a plain rotation at `0 (mod 2π)` vanishes entirely (at `2π` the
//!   unitary is `−I`, an unobservable global phase);
//! - a rotation at `π/2, π, 3π/2` needs **one** physical pulse instead of
//!   the generic **two** (on IBM hardware, arbitrary 1q rotations compile to
//!   `RZ·SX·RZ·SX·RZ` with free virtual-Z, i.e. two SX pulses, while
//!   quarter-turn angles need a single pulse);
//! - a controlled rotation at `0 (mod 4π)` vanishes, removing **two
//!   CNOTs**; at `π` its two half-angle rotations become single-pulse. The
//!   period is 4π, not 2π: at `2π` the target rotation is `−I`, which the
//!   control promotes from a global phase to a physical controlled phase
//!   (`CRY(2π) = diag(1, 1, −1, −1)`), so the gate must still be emitted;
//! - inserted SWAPs expand to three CNOTs.
//!
//! The expansion keeps gate *unitaries* exact (rotations are applied as
//! rotations) and encodes hardware cost in per-op pulse counts, which the
//! executor converts into depolarising-channel strengths.

use crate::circuit::{angle_is_identity, Param};
use crate::route::PhysicalCircuit;
use calibration::snapshot::CalibrationSnapshot;
use calibration::topology::Topology;
use quasim::gate::{BoundGate, GateKind};

/// Angle tolerance when snapping to special angles, in radians.
pub const ANGLE_TOL: f64 = 1e-9;

/// One native operation: an exact unitary plus its hardware pulse cost.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeOp {
    /// The exact gate to simulate (physical qubit operands).
    pub gate: BoundGate,
    /// Number of physical 1q pulses (0 for CNOT-class ops, which are costed
    /// separately via [`NativeOp::is_entangler`]).
    pub pulses: u32,
}

impl NativeOp {
    /// Whether this is a two-qubit entangling op (CNOT-class).
    pub fn is_entangler(&self) -> bool {
        self.gate.kind().arity() == 2
    }
}

/// A fully expanded physical circuit: native ops plus readout mapping.
///
/// # Examples
///
/// ```
/// use transpile::circuit::{Circuit, Param};
/// use transpile::route::route_identity;
/// use transpile::expand::expand;
/// use calibration::topology::Topology;
///
/// let mut c = Circuit::new(2);
/// c.cry(0, 1, Param::Idx(0));
/// let phys = route_identity(&c, &Topology::ibm_belem());
/// // At θ=0 the controlled rotation disappears entirely.
/// assert_eq!(expand(&phys, &[0.0]).ops().len(), 0);
/// // At a generic angle it costs two CNOTs plus two rotations.
/// assert_eq!(expand(&phys, &[0.7]).cx_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NativeCircuit {
    n_physical: usize,
    ops: Vec<NativeOp>,
    final_layout: Vec<usize>,
}

impl NativeCircuit {
    /// Number of physical qubits.
    pub fn n_physical(&self) -> usize {
        self.n_physical
    }

    /// Native op sequence.
    pub fn ops(&self) -> &[NativeOp] {
        &self.ops
    }

    /// Final layout inherited from routing (`[logical] = physical`).
    pub fn final_layout(&self) -> &[usize] {
        &self.final_layout
    }

    /// Physical qubit carrying `logical` at measurement time.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is out of range.
    pub fn measured_physical(&self, logical: usize) -> usize {
        assert!(
            logical < self.final_layout.len(),
            "logical qubit out of range"
        );
        self.final_layout[logical]
    }

    /// Total number of CNOT-class ops.
    pub fn cx_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_entangler()).count()
    }

    /// Total number of 1q pulses.
    pub fn pulse_count(&self) -> u32 {
        self.ops.iter().map(|o| o.pulses).sum()
    }

    /// A scalar "physical circuit length": pulses + 3 × CNOTs (a CNOT takes
    /// roughly 3× the duration of a 1q pulse on IBM devices).
    pub fn length(&self) -> u32 {
        self.pulse_count() + 3 * self.cx_count() as u32
    }

    /// First-order estimate of the total accumulated error probability under
    /// a calibration snapshot: `Σ pulses·ε_1q(q) + Σ ε_cx(edge)`, plus mean
    /// readout error on the measured qubits.
    ///
    /// # Panics
    ///
    /// Panics if an entangler op addresses a pair that is not a coupling
    /// edge of `topology`.
    pub fn estimated_error(
        &self,
        snapshot: &CalibrationSnapshot,
        topology: &Topology,
        measured_logical: &[usize],
    ) -> f64 {
        let mut total = 0.0;
        for op in &self.ops {
            let q = op.gate.qubits();
            if op.is_entangler() {
                let idx = topology
                    .edge_index(q[0], q[1])
                    .expect("entangler must sit on a coupling edge");
                total += snapshot.cnot_error[idx];
            } else {
                total += op.pulses as f64 * snapshot.single_qubit_error[q[0]];
            }
        }
        for &l in measured_logical {
            total += snapshot.readout[self.measured_physical(l)].mean_error();
        }
        total
    }
}

/// Normalises an angle into `[0, 2π)`.
fn norm_angle(theta: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let mut a = theta % two_pi;
    if a < 0.0 {
        a += two_pi;
    }
    // Snap 2π−ε to 0 for the vanish check.
    if (two_pi - a) < ANGLE_TOL {
        a = 0.0;
    }
    a
}

/// Pulse cost of a 1q rotation at angle `theta` (post-normalisation):
/// 0 at multiples of 2π, 1 at quarter turns, 2 otherwise.
pub fn rotation_pulses(theta: f64) -> u32 {
    let a = norm_angle(theta);
    if a.abs() < ANGLE_TOL {
        0
    } else {
        let quarter = std::f64::consts::FRAC_PI_2;
        let k = (a / quarter).round();
        if (a - k * quarter).abs() < ANGLE_TOL {
            1
        } else {
            2
        }
    }
}

fn fixed_gate_pulses(kind: GateKind) -> u32 {
    match kind {
        GateKind::X | GateKind::Y | GateKind::Sx | GateKind::H => 1,
        GateKind::Z | GateKind::S | GateKind::T => 0, // virtual-Z family
        _ => 0,
    }
}

/// Expands a routed circuit at concrete parameter values into native ops.
///
/// Gates whose bound angle is `0 (mod 2π)` within [`ANGLE_TOL`] are dropped;
/// controlled rotations expand to `CX · R(−θ/2) · CX · R(θ/2)` on the
/// target; SWAPs expand to three CNOTs.
///
/// # Panics
///
/// Panics if `theta` is shorter than the circuit's parameter count.
pub fn expand(phys: &PhysicalCircuit, theta: &[f64]) -> NativeCircuit {
    assert!(
        theta.len() >= phys.n_params(),
        "need {} parameters, got {}",
        phys.n_params(),
        theta.len()
    );
    let mut ops: Vec<NativeOp> = Vec::with_capacity(phys.ops().len() * 2);
    for op in phys.ops() {
        let angle = match op.param {
            Some(Param::Idx(i)) => theta[i],
            Some(Param::Fixed(v)) => v,
            None => 0.0,
        };
        match op.kind {
            GateKind::Rx | GateKind::Ry | GateKind::Rz | GateKind::Phase => {
                let pulses = rotation_pulses(angle);
                if !angle_is_identity(op.kind, angle, ANGLE_TOL) {
                    ops.push(NativeOp {
                        gate: BoundGate::one(op.kind, op.qubits[0], angle),
                        pulses,
                    });
                }
            }
            GateKind::Crx | GateKind::Cry | GateKind::Crz => {
                // Identity only at multiples of 4π (see `angle_is_identity`:
                // at 2π the control promotes −I to a physical phase).
                if !angle_is_identity(op.kind, angle, ANGLE_TOL) {
                    // CX-conjugation flips the rotation sign only for axes
                    // that anticommute with X, so CRY/CRZ decompose directly;
                    // CRX conjugates the target with H around a CRZ pattern
                    // (HZH = X).
                    let axis = match op.kind {
                        GateKind::Crx => GateKind::Rz,
                        GateKind::Cry => GateKind::Ry,
                        _ => GateKind::Rz,
                    };
                    let (c, t) = (op.qubits[0], op.qubits[1]);
                    let half = angle / 2.0;
                    let wrap_h = op.kind == GateKind::Crx;
                    if wrap_h {
                        ops.push(NativeOp {
                            gate: BoundGate::one(GateKind::H, t, 0.0),
                            pulses: fixed_gate_pulses(GateKind::H),
                        });
                    }
                    // Time order: CX · R(−θ/2) · CX · R(θ/2).
                    ops.push(NativeOp {
                        gate: BoundGate::two(GateKind::Cx, c, t, 0.0),
                        pulses: 0,
                    });
                    ops.push(NativeOp {
                        gate: BoundGate::one(axis, t, -half),
                        pulses: rotation_pulses(-half),
                    });
                    ops.push(NativeOp {
                        gate: BoundGate::two(GateKind::Cx, c, t, 0.0),
                        pulses: 0,
                    });
                    ops.push(NativeOp {
                        gate: BoundGate::one(axis, t, half),
                        pulses: rotation_pulses(half),
                    });
                    if wrap_h {
                        ops.push(NativeOp {
                            gate: BoundGate::one(GateKind::H, t, 0.0),
                            pulses: fixed_gate_pulses(GateKind::H),
                        });
                    }
                }
            }
            GateKind::Swap => {
                let (a, b) = (op.qubits[0], op.qubits[1]);
                for (c, t) in [(a, b), (b, a), (a, b)] {
                    ops.push(NativeOp {
                        gate: BoundGate::two(GateKind::Cx, c, t, 0.0),
                        pulses: 0,
                    });
                }
            }
            GateKind::Cx | GateKind::Cz => {
                ops.push(NativeOp {
                    gate: BoundGate::two(op.kind, op.qubits[0], op.qubits[1], 0.0),
                    pulses: 0,
                });
            }
            kind => {
                ops.push(NativeOp {
                    gate: BoundGate::one(kind, op.qubits[0], 0.0),
                    pulses: fixed_gate_pulses(kind),
                });
            }
        }
    }
    NativeCircuit {
        n_physical: phys.n_physical(),
        ops,
        final_layout: phys.final_layout().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::route::route_identity;
    use quasim::statevector::StateVector;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn belem() -> Topology {
        Topology::ibm_belem()
    }

    #[test]
    fn rotation_pulse_costs() {
        assert_eq!(rotation_pulses(0.0), 0);
        assert_eq!(rotation_pulses(2.0 * PI), 0);
        assert_eq!(rotation_pulses(-2.0 * PI), 0);
        assert_eq!(rotation_pulses(FRAC_PI_2), 1);
        assert_eq!(rotation_pulses(PI), 1);
        assert_eq!(rotation_pulses(3.0 * FRAC_PI_2), 1);
        assert_eq!(rotation_pulses(-FRAC_PI_2), 1);
        assert_eq!(rotation_pulses(0.3), 2);
        assert_eq!(rotation_pulses(1.0), 2);
    }

    #[test]
    fn zero_rotation_vanishes() {
        let mut c = Circuit::new(1);
        c.ry(0, Param::Idx(0));
        let phys = route_identity(&c, &belem());
        assert!(expand(&phys, &[0.0]).ops().is_empty());
        assert_eq!(expand(&phys, &[0.4]).pulse_count(), 2);
        assert_eq!(expand(&phys, &[PI]).pulse_count(), 1);
    }

    #[test]
    fn cry_cost_ladder_matches_paper_breakpoints() {
        let mut c = Circuit::new(2);
        c.cry(0, 1, Param::Idx(0));
        let phys = route_identity(&c, &belem());
        let len = |t: f64| expand(&phys, &[t]).length();
        // 0 < π < generic: the compression levels are exactly the cheap spots.
        assert_eq!(len(0.0), 0);
        assert!(len(PI) < len(1.2), "π should be cheaper than generic");
        assert!(len(0.0) < len(PI));
        // π level: halves are π/2 → single pulses.
        assert_eq!(expand(&phys, &[PI]).pulse_count(), 2);
        assert_eq!(expand(&phys, &[1.2]).pulse_count(), 4);
        assert_eq!(expand(&phys, &[PI]).cx_count(), 2);
    }

    #[test]
    fn swap_expands_to_three_cnots() {
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let phys = route_identity(&c, &belem());
        let native = expand(&phys, &[]);
        assert_eq!(native.cx_count(), phys.swap_count() * 3 + 1);
    }

    /// Expanded circuit must implement the same unitary as the logical one
    /// (checked through measurement marginals via the final layout).
    #[test]
    fn expansion_preserves_semantics() {
        let mut c = Circuit::new(4);
        c.ry(0, Param::Idx(0))
            .cry(0, 1, Param::Idx(1))
            .crx(1, 2, Param::Idx(2))
            .crz(2, 3, Param::Idx(3))
            .cry(3, 0, Param::Idx(4))
            .rx(2, Param::Idx(5));
        let theta = [0.3, 1.1, -0.7, 2.2, 0.9, 0.5];

        // Reference: logical circuit on the logical register.
        let mut ref_sv = StateVector::zero_state(4);
        ref_sv.run(&c.bind(&theta));

        // Expanded: physical register, swaps included.
        let topo = belem();
        let phys = route_identity(&c, &topo);
        let native = expand(&phys, &theta);
        let mut sv = StateVector::zero_state(topo.n_qubits());
        for op in native.ops() {
            sv.apply(&op.gate);
        }
        for l in 0..4 {
            let p = native.measured_physical(l);
            assert!(
                (ref_sv.prob_one(l) - sv.prob_one(p)).abs() < 1e-10,
                "marginal mismatch on logical {l}"
            );
        }
    }

    #[test]
    fn compressed_params_shrink_estimated_error() {
        let topo = belem();
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.ry(q, Param::Idx(q));
        }
        for q in 0..3 {
            c.cry(q, q + 1, Param::Idx(4 + q));
        }
        let phys = route_identity(&c, &topo);
        let snap = CalibrationSnapshot::uniform(&topo, 0, 3e-4, 1e-2, 0.02);
        let generic = [0.4, 1.3, 0.8, 2.1, 0.9, 1.7, 0.6];
        let compressed = [0.0, PI, 0.8, FRAC_PI_2, 0.0, 1.7, 0.0];
        let e_gen = expand(&phys, &generic).estimated_error(&snap, &topo, &[0, 1, 2, 3]);
        let e_cmp = expand(&phys, &compressed).estimated_error(&snap, &topo, &[0, 1, 2, 3]);
        assert!(e_cmp < e_gen, "compression must lower accumulated error");
    }

    #[test]
    fn estimated_error_counts_readout() {
        let topo = belem();
        let c = Circuit::new(2);
        let phys = route_identity(&c, &topo);
        let native = expand(&phys, &[]);
        let snap = CalibrationSnapshot::uniform(&topo, 0, 0.0, 0.0, 0.04);
        let e = native.estimated_error(&snap, &topo, &[0, 1]);
        assert!((e - 0.08).abs() < 1e-12);
    }
}

//! Gate-fusion pass: compiles native circuits into fused density-matrix
//! programs.
//!
//! This is the transpile-level half of the fused execution pipeline (the
//! kernels live in [`quasim::fused`] / `quasim::density`). The pass walks a
//! circuit in program order and
//!
//! - **prebinds** every gate matrix once per compilation — fixed gates
//!   (the `H` wraps of `CRX` decompositions, Paulis, …) come from the
//!   process-wide cache ([`GateKind::fixed_entries_1q`]) and parameterised
//!   rotations are bound allocation-free via [`GateKind::entries_1q`] /
//!   [`GateKind::entries_2q`] — instead of re-deriving a heap-allocated
//!   matrix for every gate application;
//! - **collapses runs** of consecutive operations sharing a support into
//!   single [`quasim::fused::Segment`]s, which the kernels execute in one
//!   pass over `ρ`. Every native gate fuses with the calibration-noise
//!   channel that follows it (`CX·dep₂` and `R(θ)·dep₁` each become one
//!   pass instead of two), and runs of same-wire rotations — e.g. the
//!   per-qubit feature-encoding strings — fuse whole.
//!
//! Fusion never reorders operations and only groups ops with the **same**
//! support, so every atom executes with exactly the triangle geometry and
//! scalar expressions of its standalone kernel: fused execution is
//! **bit-identical** to the op-by-op reference (see the `fuse_props`
//! property tests).

use crate::expand::{NativeCircuit, NativeOp};
use quasim::fused::{FusedProgram, ProgramBuilder};
use quasim::gate::{BoundGate, GateKind};

/// One simulation event for [`fuse_ops`]: a gate, or a closed-form
/// depolarising channel.
#[derive(Debug, Clone, PartialEq)]
pub enum SimOp {
    /// A unitary gate.
    Gate(BoundGate),
    /// One-qubit depolarising channel (strength clamped at execution).
    Depolarize1 {
        /// Target qubit.
        q: usize,
        /// Depolarising strength.
        lambda: f64,
    },
    /// Two-qubit depolarising channel.
    Depolarize2 {
        /// First qubit (most significant local bit).
        a: usize,
        /// Second qubit.
        b: usize,
        /// Depolarising strength.
        lambda: f64,
    },
}

/// Appends one gate to the builder with the same dispatch the unfused
/// density-matrix path uses (`CX` → permutation fast path, otherwise by
/// arity), prebinding its matrix. `q0`/`q1` are the (possibly compacted)
/// operand indices to emit.
fn push_gate_at(builder: &mut ProgramBuilder, gate: &BoundGate, q0: usize, q1: usize) {
    let kind = gate.kind();
    match kind {
        GateKind::Cx => builder.cx(q0, q1),
        _ if kind.arity() == 1 => {
            let m = match kind.fixed_entries_1q() {
                Some(cached) => *cached,
                None => kind
                    .entries_1q(gate.theta())
                    .expect("one-qubit kind has 2x2 entries"),
            };
            builder.unitary_1q(q0, m);
        }
        _ => {
            let m = kind
                .entries_2q(gate.theta())
                .expect("two-qubit kind has 4x4 entries");
            builder.unitary_2q(q0, q1, m);
        }
    }
}

/// [`push_gate_at`] with the gate's own operands.
fn push_gate(builder: &mut ProgramBuilder, gate: &BoundGate) {
    let q = gate.qubits();
    push_gate_at(builder, gate, q[0], *q.last().expect("ops have operands"));
}

/// Fuses an explicit event stream over `n_qubits` qubits.
///
/// # Examples
///
/// ```
/// use quasim::gate::{BoundGate, GateKind};
/// use transpile::fuse::{fuse_ops, SimOp};
///
/// let prog = fuse_ops(
///     2,
///     &[
///         SimOp::Gate(BoundGate::one(GateKind::H, 1, 0.0)),
///         SimOp::Gate(BoundGate::two(GateKind::Cx, 0, 1, 0.0)),
///         SimOp::Depolarize2 { a: 0, b: 1, lambda: 0.01 },
///     ],
/// );
/// // The CX and its noise channel share a support and fuse into one pass.
/// assert_eq!(prog.segments().len(), 2);
/// assert_eq!(prog.n_atoms(), 3);
/// ```
///
/// # Panics
///
/// Panics if a qubit index is out of range or a two-qubit event repeats a
/// qubit.
pub fn fuse_ops(n_qubits: usize, ops: &[SimOp]) -> FusedProgram {
    let mut builder = ProgramBuilder::new(n_qubits);
    for op in ops {
        match op {
            SimOp::Gate(g) => push_gate(&mut builder, g),
            SimOp::Depolarize1 { q, lambda } => builder.depolarize_1q(*q, *lambda),
            SimOp::Depolarize2 { a, b, lambda } => builder.depolarize_2q(*lambda, *a, *b),
        }
    }
    builder.finish()
}

/// Fuses a plain gate sequence (no noise interleave).
pub fn fuse_gates(n_qubits: usize, gates: &[BoundGate]) -> FusedProgram {
    let mut builder = ProgramBuilder::new(n_qubits);
    for gate in gates {
        push_gate(&mut builder, gate);
    }
    builder.finish()
}

/// Fuses a routed-and-expanded native circuit, interleaving a depolarising
/// channel after each op for which `noise` returns a strength.
///
/// The channel is applied on the op's own qubits (pair order preserved),
/// exactly as the unfused executor loop does; `noise` returning `None`
/// (and `Some(0.0)`, which is an exact no-op) emits no channel.
pub fn fuse_native<F>(native: &NativeCircuit, noise: F) -> FusedProgram
where
    F: FnMut(&NativeOp) -> Option<f64>,
{
    fuse_native_compacted(
        native,
        &QubitCompaction::identity(native.n_physical()),
        noise,
    )
}

/// A dense relabelling of the physical qubits a native circuit actually
/// touches.
///
/// Devices are routinely larger than the routed circuit (a 4-qubit model
/// on a 5-qubit `ibm_belem`, or a 7-qubit `ibm_jakarta`), and every unused
/// physical qubit **quadruples** the density matrix for nothing: the state
/// stays `ρ_active ⊗ |0⟩⟨0|`, all the extra entries are exactly zero.
/// Compaction simulates only the active subregister — the surviving
/// entries see the identical arithmetic, so per-qubit observables are
/// unchanged.
///
/// # Examples
///
/// ```
/// use transpile::circuit::Circuit;
/// use transpile::route::route_identity;
/// use transpile::expand::expand;
/// use transpile::fuse::QubitCompaction;
/// use calibration::topology::Topology;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let native = expand(&route_identity(&c, &Topology::ibm_belem()), &[]);
/// let compaction = QubitCompaction::for_native(&native, &[0, 1]);
/// // Only 2 of belem's 5 physical qubits are simulated.
/// assert_eq!(compaction.n_active(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QubitCompaction {
    map: Vec<Option<usize>>,
    n_active: usize,
}

impl QubitCompaction {
    /// The identity compaction (all `n` qubits active).
    pub fn identity(n: usize) -> Self {
        QubitCompaction {
            map: (0..n).map(Some).collect(),
            n_active: n,
        }
    }

    /// Builds the compaction for a native circuit: active qubits are those
    /// addressed by any op, plus `keep` (e.g. the measured qubits, which
    /// must stay addressable even when no gate touches them). Active
    /// qubits keep their relative order.
    pub fn for_native(native: &NativeCircuit, keep: &[usize]) -> Self {
        let n = native.n_physical();
        let mut used = vec![false; n];
        for op in native.ops() {
            for &q in op.gate.qubits() {
                used[q] = true;
            }
        }
        for &q in keep {
            assert!(q < n, "kept qubit {q} out of range");
            used[q] = true;
        }
        let mut map = vec![None; n];
        let mut next = 0usize;
        for (q, &u) in used.iter().enumerate() {
            if u {
                map[q] = Some(next);
                next += 1;
            }
        }
        QubitCompaction {
            map,
            n_active: next,
        }
    }

    /// Number of active (simulated) qubits.
    pub fn n_active(&self) -> usize {
        self.n_active
    }

    /// Compact index of an active physical qubit.
    ///
    /// # Panics
    ///
    /// Panics if `phys` is out of range or inactive.
    pub fn compact(&self, phys: usize) -> usize {
        self.map
            .get(phys)
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("physical qubit {phys} is not active"))
    }
}

/// [`fuse_native`] over the compacted register: gates and channels are
/// emitted on compact qubit indices, while `noise` still sees the original
/// native op (physical indices) to derive channel strengths.
pub fn fuse_native_compacted<F>(
    native: &NativeCircuit,
    compaction: &QubitCompaction,
    mut noise: F,
) -> FusedProgram
where
    F: FnMut(&NativeOp) -> Option<f64>,
{
    let mut builder = ProgramBuilder::new(compaction.n_active());
    for op in native.ops() {
        let q = op.gate.qubits();
        let c0 = compaction.compact(q[0]);
        let c1 = compaction.compact(*q.last().expect("ops have operands"));
        push_gate_at(&mut builder, &op.gate, c0, c1);
        if let Some(lambda) = noise(op) {
            match q.len() {
                1 => builder.depolarize_1q(c0, lambda),
                _ => builder.depolarize_2q(lambda, c0, c1),
            }
        }
    }
    builder.finish()
}

/// [`fuse_native_compacted`] followed by bind-time precomposition
/// ([`FusedProgram::precompose`]): every run of consecutive same-support
/// unitaries — a CRY expansion's rotation pair, a feature-encoding string
/// — collapses into one prebound matrix, so each trajectory pass applies a
/// single matrix where the density path applies several atoms.
///
/// This entry point is **trajectory-only** by design: composing matrices
/// re-rounds the affected amplitudes, so the density path (whose
/// fused-vs-unfused bit-identity is pinned by golden fixtures) keeps the
/// plain [`fuse_native_compacted`] program, while the per-trajectory and
/// panel engines both run the same precomposed program and therefore stay
/// mutually bit-identical.
pub fn fuse_native_trajectory<F>(
    native: &NativeCircuit,
    compaction: &QubitCompaction,
    noise: F,
) -> FusedProgram
where
    F: FnMut(&NativeOp) -> Option<f64>,
{
    fuse_native_compacted(native, compaction, noise).precompose()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Circuit, Param};
    use crate::expand::expand;
    use crate::route::route_identity;
    use calibration::topology::Topology;
    use quasim::density::{DensityMatrix, SimWorkspace};

    fn assert_bits_eq(ws: &SimWorkspace, reference: &DensityMatrix) {
        let fused = ws.to_density_matrix();
        for i in 0..reference.dim() {
            for j in 0..reference.dim() {
                let (x, y) = (fused.get(i, j), reference.get(i, j));
                assert!(
                    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                    "ρ[{i},{j}] differs: {x} vs {y}"
                );
            }
        }
    }

    /// Runs a `SimOp` stream through the unfused DensityMatrix methods.
    fn run_unfused(n_qubits: usize, ops: &[SimOp]) -> DensityMatrix {
        let mut rho = DensityMatrix::zero_state(n_qubits);
        for op in ops {
            match op {
                SimOp::Gate(g) => rho.apply_gate(g),
                SimOp::Depolarize1 { q, lambda } => rho.apply_depolarizing_1q(*lambda, *q),
                SimOp::Depolarize2 { a, b, lambda } => rho.apply_depolarizing_2q(*lambda, *a, *b),
            }
        }
        rho
    }

    #[test]
    fn fused_native_circuit_matches_unfused_bits() {
        let mut c = Circuit::new(4);
        c.ry(0, Param::Idx(0))
            .cry(0, 1, Param::Idx(1))
            .crx(1, 2, Param::Idx(2))
            .crz(2, 3, Param::Idx(3))
            .h(3)
            .cx(3, 0);
        let theta = [0.3, 1.1, -0.7, 2.2];
        let topo = Topology::ibm_belem();
        let phys = route_identity(&c, &topo);
        let native = expand(&phys, &theta);

        let lambda_of = |op: &crate::expand::NativeOp| -> Option<f64> {
            if op.is_entangler() {
                Some(0.008)
            } else if op.pulses > 0 {
                Some(0.001 * op.pulses as f64)
            } else {
                None
            }
        };

        // Unfused reference: the historical executor loop.
        let mut reference = DensityMatrix::zero_state(topo.n_qubits());
        for op in native.ops() {
            reference.apply_gate(&op.gate);
            if let Some(l) = lambda_of(op) {
                let q = op.gate.qubits();
                match q.len() {
                    1 => reference.apply_depolarizing_1q(l, q[0]),
                    _ => reference.apply_depolarizing_2q(l, q[0], q[1]),
                }
            }
        }

        let program = fuse_native(&native, lambda_of);
        // Fusion must genuinely collapse the op stream: strictly fewer
        // segments than simulated events.
        let n_events = native.ops().len()
            + native
                .ops()
                .iter()
                .filter(|o| lambda_of(o).is_some())
                .count();
        assert!(
            program.segments().len() * 2 <= n_events,
            "expected ≥2x fusion: {} segments for {} events",
            program.segments().len(),
            n_events
        );

        let mut ws = SimWorkspace::new();
        ws.reset_zero(topo.n_qubits());
        ws.run(&program);
        assert_bits_eq(&ws, &reference);
    }

    #[test]
    fn fuse_ops_matches_unfused_bits() {
        use quasim::gate::{BoundGate, GateKind};
        let ops = vec![
            SimOp::Gate(BoundGate::one(GateKind::H, 0, 0.0)),
            SimOp::Gate(BoundGate::one(GateKind::Ry, 0, 0.7)),
            SimOp::Depolarize1 { q: 0, lambda: 0.02 },
            SimOp::Gate(BoundGate::two(GateKind::Cx, 0, 2, 0.0)),
            SimOp::Depolarize2 {
                a: 0,
                b: 2,
                lambda: 0.03,
            },
            SimOp::Gate(BoundGate::two(GateKind::Crz, 2, 0, 1.9)),
            SimOp::Gate(BoundGate::one(GateKind::Rz, 1, -0.4)),
            SimOp::Gate(BoundGate::two(GateKind::Swap, 1, 2, 0.0)),
            SimOp::Depolarize2 {
                a: 2,
                b: 1,
                lambda: 0.05,
            },
        ];
        let program = fuse_ops(3, &ops);
        let mut ws = SimWorkspace::new();
        ws.reset_zero(3);
        ws.run(&program);
        assert_bits_eq(&ws, &run_unfused(3, &ops));
    }

    #[test]
    fn zero_lambda_channels_do_not_break_fusion() {
        use quasim::gate::{BoundGate, GateKind};
        let ops = vec![
            SimOp::Gate(BoundGate::one(GateKind::Ry, 1, 0.2)),
            SimOp::Depolarize1 { q: 1, lambda: 0.0 },
            SimOp::Gate(BoundGate::one(GateKind::Rz, 1, 0.3)),
        ];
        let program = fuse_ops(2, &ops);
        assert_eq!(program.segments().len(), 1);
        assert_eq!(program.n_atoms(), 2);
    }

    #[test]
    fn trajectory_fusion_precomposes_rotation_runs() {
        let mut c = Circuit::new(3);
        c.ry(0, Param::Idx(0))
            .rz(0, Param::Idx(1))
            .ry(0, Param::Idx(2))
            .cry(0, 1, Param::Idx(3))
            .h(2);
        let theta = [0.3, 1.1, -0.7, 2.2];
        let topo = Topology::line(3);
        let native = expand(&route_identity(&c, &topo), &theta);
        let compaction = QubitCompaction::identity(topo.n_qubits());
        let lambda_of =
            |op: &crate::expand::NativeOp| -> Option<f64> { op.is_entangler().then_some(0.008) };

        let plain = fuse_native_compacted(&native, &compaction, lambda_of);
        let pre = fuse_native_trajectory(&native, &compaction, lambda_of);
        assert!(pre.is_precomposed());
        assert!(
            pre.n_atoms() < plain.n_atoms(),
            "precompose collapsed nothing: {} vs {} atoms",
            pre.n_atoms(),
            plain.n_atoms()
        );
        assert_eq!(pre.n_stochastic_atoms(), plain.n_stochastic_atoms());
        assert_eq!(pre.segments().len(), plain.segments().len());

        // Same quantum channel up to rounding: compare densities loosely.
        let mut a = SimWorkspace::new();
        a.reset_zero(topo.n_qubits());
        a.run(&plain);
        let mut b = SimWorkspace::new();
        b.reset_zero(topo.n_qubits());
        b.run(&pre);
        let (da, db) = (a.to_density_matrix(), b.to_density_matrix());
        for i in 0..da.dim() {
            for j in 0..da.dim() {
                let (x, y) = (da.get(i, j), db.get(i, j));
                assert!(
                    (x.re - y.re).abs() < 1e-12 && (x.im - y.im).abs() < 1e-12,
                    "ρ[{i},{j}] diverged: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn fixed_gates_use_cached_prebound_matrices() {
        use quasim::gate::{BoundGate, GateKind};
        // The cache must hand back exactly the matrix() bits.
        let cached = GateKind::H.fixed_entries_1q().unwrap();
        let fresh = GateKind::H.matrix(0.0).to_2x2().unwrap();
        for (a, b) in cached.iter().zip(fresh.iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        // And a program built from H gates must behave like matrix().
        let prog = fuse_gates(1, &[BoundGate::one(GateKind::H, 0, 0.0)]);
        let mut ws = SimWorkspace::new();
        ws.reset_zero(1);
        ws.run(&prog);
        assert!((ws.prob_one(0) - 0.5).abs() < 1e-12);
    }
}

//! # transpile — circuit IR, routing, and native-gate expansion
//!
//! Bridges logical QNN circuits and a physical device:
//!
//! - [`circuit`]: parameterised logical circuits ([`circuit::Circuit`])
//!   whose rotation angles are trainable parameters or fixed constants;
//! - [`route`]: deterministic greedy SWAP routing onto a restricted
//!   [`calibration::topology::Topology`], pinning each gate to physical
//!   qubits — the association `A(g_i)` the paper's noise-aware mask needs;
//! - [`expand`]: native-gate expansion with pulse-cost accounting, which is
//!   where compression levels (`0, π/2, π, 3π/2`) translate into shorter,
//!   less noisy physical circuits;
//! - [`fuse`]: the gate-fusion pass compiling native circuits (plus their
//!   calibration-noise interleave) into prebound
//!   [`quasim::fused::FusedProgram`]s, which the density-matrix kernels
//!   execute in single passes — bit-identical to unfused execution; the
//!   trajectory backends additionally precompose unitary runs at bind
//!   time ([`fuse::fuse_native_trajectory`]);
//! - [`template`]: compile-once/rebind-many circuit templates — the
//!   structure-determined half of the pipeline (simplify + route) cached
//!   per [`template::StructureKey`] and re-bound at fresh angles with a
//!   single linear expansion pass, bit-identical to a from-scratch
//!   compile;
//! - [`verify`]: static verification of circuits, routed physical
//!   circuits, and templates — including the bound-instance ≡ template
//!   structural-equality check the rebind path relies on.
//!
//! # Examples
//!
//! ```
//! use transpile::circuit::{Circuit, Param};
//! use transpile::route::route_identity;
//! use transpile::expand::expand;
//! use calibration::topology::Topology;
//!
//! let mut c = Circuit::new(4);
//! c.ry(0, Param::Idx(0)).cry(0, 1, Param::Idx(1));
//! let phys = route_identity(&c, &Topology::ibm_belem());
//! let cheap = expand(&phys, &[0.0, 0.0]);   // fully compressed
//! let costly = expand(&phys, &[0.4, 1.3]);  // generic angles
//! assert!(cheap.length() < costly.length());
//! ```

// No unsafe code belongs in this crate; the only sanctioned unsafe in the
// workspace is quasim's (future) SIMD kernel layer.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod expand;
pub mod fuse;
pub mod route;
pub mod template;
pub mod verify;

pub use circuit::{Circuit, Op, Param};
pub use expand::{expand, NativeCircuit, NativeOp};
pub use fuse::{
    fuse_gates, fuse_native, fuse_native_compacted, fuse_native_trajectory, fuse_ops,
    QubitCompaction, SimOp,
};
pub use route::{route, route_identity, with_fixed_params, PhysicalCircuit};
pub use template::{structure_key, CircuitTemplate, StructureKey};
pub use verify::{verify_bound, verify_circuit, verify_physical, verify_template};

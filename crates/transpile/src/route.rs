//! Logical→physical routing on a restricted topology.
//!
//! The paper's noise-aware compression operates on "the quantum circuit
//! after routing on restricted topology" so that every gate has a fixed
//! physical-qubit association `A(g_i)` (Sec. III-B). [`route`] performs a
//! deterministic greedy SWAP-insertion pass: two-qubit gates on uncoupled
//! pairs get SWAPs along a BFS shortest path until the operands are
//! adjacent.

use crate::circuit::{Circuit, Op, Param};
use calibration::topology::Topology;
use quasim::gate::GateKind;

/// A routed circuit whose ops address *physical* qubits and whose two-qubit
/// gates all sit on coupling-map edges.
///
/// # Examples
///
/// ```
/// use transpile::circuit::{Circuit, Param};
/// use transpile::route::route;
/// use calibration::topology::Topology;
///
/// let mut c = Circuit::new(4);
/// c.cry(3, 0, Param::Idx(0)); // not coupled on belem → SWAP inserted
/// let phys = route(&c, &Topology::ibm_belem(), None);
/// assert!(phys.swap_count() >= 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalCircuit {
    n_physical: usize,
    ops: Vec<Op>,
    n_params: usize,
    initial_layout: Vec<usize>,
    final_layout: Vec<usize>,
}

impl PhysicalCircuit {
    /// Number of physical qubits on the device.
    pub fn n_physical(&self) -> usize {
        self.n_physical
    }

    /// Routed ops (physical qubit operands), including inserted SWAPs.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of trainable parameters (same as the logical circuit).
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Initial layout: `initial_layout[logical] = physical`.
    pub fn initial_layout(&self) -> &[usize] {
        &self.initial_layout
    }

    /// Final layout after all SWAPs: `final_layout[logical] = physical`.
    pub fn final_layout(&self) -> &[usize] {
        &self.final_layout
    }

    /// Physical qubit to measure to read out `logical` at circuit end.
    ///
    /// # Panics
    ///
    /// Panics if `logical` exceeds the logical register size.
    pub fn measured_physical(&self, logical: usize) -> usize {
        assert!(
            logical < self.final_layout.len(),
            "logical qubit out of range"
        );
        self.final_layout[logical]
    }

    /// Number of inserted SWAP gates.
    pub fn swap_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| op.kind == GateKind::Swap)
            .count()
    }

    /// Physical-qubit association of every op referencing trainable
    /// parameter `i` — the paper's `A(g_i)` for the mask's priority table.
    pub fn assoc_for_param(&self, i: usize) -> Vec<Vec<usize>> {
        self.ops
            .iter()
            .filter(|op| op.param.and_then(|p| p.idx()) == Some(i))
            .map(|op| op.qubits.clone())
            .collect()
    }

    /// Checks that every two-qubit op sits on a coupling edge of `topology`.
    pub fn respects_topology(&self, topology: &Topology) -> bool {
        self.ops.iter().all(|op| match op.qubits.as_slice() {
            [_] => true,
            [a, b] => topology.is_edge(*a, *b),
            _ => false,
        })
    }
}

/// Routes a logical circuit onto `topology`.
///
/// `initial_layout`, when provided, maps logical qubit `i` to physical qubit
/// `initial_layout[i]`; the default is the identity embedding. The router is
/// deterministic: given the same inputs it always emits the same SWAPs, which
/// keeps the parameter→physical-qubit association `A(g_i)` stable across a
/// training run (a prerequisite for noise-aware compression).
///
/// # Panics
///
/// Panics if the device has fewer qubits than the circuit, the layout is not
/// injective / sized to the logical register, or a gate references a qubit
/// outside the layout.
pub fn route(
    circuit: &Circuit,
    topology: &Topology,
    initial_layout: Option<&[usize]>,
) -> PhysicalCircuit {
    let nl = circuit.n_qubits();
    let np = topology.n_qubits();
    assert!(np >= nl, "device has {np} qubits, circuit needs {nl}");

    let layout0: Vec<usize> = match initial_layout {
        Some(l) => {
            assert_eq!(l.len(), nl, "layout must cover every logical qubit");
            let mut seen = vec![false; np];
            for &p in l {
                assert!(p < np, "layout target {p} out of range");
                assert!(!seen[p], "layout must be injective");
                seen[p] = true;
            }
            l.to_vec()
        }
        None => (0..nl).collect(),
    };

    // phys_at[p] = logical qubit currently at physical p (usize::MAX = none).
    let mut phys_at = vec![usize::MAX; np];
    let mut layout = layout0.clone();
    for (l, &p) in layout.iter().enumerate() {
        phys_at[p] = l;
    }

    let mut ops: Vec<Op> = Vec::with_capacity(circuit.len());
    for op in circuit.ops() {
        match op.qubits.as_slice() {
            [q] => {
                ops.push(Op {
                    kind: op.kind,
                    qubits: vec![layout[*q]],
                    param: op.param,
                });
            }
            [a, b] => {
                let mut pa = layout[*a];
                let pb = layout[*b];
                while !topology.is_edge(pa, pb) {
                    // Move `a` one hop along a shortest path toward `b`.
                    let next = topology
                        .neighbors(pa)
                        .into_iter()
                        .min_by_key(|&n| (topology.distance(n, pb), n))
                        .expect("connected topology always has a neighbor");
                    ops.push(Op {
                        kind: GateKind::Swap,
                        qubits: vec![pa, next],
                        param: None,
                    });
                    // Update the layout: logical occupants of pa/next swap.
                    let la = phys_at[pa];
                    let ln = phys_at[next];
                    phys_at[pa] = ln;
                    phys_at[next] = la;
                    if la != usize::MAX {
                        layout[la] = next;
                    }
                    if ln != usize::MAX {
                        layout[ln] = pa;
                    }
                    pa = next;
                }
                ops.push(Op {
                    kind: op.kind,
                    qubits: vec![pa, pb],
                    param: op.param,
                });
            }
            _ => unreachable!("ops always have 1 or 2 qubits"),
        }
    }

    PhysicalCircuit {
        n_physical: np,
        ops,
        n_params: circuit.n_params(),
        initial_layout: layout0,
        final_layout: layout,
    }
}

/// Convenience: routes with the identity layout and asserts validity.
///
/// # Panics
///
/// As [`route`]; additionally asserts the result respects the topology.
pub fn route_identity(circuit: &Circuit, topology: &Topology) -> PhysicalCircuit {
    let phys = route(circuit, topology, None);
    debug_assert!(phys.respects_topology(topology));
    phys
}

/// Builds a parameter-preserving copy of a routed circuit with some angles
/// overridden to fixed values (used when evaluating compressed candidates
/// without mutating the trainable vector).
///
/// `overrides[i] = Some(v)` replaces every occurrence of trainable parameter
/// `i` with the constant `v`.
///
/// # Panics
///
/// Panics if `overrides.len() < n_params`.
pub fn with_fixed_params(phys: &PhysicalCircuit, overrides: &[Option<f64>]) -> PhysicalCircuit {
    assert!(
        overrides.len() >= phys.n_params(),
        "need one override slot per parameter"
    );
    let ops = phys
        .ops
        .iter()
        .map(|op| {
            let param = match op.param {
                Some(Param::Idx(i)) => match overrides[i] {
                    Some(v) => Some(Param::Fixed(v)),
                    None => Some(Param::Idx(i)),
                },
                other => other,
            };
            Op {
                kind: op.kind,
                qubits: op.qubits.clone(),
                param,
            }
        })
        .collect();
    PhysicalCircuit {
        n_physical: phys.n_physical,
        ops,
        n_params: phys.n_params,
        initial_layout: phys.initial_layout.clone(),
        final_layout: phys.final_layout.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Param;

    #[test]
    fn adjacent_gates_route_without_swaps() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2);
        let phys = route_identity(&c, &Topology::ibm_belem());
        assert_eq!(phys.swap_count(), 0);
        assert_eq!(phys.ops().len(), 2);
        assert_eq!(phys.final_layout(), &[0, 1, 2]);
    }

    #[test]
    fn distant_gate_inserts_swaps() {
        let mut c = Circuit::new(5);
        c.cx(0, 4); // belem distance 3 → 2 swaps
        let phys = route_identity(&c, &Topology::ibm_belem());
        assert_eq!(phys.swap_count(), 2);
        assert!(phys.respects_topology(&Topology::ibm_belem()));
    }

    #[test]
    fn layout_tracking_after_swap() {
        let mut c = Circuit::new(4);
        c.cry(3, 0, Param::Idx(0));
        let topo = Topology::ibm_belem();
        let phys = route_identity(&c, &topo);
        assert!(phys.respects_topology(&topo));
        // Logical 3 moved; measuring it must follow the final layout.
        let p3 = phys.measured_physical(3);
        assert_ne!(p3, 3);
    }

    #[test]
    fn single_qubit_ops_follow_layout() {
        let mut c = Circuit::new(4);
        c.cry(3, 0, Param::Idx(0)); // moves logical 3
        c.ry(3, Param::Idx(1)); // must land on 3's new physical home
        let phys = route_identity(&c, &Topology::ibm_belem());
        let last = phys.ops().last().unwrap();
        assert_eq!(last.qubits[0], phys.measured_physical(3));
    }

    #[test]
    fn assoc_for_param_reports_physical_qubits() {
        let topo = Topology::ibm_belem();
        let mut c = Circuit::new(3);
        c.cry(0, 1, Param::Idx(0)).ry(2, Param::Idx(1));
        let phys = route_identity(&c, &topo);
        assert_eq!(phys.assoc_for_param(0), vec![vec![0, 1]]);
        assert_eq!(phys.assoc_for_param(1), vec![vec![2]]);
    }

    #[test]
    fn custom_layout_respected() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let phys = route(&c, &Topology::ibm_belem(), Some(&[3, 4]));
        assert_eq!(phys.ops()[0].qubits, vec![3, 4]);
    }

    #[test]
    fn with_fixed_params_overrides_selected() {
        let mut c = Circuit::new(2);
        c.ry(0, Param::Idx(0)).ry(1, Param::Idx(1));
        let phys = route_identity(&c, &Topology::ibm_belem());
        let fixed = with_fixed_params(&phys, &[Some(0.0), None]);
        assert_eq!(fixed.ops()[0].param, Some(Param::Fixed(0.0)));
        assert_eq!(fixed.ops()[1].param, Some(Param::Idx(1)));
    }

    #[test]
    fn routing_is_deterministic() {
        let mut c = Circuit::new(5);
        c.cx(0, 4).cx(2, 4).cry(4, 0, Param::Idx(0));
        let topo = Topology::ibm_belem();
        let a = route_identity(&c, &topo);
        let b = route_identity(&c, &topo);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "injective")]
    fn duplicate_layout_rejected() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let _ = route(&c, &Topology::ibm_belem(), Some(&[1, 1]));
    }

    #[test]
    #[should_panic(expected = "device has")]
    fn too_small_device_rejected() {
        let c = Circuit::new(6);
        let _ = route(&c, &Topology::ibm_belem(), None);
    }
}
